"""Anatomy of a lower bound: the Section 3 framework, executed exactly.

Reproduces the paper's proof strategy numerically on a small instance:

1. decompose the planted-clique distribution A_k into row-independent
   components A_C;
2. compute the exact transcript distribution of a distinguisher protocol
   under A_rand and under every component;
3. track the progress function L_progress(t) turn by turn and verify the
   chain  L_real(t) <= L_progress(t) <= theorem envelope.

Run:  python examples/lower_bound_anatomy.py
"""

import numpy as np

from repro.distinguish import ProtocolSpec
from repro.distributions import PlantedClique, RandomDigraph
from repro.lowerbounds import (
    planted_clique_one_round_bound,
    progress_curve,
    real_distance_curve,
)


def main() -> None:
    n, k = 7, 3
    print(f"instance: n={n}, k={k}; protocol: 1-round degree threshold\n")

    threshold = (n - 1) / 2 + 0.5

    def degree_fn(i, rows, p):
        return (rows.sum(axis=1) >= threshold).astype(np.int64)

    spec = ProtocolSpec(n, 1, degree_fn)
    mixture = PlantedClique(n, k)
    reference = RandomDigraph(n)

    progress = progress_curve(spec, mixture, reference)
    real = real_distance_curve(spec, mixture, reference)
    bound = planted_clique_one_round_bound(n, k)

    print(f"{'turn':>5}  {'L_real(t)':>10}  {'L_progress(t)':>13}")
    for t, (lr, lp) in enumerate(zip(real, progress)):
        print(f"{t:>5}  {lr:>10.4f}  {lp:>13.4f}")
    print(f"\nTheorem 1.6 envelope O(k^2/sqrt(n)) = {min(1.0, bound):.4f}")
    print(
        "invariants: L_real <= L_progress at every turn "
        f"({'OK' if all(r <= p + 1e-12 for r, p in zip(real, progress)) else 'VIOLATED'})"
        ", both monotone in t"
    )
    print(
        "\nThe gap between the curves is the price of the decomposition: "
        "the paper bounds the (larger) progress function because each "
        "component A_C has independent rows, so each broadcast can be "
        "analysed in isolation."
    )


if __name__ == "__main__":
    main()
