"""Planted clique in the Broadcast Congested Clique, end to end.

Generates a directed planted-clique instance, runs the paper's Appendix B
protocol (Theorem B.1) in the simulator with full round accounting, and
compares against the degree heuristic and the centralized spectral
baseline — then shows why the problem is *hard* for small k by measuring a
one-round distinguisher's advantage in the lower-bound regime.

Run:  python examples/planted_clique_demo.py
"""

import numpy as np

from repro.cliques import (
    PlantedCliqueSubsampleProtocol,
    degree_recover,
    recovery_quality,
    spectral_recover,
)
from repro.core import run_protocol
from repro.distinguish import (
    DegreeThresholdDistinguisher,
    estimate_protocol_advantage,
)
from repro.distributions import PlantedClique, RandomDigraph
from repro.lowerbounds import planted_clique_bound


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------
    # Easy regime: k = n/4 — find the clique with Theorem B.1's protocol.
    # ------------------------------------------------------------------
    n, k = 128, 32
    matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
    print(f"instance: n={n}, planted k={k}, clique={sorted(clique)[:6]}...")

    protocol = PlantedCliqueSubsampleProtocol(k)
    result = run_protocol(protocol, matrix, rng=rng)
    recovered = result.outputs[0]
    if recovered is None:
        print("protocol aborted (rerun for another subsample)")
    else:
        precision, recall = recovery_quality(recovered, clique)
        print(
            f"Appendix B protocol: {result.cost.rounds} BCAST(1) rounds, "
            f"precision={precision:.2f}, recall={recall:.2f}"
        )

    for name, recover in [
        ("degree heuristic", degree_recover),
        ("spectral (centralized)", spectral_recover),
    ]:
        _, recall = recovery_quality(recover(matrix, k), clique)
        print(f"{name}: recall={recall:.2f}")
    print()

    # ------------------------------------------------------------------
    # Hard regime: k ≈ n^{1/4} — Theorem 4.1 says no low-round protocol
    # can even *detect* the clique.  Measure the degree attack's advantage.
    # ------------------------------------------------------------------
    n_hard, k_hard = 256, 4
    estimate = estimate_protocol_advantage(
        DegreeThresholdDistinguisher.for_clique_size(n_hard, k_hard),
        PlantedClique(n_hard, k_hard),
        RandomDigraph(n_hard),
        n_samples=100,
        rng=rng,
    )
    bound = planted_clique_bound(n_hard, k_hard, j=1)
    print(
        f"hard regime n={n_hard}, k={k_hard} (= n^0.25): degree attack "
        f"advantage = {estimate.advantage:.3f} ± {estimate.interval.radius:.3f}"
    )
    print(f"Theorem 4.1 envelope (j=1): {min(1.0, bound):.3f}")
    print("=> statistically indistinguishable from guessing, as proven.")


if __name__ == "__main__":
    main()
