"""The average-case lower bound and time hierarchy (Theorems 1.4 / 1.5).

Shows the three pieces of the rank story:

1. the rank law of uniform GF(2) matrices (full rank w.p. Q0 ~ 0.289);
2. a rank-deficient PRG distribution that low-round protocols cannot tell
   from uniform — so no n/20-round protocol computes the full-rank
   indicator with accuracy 0.99 on average;
3. the hierarchy: F_k (top k x k block full rank) is exact in k rounds,
   stuck near accuracy ~0.71 below.

Run:  python examples/average_case_rank.py
"""

import numpy as np

from repro.core import Engine, run_protocol
from repro.distributions import RankDeficientMatrix, UniformRows
from repro.linalg import BitMatrix, Q0, full_rank_probability
from repro.lowerbounds import (
    TopSubmatrixRankProtocol,
    optimal_accuracy_with_columns,
    submit_accuracy_on_uniform,
)


def main() -> None:
    rng = np.random.default_rng(4)
    n = 16

    # --- 1: the rank law ------------------------------------------------
    trials = 300
    full = sum(
        int(BitMatrix.random(n, n, rng).is_full_rank()) for _ in range(trials)
    )
    print(f"uniform {n}x{n} GF(2): measured P[full rank] = {full/trials:.3f}, "
          f"exact = {full_rank_probability(n):.4f}, Q0 = {Q0:.4f}")

    # --- 2: indistinguishable rank-deficient inputs ----------------------
    pseudo = RankDeficientMatrix(n)
    uniform = UniformRows(n, n)
    protocol = TopSubmatrixRankProtocol(n, rounds_budget=3)
    accept_p = accept_u = 0
    for _ in range(100):
        accept_p += run_protocol(protocol, pseudo.sample(rng), rng=rng).outputs[0]
        accept_u += run_protocol(protocol, uniform.sample(rng), rng=rng).outputs[0]
    print(
        f"3-round protocol vs rank<n inputs: advantage = "
        f"{abs(accept_p - accept_u) / 100 / 2:.3f}  "
        f"(Theorem 1.4: must be ~0; yet ranks differ with certainty!)"
    )

    # --- 3: the hierarchy -------------------------------------------------
    # All four budget measurements are submitted asynchronously up front
    # (repro.exec futures) and overlap in flight; seeds are drawn at
    # submission, so the accuracies are bit-identical to sequential
    # accuracy_on_uniform calls with the same rng.
    k = 10
    print(f"\ntime hierarchy for F_k (top {k}x{k} block full-rank), n=12:")
    print(f"{'rounds':>8}  {'measured acc':>12}  {'info ceiling':>12}")
    with Engine() as engine:
        futures = [
            (j, submit_accuracy_on_uniform(
                engine,
                TopSubmatrixRankProtocol(k, rounds_budget=j),
                n=12, k=k, n_samples=200, rng=rng,
            ))
            for j in (0, k // 5, k // 2, k)
        ]
        for j, future in futures:
            print(f"{j:>8}  {future.result():>12.3f}  "
                  f"{optimal_accuracy_with_columns(k, j):>12.3f}")
    print("=> computable exactly in k rounds; pinned near 1-Q0 ~ 0.711 below.")


if __name__ == "__main__":
    main()
