"""A tour of the workload protocol library (`repro.protocols`).

Four workloads on one clique:

1. global parity — one round, deterministic;
2. ALL-EQUAL — the randomized-vs-deterministic separation the paper cites
   (m rounds exact vs t rounds with error 2^-t);
3. connectivity — O(diameter) rounds of BCAST(log n) label propagation
   with dynamic termination;
4. triangle counting — the Section 9 future-work problem: exact full
   exchange vs public-coin sampling estimator.

Run:  python examples/workloads_tour.py
"""

import numpy as np

from repro.core import Engine, PublicCoins, RunSpec, run_protocol
from repro.protocols import (
    ConnectivityProtocol,
    DeterministicEqualityProtocol,
    FingerprintEqualityProtocol,
    FullExchangeTriangleProtocol,
    GlobalParityProtocol,
    SampledTriangleProtocol,
    count_triangles,
)


def main() -> None:
    rng = np.random.default_rng(5)
    n = 16

    # --- parity --------------------------------------------------------
    inputs = rng.integers(0, 2, size=(n, 8), dtype=np.uint8)
    result = run_protocol(GlobalParityProtocol(), inputs, rng=rng)
    print(f"parity: {result.outputs[0]} in {result.cost.rounds} round")

    # --- equality: the separation ---------------------------------------
    m = 64
    row = rng.integers(0, 2, size=m, dtype=np.uint8)
    unequal = np.tile(row, (n, 1))
    unequal[5] = rng.integers(0, 2, size=m, dtype=np.uint8)

    det = run_protocol(DeterministicEqualityProtocol(m), unequal, rng=rng)
    fp = run_protocol(
        FingerprintEqualityProtocol(m, t_probes=6),
        unequal,
        rng=rng,
        public_coins=PublicCoins(np.random.default_rng(1)),
    )
    print(
        f"equality (unequal instance): deterministic={det.outputs[0]} in "
        f"{det.cost.rounds} rounds; fingerprint={fp.outputs[0]} in "
        f"{fp.cost.rounds} rounds (error <= 2^-6)"
    )

    # The same fingerprint protocol as a seeded engine batch: 100 trials,
    # each with a fresh protocol copy and fresh public coins — the one-sided
    # error rate falls straight out of the aggregated decisions.
    spec = RunSpec(
        protocol=FingerprintEqualityProtocol(m, t_probes=3),
        inputs=unequal,
        seed=6,
        public_coins=PublicCoins,
    )
    batch = Engine().run_batch(spec, trials=100)
    print(
        f"fingerprint t=3 over {len(batch)} engine trials: empirical error "
        f"{batch.decisions().mean():.3f} (bound 2^-3 = 0.125); "
        f"{batch.cost_summary()}"
    )

    # --- connectivity ----------------------------------------------------
    upper = np.triu((rng.random((n, n)) < 0.12).astype(np.uint8), 1)
    adjacency = upper | upper.T
    conn = run_protocol(ConnectivityProtocol(n), adjacency, rng=rng)
    label, components = conn.outputs[0]
    print(
        f"connectivity: {components} components in {conn.cost.rounds} rounds "
        f"of BCAST({conn.cost.message_size})"
    )

    # --- triangles --------------------------------------------------------
    upper = np.triu((rng.random((n, n)) < 0.4).astype(np.uint8), 1)
    graph = upper | upper.T
    exact = run_protocol(FullExchangeTriangleProtocol(n), graph, rng=rng)
    sampled = run_protocol(
        SampledTriangleProtocol(n, t_probes=200),
        graph,
        rng=rng,
        public_coins=PublicCoins(np.random.default_rng(2)),
    )
    print(
        f"triangles: truth={count_triangles(graph)}, "
        f"full exchange={exact.outputs[0]} ({exact.cost.rounds} rounds of "
        f"BCAST({exact.cost.message_size})), "
        f"sampled~{sampled.outputs[0]:.0f} ({sampled.cost.rounds} rounds of "
        f"BCAST(1))"
    )


if __name__ == "__main__":
    main()
