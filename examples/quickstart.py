"""Quickstart: run protocols through the unified execution engine.

This walks the core objects of the library:

1. a :class:`Protocol` — what every processor does each round;
2. :class:`RunSpec` / :class:`Engine` — describe one execution (protocol,
   input source, scheduler, master seed) and run it, or run an N-trial
   batch whose trials are independently seeded and executor-agnostic;
3. the PRG of Theorem 1.3 — generate per-processor pseudo-random strings
   that no low-round protocol can tell from fresh coins.

(:func:`run_protocol` remains as a one-line wrapper over the engine for
single executions.)

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Engine, Protocol, RunSpec, run_protocol
from repro.distributions import UniformRows
from repro.linalg import BitMatrix
from repro.prg import MatrixPRGProtocol


class ParityPoll(Protocol):
    """Each round, every processor broadcasts the parity of its input row;
    everyone outputs the total number of odd rows they heard about."""

    def num_rounds(self, n: int) -> int:
        return 1

    def broadcast(self, proc, round_index: int) -> int:
        return int(proc.input.sum()) % 2

    def output(self, proc):
        return sum(e.message for e in proc.transcript)


def main() -> None:
    rng = np.random.default_rng(0)
    engine = Engine()  # SerialExecutor; Engine("parallel") uses all cores

    # --- 1/2: a tiny protocol over 8 processors with 16-bit inputs -----
    inputs = rng.integers(0, 2, size=(8, 16), dtype=np.uint8)
    result = engine.run(RunSpec(protocol=ParityPoll(), inputs=inputs, seed=0))
    print("ParityPoll outputs:", result.outputs)
    print("cost:", result.cost.summary())
    print()

    # --- 2b: the same protocol as a seeded 100-trial batch -------------
    # Trials sample fresh inputs and coins from spawned per-trial seeds,
    # so the BatchResult is bit-identical on every executor backend.
    spec = RunSpec(protocol=ParityPoll(), distribution=UniformRows(8, 16), seed=7)
    batch = engine.run_batch(spec, trials=100)
    odd_counts = np.array(batch.outputs_of(0))
    print(f"batch of {len(batch)} trials: {batch.cost_summary()}")
    print(f"mean odd-row count: {odd_counts.mean():.2f} (expect ~4)")
    print()

    # --- 3: the PRG of Theorem 1.3 ------------------------------------
    # 32 processors, 16-bit seeds, 64 pseudo-random bits each.
    prg = MatrixPRGProtocol(k=16, m=64)
    prg_result = run_protocol(
        prg, np.zeros((32, 1), dtype=np.uint8), rng=rng
    )
    print("PRG cost:", prg_result.cost.summary())
    joint = np.stack(prg_result.outputs)
    print("processor 0's pseudo-random bits:", "".join(map(str, joint[0])))

    # The structural fingerprint a >k-round attacker exploits — and a
    # <=k/10-round protocol provably cannot see (Theorem 5.4):
    print(
        f"joint output rank over GF(2): {BitMatrix.from_array(joint).rank()}"
        f"  (≤ k = 16 always; a uniform 32x64 matrix would have rank 32)"
    )


if __name__ == "__main__":
    main()
