"""Asynchronous, resumable, adaptive sweeps with ``repro.exec``.

The walkthrough the subsystem was built for, in four acts:

1. **submit the grid** — every point's batch goes through
   ``Engine.submit_batch`` up front and results stream back in
   completion order (``as_completed``), instead of blocking per point;
2. **resume from checkpoint** — the sweep journals completed points to a
   JSONL file; killing it halfway and re-running recomputes *nothing*
   already finished;
3. **adaptive stopping** — give a confidence-interval width target
   instead of a trial count: easy points stop early, hard points keep
   receiving top-up batches;
4. **priorities** — rank pending points (lower runs first) and bound the
   in-flight batches; adaptive top-ups cooperatively yield to unstarted
   points, and none of it changes a single value (scheduling is never
   seeding).

The workload is the paper's time-hierarchy protocol: how accurately does
a round-truncated ``TopSubmatrixRankProtocol`` compute F_k on uniform
inputs as its budget grows?  (The accuracy cliff at budget = k is the
Theorem 1.5 story; here it doubles as a sweep worth scaling.)

Run:  python examples/async_sweep.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import Engine, RunSpec
from repro.distributions import UniformRows
from repro.exec import SweepDriver, WorkerPool, as_completed, load_journal
from repro.lowerbounds import TopSubmatrixRankProtocol

N = 10
K = 8
BUDGETS = [0, 2, 4, 6, 8]


def budget_spec(budget):
    """One grid point: accuracy trials for a round-truncated protocol."""
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(K, rounds_budget=budget),
        distribution=UniformRows(N, N),
        seed=0,  # the driver replaces this with per-(point, batch) seeds
        record_inputs=True,
        vectorized=True,
    )


def accuracy_values(batch):
    """Per-trial correctness of processor 0 against the true F_k."""
    from repro.linalg import BitMatrixBatch

    decisions = np.fromiter(
        (int(trial.outputs[0]) for trial in batch), dtype=np.int64, count=len(batch)
    )
    blocks = np.stack([trial.inputs[:K, :K] for trial in batch])
    targets = (BitMatrixBatch.from_arrays(blocks).rank() == K).astype(np.int64)
    return (decisions == targets).astype(np.float64)


def act_one_submit_the_grid() -> None:
    print("=== 1. submit the whole grid, consume in completion order ===")
    with Engine() as engine:
        futures = {
            engine.submit_batch(budget_spec(budget), 64): budget
            for budget in BUDGETS
        }
        for future in as_completed(futures):
            budget = futures[future]
            accuracy = accuracy_values(future.result()).mean()
            print(f"  budget={budget}: accuracy {accuracy:.3f}  (64 trials)")


def act_two_resume_from_checkpoint(journal_path: Path) -> None:
    print("\n=== 2. interrupt after two points, then resume ===")
    grid = [{"budget": budget} for budget in BUDGETS]

    def driver():
        return SweepDriver(
            budget_spec,
            trials=64,
            trial_values=accuracy_values,
            checkpoint=journal_path,
            seed=7,
        )

    driver().run(grid[:2])  # "the overnight run died here"
    print(f"  journal after interruption: {len(load_journal(journal_path))} points")
    result = driver().run(grid)  # resumes: only 3 points computed
    print(f"  journal after resume:       {len(load_journal(journal_path))} points")
    for point in result.points:
        print(f"  budget={point['budget']}: accuracy {point['mean']:.3f}")
    print("  (re-running again would compute zero points — try it)")


def act_three_adaptive_stopping() -> None:
    print("\n=== 3. adaptive: stop when the 95% CI is 0.15 wide ===")
    with WorkerPool(max_workers=2) as pool:
        driver = SweepDriver(
            budget_spec,
            executor=pool,          # warm workers shared by all batches
            trials=32,
            ci_width=0.15,
            max_trials=512,
            trial_values=accuracy_values,
            seed=7,
        )
        result = driver.run([{"budget": budget} for budget in BUDGETS])
    for point in result.points:
        print(
            f"  budget={point['budget']}: accuracy {point['mean']:.3f} "
            f"in [{point['ci_lower']:.3f}, {point['ci_upper']:.3f}] "
            f"after {point['trials']:.0f} trials ({point['batches']:.0f} batches)"
        )
    print("  the certain point (budget = k: rank computed exactly) stops after one")
    print("  batch; uncertain truncated budgets keep drawing top-up batches.")


def act_four_priorities() -> None:
    print("\n=== 4. priorities: pick the execution order, keep the values ===")
    order = []

    def tracking_spec(budget):
        order.append(budget)
        return budget_spec(budget)

    driver = SweepDriver(
        tracking_spec,
        trials=32,
        seed=7,
        trial_values=accuracy_values,
        priority=lambda params: -params["budget"],  # biggest budget first
        max_inflight=1,  # one batch in flight: the order is the schedule
    )
    result = driver.run([{"budget": budget} for budget in BUDGETS])
    print(f"  execution order under priority=-budget: {order}")
    print(f"  result order is still grid order: "
          f"{[point['budget'] for point in result.points]}")
    print("  and every value matches the default-order sweep bit for bit —")
    print("  batch seeds are a pure function of (grid point, batch), never")
    print("  of scheduling.  (With ci_width set, adaptive top-up batches")
    print("  additionally yield to points that have not started yet.)")


def main() -> None:
    act_one_submit_the_grid()
    with tempfile.TemporaryDirectory() as tmp:
        act_two_resume_from_checkpoint(Path(tmp) / "sweep.jsonl")
    act_three_adaptive_stopping()
    act_four_priorities()


if __name__ == "__main__":
    main()
