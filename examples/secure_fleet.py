"""Secure fleet walkthrough: TLS + shared-secret workers, end to end.

This is the deployment shape ``docs/robustness.md`` describes — and the
CI smoke step that keeps it honest.  It exercises the *real* operator
surface, not test shortcuts:

1. mint a throwaway self-signed certificate for ``127.0.0.1`` with the
   ``openssl`` CLI (skipped, with a loud note, where openssl is absent:
   the shared-secret handshake still runs — TLS is the optional layer,
   authentication is not);
2. write the shared secret to a file and start a **subprocess** worker
   via ``python -m repro.exec.worker --secret-file ... --tls-cert ...``,
   parsing the stdout announce line for the OS-assigned port;
3. point a :class:`~repro.exec.DistributedExecutor` at it (same secret,
   a client SSL context pinned to the minted certificate) and run an
   engine batch whose inputs travel as one MAC'd, gf2pack-compressed
   ``publish_inputs`` frame;
4. verify the batch is bit-identical to
   :class:`~repro.core.engine.SerialExecutor` and that a client holding
   the *wrong* secret is rejected at the handshake.

Run it:

    PYTHONPATH=src python examples/secure_fleet.py
"""

import shutil
import ssl
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import Engine, RunSpec, SerialExecutor
from repro.exec import DistributedExecutor
from repro.lowerbounds import TopSubmatrixRankProtocol

SECRET = b"example-fleet-secret"
TRIALS = 8


def mint_certificate(workdir: Path) -> "tuple[Path, Path] | None":
    """A self-signed cert/key pair for 127.0.0.1, or None without openssl."""
    if shutil.which("openssl") is None:
        return None
    cert, key = workdir / "cert.pem", workdir / "key.pem"
    subprocess.run(
        [
            "openssl", "req", "-x509", "-newkey", "rsa:2048",
            "-keyout", str(key), "-out", str(cert),
            "-days", "1", "-nodes", "-subj", "/CN=127.0.0.1",
            "-addext", "subjectAltName=IP:127.0.0.1",
        ],
        check=True,
        capture_output=True,
    )
    return cert, key


def start_worker(workdir: Path, cert_pair) -> "tuple[subprocess.Popen, str]":
    """Launch the CLI worker; return (process, endpoint)."""
    secret_file = workdir / "secret"
    secret_file.write_bytes(SECRET + b"\n")
    argv = [
        sys.executable, "-m", "repro.exec.worker",
        "--port", "0",
        "--secret-file", str(secret_file),
    ]
    if cert_pair is not None:
        cert, key = cert_pair
        argv += ["--tls-cert", str(cert), "--tls-key", str(key)]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )
    banner = proc.stdout.readline().strip()  # the readiness signal
    endpoint = banner.rpartition(" ")[2]
    return proc, endpoint


def client_tls_context(cert_pair) -> "ssl.SSLContext | None":
    if cert_pair is None:
        return None
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.load_verify_locations(str(cert_pair[0]))
    return context


def batch_spec() -> RunSpec:
    rng = np.random.default_rng(3)
    inputs = rng.integers(0, 2, size=(32, 32), dtype=np.uint8)
    return RunSpec(protocol=TopSubmatrixRankProtocol(4), inputs=inputs, seed=11)


def main() -> None:
    golden = Engine(SerialExecutor()).run_batch(batch_spec(), TRIALS)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        cert_pair = mint_certificate(workdir)
        if cert_pair is None:
            print("openssl unavailable: running secret-auth only, no TLS")
        proc, endpoint = start_worker(workdir, cert_pair)
        try:
            with DistributedExecutor(
                [endpoint],
                secret=SECRET,
                ssl_context=client_tls_context(cert_pair),
                share_inputs_min_bytes=1,
                local_fallback=False,
            ) as executor:
                batch = Engine(executor).run_batch(batch_spec(), TRIALS)
                published = executor.publish_bytes_sent
            assert batch.outputs == golden.outputs, "fleet diverged from serial"
            print(
                f"authenticated batch of {TRIALS} trials bit-identical to "
                f"serial; inputs published as {published} MAC'd bytes "
                f"({'TLS on' if cert_pair else 'TLS off'})"
            )

            # The negative half: a wrong secret must fail closed.
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # the degradation warning
                with DistributedExecutor(
                    [endpoint],
                    secret=b"not-the-secret",
                    ssl_context=client_tls_context(cert_pair),
                    local_fallback=True,
                ) as intruder:
                    Engine(intruder).run_batch(batch_spec(), TRIALS)
                    rejected = intruder.telemetry.total("auth")
            assert rejected >= 1, "wrong secret was not rejected"
            print(f"wrong-secret client rejected at the handshake ({rejected} auth failures recorded)")
        finally:
            proc.terminate()
            proc.wait(timeout=10)
    print("secure fleet smoke: OK")


if __name__ == "__main__":
    main()
