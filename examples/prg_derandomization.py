"""Saving random bits with the PRG (Theorem 1.3 + Corollary 7.1).

A randomized protocol that consumes one fresh coin per round per processor
is compiled so that every processor flips only O(k) true coins, with the
remaining randomness drawn from the PRG — and we verify the compiled
protocol's outputs are statistically indistinguishable from the original's.

Then we flip sides and *break* the PRG with the Theorem 8.1 attack,
showing the seed length is optimal: the same structure that is invisible
below k/10 rounds is a certificate at k+1 rounds.

Run:  python examples/prg_derandomization.py
"""

import numpy as np

from repro.core import Protocol, run_protocol
from repro.distributions import PRGOutput, UniformRows
from repro.prg import (
    DerandomizedProtocol,
    SupportMembershipAttack,
    matrix_prg_rounds,
)


class NoisyVote(Protocol):
    """Each of 6 rounds every processor broadcasts input-bit XOR coin;
    output = majority of all broadcasts heard."""

    ROUNDS = 6

    def num_rounds(self, n: int) -> int:
        return self.ROUNDS

    def broadcast(self, proc, round_index: int) -> int:
        bit = int(proc.input[round_index % proc.input.shape[0]])
        return (bit + proc.coins.draw_bit()) % 2

    def output(self, proc) -> int:
        total = sum(e.message for e in proc.transcript)
        return int(2 * total >= proc.transcript.n_turns)


def main() -> None:
    n, k = 32, 12
    inputs = UniformRows(n, NoisyVote.ROUNDS).sample(np.random.default_rng(1))
    trials = 200

    # --- original: R = 6 true coins per processor ----------------------
    ones = sum(
        run_protocol(
            NoisyVote(), inputs, rng=np.random.default_rng(s)
        ).outputs[0]
        for s in range(trials)
    )
    print(f"original protocol:  P[output=1] ~ {ones / trials:.3f}, "
          f"{NoisyVote.ROUNDS} true coins/processor")

    # --- compiled: k + ⌈kR/n⌉ true coins per processor ------------------
    max_coins = 0
    compiled_ones = 0
    for s in range(trials):
        wrapped = DerandomizedProtocol(
            NoisyVote(), k=k, random_bits=NoisyVote.ROUNDS
        )
        result = run_protocol(
            wrapped, inputs, rng=np.random.default_rng(10_000 + s)
        )
        compiled_ones += result.outputs[0]
        max_coins = max(
            max_coins, max(wrapped.true_coins_used(p) for p in result.contexts)
        )
    extra_rounds = matrix_prg_rounds(n, k, k + NoisyVote.ROUNDS)
    print(
        f"compiled protocol:  P[output=1] ~ {compiled_ones / trials:.3f}, "
        f"{max_coins} true coins/processor, +{extra_rounds} PRG rounds"
    )
    print(f"output drift: {abs(ones - compiled_ones) / trials:.3f} "
          f"(Theorem 5.4 bounds it by O(j*n/2^(k/9)) + sampling noise)")
    print()

    # --- the attack: the PRG is breakable at k+1 rounds -----------------
    rng = np.random.default_rng(2)
    attack = SupportMembershipAttack(k=8)
    prg_inputs = PRGOutput(n, m=16, k=8).sample(rng)
    uniform_inputs = UniformRows(n, 16).sample(rng)
    verdict_prg = run_protocol(attack, prg_inputs, rng=rng).outputs[0]
    verdict_uni = run_protocol(attack, uniform_inputs, rng=rng).outputs[0]
    print(
        f"Theorem 8.1 attack ({attack.num_rounds(n)} rounds): "
        f"says PRG input {'IS' if verdict_prg else 'is NOT'} pseudo-random, "
        f"uniform input {'IS' if verdict_uni else 'is NOT'} pseudo-random"
    )


if __name__ == "__main__":
    main()
