"""Ablation — exact enumeration vs Monte-Carlo distance estimation.

DESIGN.md §6: the exact DP engine is used where the input space is
enumerable, Monte-Carlo elsewhere; this bench cross-validates the two on
overlapping sizes and reports the plug-in estimator's bias — the reason
exact numbers are preferred in E-T1.6/E-T5.1.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import FunctionProtocol, ParallelExecutor
from repro.distinguish import (
    ProtocolSpec,
    estimate_transcript_distance,
    exact_transcript_pmf,
    transcript_distance,
)
from repro.distributions import PlantedClique, RandomDigraph

N = 6
K = 3
THRESHOLD = (N - 1) / 2 + 0.5

# Sampling runs through the execution engine on a process pool (a no-op
# on 1-core hosts, where the pool runs in-process).  The next-message
# functions live at module level so the protocol pickles into pool workers.
EXECUTOR = ParallelExecutor()

def _vector_fn(i, rows, p):
    return (rows.sum(axis=1) >= THRESHOLD).astype(np.int64)

def _row_fn(i, row, p):
    return int(row.sum() >= THRESHOLD)

def specs():
    spec = ProtocolSpec(N, 1, _vector_fn, sees_current_round=False)
    protocol = FunctionProtocol(1, _row_fn)
    return spec, protocol

def compute_table():
    spec, protocol = specs()
    mixture = PlantedClique(N, K)
    reference = RandomDigraph(N)
    mixture_pmf: dict = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            mixture_pmf[key] = mixture_pmf.get(key, 0.0) + w * p
    exact = transcript_distance(
        exact_transcript_pmf(spec, reference), mixture_pmf
    )
    rows = []
    rng = np.random.default_rng(99)
    for samples in (100, 400, 1600, 6400):
        ci = estimate_transcript_distance(
            protocol, reference, mixture, samples, rng, executor=EXECUTOR
        )
        rows.append([samples, ci.estimate, exact, ci.estimate - exact])
    return rows

def test_exact_vs_sampling(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"Ablation: plug-in TV estimate vs exact, n={N}, k={K}",
        ["samples", "plug-in estimate", "exact", "bias"],
        rows,
    )
    # Plug-in bias is positive and shrinks with sample count.
    biases = [row[3] for row in rows]
    assert biases[0] > -0.02
    assert abs(biases[-1]) < abs(biases[0]) + 0.02
    assert abs(biases[-1]) < 0.1
