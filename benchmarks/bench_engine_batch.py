"""E-ENG — the unified execution engine: batch throughput and determinism.

Two claims about ``Engine.run_batch`` (`repro.core.engine`):

1. **determinism** — for the same master seed, ``SerialExecutor`` and
   ``ParallelExecutor`` produce bit-identical ``BatchResult``s (outputs,
   transcript keys, cost totals), and the two-sided
   ``estimate_protocol_advantage`` estimator built on top returns the
   exact same estimate either way;
2. **throughput** — on a multi-core host the parallel backend turns the
   200-trial advantage-estimation workload from single-threaded into
   embarrassingly parallel; on a 4-core runner the wall-clock speedup is
   ≥ 2×.  (On fewer cores we still print the table but only assert the
   determinism half.)

The workload is the paper's separating function: a
``TopSubmatrixRankProtocol`` distinguishing uniform matrices from
rank-deficient ones — every object involved is picklable, which is what
lets the process pool run it.
"""

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import Engine, ParallelExecutor, RunSpec, SerialExecutor
from repro.distinguish import estimate_protocol_advantage
from repro.distributions import RankDeficientMatrix, UniformRows
from repro.lowerbounds import TopSubmatrixRankProtocol

N = 16
K = 16  # full-matrix rank: rank-deficient inputs are never accepted
TRIALS = 200


def workload(executor):
    """The 200-trial advantage estimation the redesign targets."""
    rng = np.random.default_rng(1905)
    return estimate_protocol_advantage(
        TopSubmatrixRankProtocol(K),
        UniformRows(N, N),
        RankDeficientMatrix(N),
        TRIALS,
        rng,
        executor=executor,
    )


def _best_of_two(executor):
    """Best-of-2 wall clock to damp noisy-neighbor jitter on CI runners."""
    times = []
    for _ in range(2):
        t0 = time.perf_counter()
        est = workload(executor)
        times.append(time.perf_counter() - t0)
    return est, min(times)


def compute_table():
    cores = os.cpu_count() or 1
    rows = []

    est_serial, serial_s = _best_of_two(SerialExecutor())
    est_parallel, parallel_s = _best_of_two(ParallelExecutor())
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    rows.append(["serial", serial_s, 1.0, est_serial.advantage])
    rows.append([f"parallel ({cores} cores)", parallel_s, speedup, est_parallel.advantage])

    # Bit-level determinism on the raw batch API.
    spec = RunSpec(
        protocol=TopSubmatrixRankProtocol(K),
        distribution=UniformRows(N, N),
        seed=7,
    )
    batch_serial = Engine(SerialExecutor()).run_batch(spec, 64)
    batch_parallel = Engine(ParallelExecutor()).run_batch(spec, 64)
    identical = (
        batch_serial.outputs == batch_parallel.outputs
        and batch_serial.transcript_keys == batch_parallel.transcript_keys
        and batch_serial.cost_totals() == batch_parallel.cost_totals()
    )
    return rows, est_serial, est_parallel, identical, speedup, cores


def test_engine_batch(benchmark):
    rows, est_serial, est_parallel, identical, speedup, cores = benchmark.pedantic(
        compute_table, rounds=1, iterations=1
    )
    print_table(
        f"E-ENG: {TRIALS}-trial advantage estimation, n={N}, k={K}",
        ["executor", "wall-clock s", "speedup", "advantage"],
        rows,
    )
    # Determinism: same master seed => identical results on both backends.
    assert identical
    assert est_serial.advantage == est_parallel.advantage
    assert est_serial.interval.lower == est_parallel.interval.lower
    # The rank protocol separates uniform (accept rate ~= 0.2888, the
    # infinite Q_0 limit) from rank-deficient inputs (accept rate 0), so
    # the measured advantage sits near 0.144.
    assert 0.05 < est_serial.advantage < 0.25
    # Throughput: on a >= 4-core host the pool must at least halve the
    # wall-clock; fewer cores can't express the claim, so skip it there.
    if cores >= 4:
        assert speedup >= 2.0, f"expected >=2x speedup on {cores} cores, got {speedup:.2f}x"
