"""E-TA.1 — the Newman analogue: public-coin compression.

Table: simulation error of the compiled protocol versus family size ``T``,
together with the public-coin count ``⌈log₂T⌉`` — the trade the theorem
formalises (error ``~ 1/√T`` for ``log T`` coins).  Also the comparison
the paper draws: Newman is existential/inefficient, the PRG constructive —
we report the wall-clock of compiling each.

Shape checks: error decreases in T; public bits grow logarithmically.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import ParallelExecutor, Protocol
from repro.prg import NewmanCompiled, newman_public_bits, simulation_error

# Both the fresh-randomness and compiled sample sets run through the
# execution engine on a process pool (in-process on 1-core hosts).
EXECUTOR = ParallelExecutor()

class ParityNoisePayload(Protocol):
    """Two rounds of input-parity-plus-coin broadcasts."""

    def num_rounds(self, n):
        return 2

    def broadcast(self, proc, round_index):
        return (int(proc.input.sum()) + proc.coins.draw_bit()) % 2

    def output(self, proc):
        return sum(e.message for e in proc.transcript) % 2

def compute_table():
    protocol = ParityNoisePayload()
    inputs = np.ones((2, 3), dtype=np.uint8)  # 4-bit transcript space
    rows = []
    for t in (2, 8, 64, 512):
        compiled = NewmanCompiled(protocol, t_family=t, master_seed=9)
        error = simulation_error(
            protocol,
            compiled,
            inputs,
            n_samples=2500,
            rng=np.random.default_rng(100 + t),
            executor=EXECUTOR,
        )
        rows.append([t, newman_public_bits(t), error, (1 / t) ** 0.5])
    return rows

def test_theorem_a_1(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        "E-TA.1: Newman compilation, 2 processors, 4-bit transcripts",
        ["family T", "public bits", "sim error (plug-in TV)", "~1/sqrt(T)"],
        rows,
    )
    errors = [row[2] for row in rows]
    # Error shrinks as the family grows (up to plug-in noise ~0.04).
    assert errors[-1] <= errors[0]
    assert errors[-1] < 0.15
    # Public-coin count is logarithmic.
    assert [row[1] for row in rows] == [1, 3, 6, 9]
