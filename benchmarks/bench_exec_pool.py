"""E-EXEC — warm worker pools vs per-batch pool start-up.

The claim behind ``repro.exec.WorkerPool``: a sweep or estimator that
issues **many small batches** is dominated by process-pool start-up when
every ``run_batch`` builds its own ``ProcessPoolExecutor`` (the
:class:`~repro.core.engine.ParallelExecutor` behaviour, which is the
right trade-off only for one big batch).  Keeping the workers warm
amortizes start-up across the whole batch sequence, so the same workload
must get faster — and stay *bit-identical*, because per-trial seeding
never depends on the backend.

Running this file as a script (the CI smoke step) measures a sequence of
``BATCHES`` small ``run_batch`` calls on three backends — serial, cold
``ParallelExecutor`` (fresh pool per batch), warm ``WorkerPool`` (one
pool for the sequence) — asserts the warm pool beats the cold pool by
``MIN_SPEEDUP``×, and writes the medians to ``BENCH_exec.json`` in the
repo root (uploaded as a CI artifact).  Both pool backends are pinned to
``WORKERS`` processes so the comparison isolates start-up amortization
from host core count.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table, write_bench_json

from repro.core import Engine, ParallelExecutor, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import WorkerPool
from repro.lowerbounds import TopSubmatrixRankProtocol
from repro.obs import Tracer, validate_chrome_trace

N = 8
K = 8
TRIALS = 4          # deliberately small: start-up must dominate compute
BATCHES = 20        # the sweep shape: many small batches back to back
WORKERS = 2         # pinned so 1-core CI runners still build real pools
MIN_SPEEDUP = 1.2   # warm reuse must at least beat cold start-up by 20%
REPEATS = 3         # best-of-N wall clocks to damp scheduler jitter

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_exec.json"
TRACE_JSON = Path(__file__).resolve().parent.parent / "BENCH_exec_trace.json"


def spec(batch_index: int) -> RunSpec:
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(K),
        distribution=UniformRows(N, N),
        seed=batch_index,
    )


def run_sequence(engine: Engine) -> list[list[list[int]]]:
    """The workload: BATCHES successive small batches on one engine."""
    return [engine.run_batch(spec(b), TRIALS).outputs for b in range(BATCHES)]


def best_of(make_engine) -> tuple[list, float]:
    """Best-of-REPEATS wall clock for the whole batch sequence."""
    outputs, best = None, float("inf")
    for _ in range(REPEATS):
        engine, finalize = make_engine()
        start = time.perf_counter()
        outputs = run_sequence(engine)
        elapsed = time.perf_counter() - start
        if finalize is not None:
            finalize()
        best = min(best, elapsed)
    return outputs, best


def measure() -> tuple[list[list], list[dict], float, bool]:
    serial_out, serial_s = best_of(lambda: (Engine(SerialExecutor()), None))
    # Cold: ParallelExecutor builds (and tears down) a fresh process pool
    # inside every run_batch call.
    cold_out, cold_s = best_of(
        lambda: (Engine(ParallelExecutor(max_workers=WORKERS)), None)
    )

    # Warm: one WorkerPool for the whole sequence; start-up paid once.
    def make_warm():
        pool = WorkerPool(max_workers=WORKERS)
        return Engine(pool), pool.close

    warm_out, warm_s = best_of(make_warm)

    identical = serial_out == cold_out == warm_out
    speedup_vs_cold = cold_s / warm_s if warm_s else float("inf")
    rows = [
        ["serial", serial_s, serial_s / warm_s if warm_s else float("inf")],
        [f"cold ParallelExecutor ({WORKERS} workers/batch)", cold_s, speedup_vs_cold],
        [f"warm WorkerPool ({WORKERS} workers)", warm_s, 1.0],
    ]
    records = [
        {
            "bench": "exec_pool",
            "backend": name,
            "batches": BATCHES,
            "trials_per_batch": TRIALS,
            "n": N,
            "workers": WORKERS,
            "wall_s": wall,
        }
        for name, wall in [
            ("serial", serial_s),
            ("parallel_cold", cold_s),
            ("worker_pool_warm", warm_s),
        ]
    ]
    records.append(
        {
            "bench": "exec_pool",
            "metric": "warm_speedup_vs_cold",
            "min_required": MIN_SPEEDUP,
            "speedup": speedup_vs_cold,
        }
    )
    return rows, records, speedup_vs_cold, identical


def trace_smoke() -> dict:
    """Run one traced warm-pool batch and export a validated Chrome trace.

    The CI smoke step: tracing is opt-in (the timed comparison above runs
    with the no-op tracer), but when a :class:`~repro.obs.Tracer` is
    attached the engine/pool spans must export as schema-valid Chrome
    trace-event JSON that Perfetto can load.
    """
    tracer = Tracer()
    pool = WorkerPool(max_workers=WORKERS, tracer=tracer)
    try:
        Engine(pool, tracer=tracer).run_batch(spec(0), TRIALS)
    finally:
        pool.close()
    payload = tracer.to_chrome()
    problems = validate_chrome_trace(payload)
    assert not problems, f"Chrome trace schema violations: {problems}"
    names = {e["name"] for e in payload["traceEvents"]}
    assert "run_batch" in names, "traced batch produced no run_batch span"
    tracer.dump_chrome(TRACE_JSON)
    return payload


def main() -> None:
    rows, records, speedup, identical = measure()
    print_table(
        f"E-EXEC: {BATCHES} batches x {TRIALS} trials, n={N}, k={K}",
        ["backend", "wall-clock s", "x vs warm pool"],
        rows,
    )
    write_bench_json(BENCH_JSON, records)
    print(f"wrote {BENCH_JSON.name}")
    # Determinism first: all three backends must agree bit-for-bit.
    assert identical, "backends disagreed on batch outputs"
    assert speedup >= MIN_SPEEDUP, (
        f"warm pool speedup {speedup:.2f}x vs cold start-up is below the "
        f"{MIN_SPEEDUP}x bar"
    )
    print(
        f"warm-pool reuse beats cold pool start-up: {speedup:.2f}x "
        f"(bar {MIN_SPEEDUP}x), outputs bit-identical"
    )
    payload = trace_smoke()
    print(
        f"trace-export smoke: {len(payload['traceEvents'])} Chrome trace "
        f"events, schema valid, wrote {TRACE_JSON.name}"
    )


def test_warm_pool_beats_cold_startup():
    """Pytest entry point mirroring the script assertion."""
    _rows, _records, speedup, identical = measure()
    assert identical
    assert speedup >= MIN_SPEEDUP


def test_trace_export_schema():
    """Pytest entry point mirroring the trace-export smoke step."""
    payload = trace_smoke()
    assert payload["traceEvents"]


if __name__ == "__main__":
    main()
