"""E-WIRE — publish compression and steal-aware chunk sizing on the wire.

Two claims behind the v2 wire protocol, measured end to end:

1. **Published inputs compress.**  The repo's dominant payload is a
   GF(2) matrix — ``uint8`` cells that are all 0/1 — and the negotiated
   ``gf2pack`` codec bit-packs it to exactly one-eighth of the raw
   C-order bytes.  This bench publishes a real input matrix through a
   real authenticated session (LoopbackWorker fleet, MACs and all) and
   reads the executor's ``exec_publish_bytes_total`` counter: the
   on-wire byte count must equal ``workers × nbytes / 8``, and the
   codec-level gf2pack/raw ratio must be exactly 8×.  Both assertions
   are deterministic — compression is arithmetic, not luck.

2. **Steal-aware chunk sizing.**  With ``scheduling="steal"`` the
   executor now auto-sizes chunks with an 8×lanes divisor (finer grain)
   instead of the fixed 4×lanes it uses for static placement, so a
   straggler's in-flight chunk strands fewer items.  On a skewed
   two-worker fleet this bench measures ``executor.map`` throughput
   under the steal-aware automatic size vs the old fixed size.  Wall
   clocks are recorded to ``BENCH_wire.json``; the assertion is a
   no-catastrophic-regression bar (the finer grain must keep at least
   ``MIN_RELATIVE``× of the fixed-size throughput) because the win
   itself is workload-shaped, while the artifact tracks the trajectory.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table, write_bench_json

from repro.core import Engine, RunSpec, SerialExecutor
from repro.exec import DistributedExecutor, LoopbackWorker
from repro.exec.wire import encode_array_payload, register_wire_function
from repro.lowerbounds import TopSubmatrixRankProtocol

MATRIX_N = 64        # published GF(2) input matrix is MATRIX_N x MATRIX_N
PUBLISH_WORKERS = 2  # each worker receives the publish once
TRIALS = 12

ITEMS = 64           # map items for the chunk-sizing comparison
ITEM_SLEEP = 0.002   # per-item work: makes chunk cost proportional to size
SLOW_DELAY = 0.03    # straggler's per-frame latency
REPEATS = 3          # best-of-N wall clocks to damp scheduler jitter
MIN_RELATIVE = 0.5   # steal-aware sizing must keep >= 50% of fixed throughput

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_wire.json"


@register_wire_function
def _busy_item(x):
    """The map workload: fixed per-item cost, trivially checkable."""
    time.sleep(ITEM_SLEEP)
    return x * x


def publish_spec() -> RunSpec:
    rng = np.random.default_rng(5)
    inputs = rng.integers(0, 2, size=(MATRIX_N, MATRIX_N), dtype=np.uint8)
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5), inputs=inputs, seed=7
    )


def measure_publish() -> tuple[list[list], list[dict]]:
    """On-wire publish bytes (gf2pack) vs the raw-codec baseline."""
    spec = publish_spec()
    raw_bytes = spec.inputs.nbytes
    codec, packed = encode_array_payload(spec.inputs)
    _, raw = encode_array_payload(spec.inputs, ("raw",))
    assert codec == "gf2pack"
    assert len(raw) == raw_bytes

    golden = Engine(SerialExecutor()).run_batch(spec, TRIALS)
    workers = [LoopbackWorker() for _ in range(PUBLISH_WORKERS)]
    try:
        with DistributedExecutor(
            [w.endpoint for w in workers],
            chunksize=3,
            share_inputs_min_bytes=1,
        ) as executor:
            batch = Engine(executor).run_batch(spec, TRIALS)
            wire_bytes = executor.publish_bytes_sent
            frames = executor.publish_frames_sent
    finally:
        for worker in workers:
            worker.stop()
    assert batch.outputs == golden.outputs, "publish path broke determinism"
    assert frames == PUBLISH_WORKERS, frames
    assert wire_bytes == PUBLISH_WORKERS * len(packed), wire_bytes
    assert len(raw) == 8 * len(packed), "gf2pack must be exactly 8x"

    rows = [
        ["raw C-order bytes (per worker)", raw_bytes, 1.0],
        ["gf2pack on the wire (per worker)", len(packed), raw_bytes / len(packed)],
    ]
    records = [
        {
            "bench": "wire_publish",
            "matrix": f"{MATRIX_N}x{MATRIX_N} GF(2)",
            "workers": PUBLISH_WORKERS,
            "codec": "gf2pack",
            "raw_bytes_per_worker": raw_bytes,
            "wire_bytes_per_worker": len(packed),
            "wire_bytes_total": wire_bytes,
            "publish_frames": frames,
            "compression": raw_bytes / len(packed),
        }
    ]
    return rows, records


def measure_map(chunksize: "int | None") -> tuple[list, float]:
    """Best-of-REPEATS wall clock for one skewed-fleet map."""
    result, best = None, float("inf")
    for _ in range(REPEATS):
        fast = LoopbackWorker()
        slow = LoopbackWorker(request_delay=SLOW_DELAY)
        try:
            with DistributedExecutor(
                [fast.endpoint, slow.endpoint],
                chunksize=chunksize,
                scheduling="steal",
            ) as executor:
                start = time.perf_counter()
                result = executor.map(_busy_item, list(range(ITEMS)))
                best = min(best, time.perf_counter() - start)
        finally:
            fast.stop()
            slow.stop()
    return result, best


def measure_chunksizing() -> tuple[list[list], list[dict], float]:
    """Steal-aware automatic sizing vs the old fixed 4x-lanes grain."""
    lanes = 2
    fixed = max(1, -(-ITEMS // (4 * lanes)))  # the pre-steal-aware default
    expected = [x * x for x in range(ITEMS)]

    auto_result, auto_s = measure_map(None)      # steal-aware: 8x lanes
    fixed_result, fixed_s = measure_map(fixed)
    assert auto_result == fixed_result == expected

    relative = fixed_s / auto_s if auto_s else float("inf")
    rows = [
        [f"fixed grain (chunks of {fixed})", fixed_s, ITEMS / fixed_s, 1.0],
        ["steal-aware grain (auto)", auto_s, ITEMS / auto_s, relative],
    ]
    records = [
        {
            "bench": "wire_chunksizing",
            "sizing": name,
            "items": ITEMS,
            "item_sleep_s": ITEM_SLEEP,
            "slow_delay_s": SLOW_DELAY,
            "wall_s": wall,
            "items_per_s": ITEMS / wall,
        }
        for name, wall in [("fixed", fixed_s), ("steal_aware", auto_s)]
    ]
    records.append(
        {
            "bench": "wire_chunksizing",
            "metric": "steal_aware_throughput_vs_fixed",
            "min_required": MIN_RELATIVE,
            "relative": relative,
        }
    )
    return rows, records, relative


def main() -> None:
    publish_rows, publish_records = measure_publish()
    print_table(
        f"E-WIRE publish: {MATRIX_N}x{MATRIX_N} GF(2) input, "
        f"{PUBLISH_WORKERS}-worker fleet, authenticated session",
        ["payload", "bytes", "x vs raw"],
        publish_rows,
    )
    chunk_rows, chunk_records, relative = measure_chunksizing()
    print_table(
        f"E-WIRE chunk sizing: {ITEMS} items, skewed 2-worker fleet",
        ["sizing", "wall-clock s", "items/s", "x vs fixed"],
        chunk_rows,
    )
    write_bench_json(BENCH_JSON, publish_records + chunk_records)
    print(f"wrote {BENCH_JSON.name}")
    assert relative >= MIN_RELATIVE, (
        f"steal-aware chunk sizing kept only {relative:.2f}x of fixed-size "
        f"throughput (bar {MIN_RELATIVE}x)"
    )
    print(
        f"gf2pack publishes 8.00x smaller on the wire; steal-aware sizing "
        f"at {relative:.2f}x the fixed-grain throughput (bar {MIN_RELATIVE}x)"
    )


def test_publish_compression_is_exact():
    """Pytest entry point: the deterministic compression claim."""
    _rows, records = measure_publish()
    assert records[0]["compression"] == 8.0


def test_steal_aware_sizing_has_no_catastrophic_regression():
    _rows, _records, relative = measure_chunksizing()
    assert relative >= MIN_RELATIVE


if __name__ == "__main__":
    main()
