"""Shared helpers for the benchmark/experiment harness.

Every bench prints a "paper vs measured" table via :func:`print_table` so
that ``pytest benchmarks/ --benchmark-only -s`` regenerates the rows
recorded in EXPERIMENTS.md, and asserts the qualitative *shape* claims so
the harness is self-verifying.
"""

from __future__ import annotations

__all__ = ["print_table", "fit_constant"]


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned experiment table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e4:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def fit_constant(measured: list[float], predicted: list[float]) -> float:
    """Least-squares constant c minimising ||measured - c*predicted||."""
    num = sum(m * p for m, p in zip(measured, predicted))
    den = sum(p * p for p in predicted)
    return num / den if den else 0.0
