"""Shared helpers for the benchmark/experiment harness.

Every bench prints a "paper vs measured" table via :func:`print_table` so
that ``pytest benchmarks/ --benchmark-only -s`` regenerates the rows
recorded in EXPERIMENTS.md, and asserts the qualitative *shape* claims so
the harness is self-verifying.

Benches that track a performance trajectory additionally emit
machine-readable JSON via :func:`median_ns` + :func:`write_bench_json`
(e.g. ``BENCH_linalg.json``), which CI uploads as an artifact so kernel
regressions show up as numbers, not vibes.
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

__all__ = ["print_table", "fit_constant", "median_ns", "write_bench_json", "provenance"]


def median_ns(fn, *args, repeats: int = 5, number: int = 1) -> float:
    """Median wall-clock nanoseconds per call of ``fn(*args)``.

    Runs ``repeats`` timed samples of ``number`` back-to-back calls each
    (use ``number > 1`` for sub-microsecond kernels) and returns the median
    sample divided by ``number``.
    """
    if repeats < 1 or number < 1:
        raise ValueError("repeats and number must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for _ in range(number):
            fn(*args)
        samples.append((time.perf_counter_ns() - start) / number)
    samples.sort()
    return samples[len(samples) // 2]


def provenance() -> dict:
    """Environment provenance for a benchmark artifact.

    Git sha (``"unknown"`` outside a checkout), UTC ISO-8601 timestamp,
    and interpreter/numpy versions — enough to tell two BENCH_*.json
    artifacts apart when comparing trajectories across machines or
    commits.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def write_bench_json(path, records: list[dict]) -> None:
    """Write benchmark records as a machine-readable JSON artifact.

    ``records`` is a list of flat dicts (kernel name, shape parameters,
    ``ns_per_op`` medians, speedups…); the envelope carries a schema tag so
    downstream tooling can evolve without guessing, plus
    :func:`provenance` metadata so artifacts from different commits or
    machines are distinguishable.
    """
    payload = {
        "schema": "repro-bench-v1",
        "provenance": provenance(),
        "records": records,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned experiment table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e4:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def fit_constant(measured: list[float], predicted: list[float]) -> float:
    """Least-squares constant c minimising ||measured - c*predicted||."""
    num = sum(m * p for m, p in zip(measured, predicted))
    den = sum(p * p for p in predicted)
    return num / den if den else 0.0
