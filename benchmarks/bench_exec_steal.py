"""E-STEAL — work-stealing vs static round-robin on a skewed fleet.

The claim behind exec scheduling v2: with chunks **pinned** to the
worker they were dealt to (static round-robin), a heterogeneous fleet
finishes a batch when its *slowest* host finishes its share — one 5×-slow
worker in a fleet of four drags the wall clock toward its own pace while
the fast hosts idle.  The shared
:class:`~repro.exec.stealing.ChunkScheduler` lets idle workers steal
queued chunks from the straggler, so the batch finishes when the *work*
runs out instead.

Running this file as a script (the CI smoke step) builds exactly that
fleet — four in-process :class:`~repro.exec.LoopbackWorker` serve loops,
one with injected per-chunk latency making it ~5× slower — and measures
the same engine batch under ``scheduling="static"`` and
``scheduling="steal"``.  It asserts stealing beats the static plan by
``MIN_SPEEDUP``×, that both are **bit-identical** to
:class:`~repro.core.engine.SerialExecutor` (per-spec ``SeedSequence``
seeding: placement never touches randomness), and writes the medians to
``BENCH_steal.json`` in the repo root (uploaded as a CI artifact).
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table, write_bench_json

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker
from repro.protocols import GlobalParityProtocol

TRIALS = 64          # one engine batch, fanned out over the fleet
CHUNKSIZE = 2        # the stealing grain: 32 chunks over 4 workers
WORKERS = 4          # fleet size (one of them slow)
TRIAL_SLEEP = 0.003  # per-broadcast pause: makes chunk cost predictable
SLOW_FACTOR = 5      # the straggler runs chunks ~5x slower
MIN_SPEEDUP = 1.3    # stealing must beat static round-robin by 30%
REPEATS = 3          # best-of-N wall clocks to damp scheduler jitter

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_steal.json"


class SleepyParityProtocol(GlobalParityProtocol):
    """Global parity with a fixed per-broadcast pause.

    The pause stands in for real per-trial compute, making every chunk
    cost ``CHUNKSIZE * n * TRIAL_SLEEP`` — predictable enough that one
    worker's injected latency models a host exactly ``SLOW_FACTOR``×
    slower, while outputs stay a deterministic function of the sampled
    inputs (the bit-identical check below is meaningful).
    """

    supports_batch = False  # force the scalar path; the point is latency

    def broadcast(self, proc, round_index):
        time.sleep(TRIAL_SLEEP)
        return super().broadcast(proc, round_index)


def bench_spec() -> RunSpec:
    return RunSpec(
        protocol=SleepyParityProtocol(),
        distribution=UniformRows(2, 8),
        seed=11,
    )


#: Injected pre-chunk latency for the straggler: a chunk costs
#: CHUNKSIZE trials x 2 processors x TRIAL_SLEEP of real work, so
#: (SLOW_FACTOR - 1) of that on top makes it SLOW_FACTOR x slower.
SLOW_DELAY = (SLOW_FACTOR - 1) * CHUNKSIZE * 2 * TRIAL_SLEEP


def measure_fleet(scheduling: str) -> tuple[list, float, int]:
    """Best-of-REPEATS wall clock for one batch under ``scheduling``."""
    outputs, best, steals = None, float("inf"), 0
    for _ in range(REPEATS):
        workers = [LoopbackWorker() for _ in range(WORKERS - 1)]
        workers.append(LoopbackWorker(request_delay=SLOW_DELAY))
        try:
            with DistributedExecutor(
                [worker.endpoint for worker in workers],
                chunksize=CHUNKSIZE,
                scheduling=scheduling,
            ) as executor:
                engine = Engine(executor)
                start = time.perf_counter()
                outputs = engine.run_batch(bench_spec(), TRIALS).outputs
                elapsed = time.perf_counter() - start
                if elapsed < best:
                    best = elapsed
                    steals = executor.last_map_steals
        finally:
            for worker in workers:
                worker.stop()
    return outputs, best, steals


def measure() -> tuple[list[list], list[dict], float, bool]:
    golden = Engine(SerialExecutor()).run_batch(bench_spec(), TRIALS).outputs
    static_out, static_s, _ = measure_fleet("static")
    steal_out, steal_s, steals = measure_fleet("steal")
    identical = golden == static_out == steal_out
    speedup = static_s / steal_s if steal_s else float("inf")
    rows = [
        [f"static round-robin ({WORKERS} workers, 1 slow)", static_s, 1.0],
        [
            f"work-stealing ({WORKERS} workers, 1 slow, {steals} steals)",
            steal_s,
            speedup,
        ],
    ]
    records = [
        {
            "bench": "exec_steal",
            "scheduling": name,
            "trials": TRIALS,
            "chunksize": CHUNKSIZE,
            "workers": WORKERS,
            "slow_factor": SLOW_FACTOR,
            "wall_s": wall,
        }
        for name, wall in [("static", static_s), ("steal", steal_s)]
    ]
    records.append(
        {
            "bench": "exec_steal",
            "metric": "steal_speedup_vs_static",
            "min_required": MIN_SPEEDUP,
            "speedup": speedup,
            "steals": steals,
        }
    )
    return rows, records, speedup, identical


def main() -> None:
    rows, records, speedup, identical = measure()
    print_table(
        f"E-STEAL: {TRIALS} trials / chunks of {CHUNKSIZE}, "
        f"{WORKERS}-worker fleet with one {SLOW_FACTOR}x-slow host",
        ["scheduling", "wall-clock s", "x vs static"],
        rows,
    )
    write_bench_json(BENCH_JSON, records)
    print(f"wrote {BENCH_JSON.name}")
    # Determinism first: placement must never leak into results.
    assert identical, "fleet outputs disagree with SerialExecutor"
    assert speedup >= MIN_SPEEDUP, (
        f"work-stealing speedup {speedup:.2f}x vs static round-robin is "
        f"below the {MIN_SPEEDUP}x bar"
    )
    print(
        f"work-stealing beats static round-robin: {speedup:.2f}x "
        f"(bar {MIN_SPEEDUP}x), outputs bit-identical to serial"
    )


def test_work_stealing_beats_round_robin():
    """Pytest entry point mirroring the script assertion."""
    _rows, _records, speedup, identical = measure()
    assert identical
    assert speedup >= MIN_SPEEDUP


if __name__ == "__main__":
    main()
