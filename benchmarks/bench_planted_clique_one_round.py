"""E-T1.6 — one-round planted-clique indistinguishability (Theorem 1.6).

Regenerates the paper's Theorem 1.6 claim as a table: for one-round
protocols, the exact transcript distance ``||P(Pi, A_rand) − P(Pi, A_k)||``
never exceeds ``O(k²/√n)``, across the natural degree distinguisher and a
family of generic (seeded random) protocols, for every k.

Shape checks asserted: every measured distance is below the bound with
constant 1; the distance is monotone in k for the degree protocol; the
turn-model ablation reproduces the round model exactly for protocols that
ignore intra-round messages.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import fit_constant, print_table

from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    first_round_distance_ceiling,
    transcript_distance,
)
from repro.distinguish.distinguishers import random_function_protocol
from repro.distributions import PlantedClique, RandomDigraph
from repro.lowerbounds import planted_clique_one_round_bound

N = 8


def degree_spec(n, sees_current_round=True):
    threshold = (n - 1) / 2 + 0.5

    def fn(i, rows, p):
        return (rows.sum(axis=1) >= threshold).astype(np.int64)

    return ProtocolSpec(n, 1, fn, sees_current_round=sees_current_round)


def random_spec(n, seed):
    protocol = random_function_protocol(1, seed)
    scalar = protocol._fn

    def fn(i, rows, p, _f=scalar):
        return np.array([_f(i, row, p) for row in rows], dtype=np.int64)

    return ProtocolSpec(n, 1, fn)


def mixture_pmf(spec, mixture):
    pmf = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            pmf[key] = pmf.get(key, 0.0) + w * p
    return pmf


def compute_table():
    rows = []
    for k in (2, 3, 4, 5):
        mixture = PlantedClique(N, k)
        reference_pmf = exact_transcript_pmf(degree_spec(N), RandomDigraph(N))
        degree_distance = transcript_distance(
            reference_pmf, mixture_pmf(degree_spec(N), mixture)
        )
        generic_distances = []
        for seed in range(3):
            spec = random_spec(N, seed)
            generic_distances.append(
                transcript_distance(
                    exact_transcript_pmf(spec, RandomDigraph(N)),
                    mixture_pmf(spec, mixture),
                )
            )
        ceiling = first_round_distance_ceiling(RandomDigraph(N), mixture)
        bound = planted_clique_one_round_bound(N, k)
        rows.append(
            [
                k,
                degree_distance,
                max(generic_distances),
                ceiling,
                bound,
                "yes" if max(degree_distance, *generic_distances) <= bound else "NO",
            ]
        )
    return rows


def test_theorem_1_6_table(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"E-T1.6: one-round planted clique, n={N} (exact distances)",
        ["k", "degree_dist", "max_generic_dist", "info_ceiling",
         "bound k^2/sqrt(n)", "within"],
        rows,
    )
    # Shape: all measured within the bound with constant 1.
    assert all(row[5] == "yes" for row in rows)
    # Shape: degree-protocol distance grows with k (the k^2 trend).
    degree = [row[1] for row in rows]
    assert all(a <= b + 1e-12 for a, b in zip(degree, degree[1:]))
    # The fitted constant is modest (the O(.) hides no blow-up).
    c = fit_constant(degree, [row[4] for row in rows])
    assert c <= 1.0


def test_turn_round_ablation(benchmark):
    """Ablation: schedulers agree exactly for intra-round-oblivious
    protocols."""

    def compute():
        mixture = PlantedClique(N, 3)
        out = []
        for sees in (True, False):
            spec = degree_spec(N, sees_current_round=sees)
            out.append(
                transcript_distance(
                    exact_transcript_pmf(spec, RandomDigraph(N)),
                    mixture_pmf(spec, mixture),
                )
            )
        return out

    turn_d, round_d = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E-T1.6 ablation: turn vs round scheduling (degree protocol, k=3)",
        ["scheduler", "distance"],
        [["turn", turn_d], ["round", round_d]],
    )
    assert abs(turn_d - round_d) < 1e-12
