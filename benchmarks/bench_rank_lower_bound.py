"""E-T1.4 — the average-case lower bound for full-rank detection.

Three tables:

1. **Rank law** — measured rank frequencies of uniform GF(2) matrices vs
   Kolchin's exact ``P_{n,s}`` and limiting ``Q_s`` (the constants the
   impossibility proof uses).
2. **Indistinguishability** — advantage of column-revealing protocols at
   budget ``j`` between uniform and the rank-deficient PRG distribution.
3. **Accuracy ceiling** — measured accuracy of truncated-budget protocols
   on ``F_full-rank`` over uniform inputs vs the exact information ceiling;
   all stay far below 0.99 until the budget reaches ``n``.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import run_protocol
from repro.distributions import RankDeficientMatrix, UniformRows
from repro.linalg import BitMatrix, kolchin_q, rank_pmf
from repro.lowerbounds import (
    TopSubmatrixRankProtocol,
    accuracy_on_uniform,
    full_rank_indicator,
    optimal_accuracy_with_columns,
)

N = 16
SAMPLES = 400


def compute_rank_law():
    rng = np.random.default_rng(14)
    counts = {}
    for _ in range(SAMPLES):
        r = BitMatrix.random(N, N, rng).rank()
        counts[N - r] = counts.get(N - r, 0) + 1
    exact = rank_pmf(N)
    rows = []
    for s in range(4):
        rows.append(
            [
                s,
                counts.get(s, 0) / SAMPLES,
                float(exact[N - s]),
                kolchin_q(s),
            ]
        )
    return rows


def compute_indistinguishability():
    rng = np.random.default_rng(15)
    pseudo = RankDeficientMatrix(N)
    uniform = UniformRows(N, N)
    rows = []
    for j in (1, 2, 4):
        protocol = TopSubmatrixRankProtocol(N, rounds_budget=j)
        accepts_p = accepts_u = 0
        trials = 150
        for _ in range(trials):
            accepts_p += int(
                run_protocol(protocol, pseudo.sample(rng), rng=rng).outputs[0]
            )
            accepts_u += int(
                run_protocol(protocol, uniform.sample(rng), rng=rng).outputs[0]
            )
        rows.append([j, abs(accepts_p - accepts_u) / trials / 2])
    return rows


def compute_accuracy():
    rng = np.random.default_rng(16)
    rows = []
    for j in (0, 2, 4, 8, N):
        acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(N, rounds_budget=j),
            n=N, k=N, n_samples=250, rng=rng,
            target_fn=full_rank_indicator,
        )
        rows.append([j, acc, optimal_accuracy_with_columns(N, j)])
    return rows


def test_rank_law(benchmark):
    rows = benchmark.pedantic(compute_rank_law, rounds=1, iterations=1)
    print_table(
        f"E-T1.4a: corank law of uniform {N}x{N} GF(2) matrices "
        f"({SAMPLES} samples)",
        ["corank s", "measured", "exact P_{n,s}", "Kolchin Q_s"],
        rows,
    )
    for row in rows:
        assert abs(row[1] - row[2]) < 0.08
        assert abs(row[2] - row[3]) < 0.01


def test_indistinguishability(benchmark):
    rows = benchmark.pedantic(
        compute_indistinguishability, rounds=1, iterations=1
    )
    print_table(
        f"E-T1.4b: advantage vs rank-deficient PRG inputs, n={N}",
        ["rounds j", "advantage"],
        rows,
    )
    for row in rows:
        assert row[1] < 0.15  # within noise of zero


def test_accuracy_ceiling(benchmark):
    rows = benchmark.pedantic(compute_accuracy, rounds=1, iterations=1)
    print_table(
        f"E-T1.4c: full-rank detection accuracy vs budget, n={N}",
        ["rounds j", "measured accuracy", "information ceiling"],
        rows,
    )
    for j, acc, ceiling in rows[:-1]:
        assert acc <= ceiling + 0.07
        assert acc < 0.95  # far from the 0.99 of the theorem statement
    assert rows[-1][1] == 1.0  # full budget is exact
