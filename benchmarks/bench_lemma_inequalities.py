"""E-L1.8 — the statistical inequalities behind the lower bounds.

Regenerates the content of Lemmas 1.8/1.10 (total functions) and 4.3/4.4
(partial functions) as tables: the measured statistic
``E_C ||f(U_D) − f(U_D^C)||`` for the worst function in a sweep (majority,
dictators, parities, random functions) versus the lemma's envelope.

Shape checks: every statistic is within the bound (explicit constant 2
from the proofs); the statistic grows linearly in k and like ``√t`` in the
entropy deficiency.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.lowerbounds import (
    lemma_1_8_bound,
    lemma_1_8_statistic,
    lemma_1_10_bound,
    lemma_1_10_statistic,
    lemma_4_3_bound,
)

N = 12


def function_zoo(n, rng):
    xs = np.arange(1 << n, dtype=np.uint64)
    popcounts = np.bitwise_count(xs).astype(int)
    return {
        "majority": (popcounts >= n / 2).astype(float),
        "dictator": ((xs >> np.uint64(0)) & np.uint64(1)).astype(float),
        "parity": (popcounts % 2).astype(float),
        "random": (rng.random(1 << n) < 0.5).astype(float),
        "and3": (
            ((xs & np.uint64(0b111)) == np.uint64(0b111)).astype(float)
        ),
    }


def compute_lemma_1_10():
    rng = np.random.default_rng(0)
    rows = []
    for name, truth in function_zoo(N, rng).items():
        stat = lemma_1_10_statistic(truth)
        bound = lemma_1_10_bound(N, constant=2.0)
        rows.append([name, stat, bound, "yes" if stat <= bound else "NO"])
    return rows


def compute_lemma_1_8():
    rng = np.random.default_rng(1)
    zoo = function_zoo(N, rng)
    rows = []
    for k in (1, 2, 3):
        worst_name, worst = max(
            (
                (name, lemma_1_8_statistic(t, k, max_cliques=80, rng=rng))
                for name, t in zoo.items()
            ),
            key=lambda item: item[1],
        )
        bound = lemma_1_8_bound(N, k, constant=2.0)
        rows.append(
            [k, worst_name, worst, bound, "yes" if worst <= bound else "NO"]
        )
    return rows


def compute_lemma_4_3():
    """Partial functions: restrict the domain to |D| = 2^{n-t}."""
    rng = np.random.default_rng(2)
    truth = (rng.random(1 << N) < 0.5).astype(float)
    rows = []
    k = 2
    for t in (1, 2, 4):
        # Random domain of size 2^{n-t}.
        domain = np.zeros(1 << N, dtype=bool)
        chosen = rng.choice(1 << N, size=1 << (N - t), replace=False)
        domain[chosen] = True
        stat = lemma_1_8_statistic(
            truth, k, domain=domain, max_cliques=60, rng=rng
        )
        bound = lemma_4_3_bound(N, k, t, constant=3.0)
        rows.append([t, stat, bound, "yes" if stat <= bound else "NO"])
    return rows


def test_lemma_1_10(benchmark):
    rows = benchmark.pedantic(compute_lemma_1_10, rounds=1, iterations=1)
    print_table(
        f"E-L1.10: E_i ||f(U) - f(U^[i])||, n={N}",
        ["function", "statistic", "bound 2/sqrt(n)", "within"],
        rows,
    )
    assert all(row[3] == "yes" for row in rows)


def test_lemma_1_8(benchmark):
    rows = benchmark.pedantic(compute_lemma_1_8, rounds=1, iterations=1)
    print_table(
        f"E-L1.8: worst-function E_C ||f(U) - f(U^C)||, n={N}",
        ["k", "worst_fn", "statistic", "bound 2k/sqrt(n)", "within"],
        rows,
    )
    assert all(row[4] == "yes" for row in rows)
    stats = [row[2] for row in rows]
    assert stats[0] <= stats[1] <= stats[2] + 1e-9  # linear-in-k trend


def test_lemma_4_3_partial_functions(benchmark):
    rows = benchmark.pedantic(compute_lemma_4_3, rounds=1, iterations=1)
    print_table(
        f"E-L4.3: partial functions, |D| = 2^(n-t), n={N}, k=2",
        ["t", "statistic", "bound 3k*sqrt(t/n)", "within"],
        rows,
    )
    assert all(row[3] == "yes" for row in rows)
