"""E-T8.1 — seed-length optimality: the O(k)-round attack breaks the PRG.

Table: for each seed length ``k``, the attack's round count (``k + 1``),
its accept rate on PRG outputs (always 1), on uniform inputs (≈ 2^{k-n}),
and the resulting advantage — contrasted with the fooling envelope for
``k/10`` rounds, to exhibit the sharp transition the paper proves: fooled
below ``Ω(k)`` rounds, broken at ``O(k)``.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import run_protocol
from repro.distributions import PRGOutput, UniformRows
from repro.lowerbounds import toy_prg_bound
from repro.prg import SupportMembershipAttack, false_positive_bound

N = 16
TRIALS = 40


def compute_table():
    rng = np.random.default_rng(81)
    rows = []
    for k in (2, 4, 6, 8):
        m = k + 4
        attack = SupportMembershipAttack(k)
        prg_dist = PRGOutput(N, m, k)
        uniform = UniformRows(N, m)
        prg_accepts = sum(
            run_protocol(attack, prg_dist.sample(rng), rng=rng).outputs[0]
            for _ in range(TRIALS)
        )
        uni_accepts = sum(
            run_protocol(attack, uniform.sample(rng), rng=rng).outputs[0]
            for _ in range(TRIALS)
        )
        advantage = abs(prg_accepts - uni_accepts) / TRIALS / 2
        rows.append(
            [
                k,
                attack.num_rounds(N),
                prg_accepts / TRIALS,
                uni_accepts / TRIALS,
                false_positive_bound(N, k),
                advantage,
                toy_prg_bound(N, k, j=max(1, k // 10)) / 2,
            ]
        )
    return rows


def test_theorem_8_1(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"E-T8.1: seed-length attack, n={N}, {TRIALS} trials/side",
        ["k", "rounds (k+1)", "accept|PRG", "accept|uniform",
         "fp bound 2^(k-n)", "advantage", "fooling env (k/10 rds)"],
        rows,
    )
    for row in rows:
        assert row[2] == 1.0                  # PRG always accepted
        assert row[3] <= row[4] * TRIALS + 0.1  # uniform ~ never
        assert row[5] > 0.45                  # near-maximal advantage
        assert row[1] == row[0] + 1           # O(k) rounds, exactly k+1
