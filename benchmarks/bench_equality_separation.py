"""E-SEP — the randomized–deterministic separation (Section 1.2 remark).

The paper motivates its randomness-saving results with the fact that the
broadcast congested clique has problems whose randomized protocols beat
every deterministic one ("by reductions from two-player communication
complexity for equality").  This bench measures the separation on
ALL-EQUAL: rounds and error of the deterministic full-revelation protocol
versus the public-coin fingerprint protocol, including the fingerprint
protocol *after* Corollary 7.1 derandomization (public coins kept, private
coins were never needed — the composition sanity check).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import Engine, ParallelExecutor, PublicCoins, RunSpec, run_protocol
from repro.protocols import (
    DeterministicEqualityProtocol,
    FingerprintEqualityProtocol,
    fingerprint_error_bound,
)

# The per-t error estimation is a 200-trial engine batch (each trial gets
# a fresh protocol copy and fresh public coins from its spawned seed),
# pooled across cores where available.
EXECUTOR = ParallelExecutor()

M = 128
N = 8

def compute_table():
    rows = []
    rng = np.random.default_rng(11)
    base_row = rng.integers(0, 2, size=M, dtype=np.uint8)
    equal_inputs = np.tile(base_row, (N, 1))
    unequal_inputs = equal_inputs.copy()
    unequal_inputs[3] = rng.integers(0, 2, size=M, dtype=np.uint8)

    det = DeterministicEqualityProtocol(M)
    result_eq = run_protocol(det, equal_inputs, rng=rng)
    result_ne = run_protocol(det, unequal_inputs, rng=rng)
    assert result_eq.outputs[0] == 1 and result_ne.outputs[0] == 0
    rows.append(["deterministic", result_eq.cost.rounds, 0.0, 0])

    engine = Engine(EXECUTOR)
    for t in (2, 4, 8, 16):
        trials = 200
        spec = RunSpec(
            protocol=FingerprintEqualityProtocol(M, t),
            inputs=unequal_inputs,
            seed=t,
            public_coins=PublicCoins,  # fresh source per trial
        )
        batch = engine.run_batch(spec, trials)
        errors = int(batch.decisions().sum())  # accepting unequal = error
        public_bits = int(batch.public_bits[0])
        rows.append(
            [f"fingerprint t={t}", t, errors / trials, public_bits]
        )
    return rows

def test_equality_separation(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"E-SEP: ALL-EQUAL on m={M}-bit strings, n={N} processors",
        ["protocol", "rounds", "error on unequal", "public bits"],
        rows,
    )
    # The separation: m rounds deterministic vs t << m randomized.
    assert rows[0][1] == M
    assert rows[-1][1] == 16
    # Error tracks the 2^{-t} bound.
    for row in rows[1:]:
        t = row[1]
        assert row[2] <= fingerprint_error_bound(t) + 0.05
    # Error decreasing in t.
    errors = [row[2] for row in rows[1:]]
    assert all(a >= b - 0.02 for a, b in zip(errors, errors[1:]))
