"""Batched transcript-key synthesis vs scalar transcript replay.

The paper's headline estimators (transcript total-variation distance,
Newman simulation error) consume *transcript keys*.  Before the
``batch_keys`` contract they were pinned to the scalar engine: every
trial simulated round by round just to read its key.  This bench measures
the whole key-producing batch — ``Engine.run_batch`` with
``vectorized=True`` (one ``batch_decisions`` + ``batch_keys`` pass) vs
``vectorized=False`` (full per-trial simulation) — for every
``supports_batch_keys`` protocol at batch=256.

Running this file as a script (or ``pytest benchmarks/bench_batch_keys.py``)
verifies the two paths are bit-identical (keys, outputs, costs), writes
the medians to ``BENCH_keys.json`` in the repo root (the machine-readable
perf trajectory CI uploads as an artifact), and asserts the batched path
is ≥ 3× faster than scalar replay on every workload.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _util import median_ns, print_table, write_bench_json

from repro.core import Engine, RunSpec
from repro.distributions import UniformRows
from repro.lowerbounds import TopSubmatrixRankProtocol
from repro.prg.attacks import SupportMembershipAttack
from repro.protocols import DeterministicEqualityProtocol, GlobalParityProtocol

BATCH = 256
SPEEDUP_BAR = 3.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_keys.json"

#: One entry per supports_batch_keys protocol: the estimator-facing
#: workloads whose keys used to require scalar transcript replay.
WORKLOADS = [
    ("seed_attack", SupportMembershipAttack(k=8), UniformRows(16, 12)),
    ("equality", DeterministicEqualityProtocol(m=12), UniformRows(12, 12)),
    ("parity", GlobalParityProtocol(), UniformRows(16, 16)),
    ("hierarchy_rank", TopSubmatrixRankProtocol(k=8), UniformRows(12, 12)),
]


def _spec(protocol, dist, vectorized):
    return RunSpec(
        protocol=protocol,
        distribution=dist,
        seed=20260730,
        vectorized=vectorized,
    )


def collect_batch_key_records() -> list[dict]:
    """Time scalar replay vs batched synthesis for every workload.

    Each record verifies bit-identity first — a fast path that diverges
    from the scalar engine would make the speedup meaningless.
    """
    records = []
    engine = Engine()
    for name, protocol, dist in WORKLOADS:
        scalar = engine.run_batch(_spec(protocol, dist, False), BATCH)
        fast = engine.run_batch(_spec(protocol, dist, True), BATCH)
        assert scalar.transcript_keys == fast.transcript_keys, name
        assert scalar.outputs == fast.outputs, name
        assert scalar.costs == fast.costs, name
        scalar_ns = median_ns(
            engine.run_batch, _spec(protocol, dist, False), BATCH, repeats=3
        )
        fast_ns = median_ns(
            engine.run_batch, _spec(protocol, dist, True), BATCH, repeats=5
        )
        records.append(
            {
                "workload": name,
                "batch": BATCH,
                "key_turns": len(fast.transcript_keys[0]),
                "scalar_ns_per_batch": scalar_ns,
                "vectorized_ns_per_batch": fast_ns,
                "ns_per_key": fast_ns / BATCH,
                "speedup": scalar_ns / fast_ns,
            }
        )
    return records


def _report(records: list[dict]) -> None:
    print_table(
        f"Batched transcript-key synthesis (batch={BATCH}, medians)",
        ["workload", "key turns", "scalar ns", "batched ns", "speedup"],
        [
            [
                r["workload"],
                r["key_turns"],
                r["scalar_ns_per_batch"],
                r["vectorized_ns_per_batch"],
                r["speedup"],
            ]
            for r in records
        ],
    )
    write_bench_json(BENCH_JSON, records)
    print(f"wrote {BENCH_JSON}")


def _assert_speedups(records: list[dict]) -> None:
    for r in records:
        assert r["speedup"] >= SPEEDUP_BAR, (
            f"{r['workload']}: batched key synthesis speedup "
            f"{r['speedup']:.1f}x below the {SPEEDUP_BAR:.0f}x bar"
        )


def test_batch_key_trajectory():
    """Batched key synthesis ≥ 3× over scalar transcript replay at
    batch=256 for every supports_batch_keys workload, bit-identically,
    with medians recorded in BENCH_keys.json."""
    records = collect_batch_key_records()
    _report(records)
    _assert_speedups(records)


if __name__ == "__main__":
    _records = collect_batch_key_records()
    _report(_records)
    _assert_speedups(_records)
    print(f"speedup bar met: batched key synthesis >= {SPEEDUP_BAR:.0f}x")
