"""E-T5.4 / E-T1.3 — the full PRG: fooling bound and construction cost.

Two tables:

1. **Fooling** — exact transcript distance between uniform ``U_m`` inputs
   and full-PRG outputs ``U_M`` for one-round attacks, swept over ``k``
   with ``m = k + 2``, against the ``O(j·n/2^{k/9})`` envelope.
2. **Construction cost** (Theorem 1.3 accounting) — rounds and private
   random bits per processor of the executable PRG protocol, versus the
   theorem's ``⌈k(m-k)/n⌉`` rounds and ``k + ⌈k(m-k)/n⌉`` bits.

Shape checks: distances within bound and decaying in k; measured protocol
cost equals the closed form exactly.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import run_protocol
from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    transcript_distance,
)
from repro.distributions import PRGOutput, UniformRows
from repro.lowerbounds import toy_prg_bound
from repro.prg import (
    MatrixPRGProtocol,
    matrix_prg_rounds,
    seed_bits_per_processor,
)

N = 3


def tail_parity_spec(n, m):
    """Broadcast the parity of the derived (tail) bits — the natural
    attack on the matrix structure."""

    def fn(i, rows, p):
        return (rows[:, -2:].sum(axis=1) % 2).astype(np.int64)

    return ProtocolSpec(n, 1, fn)


def mixture_pmf(spec, mixture):
    pmf = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            pmf[key] = pmf.get(key, 0.0) + w * p
    return pmf


def compute_fooling_table():
    rows = []
    for k in (2, 3, 4, 5):
        m = k + 2  # secret bits = 2k, enumerable
        pseudo = PRGOutput(N, m, k)
        uniform = UniformRows(N, m)
        spec = tail_parity_spec(N, m)
        distance = transcript_distance(
            exact_transcript_pmf(spec, uniform), mixture_pmf(spec, pseudo)
        )
        bound = toy_prg_bound(N, k, j=1)
        rows.append([k, m, distance, bound, "yes" if distance <= bound else "NO"])
    return rows


def compute_cost_table():
    rows = []
    rng = np.random.default_rng(0)
    for n, k, m in [(32, 8, 32), (32, 8, 64), (64, 16, 64), (64, 16, 128)]:
        protocol = MatrixPRGProtocol(k, m)
        result = run_protocol(
            protocol, np.zeros((n, 1), dtype=np.uint8), rng=rng
        )
        predicted_rounds = matrix_prg_rounds(n, k, m)
        predicted_bits = seed_bits_per_processor(n, k, m)
        rows.append(
            [
                n, k, m,
                result.cost.rounds,
                predicted_rounds,
                result.cost.max_private_bits,
                predicted_bits,
            ]
        )
    return rows


def test_theorem_5_4_fooling(benchmark):
    rows = benchmark.pedantic(compute_fooling_table, rounds=1, iterations=1)
    print_table(
        f"E-T5.4: full PRG vs tail-parity attack, n={N} (exact)",
        ["k", "m", "distance", "envelope j*n/2^(k/9)", "within"],
        rows,
    )
    assert all(row[4] == "yes" for row in rows)
    distances = [row[2] for row in rows]
    assert distances[-1] <= distances[0] / 2


def test_theorem_1_3_cost(benchmark):
    rows = benchmark.pedantic(compute_cost_table, rounds=1, iterations=1)
    print_table(
        "E-T1.3: PRG construction cost (measured vs formula)",
        ["n", "k", "m", "rounds", "⌈k(m-k)/n⌉", "max_priv_bits",
         "k+⌈k(m-k)/n⌉"],
        rows,
    )
    for row in rows:
        assert row[3] == row[4]      # rounds match formula exactly
        assert row[5] <= row[6]      # private bits within the budget
        # O(k) rounds claim at m = O(n): rounds <= k * (m/n)
        assert row[3] <= row[1] * max(1, row[2] // row[0] + 1)
