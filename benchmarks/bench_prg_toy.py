"""E-T5.1 — the toy PRG fools one-round protocols (Theorem 5.1).

Exact transcript distance between case (A) (uniform ``U_{k+1}`` inputs)
and case (B) (toy PRG output ``U[b]`` with random ``b``) for the natural
attacks (last-bit broadcast, parity tests) and generic protocols, swept
over the seed length ``k``, against the ``O(n/2^{k/2})`` envelope.

Shape checks: distance within the bound; exponential decay in k
(each +2 in k at least halves the worst distance).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    transcript_distance,
)
from repro.distinguish.distinguishers import random_function_protocol
from repro.distributions import ToyPRGOutput, UniformRows
from repro.lowerbounds import toy_prg_one_round_bound

N = 3


def last_bit_spec(n):
    def fn(i, rows, p):
        return rows[:, -1].astype(np.int64)

    return ProtocolSpec(n, 1, fn)


def parity_spec(n):
    def fn(i, rows, p):
        return (rows.sum(axis=1) % 2).astype(np.int64)

    return ProtocolSpec(n, 1, fn)


def random_spec(n, seed):
    protocol = random_function_protocol(1, seed)
    scalar = protocol._fn

    def fn(i, rows, p, _f=scalar):
        return np.array([_f(i, row, p) for row in rows], dtype=np.int64)

    return ProtocolSpec(n, 1, fn)


def mixture_pmf(spec, mixture):
    pmf = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            pmf[key] = pmf.get(key, 0.0) + w * p
    return pmf


def compute_table():
    rows = []
    for k in (2, 4, 6, 8):
        pseudo = ToyPRGOutput(N, k)
        uniform = UniformRows(N, k + 1)
        distances = {}
        for name, spec in [
            ("last_bit", last_bit_spec(N)),
            ("parity", parity_spec(N)),
            ("generic", random_spec(N, 0)),
        ]:
            distances[name] = transcript_distance(
                exact_transcript_pmf(spec, uniform),
                mixture_pmf(spec, pseudo),
            )
        bound = toy_prg_one_round_bound(N, k)
        worst = max(distances.values())
        rows.append(
            [
                k,
                distances["last_bit"],
                distances["parity"],
                distances["generic"],
                bound,
                "yes" if worst <= bound else "NO",
            ]
        )
    return rows


def test_theorem_5_1_table(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"E-T5.1: toy PRG vs one-round attacks, n={N} (exact distances)",
        ["k", "last_bit", "parity", "generic", "bound n/2^(k/2)", "within"],
        rows,
    )
    assert all(row[5] == "yes" for row in rows)
    worst = [max(row[1:4]) for row in rows]
    # Exponential decay: each +2 in k at least halves the worst distance.
    for a, b in zip(worst, worst[1:]):
        assert b <= a / 1.8 + 1e-12
