"""E-T4.1 — multi-round planted-clique lower bound (Theorem 4.1).

Monte-Carlo advantage of the natural multi-round distinguishers against
``A_rand`` vs ``A_k`` at larger ``n``, compared with the theorem's envelope
``O(j·k²·√((j+log n)/n))`` and with the regime map of Section 1.2: the
degree attack's advantage collapses as ``k`` drops toward ``n^{1/4}`` and
saturates once ``k ≳ √(n log n)``.

Shape checks: advantage is monotone in k; in the lower-bound regime
(``k ≤ n^{1/4}``) every distinguisher's advantage is statistically
indistinguishable from 0 (below its Hoeffding radius + bound).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.distinguish import (
    DegreeThresholdDistinguisher,
    NeighborhoodVoteDistinguisher,
    estimate_protocol_advantage,
)
from repro.distributions import PlantedClique, RandomDigraph
from repro.lowerbounds import planted_clique_bound

N = 256
SAMPLES = 120


def compute_table():
    rng = np.random.default_rng(20190519)
    reference = RandomDigraph(N)
    rows = []
    for k in (4, 8, 16, 32, 64):
        mixture = PlantedClique(N, k)
        degree = estimate_protocol_advantage(
            DegreeThresholdDistinguisher.for_clique_size(N, k),
            mixture, reference, SAMPLES, rng,
        )
        neigh = estimate_protocol_advantage(
            NeighborhoodVoteDistinguisher.for_clique_size(N, k),
            mixture, reference, SAMPLES, rng,
        )
        bound_j2 = planted_clique_bound(N, k, j=2)
        rows.append(
            [
                k,
                round(N ** 0.25),
                degree.advantage,
                neigh.advantage,
                degree.interval.radius,
                bound_j2,
            ]
        )
    return rows


def test_theorem_4_1_table(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"E-T4.1: multi-round distinguishers, n={N}, {SAMPLES} samples/side",
        ["k", "n^(1/4)", "adv(degree,1rd)", "adv(neighbor,2rd)",
         "noise_radius", "bound(j=2)"],
        rows,
    )
    # Lower-bound regime k <= n^{1/4}: advantage within noise of zero.
    small_k = rows[0]
    assert small_k[0] <= round(N ** 0.25)
    assert small_k[2] <= small_k[4] + small_k[5]
    assert small_k[3] <= small_k[4] + small_k[5]
    # Upper regime k >> sqrt(n): the degree attack wins decisively.
    large_k = rows[-1]
    assert large_k[2] > 0.3
    # Monotone trend in k for the degree attack (allowing noise).
    advantages = [row[2] for row in rows]
    assert advantages[-1] > advantages[0]
