"""E-C7.1 — efficient randomness saving (Corollary 7.1).

Table: for a randomized payload protocol consuming R random bits per
processor over j rounds, the compiled protocol's measured round count and
true-coin consumption versus the corollary's ``O(j + kR/n)`` rounds and
``k + ⌈kR/n⌉`` coins — plus the output-distribution drift (should be
within the PRG's fooling error + sampling noise).

Shape checks: coin counts collapse from R to the O(k) budget; output
drift below noise threshold.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import Protocol, run_protocol
from repro.distributions import UniformRows
from repro.prg import DerandomizedProtocol, matrix_prg_rounds


class NoisyMajorityPayload(Protocol):
    """Each round every processor broadcasts an input bit XOR a fresh coin;
    output is the majority of everything heard."""

    def __init__(self, rounds):
        self._rounds = rounds

    def num_rounds(self, n):
        return self._rounds

    def broadcast(self, proc, round_index):
        bit = int(proc.input[round_index % proc.input.shape[0]])
        return (bit + proc.coins.draw_bit()) % 2

    def output(self, proc):
        total = sum(e.message for e in proc.transcript)
        return int(2 * total >= proc.transcript.n_turns)


def compute_table():
    rng = np.random.default_rng(7)
    rows = []
    trials = 250
    for n, k, payload_rounds in [(16, 8, 4), (16, 12, 8), (32, 10, 6)]:
        inputs = UniformRows(n, payload_rounds).sample(
            np.random.default_rng(1)
        )
        payload_bits = payload_rounds  # one coin per round

        true_ones = 0
        for s in range(trials):
            result = run_protocol(
                NoisyMajorityPayload(payload_rounds), inputs,
                rng=np.random.default_rng(1000 + s),
            )
            true_ones += result.outputs[0]

        compiled_ones = 0
        compiled_cost = None
        max_true_coins = 0
        for s in range(trials):
            wrapped = DerandomizedProtocol(
                NoisyMajorityPayload(payload_rounds),
                k=k, random_bits=payload_bits,
            )
            result = run_protocol(
                wrapped, inputs, rng=np.random.default_rng(5000 + s)
            )
            compiled_ones += result.outputs[0]
            compiled_cost = result.cost
            max_true_coins = max(
                max_true_coins,
                max(wrapped.true_coins_used(p) for p in result.contexts),
            )

        prg_rounds = matrix_prg_rounds(n, k, k + payload_bits)
        rows.append(
            [
                n, k, payload_rounds, payload_bits,
                compiled_cost.rounds,
                payload_rounds + prg_rounds,
                max_true_coins,
                k + prg_rounds,
                abs(true_ones - compiled_ones) / trials,
            ]
        )
    return rows


def test_corollary_7_1(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        "E-C7.1: derandomization transform (measured vs formula)",
        ["n", "k", "payload_rds", "payload_bits", "rounds",
         "j+⌈kR/n⌉", "true_coins", "k+⌈kR/n⌉", "output_drift"],
        rows,
    )
    for row in rows:
        assert row[4] == row[5]          # round formula exact
        assert row[6] <= row[7]          # coins within O(k) budget
        assert row[8] < 0.15             # outputs statistically close
