"""E-T1.5 — the average-case time hierarchy.

Table: for the separating function ``F_k`` (top ``k×k`` block full rank),
the measured accuracy of the ``j``-round protocol sweep on uniform inputs.
The hierarchy shape: accuracy ≈ the majority rate ``1 − Q₀ ≈ 0.711`` for
every ``j < k`` (never approaching 0.99), and exactly 1.0 at ``j = k``.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.core import ParallelExecutor
from repro.lowerbounds import (
    TopSubmatrixRankProtocol,
    accuracy_on_uniform,
    optimal_accuracy_with_columns,
)

N = 12
K = 10

# The accuracy sweep runs its 600 trials per budget through the engine
# on a process pool (in-process on 1-core hosts).
EXECUTOR = ParallelExecutor()

def compute_table():
    rng = np.random.default_rng(15)
    rows = []
    for j in (0, K // 20 + 1, K // 4, K // 2, K - 1, K):
        acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(K, rounds_budget=j),
            n=N, k=K, n_samples=600, rng=rng, executor=EXECUTOR,
        )
        rows.append([j, acc, optimal_accuracy_with_columns(K, j)])
    return rows

def test_theorem_1_5_hierarchy(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_table(
        f"E-T1.5: time hierarchy for F_k, k={K}, n={N}",
        ["rounds j", "measured accuracy", "information ceiling"],
        rows,
    )
    # Exact at j = k.
    assert rows[-1][1] == 1.0
    # Strictly below 0.99 for every truncated budget (the hierarchy gap).
    for j, acc, ceiling in rows[:-1]:
        assert acc < 0.99
        assert ceiling < 0.99
        assert acc <= ceiling + 0.07
    # Monotone information ceiling.
    ceilings = [row[2] for row in rows]
    assert all(a <= b + 1e-12 for a, b in zip(ceilings, ceilings[1:]))
