"""Symbolic cost-model predictions vs measured engine costs at large n.

The conformance matrix (``tests/conformance/test_cost_model.py``) checks
every protocol's ``cost_model()`` on small parameter grids.  This bench
pushes the same predicted-vs-measured claim to one *large* point per
protocol — sizes the scalar simulator would take minutes on are a single
vectorized batch — and records how cheap prediction is next to
measurement: ``predict()`` is pure integer formula evaluation, so it
costs microseconds at ``n = 512`` and exactly the same at ``n = 10⁹``,
where nothing can be measured at all.

Running this file as a script (or ``pytest benchmarks/bench_cost_model.py``)
verifies measured ``cost_totals()`` equal the model's prediction (exact
models) or sit inside its realized bounds (bounded models) at the large-n
point, writes the medians to ``BENCH_costs.json`` in the repo root (the
machine-readable artifact CI uploads), and asserts an extrapolation at
``n = 10⁹`` stays pure-formula fast (< 50 µs per evaluation).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _util import median_ns, print_table, write_bench_json

from repro.core import Engine, RunSpec
from repro.costs import COST_KINDS
from repro.distributions import UniformRows
from repro.distributions.undirected import UndirectedRandomGraph
from repro.prg.attacks import SupportMembershipAttack
from repro.protocols import DeterministicEqualityProtocol
from repro.protocols.connectivity import ConnectivityProtocol
from repro.protocols.triangles import FullExchangeTriangleProtocol

BATCH = 64
EXTRAPOLATION_N = 10**9
PREDICT_NS_BAR = 50_000.0  # 50 µs: formula evaluation, not simulation
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_costs.json"

#: One large-n point per cost-model shape: two exact models (fixed round
#: structure), one exact model with width formulas (packed payloads), one
#: bounded model (dynamic termination).
WORKLOADS = [
    ("equality", DeterministicEqualityProtocol(m=48), UniformRows(256, 48), 256),
    ("seed_attack", SupportMembershipAttack(k=40), UniformRows(512, 41), 512),
    ("triangles", FullExchangeTriangleProtocol(96), UndirectedRandomGraph(96), 96),
    ("connectivity", ConnectivityProtocol(128), UndirectedRandomGraph(128), 128),
]


def _spec(protocol, dist):
    return RunSpec(
        protocol=protocol,
        distribution=dist,
        seed=20260808,
        vectorized=True,
    )


def collect_cost_model_records() -> list[dict]:
    """Measure one vectorized batch per workload and check it against the
    symbolic model — exact equality or realized bounds — then time both
    sides of the comparison."""
    records = []
    engine = Engine()
    for name, protocol, dist, n in WORKLOADS:
        model = protocol.cost_model()
        batch = engine.run_batch(_spec(protocol, dist), BATCH)
        problems = model.check_batch(batch, n=n)
        assert problems == [], (name, problems[:3])
        totals = batch.cost_totals()
        if model.is_exact:
            assert totals == model.predict(BATCH, n=n), name
        else:
            bounds = model.predict_bounds(BATCH, n=n)
            for kind in COST_KINDS:
                lo, hi = bounds[kind]
                assert lo <= totals[kind] <= hi, (name, kind)
        measure_ns = median_ns(
            engine.run_batch, _spec(protocol, dist), BATCH, repeats=3
        )
        predictor = model.predict if model.is_exact else model.predict_bounds
        predict_ns = median_ns(
            lambda: predictor(BATCH, n=n), repeats=5, number=100
        )
        extrapolate_ns = median_ns(
            lambda: model.predict_bounds(1, n=EXTRAPOLATION_N),
            repeats=5,
            number=100,
        )
        records.append(
            {
                "workload": name,
                "model": "exact" if model.is_exact else "bounded",
                "n": n,
                "batch": BATCH,
                "broadcast_bits": totals["broadcast_bits"],
                "measure_ns_per_batch": measure_ns,
                "predict_ns_per_batch": predict_ns,
                "extrapolate_1e9_ns": extrapolate_ns,
                "measure_over_predict": measure_ns / predict_ns,
            }
        )
    return records


def _report(records: list[dict]) -> None:
    print_table(
        f"Cost-model conformance at large n (batch={BATCH}, medians)",
        ["workload", "model", "n", "measure ns", "predict ns", "ratio"],
        [
            [
                r["workload"],
                r["model"],
                r["n"],
                r["measure_ns_per_batch"],
                r["predict_ns_per_batch"],
                r["measure_over_predict"],
            ]
            for r in records
        ],
    )
    write_bench_json(BENCH_JSON, records)
    print(f"wrote {BENCH_JSON}")


def _assert_prediction_stays_formula_fast(records: list[dict]) -> None:
    for r in records:
        assert r["extrapolate_1e9_ns"] < PREDICT_NS_BAR, (
            f"{r['workload']}: predicting at n=10^9 took "
            f"{r['extrapolate_1e9_ns']:.0f} ns — the model layer must stay "
            "pure integer formula evaluation"
        )


def test_cost_model_trajectory():
    """Predicted == measured (or inside realized bounds) at one large-n
    point per protocol, with medians recorded in BENCH_costs.json."""
    records = collect_cost_model_records()
    _report(records)
    _assert_prediction_stays_formula_fast(records)


if __name__ == "__main__":
    _records = collect_cost_model_records()
    _report(_records)
    _assert_prediction_stays_formula_fast(_records)
    print("predicted-vs-measured conformance holds at every large-n point")
