"""Ablation — bit-packed GF(2) kernels vs naive mod-2 numpy.

The DESIGN.md ablation: the packed representation must agree with the
naive implementation bit-for-bit and be faster on the sizes the
experiments use.  The timing entries benchmark the three hot kernels
(rank, matmul, vecmat — the PRG's per-processor operation).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.linalg import BitMatrix, BitVector

N = 256


def naive_rank(arr):
    work = arr.astype(np.int64).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if work[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        work[[rank, pivot]] = work[[pivot, rank]]
        for r in range(rows):
            if r != rank and work[r, col]:
                work[r] ^= work[rank]
        rank += 1
    return rank


def test_rank_packed(benchmark):
    rng = np.random.default_rng(0)
    arr = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    matrix = BitMatrix.from_array(arr)
    result = benchmark(matrix.rank)
    assert result == naive_rank(arr)


def test_rank_naive_baseline(benchmark):
    rng = np.random.default_rng(0)
    arr = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    benchmark(naive_rank, arr)


def test_matmul_packed(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    b = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    ma, mb = BitMatrix.from_array(a), BitMatrix.from_array(b)
    result = benchmark(ma.matmul, mb)
    assert np.array_equal(result.to_array(), (a.astype(np.int64) @ b) % 2)


def test_vecmat_packed(benchmark):
    """The PRG's per-processor operation: x^T M."""
    rng = np.random.default_rng(2)
    m = BitMatrix.random(64, 1024, rng)
    x = BitVector.random(64, rng)
    result = benchmark(m.vecmat, x)
    expected = (x.to_array().astype(np.int64) @ m.to_array()) % 2
    assert np.array_equal(result.to_array(), expected)


def test_dot_packed(benchmark):
    rng = np.random.default_rng(3)
    a = BitVector.random(4096, rng)
    b = BitVector.random(4096, rng)
    result = benchmark(a.dot, b)
    assert result == int(a.to_array() @ b.to_array()) % 2
