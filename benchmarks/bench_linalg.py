"""Ablation — bit-packed GF(2) kernels vs naive mod-2 numpy, plus the
batched-kernel performance trajectory.

The DESIGN.md ablation: the packed representation must agree with the
naive implementation bit-for-bit and be faster on the sizes the
experiments use.  The timing entries benchmark the three hot kernels
(rank, matmul, vecmat — the PRG's per-processor operation).

Running this file as a script (or ``pytest benchmarks/bench_linalg.py``)
additionally measures the batched kernel layer against the **pre-PR
scalar implementations** (frozen verbatim below as ``_legacy_*``) and
writes the medians to ``BENCH_linalg.json`` in the repo root — the
machine-readable perf trajectory CI uploads as an artifact.  The claims
it asserts: batched lock-step rank is ≥ 10× faster than 256 scalar
eliminations at n = 256, and the masked-XOR ``vecmat`` is ≥ 5× faster
than the pre-PR per-bit row loop at n = 4096.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import median_ns, print_table, write_bench_json

from repro.linalg import BitMatrix, BitMatrixBatch, BitVector

N = 256

#: Batched-rank acceptance shape: 256 uniform 256×256 matrices.
RANK_BATCH = 256
RANK_N = 256
#: vecmat acceptance shape: x^T M with M uniform 4096×4096.
VECMAT_N = 4096

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_linalg.json"


# ----------------------------------------------------------------------
# Pre-PR scalar implementations, frozen verbatim as the speedup baseline
# ----------------------------------------------------------------------
def _legacy_vecmat(matrix: BitMatrix, vec: BitVector) -> BitVector:
    """``vec^T @ matrix`` as shipped before the batched-kernel layer: a
    Python loop over rows with per-bit vector indexing."""
    acc = np.zeros(matrix.words.shape[1], dtype=np.uint64)
    for i in range(matrix.rows):
        if vec[i]:
            acc ^= matrix.words[i]
    return BitVector(matrix.cols, acc)


def _legacy_rank(matrix: BitMatrix) -> int:
    """Gaussian-elimination rank as shipped before the batched layer: one
    Python pass per pivot column per matrix."""
    work = matrix.words.copy()
    n_rows = matrix.rows
    pivot_row = 0
    for j in range(matrix.cols):
        if pivot_row >= n_rows:
            break
        word, bit = j // 64, np.uint64(j % 64)
        col_bits = (work[pivot_row:, word] >> bit) & np.uint64(1)
        hits = np.nonzero(col_bits)[0]
        if hits.size == 0:
            continue
        pivot = pivot_row + int(hits[0])
        if pivot != pivot_row:
            work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
        below = (work[pivot_row + 1 :, word] >> bit) & np.uint64(1)
        mask = below.astype(bool)
        work[pivot_row + 1 :][mask] ^= work[pivot_row]
        pivot_row += 1
    return pivot_row


# ----------------------------------------------------------------------
# JSON trajectory bench
# ----------------------------------------------------------------------
def collect_linalg_records() -> list[dict]:
    """Time the hot kernels against the frozen baselines.

    Returns one record per kernel with median ns/op (and per-matrix cost
    plus speedup for the batched entries).
    """
    rng = np.random.default_rng(20260730)

    # vecmat at n=4096: masked XOR-reduce vs per-bit row loop.
    big = BitMatrix.random(VECMAT_N, VECMAT_N, rng)
    x = BitVector.random(VECMAT_N, rng)
    assert big.vecmat(x) == _legacy_vecmat(big, x)
    vecmat_ns = median_ns(big.vecmat, x, repeats=9)
    vecmat_legacy_ns = median_ns(_legacy_vecmat, big, x, repeats=5)

    # matvec at n=4096 (popcount parities; no legacy loop to compare).
    matvec_ns = median_ns(big.matvec, x, repeats=9)

    # scalar rank at n=256 and the batched lock-step elimination over
    # 256 matrices vs 256 legacy scalar eliminations.
    batch = BitMatrixBatch.random(RANK_BATCH, RANK_N, RANK_N, rng)
    matrices = list(batch)
    legacy_ranks = [_legacy_rank(m) for m in matrices]
    assert np.array_equal(batch.rank(), legacy_ranks)
    rank_ns = median_ns(matrices[0].rank, repeats=5)
    rank_batched_ns = median_ns(batch.rank, repeats=5)
    rank_legacy_ns = median_ns(
        lambda: [_legacy_rank(m) for m in matrices], repeats=3
    )

    return [
        {
            "kernel": "matvec",
            "n": VECMAT_N,
            "ns_per_op": matvec_ns,
        },
        {
            "kernel": "vecmat",
            "n": VECMAT_N,
            "ns_per_op": vecmat_ns,
            "legacy_ns_per_op": vecmat_legacy_ns,
            "speedup": vecmat_legacy_ns / vecmat_ns,
        },
        {
            "kernel": "rank",
            "n": RANK_N,
            "ns_per_op": rank_ns,
        },
        {
            "kernel": "rank_batched",
            "n": RANK_N,
            "batch": RANK_BATCH,
            "ns_per_op": rank_batched_ns,
            "ns_per_matrix": rank_batched_ns / RANK_BATCH,
            "legacy_ns_per_op": rank_legacy_ns,
            "speedup": rank_legacy_ns / rank_batched_ns,
        },
    ]


def _report(records: list[dict]) -> None:
    print_table(
        "GF(2) kernel trajectory (medians)",
        ["kernel", "shape", "ns/op", "legacy ns/op", "speedup"],
        [
            [
                r["kernel"],
                f"batch={r['batch']} n={r['n']}" if "batch" in r else f"n={r['n']}",
                r["ns_per_op"],
                r.get("legacy_ns_per_op", "-"),
                r.get("speedup", "-"),
            ]
            for r in records
        ],
    )
    write_bench_json(BENCH_JSON, records)
    print(f"wrote {BENCH_JSON}")


def _assert_speedups(records: list[dict]) -> None:
    by_kernel = {r["kernel"]: r for r in records}
    rank_speedup = by_kernel["rank_batched"]["speedup"]
    vecmat_speedup = by_kernel["vecmat"]["speedup"]
    assert rank_speedup >= 10.0, (
        f"batched rank speedup {rank_speedup:.1f}x below the 10x bar"
    )
    assert vecmat_speedup >= 5.0, (
        f"vecmat speedup {vecmat_speedup:.1f}x below the 5x bar"
    )


def test_batched_kernel_trajectory():
    """Batched rank ≥ 10× and vecmat ≥ 5× over the pre-PR scalar kernels,
    with medians recorded in BENCH_linalg.json."""
    records = collect_linalg_records()
    _report(records)
    _assert_speedups(records)


def naive_rank(arr):
    work = arr.astype(np.int64).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if work[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        work[[rank, pivot]] = work[[pivot, rank]]
        for r in range(rows):
            if r != rank and work[r, col]:
                work[r] ^= work[rank]
        rank += 1
    return rank


def test_rank_packed(benchmark):
    rng = np.random.default_rng(0)
    arr = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    matrix = BitMatrix.from_array(arr)
    result = benchmark(matrix.rank)
    assert result == naive_rank(arr)


def test_rank_naive_baseline(benchmark):
    rng = np.random.default_rng(0)
    arr = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    benchmark(naive_rank, arr)


def test_matmul_packed(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    b = rng.integers(0, 2, size=(N, N), dtype=np.uint8)
    ma, mb = BitMatrix.from_array(a), BitMatrix.from_array(b)
    result = benchmark(ma.matmul, mb)
    assert np.array_equal(result.to_array(), (a.astype(np.int64) @ b) % 2)


def test_vecmat_packed(benchmark):
    """The PRG's per-processor operation: x^T M."""
    rng = np.random.default_rng(2)
    m = BitMatrix.random(64, 1024, rng)
    x = BitVector.random(64, rng)
    result = benchmark(m.vecmat, x)
    expected = (x.to_array().astype(np.int64) @ m.to_array()) % 2
    assert np.array_equal(result.to_array(), expected)


def test_dot_packed(benchmark):
    rng = np.random.default_rng(3)
    a = BitVector.random(4096, rng)
    b = BitVector.random(4096, rng)
    result = benchmark(a.dot, b)
    assert result == int(a.to_array() @ b.to_array()) % 2


if __name__ == "__main__":
    _records = collect_linalg_records()
    _report(_records)
    _assert_speedups(_records)
    print("speedup bars met: batched rank >= 10x, vecmat >= 5x")
