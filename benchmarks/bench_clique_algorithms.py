"""E-TB.1 — planted-clique algorithms: rounds, recovery, and the regime map.

Two tables:

1. **Appendix B protocol** — success rate and measured ``BCAST(1)`` round
   count of the subsampling protocol versus the predicted
   ``2 + n·log²n/k = O(n/k · polylog n)`` rounds, swept over ``k``.
2. **Who wins where** — recovery rate of the three algorithms (Appendix B
   distributed, degree heuristic, centralized spectral) across the ``k``
   spectrum, mapping the crossovers the paper describes: everything fails
   near ``n^{1/4}`` (the lower-bound regime), spectral turns on at
   ``Θ(√n)``, degree at ``Θ(√(n log n))``, Appendix B needs
   ``k = ω(log²n)``.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _util import print_table

from repro.cliques import (
    degree_recover,
    expected_rounds,
    recovery_quality,
    spectral_recover,
    subsample_recover,
)
from repro.distributions import PlantedClique

N = 256
TRIALS = 8


def compute_subsample_table():
    rng = np.random.default_rng(42)
    rows = []
    for k in (48, 64, 96, 128):
        successes = 0
        total_rounds = 0
        runs = 0
        for _ in range(TRIALS):
            matrix, clique = PlantedClique(N, k).sample_with_clique(rng)
            recovered, rounds = subsample_recover(matrix, k, rng)
            total_rounds += rounds
            runs += 1
            if recovered is not None:
                precision, recall = recovery_quality(recovered, clique)
                if precision > 0.9 and recall > 0.9:
                    successes += 1
        rows.append(
            [
                k,
                successes / runs,
                total_rounds / runs,
                expected_rounds(N, k),
            ]
        )
    return rows


def compute_regime_table():
    rng = np.random.default_rng(43)
    quarter = round(N ** 0.25)
    sqrt_n = round(N ** 0.5)
    rows = []
    for k in (quarter, sqrt_n, 2 * sqrt_n, 4 * sqrt_n, 8 * sqrt_n):
        rates = {"subsample": 0.0, "degree": 0.0, "spectral": 0.0}
        for _ in range(TRIALS):
            matrix, clique = PlantedClique(N, k).sample_with_clique(rng)
            recovered, _ = subsample_recover(matrix, k, rng)
            if recovered is not None:
                _, recall = recovery_quality(recovered, clique)
                rates["subsample"] += recall / TRIALS
            _, recall = recovery_quality(degree_recover(matrix, k), clique)
            rates["degree"] += recall / TRIALS
            _, recall = recovery_quality(spectral_recover(matrix, k), clique)
            rates["spectral"] += recall / TRIALS
        rows.append(
            [k, rates["subsample"], rates["degree"], rates["spectral"]]
        )
    return rows


def test_appendix_b_protocol(benchmark):
    rows = benchmark.pedantic(compute_subsample_table, rounds=1, iterations=1)
    print_table(
        f"E-TB.1a: Appendix B subsample protocol, n={N}",
        ["k", "success rate", "mean rounds", "predicted 2+n*log²n/k"],
        rows,
    )
    # Success: high for k >> log^2 n (log2(256)^2 = 64).
    assert rows[-1][1] >= 0.75
    # Rounds shrink as k grows — the O(n/k) scaling.
    mean_rounds = [row[2] for row in rows]
    assert mean_rounds[-1] < mean_rounds[0]
    # Rounds track the prediction within a factor 2.
    for row in rows:
        assert row[2] <= 2 * row[3]


def test_regime_map(benchmark):
    rows = benchmark.pedantic(compute_regime_table, rounds=1, iterations=1)
    print_table(
        f"E-TB.1b: who wins where (mean recall), n={N}",
        ["k", "subsample (BCAST)", "degree", "spectral"],
        rows,
    )
    # Lower-bound regime k ~ n^{1/4}: nothing recovers.
    assert rows[0][1] < 0.3 and rows[0][2] < 0.3 and rows[0][3] < 0.3
    # Spectral on by 2*sqrt(n).
    assert rows[2][3] > 0.8
    # Degree on by 4*sqrt(n).
    assert rows[3][2] > 0.8
    # Everything on at 8*sqrt(n) = n/2.
    assert min(rows[4][1:]) > 0.75
