"""Unit tests for per-phase cost models and the conformance checker."""

import pytest

from repro.core.network import CostReport
from repro.costs import COST_KINDS, CostModel, Phase, Realized, Sym


def reveal_model(**params):
    n, m = Sym("n"), Sym("m")
    return CostModel(
        [Phase("reveal", rounds=m, turns=n * m, broadcast_bits=n * m)],
        params=params,
    )


def bounded_model():
    n, r = Sym("n"), Sym("R")
    return CostModel(
        [Phase("propagate", rounds=r, turns=n * r, broadcast_bits=n * r)],
        params={},
        realized=[Realized("R", source="rounds", lo=1, hi=n)],
    )


def report(n=4, rounds=3, width=1, private=0, public=0):
    turns = n * rounds
    return CostReport(
        n_processors=n,
        rounds=rounds,
        turns=turns,
        broadcast_bits=turns * width,
        message_size=width,
        private_bits_per_processor=[private] * n,
        public_bits=public,
    )


class TestPhase:
    def test_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown cost kinds"):
            Phase("p", latency=3)

    def test_untagged_kind_costs_zero(self):
        phase = Phase("p", rounds=2)
        assert phase.cost("public_bits").evaluate({}) == 0

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Phase("", rounds=1)


class TestCostModelStructure:
    def test_needs_a_phase(self):
        with pytest.raises(ValueError):
            CostModel([])

    def test_rejects_duplicate_phase_names(self):
        with pytest.raises(ValueError, match="duplicate phase"):
            CostModel([Phase("a", rounds=1), Phase("a", rounds=2)])

    def test_rejects_param_realized_clash(self):
        with pytest.raises(ValueError, match="both params and realized"):
            CostModel(
                [Phase("a", rounds=Sym("R"))],
                params={"R": 3},
                realized=[Realized("R", lo=1, hi=3)],
            )

    def test_is_exact_and_free_symbols(self):
        exact = reveal_model()
        assert exact.is_exact
        assert exact.free_symbols() == frozenset({"n", "m"})
        bounded = bounded_model()
        assert not bounded.is_exact
        assert bounded.free_symbols() == frozenset({"n", "R"})

    def test_total_sums_across_phases(self):
        n = Sym("n")
        model = CostModel(
            [Phase("a", rounds=1, turns=n), Phase("b", rounds=2, turns=n * 2)]
        )
        assert model.total("rounds").evaluate({}) == 3
        assert model.total("turns").evaluate({"n": 5}) == 15


class TestEvaluatePredict:
    def test_evaluate_covers_every_kind(self):
        totals = reveal_model().evaluate(n=4, m=3)
        assert set(totals) == set(COST_KINDS)
        assert totals["rounds"] == 3
        assert totals["turns"] == 12
        assert totals["broadcast_bits"] == 12
        assert totals["total_private_bits"] == 0
        assert totals["public_bits"] == 0

    def test_instance_params_with_overrides(self):
        model = reveal_model(m=3)
        assert model.evaluate(n=4)["turns"] == 12
        assert model.evaluate(n=4, m=5)["turns"] == 20

    def test_predict_scales_by_trials(self):
        model = reveal_model(m=3)
        assert model.predict(10, n=4)["broadcast_bits"] == 120
        assert model.predict(0, n=4)["broadcast_bits"] == 0
        with pytest.raises(ValueError):
            model.predict(-1, n=4)

    def test_predict_is_exact_at_extrapolation_scale(self):
        # Pure integer formula evaluation — no simulation, no floats.
        model = reveal_model()
        n = 10**9
        assert model.predict(1, n=n, m=n)["broadcast_bits"] == n * n

    def test_predict_bounds_exact_model_degenerates(self):
        lo, hi = reveal_model().predict_bounds(2, n=4, m=3)["turns"]
        assert lo == hi == 24

    def test_predict_bounds_brackets_realized(self):
        bounds = bounded_model().predict_bounds(1, n=6)
        assert bounds["rounds"] == (1, 6)
        assert bounds["turns"] == (6, 36)


class TestConformance:
    def test_exact_model_accepts_matching_report(self):
        model = reveal_model(m=3)
        assert model.check_trial(report(n=4, rounds=3), n=4) == []

    def test_exact_model_names_the_mismatching_kind(self):
        model = reveal_model(m=3)
        problems = model.check_trial(report(n=4, rounds=2), n=4)
        assert problems
        assert any("rounds: predicted 3 != measured 2" in p for p in problems)

    def test_bounded_model_binds_realized_from_report(self):
        model = bounded_model()
        assert model.check_trial(report(n=6, rounds=4), n=6) == []

    def test_bounded_model_rejects_out_of_bounds_realized(self):
        model = bounded_model()
        problems = model.check_trial(report(n=3, rounds=7), n=3)
        assert problems
        assert any("outside bounds [1, 3]" in p for p in problems)

    def test_check_batch_prefixes_trial_indices(self):
        model = reveal_model(m=3)
        reports = [report(n=4, rounds=3), report(n=4, rounds=9)]
        problems = model.check_batch(reports, n=4)
        assert problems
        assert all(p.startswith("trial 1:") for p in problems)

    def test_check_trial_covers_private_and_public_bits(self):
        n = Sym("n")
        model = CostModel(
            [
                Phase(
                    "flip",
                    rounds=1,
                    turns=n,
                    broadcast_bits=n,
                    total_private_bits=n * 24,
                )
            ]
        )
        good = report(n=4, rounds=1, private=24)
        assert model.check_trial(good, n=4) == []
        bad = report(n=4, rounds=1, private=23)
        assert any("total_private_bits" in p for p in model.check_trial(bad, n=4))
