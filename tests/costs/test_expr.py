"""Unit tests for the exact symbolic-expression layer."""

import pytest

from repro.costs import Const, Sym, as_expr, ceil_div, ceil_log2, max_, min_


class TestAtoms:
    def test_const_evaluates_to_itself(self):
        assert Const(7).evaluate({}) == 7
        assert Const(-3).evaluate({"n": 9}) == -3

    def test_const_rejects_non_ints(self):
        with pytest.raises(TypeError):
            Const(1.5)
        with pytest.raises(TypeError):
            Const(True)

    def test_sym_reads_bindings(self):
        assert Sym("n").evaluate({"n": 12}) == 12

    def test_sym_unbound_names_available_symbols(self):
        with pytest.raises(KeyError, match=r"'n' is unbound.*'k'"):
            Sym("n").evaluate({"k": 3})

    def test_sym_rejects_non_int_bindings(self):
        with pytest.raises(TypeError):
            Sym("n").evaluate({"n": 2.5})

    def test_as_expr_coerces_ints(self):
        expr = as_expr(4)
        assert isinstance(expr, Const)
        assert as_expr(expr) is expr


class TestArithmetic:
    def test_operator_sugar_both_sides(self):
        n = Sym("n")
        assert (n + 1).evaluate({"n": 5}) == 6
        assert (1 + n).evaluate({"n": 5}) == 6
        assert (n - 2).evaluate({"n": 5}) == 3
        assert (10 - n).evaluate({"n": 5}) == 5
        assert (n * 3).evaluate({"n": 5}) == 15
        assert (3 * n).evaluate({"n": 5}) == 15

    def test_compound_formula(self):
        n, r = Sym("n"), Sym("R")
        bits = n * r * ceil_log2(max_(2, n))
        assert bits.evaluate({"n": 8, "R": 4}) == 8 * 4 * 3

    def test_free_symbols_union(self):
        n, k = Sym("n"), Sym("k")
        expr = ceil_div(n, k) + min_(n, 3) * k
        assert expr.free_symbols() == frozenset({"n", "k"})
        assert Const(9).free_symbols() == frozenset()

    def test_arbitrary_precision(self):
        n = Sym("n")
        huge = 10**30
        assert (n * n).evaluate({"n": huge}) == huge * huge


class TestCeilDiv:
    def test_exact_and_rounding(self):
        n = Sym("n")
        assert ceil_div(n, 3).evaluate({"n": 9}) == 3
        assert ceil_div(n, 3).evaluate({"n": 10}) == 4
        assert ceil_div(n, 3).evaluate({"n": 0}) == 0

    def test_rejects_non_positive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, Sym("b")).evaluate({"b": 0})


class TestCeilLog2:
    def test_matches_bit_length_definition(self):
        expr = ceil_log2(Sym("x"))
        expected = {1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
        for x, want in expected.items():
            assert expr.evaluate({"x": x}) == want

    def test_exact_at_huge_powers_of_two(self):
        # Float log2 would misround near 2**k boundaries; bit_length won't.
        expr = ceil_log2(Sym("x"))
        assert expr.evaluate({"x": 2**400}) == 400
        assert expr.evaluate({"x": 2**400 + 1}) == 401

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2(Sym("x")).evaluate({"x": 0})


class TestMinMax:
    def test_values(self):
        n = Sym("n")
        assert max_(n, 2).evaluate({"n": 1}) == 2
        assert max_(n, 2).evaluate({"n": 7}) == 7
        assert min_(n, 2).evaluate({"n": 1}) == 1
        assert min_(n, 2).evaluate({"n": 7}) == 2


class TestRepr:
    def test_formulas_render_readably(self):
        n, b = Sym("n"), Sym("b")
        assert repr(n + 1) == "(n + 1)"
        assert repr(ceil_div(n, b)) == "ceil(n / b)"
        assert repr(ceil_log2(max_(2, n))) == "ceil_log2(max(2, n))"
        assert repr(min_(n, Const(4))) == "min(n, 4)"
