"""Tests for transcript rendering and statistics."""

import numpy as np
import pytest

from repro.core import (
    BroadcastEvent,
    FunctionProtocol,
    Transcript,
    format_transcript,
    run_protocol,
    transcript_stats,
)


def build_transcript(messages, n, width=1):
    t = Transcript()
    for turn, message in enumerate(messages):
        t.append(
            BroadcastEvent(turn, turn // n, turn % n, message, width)
        )
    return t


class TestFormat:
    def test_empty(self):
        assert format_transcript(Transcript()) == "(empty transcript)"

    def test_grid_layout(self):
        t = build_transcript([1, 0, 0, 1], n=2)
        rendered = format_transcript(t, n=2)
        lines = rendered.splitlines()
        assert "p0" in lines[0] and "p1" in lines[0]
        assert lines[2].startswith("    0 |")
        assert lines[3].startswith("    1 |")

    def test_infers_n(self):
        t = build_transcript([1, 0, 1], n=3)
        rendered = format_transcript(t)
        assert "p2" in rendered

    def test_partial_round_shows_dots(self):
        t = Transcript()
        t.append(BroadcastEvent(0, 0, 0, 1, 1))
        rendered = format_transcript(t, n=3)
        assert "." in rendered


class TestStats:
    def test_empty_stats(self):
        stats = transcript_stats(Transcript())
        assert stats.n_turns == 0
        assert stats.payload_entropy == 0.0

    def test_counts(self):
        t = build_transcript([1, 0, 1, 1], n=2)
        stats = transcript_stats(t)
        assert stats.n_turns == 4
        assert stats.n_rounds == 2
        assert stats.total_bits == 4
        assert stats.ones_fraction == pytest.approx(0.75)
        assert stats.per_sender_ones == {0: 1.0, 1: 0.5}

    def test_entropy_of_constant_payloads(self):
        t = build_transcript([1, 1, 1, 1], n=2)
        assert transcript_stats(t).payload_entropy == pytest.approx(0.0)

    def test_balance_check(self):
        balanced = build_transcript([1, 0, 1, 0], n=2)
        assert transcript_stats(balanced).is_balanced()
        skewed = build_transcript([1, 1, 1, 1], n=2)
        assert not transcript_stats(skewed).is_balanced()

    def test_on_prg_transcript(self, rng):
        """The PRG's broadcast phase is raw coin flips: stats must look
        balanced and high-entropy."""
        from repro.prg import MatrixPRGProtocol

        result = run_protocol(
            MatrixPRGProtocol(8, 24),
            np.zeros((16, 1), dtype=np.uint8),
            rng=rng,
        )
        stats = transcript_stats(result.transcript)
        assert stats.is_balanced(tolerance=0.15)

    def test_multibit_payload_stats(self, rng):
        protocol = FunctionProtocol(1, lambda i, row, p: 3, message_size=2)
        result = run_protocol(
            protocol, np.zeros((3, 1), dtype=np.uint8), rng=rng
        )
        stats = transcript_stats(result.transcript)
        assert stats.total_bits == 6
        assert stats.ones_fraction == 1.0
