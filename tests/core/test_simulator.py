"""Tests for the BCAST simulator: schedulers, invariants, accounting."""

import numpy as np
import pytest

from repro.core import (
    FunctionProtocol,
    MessageSizeError,
    Protocol,
    PublicCoins,
    RandomnessExhausted,
    RoundScheduler,
    SchedulingError,
    TurnScheduler,
    run_protocol,
)


def first_bit_protocol(n_rounds=1, message_size=1):
    """Everyone broadcasts the first bit of their input every round."""
    return FunctionProtocol(
        n_rounds,
        lambda proc_id, row, p: int(row[0]),
        message_size=message_size,
    )


class EchoPreviousProtocol(Protocol):
    """Round 0: broadcast own first bit.  Round 1: broadcast what processor
    0 said in round 0 (tests transcript visibility)."""

    def num_rounds(self, n):
        return 2

    def broadcast(self, proc, round_index):
        if round_index == 0:
            return int(proc.input[0])
        return proc.round_messages(0)[0]


class PeekCurrentRoundProtocol(Protocol):
    """Broadcasts 1 iff it can see an earlier message of the *current*
    round — distinguishes turn from round scheduling."""

    def num_rounds(self, n):
        return 1

    def broadcast(self, proc, round_index):
        return int(len(proc.transcript.last_round_messages()) > 0)


class TestBasics:
    def test_outputs_and_transcript_shape(self, rng):
        inputs = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        result = run_protocol(first_bit_protocol(), inputs, rng=rng)
        assert result.transcript.n_turns == 3
        assert [e.message for e in result.transcript] == [1, 0, 1]
        assert result.cost.rounds == 1
        assert result.cost.turns == 3

    def test_inputs_must_be_2d(self, rng):
        with pytest.raises(ValueError):
            run_protocol(first_bit_protocol(), np.zeros(3), rng=rng)

    def test_unknown_scheduler_raises(self, rng):
        with pytest.raises(SchedulingError):
            run_protocol(
                first_bit_protocol(),
                np.zeros((2, 2), dtype=np.uint8),
                scheduler="bogus",
                rng=rng,
            )

    def test_rounds_override(self, rng):
        inputs = np.zeros((2, 1), dtype=np.uint8)
        result = run_protocol(first_bit_protocol(5), inputs, rounds=2, rng=rng)
        assert result.cost.rounds == 2

    def test_output_of(self, rng):
        protocol = FunctionProtocol(
            1,
            lambda i, row, p: int(row[0]),
            output_fn=lambda i, row, p: i * 10,
        )
        inputs = np.zeros((3, 1), dtype=np.uint8)
        result = run_protocol(protocol, inputs, rng=rng)
        assert result.output_of(2) == 20


class TestBroadcastConstraint:
    def test_oversized_message_rejected(self, rng):
        protocol = FunctionProtocol(1, lambda i, row, p: 2)  # needs 2 bits
        with pytest.raises(MessageSizeError):
            run_protocol(protocol, np.zeros((2, 1), dtype=np.uint8), rng=rng)

    def test_negative_message_rejected(self, rng):
        protocol = FunctionProtocol(1, lambda i, row, p: -1)
        with pytest.raises(MessageSizeError):
            run_protocol(protocol, np.zeros((2, 1), dtype=np.uint8), rng=rng)

    def test_wide_messages_allowed_in_bcast_b(self, rng):
        protocol = FunctionProtocol(1, lambda i, row, p: 5, message_size=3)
        result = run_protocol(protocol, np.zeros((2, 1), dtype=np.uint8), rng=rng)
        assert result.transcript.total_bits == 6
        assert result.cost.bcast1_equivalent_rounds() == 3


class TestScheduling:
    def test_round_model_hides_current_round(self, rng):
        inputs = np.zeros((4, 1), dtype=np.uint8)
        result = run_protocol(
            PeekCurrentRoundProtocol(), inputs, scheduler="round", rng=rng
        )
        assert all(e.message == 0 for e in result.transcript)

    def test_turn_model_reveals_current_round(self, rng):
        inputs = np.zeros((4, 1), dtype=np.uint8)
        result = run_protocol(
            PeekCurrentRoundProtocol(), inputs, scheduler="turn", rng=rng
        )
        messages = [e.message for e in result.transcript]
        assert messages == [0, 1, 1, 1]  # all but the first speaker peek

    def test_scheduler_instances_accepted(self, rng):
        inputs = np.zeros((2, 1), dtype=np.uint8)
        for scheduler in (RoundScheduler(), TurnScheduler()):
            result = run_protocol(
                first_bit_protocol(), inputs, scheduler=scheduler, rng=rng
            )
            assert result.transcript.n_turns == 2

    def test_cross_round_visibility(self, rng):
        inputs = np.array([[1], [0], [0]], dtype=np.uint8)
        result = run_protocol(EchoPreviousProtocol(), inputs, rng=rng)
        round1 = result.transcript.messages_in_round(1)
        assert all(e.message == 1 for e in round1)


class TestDynamicTermination:
    def test_finished_stops_early(self, rng):
        class StopAfterOne(Protocol):
            def num_rounds(self, n):
                return 10

            def finished(self, n, transcript, completed_rounds):
                return completed_rounds >= 1

            def broadcast(self, proc, round_index):
                return 0

        result = run_protocol(
            StopAfterOne(), np.zeros((2, 1), dtype=np.uint8), rng=rng
        )
        assert result.cost.rounds == 1

    def test_rounds_override_ignores_finished(self, rng):
        class StopImmediately(Protocol):
            def num_rounds(self, n):
                return 10

            def finished(self, n, transcript, completed_rounds):
                return True

            def broadcast(self, proc, round_index):
                return 0

        result = run_protocol(
            StopImmediately(), np.zeros((2, 1), dtype=np.uint8),
            rounds=3, rng=rng,
        )
        assert result.cost.rounds == 3


class TestRandomnessIntegration:
    def test_private_budget_enforced(self, rng):
        class Greedy(Protocol):
            def num_rounds(self, n):
                return 1

            def broadcast(self, proc, round_index):
                proc.coins.draw_bits(100)
                return 0

        with pytest.raises(RandomnessExhausted):
            run_protocol(
                Greedy(),
                np.zeros((2, 1), dtype=np.uint8),
                private_bit_budget=50,
                rng=rng,
            )

    def test_private_bits_reported(self, rng):
        class FlipsThree(Protocol):
            def num_rounds(self, n):
                return 1

            def broadcast(self, proc, round_index):
                proc.coins.draw_bits(3)
                return 0

        result = run_protocol(
            FlipsThree(), np.zeros((4, 1), dtype=np.uint8), rng=rng
        )
        assert result.cost.private_bits_per_processor == [3, 3, 3, 3]
        assert result.cost.total_private_bits == 12
        assert result.cost.max_private_bits == 3

    def test_public_coins_shared_and_counted(self, rng):
        class UsesPublic(Protocol):
            def num_rounds(self, n):
                return 1

            def broadcast(self, proc, round_index):
                if proc.proc_id == 0:
                    proc.memory["p"] = proc.public_coins.draw_bit()
                return 0

        public = PublicCoins(np.random.default_rng(0))
        result = run_protocol(
            UsesPublic(),
            np.zeros((3, 1), dtype=np.uint8),
            public_coins=public,
            rng=rng,
        )
        assert result.cost.public_bits == 1

    def test_deterministic_given_seed(self):
        inputs = np.zeros((4, 2), dtype=np.uint8)

        class RandomBits(Protocol):
            def num_rounds(self, n):
                return 2

            def broadcast(self, proc, round_index):
                return proc.coins.draw_bit()

        key_a = run_protocol(
            RandomBits(), inputs, rng=np.random.default_rng(9)
        ).transcript.key()
        key_b = run_protocol(
            RandomBits(), inputs, rng=np.random.default_rng(9)
        ).transcript.key()
        assert key_a == key_b


class TestCostReport:
    def test_summary_mentions_key_fields(self, rng):
        result = run_protocol(
            first_bit_protocol(), np.zeros((3, 1), dtype=np.uint8), rng=rng
        )
        summary = result.cost.summary()
        assert "3 processors" in summary
        assert "BCAST(1)" in summary
