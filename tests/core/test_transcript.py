"""Tests for transcripts and broadcast events."""

import pytest

from repro.core import BroadcastEvent, Transcript


def make_event(turn, round_index=0, sender=0, message=1, width=1):
    return BroadcastEvent(turn, round_index, sender, message, width)


class TestBroadcastEvent:
    def test_bits_little_endian(self):
        event = make_event(0, message=0b101, width=3)
        assert event.bits() == (1, 0, 1)

    def test_single_bit(self):
        assert make_event(0, message=1, width=1).bits() == (1,)

    def test_frozen(self):
        event = make_event(0)
        with pytest.raises(AttributeError):
            event.turn = 5


class TestTranscript:
    def test_append_and_length(self):
        t = Transcript()
        t.append(make_event(0))
        t.append(make_event(1, sender=1))
        assert len(t) == 2
        assert t.n_turns == 2

    def test_turn_ordering_enforced(self):
        t = Transcript()
        t.append(make_event(0))
        with pytest.raises(ValueError):
            t.append(make_event(2))

    def test_first_turn_must_be_zero(self):
        t = Transcript()
        with pytest.raises(ValueError):
            t.append(make_event(1))

    def test_total_bits(self):
        t = Transcript()
        t.append(make_event(0, width=3, message=5))
        t.append(make_event(1, width=1))
        assert t.total_bits == 4

    def test_messages_from(self):
        t = Transcript()
        t.append(make_event(0, sender=0, message=1))
        t.append(make_event(1, sender=1, message=0))
        t.append(make_event(2, sender=0, message=0))
        from_zero = t.messages_from(0)
        assert [e.message for e in from_zero] == [1, 0]

    def test_messages_in_round(self):
        t = Transcript()
        t.append(make_event(0, round_index=0))
        t.append(make_event(1, round_index=0))
        t.append(make_event(2, round_index=1))
        assert len(t.messages_in_round(0)) == 2
        assert len(t.messages_in_round(1)) == 1
        assert len(t.last_round_messages()) == 1

    def test_last_round_of_empty(self):
        assert Transcript().last_round_messages() == []

    def test_key_and_bits(self):
        t = Transcript()
        t.append(make_event(0, message=2, width=2))
        t.append(make_event(1, message=1, width=2))
        assert t.key() == (2, 1)
        assert t.bits() == (0, 1, 1, 0)

    def test_prefix(self):
        t = Transcript()
        for turn in range(4):
            t.append(make_event(turn, sender=turn % 2))
        prefix = t.prefix(2)
        assert prefix.n_turns == 2
        with pytest.raises(ValueError):
            t.prefix(5)

    def test_equality_and_hash(self):
        a, b = Transcript(), Transcript()
        a.append(make_event(0))
        b.append(make_event(0))
        assert a == b
        assert hash(a) == hash(b)

    def test_copy_is_independent(self):
        a = Transcript()
        a.append(make_event(0))
        b = a.copy()
        b.append(make_event(1))
        assert a.n_turns == 1
        assert b.n_turns == 2

    def test_getitem_and_iter(self):
        t = Transcript()
        t.append(make_event(0, message=1))
        t.append(make_event(1, message=0))
        assert t[0].message == 1
        assert [e.message for e in t] == [1, 0]
