"""Tests for metered coin sources."""

import numpy as np
import pytest

from repro.core import (
    PrivateCoins,
    PublicCoins,
    RandomnessExhausted,
    ReplayCoins,
    ZeroCoins,
)
from repro.linalg import BitVector


class TestAccounting:
    def test_bits_counted(self, rng):
        coins = PrivateCoins(rng)
        coins.draw_bit()
        coins.draw_bits(10)
        coins.draw_int(5)
        assert coins.bits_used == 16

    def test_budget_enforced(self, rng):
        coins = PrivateCoins(rng, budget=4)
        coins.draw_bits(4)
        with pytest.raises(RandomnessExhausted):
            coins.draw_bit()

    def test_remaining(self, rng):
        coins = PrivateCoins(rng, budget=10)
        coins.draw_bits(3)
        assert coins.remaining() == 7
        assert PrivateCoins(rng).remaining() is None

    def test_negative_draw_raises(self, rng):
        with pytest.raises(ValueError):
            PrivateCoins(rng).draw_bits(-1)

    def test_draw_int_range(self, rng):
        coins = PublicCoins(rng)
        for _ in range(20):
            assert 0 <= coins.draw_int(7) < 128

    def test_draw_int_wide(self, rng):
        coins = PublicCoins(rng)
        value = coins.draw_int(70)
        assert 0 <= value < 2**70


class TestZeroCoins:
    def test_refuses_everything(self):
        coins = ZeroCoins()
        with pytest.raises(RandomnessExhausted):
            coins.draw_bit()


class TestReplayCoins:
    def test_replays_exactly(self):
        bits = BitVector.from_bits([1, 0, 1, 1, 0, 0, 1, 0])
        coins = ReplayCoins(bits)
        assert coins.draw_bit() == 1
        assert coins.draw_bit() == 0
        assert list(coins.draw_bits(3)) == [1, 1, 0]
        # positions 5,6,7 hold (0,1,0); little-endian int = 0*1 + 1*2 + 0*4
        assert coins.draw_int(3) == 2

    def test_exhaustion(self):
        coins = ReplayCoins(BitVector.from_bits([1, 0]))
        coins.draw_bits(2)
        with pytest.raises(RandomnessExhausted):
            coins.draw_bit()

    def test_bits_used_tracked(self):
        coins = ReplayCoins(BitVector.from_bits([1] * 6))
        coins.draw_int(4)
        assert coins.bits_used == 4
        assert coins.remaining() == 2

    def test_statistical_uniformity_of_sources(self, rng):
        # Sanity: the metered wrapper does not bias the underlying bits.
        coins = PrivateCoins(rng)
        ones = sum(coins.draw_bit() for _ in range(2000))
        assert 850 < ones < 1150
