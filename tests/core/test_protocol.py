"""Tests for the protocol abstractions."""

import numpy as np
import pytest

from repro.core import (
    ComposedProtocol,
    FunctionProtocol,
    ProcessorContext,
    Protocol,
    ProtocolViolation,
    run_protocol,
)


class TestFunctionProtocol:
    def test_shared_function(self, rng):
        protocol = FunctionProtocol(1, lambda i, row, p: int(row[0]) ^ 1)
        inputs = np.array([[1], [0]], dtype=np.uint8)
        result = run_protocol(protocol, inputs, rng=rng)
        assert [e.message for e in result.transcript] == [0, 1]

    def test_per_processor_functions(self, rng):
        fns = [
            lambda i, row, p: 0,
            lambda i, row, p: 1,
        ]
        protocol = FunctionProtocol(1, fns)
        result = run_protocol(
            protocol, np.zeros((2, 1), dtype=np.uint8), rng=rng
        )
        assert [e.message for e in result.transcript] == [0, 1]

    def test_transcript_bits_passed(self, rng):
        seen = []

        def fn(i, row, p):
            seen.append(p)
            return 0

        protocol = FunctionProtocol(1, fn)
        run_protocol(
            protocol, np.zeros((3, 1), dtype=np.uint8),
            scheduler="turn", rng=rng,
        )
        assert seen == [(), (0,), (0, 0)]

    def test_negative_rounds_raise(self):
        with pytest.raises(ValueError):
            FunctionProtocol(-1, lambda i, row, p: 0)

    def test_default_output_is_none(self, rng):
        protocol = FunctionProtocol(1, lambda i, row, p: 0)
        result = run_protocol(
            protocol, np.zeros((2, 1), dtype=np.uint8), rng=rng
        )
        assert result.outputs == [None, None]


class OneRoundConstant(Protocol):
    def __init__(self, bit, tag):
        self.bit = bit
        self.tag = tag

    def num_rounds(self, n):
        return 1

    def setup(self, proc):
        proc.memory.setdefault("setup_order", []).append(self.tag)

    def broadcast(self, proc, round_index):
        return self.bit

    def output(self, proc):
        return proc.memory.get("setup_order")


class TestComposedProtocol:
    def test_runs_phases_in_order(self, rng):
        composed = ComposedProtocol(OneRoundConstant(1, "a"), OneRoundConstant(0, "b"))
        inputs = np.zeros((2, 1), dtype=np.uint8)
        result = run_protocol(composed, inputs, rng=rng)
        assert [e.message for e in result.transcript] == [1, 1, 0, 0]
        assert result.cost.rounds == 2

    def test_second_setup_called_at_phase_boundary(self, rng):
        composed = ComposedProtocol(OneRoundConstant(1, "a"), OneRoundConstant(0, "b"))
        result = run_protocol(
            composed, np.zeros((2, 1), dtype=np.uint8), rng=rng
        )
        assert result.outputs[0] == ["a", "b"]

    def test_message_size_mismatch_rejected(self):
        wide = FunctionProtocol(1, lambda i, r, p: 0, message_size=2)
        narrow = FunctionProtocol(1, lambda i, r, p: 0, message_size=1)
        with pytest.raises(ProtocolViolation):
            ComposedProtocol(wide, narrow)

    def test_nested_composition_runs_every_setup(self, rng):
        """Regression: the phase-boundary marker used to be one shared
        memory key, so a ComposedProtocol nested as the second phase saw
        the outer composition's marker and silently skipped its own second
        protocol's setup."""
        composed = ComposedProtocol(
            OneRoundConstant(1, "a"),
            ComposedProtocol(OneRoundConstant(0, "b"), OneRoundConstant(1, "c")),
        )
        inputs = np.zeros((2, 1), dtype=np.uint8)
        result = run_protocol(composed, inputs, rng=rng)
        assert [e.message for e in result.transcript] == [1, 1, 0, 0, 1, 1]
        assert result.outputs[0] == ["a", "b", "c"]

    def test_nested_composition_first_phase(self, rng):
        composed = ComposedProtocol(
            ComposedProtocol(OneRoundConstant(1, "a"), OneRoundConstant(0, "b")),
            OneRoundConstant(1, "c"),
        )
        inputs = np.zeros((2, 1), dtype=np.uint8)
        result = run_protocol(composed, inputs, rng=rng)
        assert [e.message for e in result.transcript] == [1, 1, 0, 0, 1, 1]
        assert result.outputs[0] == ["a", "b", "c"]

    def test_zero_round_second_phase_still_sets_up(self, rng):
        composed = ComposedProtocol(
            OneRoundConstant(1, "a"),
            FunctionProtocol(
                0, lambda i, r, p: 0, output_fn=lambda i, r, p: "done"
            ),
        )
        result = run_protocol(
            composed, np.zeros((2, 1), dtype=np.uint8), rng=rng
        )
        assert result.outputs[0] == "done"


class TestProcessorContext:
    def test_bad_proc_id_rejected(self, rng):
        from repro.core import PrivateCoins, Transcript

        with pytest.raises(ValueError):
            ProcessorContext(
                5, 3, np.zeros(2), PrivateCoins(rng), None, Transcript()
            )

    def test_views(self, rng):
        inputs = np.array([[1, 0], [0, 1]], dtype=np.uint8)

        class Recorder(Protocol):
            def num_rounds(self, n):
                return 2

            def broadcast(self, proc, round_index):
                return proc.proc_id

            def output(self, proc):
                return (
                    proc.my_previous_messages(),
                    proc.round_messages(0),
                    proc.input_bit(0),
                )

        result = run_protocol(Recorder(), inputs, rng=rng)
        mine, round0, bit = result.outputs[1]
        assert mine == [1, 1]
        assert round0 == {0: 0, 1: 1}
        assert bit == 0
