"""Tests for the BCAST(b) -> BCAST(1) compiler (footnote 1)."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bcast1Compiled,
    FunctionProtocol,
    Protocol,
    compiled_round_count,
    run_protocol,
)


class WidePayload(Protocol):
    """BCAST(3): round 0 broadcasts the first 3 input bits as one payload;
    round 1 echoes processor 0's round-0 payload.  Output: sum of all
    payloads heard."""

    message_size = 3

    def num_rounds(self, n):
        return 2

    def broadcast(self, proc, round_index):
        if round_index == 0:
            return int(proc.input[0]) | (int(proc.input[1]) << 1) | (
                int(proc.input[2]) << 2
            )
        return proc.round_messages(0)[0]

    def output(self, proc):
        return sum(e.message for e in proc.transcript)


class TestCompiledRoundCount:
    def test_formula(self):
        assert compiled_round_count(4, 3) == 12
        assert compiled_round_count(1, 1) == 1

    def test_log_n_factor(self):
        """The footnote's statement: BCAST(log n) costs a log n factor."""
        import math

        n = 64
        b = math.ceil(math.log2(n))
        assert compiled_round_count(10, b) == 10 * b


class TestCompiledExecution:
    def test_outputs_match_source(self, rng):
        inputs = rng.integers(0, 2, size=(4, 3), dtype=np.uint8)
        source_result = run_protocol(
            WidePayload(), inputs, rng=np.random.default_rng(0)
        )
        compiled_result = run_protocol(
            Bcast1Compiled(WidePayload()), inputs, rng=np.random.default_rng(0)
        )
        assert compiled_result.outputs == source_result.outputs

    def test_round_count_multiplies(self, rng):
        inputs = rng.integers(0, 2, size=(4, 3), dtype=np.uint8)
        result = run_protocol(Bcast1Compiled(WidePayload()), inputs, rng=rng)
        assert result.cost.rounds == 2 * 3
        assert result.cost.message_size == 1

    def test_total_bits_preserved(self, rng):
        inputs = rng.integers(0, 2, size=(4, 3), dtype=np.uint8)
        source = run_protocol(WidePayload(), inputs, rng=rng)
        compiled = run_protocol(Bcast1Compiled(WidePayload()), inputs, rng=rng)
        assert (
            compiled.transcript.total_bits == source.transcript.total_bits
        )

    def test_function_protocol_source(self, rng):
        source = FunctionProtocol(
            1, lambda i, row, p: int(row[0]) * 3, message_size=2
        )
        inputs = np.array([[1], [0], [1]], dtype=np.uint8)
        result = run_protocol(Bcast1Compiled(source), inputs, rng=rng)
        # payload 3 -> bits (1,1); payload 0 -> bits (0,0)
        assert [e.message for e in result.transcript] == [1, 0, 1, 1, 0, 1]

    def test_cross_round_source_visibility(self, rng):
        """The source's second round reads the reconstructed round-0
        payloads — the virtual view must decode them correctly."""
        inputs = np.array(
            [[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8
        )
        source = run_protocol(WidePayload(), inputs, rng=rng)
        compiled = run_protocol(Bcast1Compiled(WidePayload()), inputs, rng=rng)
        # Round-1 source payloads (echo of processor 0) must agree.
        source_round1 = [
            e.message for e in source.transcript.messages_in_round(1)
        ]
        # Reconstruct compiled rounds 3..5 into payloads.
        compiled_bits = [e.message for e in compiled.transcript]
        n, b = 3, 3
        payloads = []
        for sender in range(n):
            value = 0
            for t in range(b):
                value |= compiled_bits[(b + t) * n + sender] << t
            payloads.append(value)
        assert payloads == source_round1

    def test_oversized_source_payload_rejected(self, rng):
        source = FunctionProtocol(1, lambda i, row, p: 9, message_size=3)
        with pytest.raises(ValueError):
            run_protocol(
                Bcast1Compiled(source),
                np.zeros((2, 1), dtype=np.uint8),
                rng=rng,
            )

    def test_width_one_is_identity(self, rng):
        source = FunctionProtocol(2, lambda i, row, p: int(row[0]))
        inputs = rng.integers(0, 2, size=(3, 1), dtype=np.uint8)
        a = run_protocol(source, inputs, rng=rng)
        b = run_protocol(Bcast1Compiled(source), inputs, rng=rng)
        assert a.transcript.key() == b.transcript.key()


@given(
    n=st.integers(2, 4),
    width=st.integers(1, 4),
    rounds=st.integers(1, 2),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_compilation_preserves_semantics_property(n, width, rounds, seed):
    """For arbitrary (hash-derived) deterministic BCAST(b) protocols, the
    compiled BCAST(1) execution reconstructs the identical source-level
    payload sequence and outputs."""

    def fn(i, row, p):
        digest = hashlib.blake2b(
            seed.to_bytes(8, "little")
            + i.to_bytes(2, "little")
            + bytes(np.asarray(row, dtype=np.uint8))
            + bytes(p),
            digest_size=2,
        ).digest()
        return int.from_bytes(digest, "little") % (1 << width)

    def out_fn(i, row, p):
        return sum(p)

    source = FunctionProtocol(rounds, fn, message_size=width, output_fn=out_fn)
    rng = np.random.default_rng(seed)
    inputs = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
    source_result = run_protocol(source, inputs, rng=np.random.default_rng(0))
    compiled_result = run_protocol(
        Bcast1Compiled(
            FunctionProtocol(rounds, fn, message_size=width, output_fn=out_fn)
        ),
        inputs,
        rng=np.random.default_rng(0),
    )
    assert compiled_result.outputs == source_result.outputs
    assert (
        compiled_result.cost.rounds
        == compiled_round_count(rounds, width)
    )
    assert (
        compiled_result.transcript.total_bits
        == source_result.transcript.total_bits
    )
