"""Regression tests pinning the DET01 fixes to bit-identical behaviour.

Each test covers one site where ambient randomness used to be drawn (or
where seeded generators were constructed ad hoc) and asserts the
sanctioned :func:`repro.core.randomness.expand_seed` path reproduces runs
exactly: same seed → same transcript, same outputs, same derived state.
These are the invariants the ``DET01`` lint rule now enforces statically.
"""

from __future__ import annotations

import numpy as np

from repro.core import expand_seed, fresh_generator, run_protocol
from repro.core.randomness import PublicCoins
from repro.core.simulator import make_contexts
from repro.distinguish.distinguishers import RandomParityProbe
from repro.prg.newman import NewmanCompiled
from repro.protocols.equality import FingerprintEqualityProtocol
from repro.protocols.triangles import SampledTriangleProtocol


def test_expand_seed_matches_default_rng_bits():
    """The sanctioned helper is bit-compatible with np.random.default_rng —
    the contract that made the DET01 migration a no-op for results."""
    for seed in (0, 1, 12345, 2**40):
        ours = expand_seed(seed).integers(0, 2**63, size=32)
        theirs = np.random.default_rng(seed).integers(0, 2**63, size=32)
        assert np.array_equal(ours, theirs)


def test_expand_seed_accepts_seed_sequence():
    seq = np.random.SeedSequence(77)
    a = expand_seed(seq).integers(0, 100, size=8)
    b = np.random.default_rng(np.random.SeedSequence(77)).integers(0, 100, size=8)
    assert np.array_equal(a, b)


def test_fresh_generator_returns_independent_generators():
    a, b = fresh_generator(), fresh_generator()
    assert isinstance(a, np.random.Generator)
    # Astronomically unlikely to collide if correctly OS-entropy seeded.
    assert not np.array_equal(
        a.integers(0, 2**63, size=8), b.integers(0, 2**63, size=8)
    )


def test_sampled_triangle_protocol_replays_bit_identically():
    n, probes, seed = 6, 12, 421
    rng_a = expand_seed(seed)
    adjacency = np.triu(rng_a.integers(0, 2, size=(n, n)), k=1)
    adjacency = (adjacency + adjacency.T).astype(np.uint8)

    def run_once() -> tuple:
        result = run_protocol(
            SampledTriangleProtocol(n, probes),
            adjacency,
            rng=expand_seed(seed + 1),
            public_coins=PublicCoins(expand_seed(seed + 2)),
        )
        return tuple(result.outputs), result.transcript.key()

    assert run_once() == run_once()


def test_fingerprint_equality_replays_bit_identically():
    m, probes, seed = 16, 8, 99
    inputs = np.tile(
        expand_seed(seed).integers(0, 2, size=m, dtype=np.uint8), (5, 1)
    )

    def run_once() -> tuple:
        result = run_protocol(
            FingerprintEqualityProtocol(m, probes),
            inputs,
            rng=expand_seed(seed + 1),
            public_coins=PublicCoins(expand_seed(seed + 2)),
        )
        return tuple(result.outputs), result.transcript.key()

    first = run_once()
    assert first == run_once()
    assert first[0] == (1,) * 5  # equal inputs always accept


def test_parity_probe_vectors_are_seed_deterministic():
    a = RandomParityProbe(n_rounds=5, row_length=32, seed=7)
    b = RandomParityProbe(n_rounds=5, row_length=32, seed=7)
    c = RandomParityProbe(n_rounds=5, row_length=32, seed=8)
    assert np.array_equal(a.probes, b.probes)
    assert not np.array_equal(a.probes, c.probes)


def test_newman_family_is_seed_deterministic():
    from repro.protocols.equality import DeterministicEqualityProtocol

    protocol = DeterministicEqualityProtocol(m=4)
    a = NewmanCompiled(protocol, t_family=32, master_seed=5)
    b = NewmanCompiled(protocol, t_family=32, master_seed=5)
    c = NewmanCompiled(protocol, t_family=32, master_seed=6)
    assert a.family_seeds == b.family_seeds
    assert a.family_seeds != c.family_seeds


def test_make_contexts_private_coins_replay():
    """Private coin streams derive from expand_seed per processor: two
    context sets built from equal rngs draw identical private bits."""

    def draw_bits() -> list[int]:
        contexts, _ = make_contexts(
            np.zeros((4, 3), dtype=np.uint8), rng=expand_seed(13)
        )
        return [ctx.coins.draw_int(16) for ctx in contexts]

    assert draw_bits() == draw_bits()


def test_run_protocol_default_rng_is_entropy_seeded():
    """With no rng given the simulator uses fresh_generator(): two runs of
    a coin-flipping protocol should (overwhelmingly) differ, i.e. the
    default is real entropy, not a fixed hidden seed."""
    from repro.core.protocol import Protocol

    class CoinFlips(Protocol):
        def num_rounds(self, n: int) -> int:
            return 16

        def broadcast(self, proc, round_index: int) -> int:
            return proc.coins.draw_bit()

    inputs = np.zeros((2, 1), dtype=np.uint8)
    keys = {
        run_protocol(CoinFlips(), inputs).transcript.key() for _ in range(4)
    }
    assert len(keys) > 1
