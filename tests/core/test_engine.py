"""Tests for the unified execution engine (RunSpec / Engine / BatchResult).

The load-bearing claims:

* batch trials are seeded by ``SeedSequence.spawn``, so the same master
  seed produces bit-identical ``BatchResult``s on the serial and parallel
  backends;
* ``run_protocol`` remains an exact wrapper: for a fixed seed it still
  produces the pre-refactor outputs/transcripts (golden values recorded
  against the seed revision);
* unpicklable specs degrade gracefully to serial execution.
"""

import numpy as np
import pytest

from repro.core import (
    BatchResult,
    Engine,
    FunctionProtocol,
    ParallelExecutor,
    Protocol,
    PublicCoins,
    RunSpec,
    SerialExecutor,
    resolve_executor,
    run_protocol,
)
from repro.distributions import UniformRows
from repro.lowerbounds import TopSubmatrixRankProtocol
from repro.protocols import FingerprintEqualityProtocol


def rank_spec(**overrides):
    defaults = dict(
        protocol=TopSubmatrixRankProtocol(3),
        distribution=UniformRows(4, 4),
        seed=1234,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


def batches_identical(a: BatchResult, b: BatchResult) -> bool:
    return (
        a.outputs == b.outputs
        and a.transcript_keys == b.transcript_keys
        and a.costs == b.costs
        and a.cost_totals() == b.cost_totals()
    )


class TestRunSpec:
    def test_needs_exactly_one_input_source(self):
        with pytest.raises(ValueError):
            RunSpec(protocol=TopSubmatrixRankProtocol(2))
        with pytest.raises(ValueError):
            RunSpec(
                protocol=TopSubmatrixRankProtocol(2),
                inputs=np.zeros((2, 2), dtype=np.uint8),
                distribution=UniformRows(2, 2),
            )

    def test_inputs_must_be_2d(self):
        with pytest.raises(ValueError):
            RunSpec(
                protocol=TopSubmatrixRankProtocol(2),
                inputs=np.zeros(4, dtype=np.uint8),
            )

    def test_bad_scheduler_rejected_up_front(self):
        from repro.core import SchedulingError

        with pytest.raises(SchedulingError):
            rank_spec(scheduler="bogus")

    def test_fresh_protocol_copies(self):
        spec = rank_spec()
        assert spec.fresh_protocol() is not spec.protocol

    def test_factory_protocol(self):
        from functools import partial

        spec = rank_spec(protocol=partial(TopSubmatrixRankProtocol, 3))
        assert isinstance(spec.fresh_protocol(), TopSubmatrixRankProtocol)


class TestDeterminism:
    def test_serial_equals_parallel(self):
        spec = rank_spec(record_inputs=True)
        serial = Engine(SerialExecutor()).run_batch(spec, 16)
        parallel = Engine(ParallelExecutor(max_workers=2)).run_batch(spec, 16)
        assert batches_identical(serial, parallel)
        assert all(
            (a.inputs == b.inputs).all() for a, b in zip(serial, parallel)
        )

    def test_same_seed_same_batch(self):
        b1 = Engine().run_batch(rank_spec(), 8)
        b2 = Engine().run_batch(rank_spec(), 8)
        assert batches_identical(b1, b2)

    def test_different_seed_different_batch(self):
        b1 = Engine().run_batch(rank_spec(seed=1), 8)
        b2 = Engine().run_batch(rank_spec(seed=2), 8)
        assert b1.transcript_keys != b2.transcript_keys

    def test_trials_are_independent_of_batch_size(self):
        """Trial t depends only on spawn child t, not on the trial count."""
        small = Engine().run_batch(rank_spec(), 4)
        large = Engine().run_batch(rank_spec(), 8)
        assert small.transcript_keys == large.transcript_keys[:4]

    def test_public_coins_factory_deterministic(self):
        inputs = np.ones((3, 8), dtype=np.uint8)
        inputs[1, 0] = 0
        spec = RunSpec(
            protocol=FingerprintEqualityProtocol(8, 4),
            inputs=inputs,
            seed=5,
            public_coins=PublicCoins,
        )
        serial = Engine("serial").run_batch(spec, 10)
        parallel = Engine(ParallelExecutor(max_workers=2)).run_batch(spec, 10)
        assert batches_identical(serial, parallel)
        assert (serial.public_bits > 0).all()


class TestBatchResult:
    def test_views_and_stats(self):
        batch = Engine().run_batch(rank_spec(), 6)
        assert len(batch) == 6
        assert batch.decisions().shape == (6,)
        assert set(np.unique(batch.decisions())) <= {0, 1}
        assert (batch.rounds == 3).all()
        assert (batch.broadcast_bits == 12).all()
        assert sum(batch.key_counts().values()) == 6
        assert batch.outputs_of(0) == [t.outputs[0] for t in batch]
        assert "6 trials" in batch.cost_summary()

    def test_record_flags_off_by_default(self):
        batch = Engine().run_batch(rank_spec(), 2)
        assert all(t.inputs is None and t.transcript is None for t in batch)

    def test_record_transcripts(self):
        batch = Engine().run_batch(rank_spec(record_transcripts=True), 2)
        assert all(t.transcript.key() == t.transcript_key for t in batch)

    def test_public_coin_instance_rejected_in_batch(self):
        spec = rank_spec(public_coins=PublicCoins(np.random.default_rng(0)))
        with pytest.raises(ValueError):
            Engine().run_batch(spec, 2)

    def test_cost_arrays_are_cached_and_identity_stable(self):
        """Repeated accessor reads return the *same* array object (no
        re-materialization per call) with unchanged contents."""
        batch = Engine().run_batch(rank_spec(), 5)
        accessors = [
            "rounds",
            "turns",
            "broadcast_bits",
            "total_private_bits",
            "max_private_bits",
            "public_bits",
        ]
        for name in accessors:
            first = getattr(batch, name)
            second = getattr(batch, name)
            assert second is first, name
            assert np.array_equal(first, getattr(batch, name)), name

    def test_cached_cost_arrays_are_read_only(self):
        # One shared object per attribute: a caller mutating it would
        # poison every later read, so the cache hands out frozen arrays.
        batch = Engine().run_batch(rank_spec(), 3)
        rounds = batch.rounds
        with pytest.raises(ValueError):
            rounds[0] = 99
        assert batch.rounds[0] == 3

    def test_cost_cache_excluded_from_equality(self):
        spec = rank_spec()
        warmed = Engine().run_batch(spec, 4)
        _ = warmed.rounds  # populate the cache on one side only
        cold = Engine().run_batch(spec, 4)
        assert warmed == cold


class TestExecutors:
    def test_resolve_names(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("parallel"), ParallelExecutor)
        with pytest.raises(ValueError):
            resolve_executor("gpu")

    def test_unpicklable_spec_falls_back_to_serial(self):
        spec = RunSpec(
            protocol=FunctionProtocol(1, lambda i, row, p: int(row[0])),
            distribution=UniformRows(3, 3),
            seed=77,
        )
        serial = Engine(SerialExecutor()).run_batch(spec, 6)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            parallel = Engine(ParallelExecutor(max_workers=2)).run_batch(spec, 6)
        assert batches_identical(serial, parallel)

    def test_zero_trials(self):
        batch = Engine().run_batch(rank_spec(), 0)
        assert len(batch) == 0


class NoisyParity(Protocol):
    """Golden-value workload: randomized parity under the turn model."""

    def num_rounds(self, n):
        return 2

    def broadcast(self, proc, r):
        return (int(proc.input.sum()) + proc.coins.draw_bit()) % 2

    def output(self, proc):
        return sum(e.message for e in proc.transcript) % 2


class TestRunProtocolBackCompat:
    """run_protocol must keep producing the exact pre-refactor results.

    Golden values recorded at the seed revision (before the engine
    existed) for fixed seeds.
    """

    def fixed_inputs(self):
        rng = np.random.default_rng(1234)
        return rng.integers(0, 2, size=(6, 6), dtype=np.uint8)

    def test_rank_protocol_golden(self):
        result = run_protocol(
            TopSubmatrixRankProtocol(4),
            self.fixed_inputs(),
            rng=np.random.default_rng(7),
        )
        assert result.outputs == [1, 1, 1, 1, 1, 1]
        assert result.transcript.key() == (
            1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0,
            1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 0,
        )
        assert result.cost.rounds == 4
        assert result.cost.turns == 24
        assert result.cost.broadcast_bits == 24

    def test_randomized_turn_model_golden(self):
        result = run_protocol(
            NoisyParity(),
            self.fixed_inputs(),
            rng=np.random.default_rng(42),
            scheduler="turn",
        )
        assert result.outputs == [0, 0, 0, 0, 0, 0]
        assert result.transcript.key() == (0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 1)
        assert result.cost.private_bits_per_processor == [2] * 6

    def test_engine_run_matches_run_protocol(self):
        """Engine.run with an explicit rng is the same code path."""
        protocol = TopSubmatrixRankProtocol(4)
        via_wrapper = run_protocol(
            protocol, self.fixed_inputs(), rng=np.random.default_rng(3)
        )
        via_engine = Engine().run(
            RunSpec(protocol=protocol, inputs=self.fixed_inputs()),
            rng=np.random.default_rng(3),
        )
        assert via_wrapper.outputs == via_engine.outputs
        assert via_wrapper.transcript.key() == via_engine.transcript.key()
        assert via_wrapper.cost == via_engine.cost
