"""The engine's vectorized fast path and shared-memory fixed-input path.

The contract under test: ``vectorized=True`` produces outputs, recorded
inputs, *transcript keys* and costs bit-identical to the scalar engine
path for protocols that support batching, falls back with a
``BatchFallbackWarning`` (counted on ``Engine.batch_fallbacks``)
otherwise, and the shared-memory input publication changes nothing but
the transport.
"""

import warnings

import numpy as np
import pytest

from repro.core.engine import Engine, ParallelExecutor, RunSpec
from repro.core.errors import BatchFallbackWarning
from repro.distinguish.sampling import (
    estimate_protocol_advantage,
    run_distinguisher,
)
from repro.distributions.prg_dists import PRGOutput
from repro.distributions.uniform import UniformRows
from repro.lowerbounds.hierarchy import TopSubmatrixRankProtocol, accuracy_on_uniform
from repro.prg.attacks import SupportMembershipAttack
from repro.protocols.parity import GlobalParityProtocol


class UnbatchedParityProtocol(GlobalParityProtocol):
    """Parity without batch support (GlobalParityProtocol gained it)."""

    supports_batch = False
    supports_batch_keys = False


class KeylessAttack(SupportMembershipAttack):
    """Batched decisions but no batched key synthesis: the fast path must
    decline rather than ship empty transcript keys."""

    supports_batch_keys = False


def scalar_and_vectorized(protocol, dist, trials, seed):
    scalar = Engine().run_batch(
        RunSpec(protocol=protocol, distribution=dist, seed=seed, record_inputs=True),
        trials,
    )
    fast = Engine().run_batch(
        RunSpec(
            protocol=protocol,
            distribution=dist,
            seed=seed,
            record_inputs=True,
            vectorized=True,
        ),
        trials,
    )
    return scalar, fast


class TestVectorizedFastPath:
    @pytest.mark.parametrize(
        "protocol,dist",
        [
            (SupportMembershipAttack(k=5), UniformRows(12, 9)),
            (SupportMembershipAttack(k=5), PRGOutput(12, 9, 5)),
            (TopSubmatrixRankProtocol(k=6), UniformRows(10, 10)),
            (TopSubmatrixRankProtocol(k=6, rounds_budget=3), UniformRows(10, 10)),
            (TopSubmatrixRankProtocol(k=6, rounds_budget=0), UniformRows(10, 10)),
        ],
    )
    def test_bit_identical_to_scalar_path(self, protocol, dist):
        scalar, fast = scalar_and_vectorized(protocol, dist, trials=30, seed=7)
        assert len(scalar) == len(fast) == 30
        for s, f in zip(scalar, fast):
            assert s.outputs == f.outputs
            assert np.array_equal(s.inputs, f.inputs)
            assert s.transcript_key == f.transcript_key
            assert s.cost == f.cost

    def test_fixed_inputs_batch(self, rng):
        inputs = rng.integers(0, 2, size=(12, 9), dtype=np.uint8)
        protocol = SupportMembershipAttack(k=5)
        scalar = Engine().run_batch(RunSpec(protocol=protocol, inputs=inputs, seed=1), 6)
        fast = Engine().run_batch(
            RunSpec(protocol=protocol, inputs=inputs, seed=1, vectorized=True), 6
        )
        assert scalar.outputs == fast.outputs
        assert scalar.transcript_keys == fast.transcript_keys

    def test_empty_batch(self):
        fast = Engine().run_batch(
            RunSpec(
                protocol=SupportMembershipAttack(k=3),
                distribution=UniformRows(8, 5),
                seed=0,
                vectorized=True,
            ),
            0,
        )
        assert len(fast) == 0

    def test_unsupported_protocol_falls_back_with_transcripts(self):
        spec = RunSpec(
            protocol=UnbatchedParityProtocol(),
            distribution=UniformRows(6, 4),
            seed=11,
            vectorized=True,
        )
        scalar = RunSpec(
            protocol=UnbatchedParityProtocol(), distribution=UniformRows(6, 4), seed=11
        )
        with pytest.warns(BatchFallbackWarning):
            fast = Engine().run_batch(spec, 8)
        want = Engine().run_batch(scalar, 8)
        assert fast.outputs == want.outputs
        # full scalar execution: real transcript keys, not fast-path stubs
        assert fast.transcript_keys == want.transcript_keys
        assert any(len(key) for key in fast.transcript_keys)

    def test_transcript_recording_falls_back(self):
        spec = RunSpec(
            protocol=SupportMembershipAttack(k=4),
            distribution=UniformRows(10, 7),
            seed=3,
            record_transcripts=True,
            vectorized=True,
        )
        with pytest.warns(BatchFallbackWarning):
            batch = Engine().run_batch(spec, 5)
        assert all(trial.transcript is not None for trial in batch)

    def test_batch_decisions_validates_width(self):
        with pytest.raises(ValueError):
            SupportMembershipAttack(k=5).batch_decisions(np.zeros((2, 8, 4)))
        with pytest.raises(ValueError):
            TopSubmatrixRankProtocol(k=5).batch_decisions(np.zeros((2, 3, 9)))


class TestBatchFallbackSignal:
    """The silent-downgrade footgun is gone: a vectorized spec that takes
    the scalar path warns exactly once per batch and bumps the counter."""

    def fallback_spec(self, protocol):
        return RunSpec(
            protocol=protocol,
            distribution=UniformRows(8, 6),
            seed=5,
            vectorized=True,
        )

    def test_warning_and_counter_on_unsupported_protocol(self):
        engine = Engine()
        with pytest.warns(BatchFallbackWarning, match="supports_batch"):
            engine.run_batch(self.fallback_spec(UnbatchedParityProtocol()), 4)
        assert engine.batch_fallbacks == 1
        with pytest.warns(BatchFallbackWarning):
            engine.run_batch(self.fallback_spec(UnbatchedParityProtocol()), 4)
        assert engine.batch_fallbacks == 2

    def test_warning_on_batch_without_keys(self):
        """supports_batch alone is not enough: keys cannot be synthesized,
        and the scalar fallback still produces the real ones."""
        engine = Engine()
        with pytest.warns(BatchFallbackWarning, match="supports_batch_keys"):
            fast = engine.run_batch(self.fallback_spec(KeylessAttack(k=3)), 6)
        assert engine.batch_fallbacks == 1
        want = Engine().run_batch(
            RunSpec(
                protocol=SupportMembershipAttack(k=3),
                distribution=UniformRows(8, 6),
                seed=5,
            ),
            6,
        )
        assert fast.outputs == want.outputs
        assert fast.transcript_keys == want.transcript_keys

    def test_warning_on_unhonourable_spec(self):
        engine = Engine()
        spec = RunSpec(
            protocol=SupportMembershipAttack(k=3),
            distribution=UniformRows(8, 6),
            seed=5,
            rounds=2,
            vectorized=True,
        )
        with pytest.warns(BatchFallbackWarning, match="full-fidelity"):
            engine.run_batch(spec, 4)
        assert engine.batch_fallbacks == 1

    def test_no_warning_when_fast_path_taken(self):
        engine = Engine()
        spec = RunSpec(
            protocol=SupportMembershipAttack(k=3),
            distribution=UniformRows(8, 6),
            seed=5,
            vectorized=True,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", BatchFallbackWarning)
            engine.run_batch(spec, 6)
            engine.run_batch(spec, 0)  # empty batches are honoured too
        assert engine.batch_fallbacks == 0

    def test_no_warning_without_vectorized(self):
        engine = Engine()
        spec = RunSpec(
            protocol=UnbatchedParityProtocol(),
            distribution=UniformRows(8, 6),
            seed=5,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", BatchFallbackWarning)
            engine.run_batch(spec, 4)
        assert engine.batch_fallbacks == 0


class TestVectorizedEstimators:
    def test_run_distinguisher_identical(self):
        args = (SupportMembershipAttack(4), PRGOutput(10, 8, 4), 40)
        scalar = run_distinguisher(*args, np.random.default_rng(5))
        fast = run_distinguisher(*args, np.random.default_rng(5), vectorized=True)
        assert np.array_equal(scalar, fast)

    def test_estimate_protocol_advantage_identical(self):
        args = (
            SupportMembershipAttack(4),
            PRGOutput(10, 8, 4),
            UniformRows(10, 8),
            30,
        )
        scalar = estimate_protocol_advantage(*args, np.random.default_rng(9))
        fast = estimate_protocol_advantage(
            *args, np.random.default_rng(9), vectorized=True
        )
        assert scalar.advantage == fast.advantage
        assert scalar.accept_rate_d1 == fast.accept_rate_d1
        assert scalar.accept_rate_d2 == fast.accept_rate_d2

    def test_accuracy_on_uniform_identical(self):
        for budget in [None, 3, 0]:
            protocol = TopSubmatrixRankProtocol(5, rounds_budget=budget)
            scalar = accuracy_on_uniform(
                protocol, 8, 5, 40, np.random.default_rng(3)
            )
            fast = accuracy_on_uniform(
                protocol, 8, 5, 40, np.random.default_rng(3), vectorized=True
            )
            assert scalar == fast


class TestSharedMemoryInputs:
    def test_parallel_matches_serial_with_forced_sharing(self, rng):
        inputs = rng.integers(0, 2, size=(12, 9), dtype=np.uint8)
        spec = RunSpec(
            protocol=SupportMembershipAttack(k=5),
            inputs=inputs,
            seed=21,
            record_inputs=True,
        )
        serial = Engine().run_batch(spec, 12)
        parallel = Engine(
            ParallelExecutor(max_workers=2, share_inputs_min_bytes=1)
        ).run_batch(spec, 12)
        assert serial.outputs == parallel.outputs
        assert serial.transcript_keys == parallel.transcript_keys
        for trial in parallel:
            assert np.array_equal(trial.inputs, inputs)

    def test_below_threshold_skips_sharing(self, rng):
        inputs = rng.integers(0, 2, size=(6, 5), dtype=np.uint8)
        spec = RunSpec(protocol=SupportMembershipAttack(k=3), inputs=inputs, seed=2)
        engine = Engine(ParallelExecutor(max_workers=2))
        assert not engine._should_share_inputs(spec, 8)
        serial = Engine().run_batch(spec, 8)
        parallel = engine.run_batch(spec, 8)
        assert serial.outputs == parallel.outputs

    def test_distribution_specs_never_share(self):
        spec = RunSpec(
            protocol=SupportMembershipAttack(k=3),
            distribution=UniformRows(8, 5),
            seed=2,
        )
        engine = Engine(ParallelExecutor(max_workers=2, share_inputs_min_bytes=1))
        assert not engine._should_share_inputs(spec, 8)

    def test_no_leaked_segments(self, rng):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        inputs = rng.integers(0, 2, size=(16, 9), dtype=np.uint8)
        spec = RunSpec(protocol=SupportMembershipAttack(k=5), inputs=inputs, seed=4)
        Engine(ParallelExecutor(max_workers=2, share_inputs_min_bytes=1)).run_batch(
            spec, 10
        )
        assert set(glob.glob("/dev/shm/psm_*")) <= before
