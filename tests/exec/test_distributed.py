"""Tests for the distributed executor, worker serve loop, and loopback rig."""

import socket
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker
from repro.exec.faults import FaultEvent, FaultInjector
from repro.exec.health import DEAD, SUSPECT, FleetDegradedWarning
from repro.exec.wire import register_wire_function
from repro.exec.worker import PublishedInput, recv_frame, send_frame
from repro.lowerbounds import TopSubmatrixRankProtocol


@register_wire_function
def _square(x):
    return x * x


@register_wire_function
def _boom(x):
    raise ValueError(f"remote task {x} failed")


def rank_spec(seed=7):
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=seed,
    )


class TestFrameProtocol:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, ("map", _square, [1, 2, 3]))
            kind, fn, items = recv_frame(right)
            assert kind == "map" and fn(4) == 16 and items == [1, 2, 3]
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_error(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()

    def test_ping(self):
        with LoopbackWorker() as worker:
            executor = DistributedExecutor([worker.endpoint])
            assert executor.ping() == [True]
            executor.close()


class TestDistributedMap:
    def test_map_preserves_order(self):
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint], chunksize=3) as ex:
                assert ex.map(_square, range(20)) == [x * x for x in range(20)]

    def test_run_batch_bit_identical_to_serial(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 24)
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint]) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 24)
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys
        assert batch.cost_totals() == golden.cost_totals()

    def test_concurrent_maps_do_not_interleave(self):
        """Per-call connections: overlapping maps stay isolated."""
        import concurrent.futures as cf

        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint], chunksize=2) as ex:
                with cf.ThreadPoolExecutor(max_workers=4) as threads:
                    futures = [
                        threads.submit(ex.map, _square, range(base, base + 12))
                        for base in (0, 100, 200, 300)
                    ]
                    for base, future in zip((0, 100, 200, 300), futures):
                        assert future.result(timeout=30) == [
                            x * x for x in range(base, base + 12)
                        ]

    def test_overlapping_batches_through_engine(self):
        """submit_batch overlap on a distributed fleet is bit-identical."""
        goldens = [Engine(SerialExecutor()).run_batch(rank_spec(seed), 12)
                   for seed in range(3)]
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint]) as executor:
                with Engine(executor) as engine:
                    futures = [
                        engine.submit_batch(rank_spec(seed), 12)
                        for seed in range(3)
                    ]
                    batches = [future.result(timeout=60) for future in futures]
        for golden, batch in zip(goldens, batches):
            assert batch.outputs == golden.outputs

    def test_task_error_reraised(self):
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                with pytest.raises(ValueError, match="remote task"):
                    executor.map(_boom, range(4))

    def test_unencodable_runs_locally(self):
        """A lambda is not in the wire vocabulary (unregistered code
        never travels): the map runs locally with a loud warning."""
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                with pytest.warns(RuntimeWarning, match="not wire-encodable"):
                    assert executor.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_empty_and_validation(self):
        with pytest.raises(ValueError):
            DistributedExecutor([])
        with pytest.raises(ValueError):
            DistributedExecutor(["host:1"], chunksize=0)
        with pytest.raises(ValueError):
            DistributedExecutor(["no-port-here"])
        with pytest.raises(ValueError):
            DistributedExecutor(["::1"])  # bare IPv6 without a port
        assert DistributedExecutor(["[::1]:9123"]).addresses == [("::1", 9123)]
        assert DistributedExecutor([("10.0.0.5", 80)]).addresses == [
            ("10.0.0.5", 80)
        ]
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                assert executor.map(_square, []) == []


class TestFailover:
    def test_disconnect_mid_batch_redistributes(self):
        """A worker hanging up mid-batch must not lose or reorder results."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2
            ) as executor:
                assert executor.map(_square, range(16)) == [
                    x * x for x in range(16)
                ]
        finally:
            flaky.stop()
            steady.stop()

    def test_requeued_tail_chunk_reaches_surviving_worker(self):
        """A chunk re-queued after the survivors' feeders exited must be
        re-dispatched to the live fleet, not spuriously declared
        undeliverable (local_fallback=False would then raise)."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint],
                chunksize=1,
                local_fallback=False,
            ) as executor:
                for _ in range(3):  # repeated maps re-roll the race
                    assert executor.map(_square, range(12)) == [
                        x * x for x in range(12)
                    ]
        finally:
            flaky.stop()
            steady.stop()

    def test_all_workers_gone_falls_back_locally(self):
        flaky = LoopbackWorker(max_requests_per_connection=1)
        try:
            with DistributedExecutor([flaky.endpoint], chunksize=2) as executor:
                with pytest.warns(RuntimeWarning, match="running .* locally|locally"):
                    assert executor.map(_square, range(10)) == [
                        x * x for x in range(10)
                    ]
        finally:
            flaky.stop()

    def test_unreachable_worker_falls_back_locally(self):
        # A port from the ephemeral range with nothing listening.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor([dead_endpoint], connect_timeout=0.5) as executor:
            with pytest.warns(RuntimeWarning):
                assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_no_fallback_raises(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor(
            [dead_endpoint], connect_timeout=0.5, local_fallback=False
        ) as executor:
            with pytest.raises(ConnectionError):
                executor.map(_square, [1, 2, 3])

    def test_engine_batch_survives_flaky_worker(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 20)
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2
            ) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 20)
        finally:
            flaky.stop()
            steady.stop()
        assert batch.outputs == golden.outputs


class TestRobustness:
    """The failure-hardening contract: deadlines, heartbeat, telemetry."""

    def test_default_task_timeout_is_finite_and_documented(self):
        """Satellite regression: submit_batch can no longer hang forever
        on a wedged worker by default."""
        assert DistributedExecutor.DEFAULT_TASK_TIMEOUT == 300.0
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                assert executor.task_timeout == 300.0

    def test_never_replying_worker_hits_chunk_deadline(self):
        """A worker that accepts the chunk and never answers trips
        task_timeout; the chunk is requeued and the failure is loud and
        typed — results still correct."""
        injector = FaultInjector([FaultEvent("map", 0, "hang")])
        worker = LoopbackWorker(fault_injector=injector)
        try:
            with DistributedExecutor(
                [worker.endpoint],
                chunksize=2,
                task_timeout=0.5,
                heartbeat_interval=None,
                lane_retries=0,
            ) as executor:
                with pytest.warns(FleetDegradedWarning, match="locally"):
                    assert executor.map(_square, range(6)) == [
                        x * x for x in range(6)
                    ]
                counts = executor.telemetry.counts()[worker.address]
                assert counts["timeout"] == 1
                assert executor.degraded_maps == 1
                assert executor.last_map_requeues >= 1
        finally:
            worker.stop()

    def test_submit_batch_survives_never_replying_worker(self):
        """The satellite's submit_batch regression: a hung worker stalls
        one chunk for task_timeout, then the survivors finish the batch
        bit-identically."""
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 8)
        injector = FaultInjector([FaultEvent("map", 0, "hang")])
        hung = LoopbackWorker(fault_injector=injector)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [hung.endpoint, steady.endpoint],
                chunksize=2,
                task_timeout=0.5,
                heartbeat_interval=None,
                lane_retries=0,
            ) as executor:
                with Engine(executor) as engine:
                    batch = engine.submit_batch(rank_spec(), 8).result(
                        timeout=60
                    )
                assert executor.telemetry.counts()[hung.address]["timeout"] == 1
        finally:
            hung.stop()
            steady.stop()
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys

    def test_heartbeat_flags_hung_worker_within_suspect_window(self):
        """The acceptance criterion: with task_timeout far away (30s),
        only the heartbeat monitor can unblock the feeder — the hung
        worker must be flagged suspect, then dead, within the configured
        window, and the batch must finish promptly on the survivor."""
        injector = FaultInjector([FaultEvent("map", 0, "hang")])
        hung = LoopbackWorker(fault_injector=injector)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [hung.endpoint, steady.endpoint],
                chunksize=2,
                task_timeout=30.0,
                heartbeat_interval=0.1,
                suspect_after=1,
                dead_after=2,
                lane_retries=0,
            ) as executor:
                start = time.monotonic()
                assert executor.map(_square, range(8)) == [
                    x * x for x in range(8)
                ]
                elapsed = time.monotonic() - start
                # Far below task_timeout: the heartbeat did the work.
                assert elapsed < 10.0
                record = executor.health.snapshot()[hung.address]
                assert record.state == DEAD
                reasons = [reason for _, _, reason in record.transitions]
                assert "heartbeat" in reasons
                assert (
                    executor.telemetry.counts()[hung.address]["heartbeat"]
                    >= 2
                )
        finally:
            hung.stop()
            steady.stop()

    def test_worker_death_after_need_reply_keeps_publish_invariant(self):
        """Satellite: the worker answers ("need", digest), receives the
        refill, then crashes before returning the chunk.  The retried
        lane must find the refilled cache — exactly one publish frame
        ever, including across the next batch."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 12)
        injector = FaultInjector([FaultEvent("map", 1, "crash")])
        worker = LoopbackWorker(fault_injector=injector)
        try:
            with DistributedExecutor(
                [worker.endpoint],
                share_inputs_min_bytes=1,
                chunksize=12,
                heartbeat_interval=None,
            ) as executor:
                engine = Engine(executor)
                # Seed a stale ack: the client believes this (fresh,
                # empty-cached) worker already holds the digest, so the
                # first map frame draws the ("need", digest) reply.
                handle = executor.publish_inputs(spec.inputs)
                executor._acked[worker.address] = {handle.digest}
                batch = engine.run_batch(spec, 12)
                assert batch.outputs == golden.outputs
                assert batch.transcript_keys == golden.transcript_keys
                # Exactly one publish frame: the need-path refill.
                assert executor.publish_frames_sent == 1
                assert executor.telemetry.counts()[worker.address][
                    "transport"
                ] == 1
                executor.release_inputs(handle)
                # The next batch reuses the worker's cache: still one.
                batch = engine.run_batch(spec, 12)
                assert batch.outputs == golden.outputs
                assert executor.publish_frames_sent == 1
        finally:
            worker.stop()

    def test_corrupt_reply_is_typed_requeued_and_counted(self):
        """A bit-flipped reply fails MAC verification — the failure is
        detected *cryptographically* (telemetry category "auth"), the
        chunk requeues, and the results stay correct."""
        injector = FaultInjector([FaultEvent("map", 0, "corrupt")])
        worker = LoopbackWorker(fault_injector=injector)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [worker.endpoint, steady.endpoint],
                chunksize=2,
                heartbeat_interval=None,
            ) as executor:
                assert executor.map(_square, range(8)) == [
                    x * x for x in range(8)
                ]
                assert executor.telemetry.counts()[worker.address][
                    "auth"
                ] == 1
        finally:
            worker.stop()
            steady.stop()

    def test_fault_exhaustion_without_fallback_raises_typed(self):
        """The conformance invariant's loud half: when every retry budget
        is spent and fallback is off, the failure is a typed
        ConnectionError — never a silent partial result."""
        injector = FaultInjector(
            [FaultEvent("map", op, "crash") for op in range(8)]
        )
        worker = LoopbackWorker(fault_injector=injector)
        try:
            with DistributedExecutor(
                [worker.endpoint],
                chunksize=4,
                heartbeat_interval=None,
                lane_retries=1,
                local_fallback=False,
            ) as executor:
                with pytest.raises(ConnectionError):
                    executor.map(_square, range(8))
        finally:
            worker.stop()

    def test_ping_failure_lands_in_telemetry_and_health(self):
        """The former silent except/pass sites now count every failure."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor(
            [dead_endpoint], connect_timeout=0.3
        ) as executor:
            assert executor.ping() == [False]
            address = executor.addresses[0]
            counts = executor.telemetry.counts()[address]
            assert counts["connect"] >= 1
            assert executor.health.state(address) == SUSPECT


def fixed_input_spec(seed=3):
    rng = np.random.default_rng(0)
    inputs = rng.integers(0, 2, size=(16, 16), dtype=np.uint8)
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5), inputs=inputs, seed=seed
    )


class TestInputPublication:
    """Shared fixed inputs over the wire: publish once, reuse per worker."""

    def test_consecutive_batches_transmit_inputs_once_per_worker(self):
        """The acceptance-criteria frame-count assertion: >= 2 consecutive
        batches over the same fixed inputs reuse the published matrix —
        exactly one publish_inputs frame per worker, ever."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 24)
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor(
                [w1.endpoint, w2.endpoint], share_inputs_min_bytes=1, chunksize=3
            ) as executor:
                engine = Engine(executor)
                batches = [engine.run_batch(spec, 24) for _ in range(3)]
                assert executor.publish_frames_sent == 2  # one per worker
        for batch in batches:
            assert batch.outputs == golden.outputs
            assert batch.transcript_keys == golden.transcript_keys

    def test_small_inputs_skip_publication(self):
        spec = fixed_input_spec()
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                # Default threshold (64 KiB) far exceeds a 256-byte matrix.
                Engine(executor).run_batch(spec, 8)
                assert executor.publish_frames_sent == 0

    def test_restarted_worker_is_refilled_via_need_reply(self):
        """A worker that lost its cache answers ("need", digest) and the
        client republishes transparently — no failed batch, one extra
        publish frame."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 12)
        first = LoopbackWorker()
        executor = DistributedExecutor(
            [first.endpoint], share_inputs_min_bytes=1, chunksize=4
        )
        try:
            batch = Engine(executor).run_batch(spec, 12)
            assert batch.outputs == golden.outputs
            assert executor.publish_frames_sent == 1
            first.stop()
            # A new worker process on a fresh port; rewire the executor's
            # address list to simulate the same host restarting with an
            # empty input cache while the client still believes it acked.
            second = LoopbackWorker()
            try:
                executor._addresses = [second.address]
                executor._acked[second.address] = {
                    next(iter(executor._inputs_by_digest))
                }
                batch = Engine(executor).run_batch(spec, 12)
                assert batch.outputs == golden.outputs
                assert executor.publish_frames_sent == 2  # the refill
            finally:
                second.stop()
        finally:
            executor.close()

    def test_close_releases_worker_caches(self):
        spec = fixed_input_spec()
        with LoopbackWorker() as worker:
            executor = DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1
            )
            Engine(executor).run_batch(spec, 8)
            assert executor.publish_frames_sent == 1
            executor.close()
            assert executor._inputs_by_digest == {}
            assert executor._acked == {}
            # After close + release, a fresh map must republish.
            executor2 = DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1
            )
            Engine(executor2).run_batch(spec, 8)
            assert executor2.publish_frames_sent == 1
            executor2.close()

    def test_local_fallback_binds_published_inputs(self):
        """When the whole fleet is gone, the locally-run tasks must see
        the published matrix (the handle is rebound from the client's
        own store)."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 8)
        flaky = LoopbackWorker(max_requests_per_connection=0)
        try:
            with DistributedExecutor(
                [flaky.endpoint], share_inputs_min_bytes=1, chunksize=2
            ) as executor:
                with pytest.warns(RuntimeWarning, match="locally"):
                    batch = Engine(executor).run_batch(spec, 8)
        finally:
            flaky.stop()
        assert batch.outputs == golden.outputs

    def test_client_lru_eviction_forgets_acks_and_republishes(self):
        """max_cached_inputs bounds the executor's pinned matrices; an
        evicted digest is republished on next use instead of referencing
        a forgotten matrix."""
        spec_a = fixed_input_spec(seed=1)
        rng = np.random.default_rng(9)
        spec_b = RunSpec(
            protocol=TopSubmatrixRankProtocol(5),
            inputs=rng.integers(0, 2, size=(16, 16), dtype=np.uint8),
            seed=2,
        )
        golden_a = Engine(SerialExecutor()).run_batch(spec_a, 8)
        with LoopbackWorker() as worker:
            with DistributedExecutor(
                [worker.endpoint],
                share_inputs_min_bytes=1,
                chunksize=2,
                max_cached_inputs=1,
            ) as executor:
                engine = Engine(executor)
                engine.run_batch(spec_a, 8)          # publish A
                engine.run_batch(spec_b, 8)          # publish B, evict A
                assert len(executor._inputs_by_digest) == 1
                batch = engine.run_batch(spec_a, 8)  # A republished
                assert executor.publish_frames_sent == 3
        assert batch.outputs == golden_a.outputs

    def test_inflight_digests_are_never_evicted(self):
        """The LRU bound must not evict a matrix a running batch still
        references: publish_inputs pins, release_inputs unpins."""
        with LoopbackWorker() as worker:
            with DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1, max_cached_inputs=1
            ) as executor:
                handle_a = executor.publish_inputs(np.zeros((8, 8), np.uint8))
                handle_b = executor.publish_inputs(np.ones((8, 8), np.uint8))
                # Both pinned: the bound is exceeded rather than broken.
                assert len(executor._inputs_by_digest) == 2
                executor.release_inputs(handle_a)
                handle_c = executor.publish_inputs(
                    np.full((8, 8), 2, np.uint8)
                )
                # A was unpinned -> evicted; pinned B and C survive.
                assert handle_a.digest not in executor._inputs_by_digest
                assert handle_b.digest in executor._inputs_by_digest
                assert handle_c.digest in executor._inputs_by_digest
                executor.release_inputs(handle_b)
                executor.release_inputs(handle_c)

    def test_worker_cache_eviction_heals_via_need_reply(self):
        """A worker that evicted a digest (its own LRU bound) answers
        ("need", digest) and is transparently refilled."""
        spec_a = fixed_input_spec(seed=1)
        rng = np.random.default_rng(9)
        spec_b = RunSpec(
            protocol=TopSubmatrixRankProtocol(5),
            inputs=rng.integers(0, 2, size=(16, 16), dtype=np.uint8),
            seed=2,
        )
        golden_a = Engine(SerialExecutor()).run_batch(spec_a, 8)
        with LoopbackWorker(max_cached_inputs=1) as worker:
            with DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1, chunksize=2
            ) as executor:
                engine = Engine(executor)
                engine.run_batch(spec_a, 8)          # worker caches A
                engine.run_batch(spec_b, 8)          # worker evicts A for B
                batch = engine.run_batch(spec_a, 8)  # need -> refill
                # Client believed A was still acked, so the third
                # publish happened through the need path.
                assert executor.publish_frames_sent == 3
        assert batch.outputs == golden_a.outputs

    def test_published_input_handle_pickles_asymmetrically(self):
        import pickle

        array = np.arange(6, dtype=np.uint8).reshape(2, 3)
        handle = PublishedInput("d" * 64, (2, 3), "|u1")
        assert not handle.bound
        wire = pickle.loads(pickle.dumps(handle))
        assert not wire.bound and wire.digest == handle.digest
        with pytest.raises(LookupError):
            wire.attach()
        wire.bind(array)
        rebound = pickle.loads(pickle.dumps(wire))
        assert rebound.bound
        np.testing.assert_array_equal(rebound.attach(), array)

    def test_real_cli_worker_binds_published_inputs(self):
        """Regression: `python -m repro.exec.worker` runs worker.py as
        __main__, so its PublishedInput class must still match the
        repro.exec.worker.PublishedInput arriving in schema frames
        (the entry point delegates to the canonical module)."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(
            (Path(__file__).resolve().parents[2] / "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 8)
        try:
            # The announce line doubles as the readiness signal and
            # carries the OS-assigned port (no hardcoded-port races).
            # runpy may emit a double-import RuntimeWarning first; skip
            # any such noise until the banner arrives.
            banner = ""
            for _ in range(10):
                banner = proc.stdout.readline()
                if "listening on" in banner:
                    break
            assert "listening on" in banner, banner
            endpoint = banner.rsplit(" ", 1)[-1].strip()
            executor = DistributedExecutor(
                [endpoint],
                share_inputs_min_bytes=1,
                chunksize=2,
                connect_timeout=5.0,
            )
            with executor:
                batch = Engine(executor).run_batch(spec, 8)
                assert executor.publish_frames_sent == 1
            assert batch.outputs == golden.outputs
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_worker_with_local_process_pool_uses_published_inputs(self):
        """The serve loop binds the cached matrix before handing chunks
        to its local process pool, so --processes workers see real
        inputs."""
        import threading

        from repro.exec.worker import serve

        stop = threading.Event()
        ready = threading.Event()
        address = []

        def on_ready(bound):
            address.append(bound)
            ready.set()

        thread = threading.Thread(
            target=serve,
            kwargs=dict(
                host="127.0.0.1",
                port=0,
                processes=2,
                stop_event=stop,
                ready_callback=on_ready,
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 8)
        try:
            with DistributedExecutor(
                ["%s:%d" % address[0]], share_inputs_min_bytes=1, chunksize=2
            ) as executor:
                batch = Engine(executor).run_batch(spec, 8)
            assert batch.outputs == golden.outputs
        finally:
            stop.set()
            thread.join(timeout=10)
