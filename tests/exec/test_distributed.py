"""Tests for the distributed executor, worker serve loop, and loopback rig."""

import socket
from pathlib import Path

import numpy as np
import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker
from repro.exec.worker import PublishedInput, recv_frame, send_frame
from repro.lowerbounds import TopSubmatrixRankProtocol


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"remote task {x} failed")


def rank_spec(seed=7):
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=seed,
    )


class TestFrameProtocol:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, ("map", _square, [1, 2, 3]))
            kind, fn, items = recv_frame(right)
            assert kind == "map" and fn(4) == 16 and items == [1, 2, 3]
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_error(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()

    def test_ping(self):
        with LoopbackWorker() as worker:
            executor = DistributedExecutor([worker.endpoint])
            assert executor.ping() == [True]
            executor.close()


class TestDistributedMap:
    def test_map_preserves_order(self):
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint], chunksize=3) as ex:
                assert ex.map(_square, range(20)) == [x * x for x in range(20)]

    def test_run_batch_bit_identical_to_serial(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 24)
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint]) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 24)
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys
        assert batch.cost_totals() == golden.cost_totals()

    def test_concurrent_maps_do_not_interleave(self):
        """Per-call connections: overlapping maps stay isolated."""
        import concurrent.futures as cf

        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint], chunksize=2) as ex:
                with cf.ThreadPoolExecutor(max_workers=4) as threads:
                    futures = [
                        threads.submit(ex.map, _square, range(base, base + 12))
                        for base in (0, 100, 200, 300)
                    ]
                    for base, future in zip((0, 100, 200, 300), futures):
                        assert future.result(timeout=30) == [
                            x * x for x in range(base, base + 12)
                        ]

    def test_overlapping_batches_through_engine(self):
        """submit_batch overlap on a distributed fleet is bit-identical."""
        goldens = [Engine(SerialExecutor()).run_batch(rank_spec(seed), 12)
                   for seed in range(3)]
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint]) as executor:
                with Engine(executor) as engine:
                    futures = [
                        engine.submit_batch(rank_spec(seed), 12)
                        for seed in range(3)
                    ]
                    batches = [future.result(timeout=60) for future in futures]
        for golden, batch in zip(goldens, batches):
            assert batch.outputs == golden.outputs

    def test_task_error_reraised(self):
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                with pytest.raises(ValueError, match="remote task"):
                    executor.map(_boom, range(4))

    def test_unpicklable_runs_locally(self):
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                with pytest.warns(RuntimeWarning, match="not picklable"):
                    assert executor.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_empty_and_validation(self):
        with pytest.raises(ValueError):
            DistributedExecutor([])
        with pytest.raises(ValueError):
            DistributedExecutor(["host:1"], chunksize=0)
        with pytest.raises(ValueError):
            DistributedExecutor(["no-port-here"])
        with pytest.raises(ValueError):
            DistributedExecutor(["::1"])  # bare IPv6 without a port
        assert DistributedExecutor(["[::1]:9123"]).addresses == [("::1", 9123)]
        assert DistributedExecutor([("10.0.0.5", 80)]).addresses == [
            ("10.0.0.5", 80)
        ]
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                assert executor.map(_square, []) == []


class TestFailover:
    def test_disconnect_mid_batch_redistributes(self):
        """A worker hanging up mid-batch must not lose or reorder results."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2
            ) as executor:
                assert executor.map(_square, range(16)) == [
                    x * x for x in range(16)
                ]
        finally:
            flaky.stop()
            steady.stop()

    def test_requeued_tail_chunk_reaches_surviving_worker(self):
        """A chunk re-queued after the survivors' feeders exited must be
        re-dispatched to the live fleet, not spuriously declared
        undeliverable (local_fallback=False would then raise)."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint],
                chunksize=1,
                local_fallback=False,
            ) as executor:
                for _ in range(3):  # repeated maps re-roll the race
                    assert executor.map(_square, range(12)) == [
                        x * x for x in range(12)
                    ]
        finally:
            flaky.stop()
            steady.stop()

    def test_all_workers_gone_falls_back_locally(self):
        flaky = LoopbackWorker(max_requests_per_connection=1)
        try:
            with DistributedExecutor([flaky.endpoint], chunksize=2) as executor:
                with pytest.warns(RuntimeWarning, match="running .* locally|locally"):
                    assert executor.map(_square, range(10)) == [
                        x * x for x in range(10)
                    ]
        finally:
            flaky.stop()

    def test_unreachable_worker_falls_back_locally(self):
        # A port from the ephemeral range with nothing listening.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor([dead_endpoint], connect_timeout=0.5) as executor:
            with pytest.warns(RuntimeWarning):
                assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_no_fallback_raises(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor(
            [dead_endpoint], connect_timeout=0.5, local_fallback=False
        ) as executor:
            with pytest.raises(ConnectionError):
                executor.map(_square, [1, 2, 3])

    def test_engine_batch_survives_flaky_worker(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 20)
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2
            ) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 20)
        finally:
            flaky.stop()
            steady.stop()
        assert batch.outputs == golden.outputs


def fixed_input_spec(seed=3):
    rng = np.random.default_rng(0)
    inputs = rng.integers(0, 2, size=(16, 16), dtype=np.uint8)
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5), inputs=inputs, seed=seed
    )


class TestInputPublication:
    """Shared fixed inputs over the wire: publish once, reuse per worker."""

    def test_consecutive_batches_transmit_inputs_once_per_worker(self):
        """The acceptance-criteria frame-count assertion: >= 2 consecutive
        batches over the same fixed inputs reuse the published matrix —
        exactly one publish_inputs frame per worker, ever."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 24)
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor(
                [w1.endpoint, w2.endpoint], share_inputs_min_bytes=1, chunksize=3
            ) as executor:
                engine = Engine(executor)
                batches = [engine.run_batch(spec, 24) for _ in range(3)]
                assert executor.publish_frames_sent == 2  # one per worker
        for batch in batches:
            assert batch.outputs == golden.outputs
            assert batch.transcript_keys == golden.transcript_keys

    def test_small_inputs_skip_publication(self):
        spec = fixed_input_spec()
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                # Default threshold (64 KiB) far exceeds a 256-byte matrix.
                Engine(executor).run_batch(spec, 8)
                assert executor.publish_frames_sent == 0

    def test_restarted_worker_is_refilled_via_need_reply(self):
        """A worker that lost its cache answers ("need", digest) and the
        client republishes transparently — no failed batch, one extra
        publish frame."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 12)
        first = LoopbackWorker()
        executor = DistributedExecutor(
            [first.endpoint], share_inputs_min_bytes=1, chunksize=4
        )
        try:
            batch = Engine(executor).run_batch(spec, 12)
            assert batch.outputs == golden.outputs
            assert executor.publish_frames_sent == 1
            first.stop()
            # A new worker process on a fresh port; rewire the executor's
            # address list to simulate the same host restarting with an
            # empty input cache while the client still believes it acked.
            second = LoopbackWorker()
            try:
                executor._addresses = [second.address]
                executor._acked[second.address] = {
                    next(iter(executor._inputs_by_digest))
                }
                batch = Engine(executor).run_batch(spec, 12)
                assert batch.outputs == golden.outputs
                assert executor.publish_frames_sent == 2  # the refill
            finally:
                second.stop()
        finally:
            executor.close()

    def test_close_releases_worker_caches(self):
        spec = fixed_input_spec()
        with LoopbackWorker() as worker:
            executor = DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1
            )
            Engine(executor).run_batch(spec, 8)
            assert executor.publish_frames_sent == 1
            executor.close()
            assert executor._inputs_by_digest == {}
            assert executor._acked == {}
            # After close + release, a fresh map must republish.
            executor2 = DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1
            )
            Engine(executor2).run_batch(spec, 8)
            assert executor2.publish_frames_sent == 1
            executor2.close()

    def test_local_fallback_binds_published_inputs(self):
        """When the whole fleet is gone, the locally-run tasks must see
        the published matrix (the handle is rebound from the client's
        own store)."""
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 8)
        flaky = LoopbackWorker(max_requests_per_connection=0)
        try:
            with DistributedExecutor(
                [flaky.endpoint], share_inputs_min_bytes=1, chunksize=2
            ) as executor:
                with pytest.warns(RuntimeWarning, match="locally"):
                    batch = Engine(executor).run_batch(spec, 8)
        finally:
            flaky.stop()
        assert batch.outputs == golden.outputs

    def test_client_lru_eviction_forgets_acks_and_republishes(self):
        """max_cached_inputs bounds the executor's pinned matrices; an
        evicted digest is republished on next use instead of referencing
        a forgotten matrix."""
        spec_a = fixed_input_spec(seed=1)
        rng = np.random.default_rng(9)
        spec_b = RunSpec(
            protocol=TopSubmatrixRankProtocol(5),
            inputs=rng.integers(0, 2, size=(16, 16), dtype=np.uint8),
            seed=2,
        )
        golden_a = Engine(SerialExecutor()).run_batch(spec_a, 8)
        with LoopbackWorker() as worker:
            with DistributedExecutor(
                [worker.endpoint],
                share_inputs_min_bytes=1,
                chunksize=2,
                max_cached_inputs=1,
            ) as executor:
                engine = Engine(executor)
                engine.run_batch(spec_a, 8)          # publish A
                engine.run_batch(spec_b, 8)          # publish B, evict A
                assert len(executor._inputs_by_digest) == 1
                batch = engine.run_batch(spec_a, 8)  # A republished
                assert executor.publish_frames_sent == 3
        assert batch.outputs == golden_a.outputs

    def test_inflight_digests_are_never_evicted(self):
        """The LRU bound must not evict a matrix a running batch still
        references: publish_inputs pins, release_inputs unpins."""
        with LoopbackWorker() as worker:
            with DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1, max_cached_inputs=1
            ) as executor:
                handle_a = executor.publish_inputs(np.zeros((8, 8), np.uint8))
                handle_b = executor.publish_inputs(np.ones((8, 8), np.uint8))
                # Both pinned: the bound is exceeded rather than broken.
                assert len(executor._inputs_by_digest) == 2
                executor.release_inputs(handle_a)
                handle_c = executor.publish_inputs(
                    np.full((8, 8), 2, np.uint8)
                )
                # A was unpinned -> evicted; pinned B and C survive.
                assert handle_a.digest not in executor._inputs_by_digest
                assert handle_b.digest in executor._inputs_by_digest
                assert handle_c.digest in executor._inputs_by_digest
                executor.release_inputs(handle_b)
                executor.release_inputs(handle_c)

    def test_worker_cache_eviction_heals_via_need_reply(self):
        """A worker that evicted a digest (its own LRU bound) answers
        ("need", digest) and is transparently refilled."""
        spec_a = fixed_input_spec(seed=1)
        rng = np.random.default_rng(9)
        spec_b = RunSpec(
            protocol=TopSubmatrixRankProtocol(5),
            inputs=rng.integers(0, 2, size=(16, 16), dtype=np.uint8),
            seed=2,
        )
        golden_a = Engine(SerialExecutor()).run_batch(spec_a, 8)
        with LoopbackWorker(max_cached_inputs=1) as worker:
            with DistributedExecutor(
                [worker.endpoint], share_inputs_min_bytes=1, chunksize=2
            ) as executor:
                engine = Engine(executor)
                engine.run_batch(spec_a, 8)          # worker caches A
                engine.run_batch(spec_b, 8)          # worker evicts A for B
                batch = engine.run_batch(spec_a, 8)  # need -> refill
                # Client believed A was still acked, so the third
                # publish happened through the need path.
                assert executor.publish_frames_sent == 3
        assert batch.outputs == golden_a.outputs

    def test_published_input_handle_pickles_asymmetrically(self):
        import pickle

        array = np.arange(6, dtype=np.uint8).reshape(2, 3)
        handle = PublishedInput("d" * 64, (2, 3), "|u1")
        assert not handle.bound
        wire = pickle.loads(pickle.dumps(handle))
        assert not wire.bound and wire.digest == handle.digest
        with pytest.raises(LookupError):
            wire.attach()
        wire.bind(array)
        rebound = pickle.loads(pickle.dumps(wire))
        assert rebound.bound
        np.testing.assert_array_equal(rebound.attach(), array)

    def test_real_cli_worker_binds_published_inputs(self):
        """Regression: `python -m repro.exec.worker` runs worker.py as
        __main__, so its PublishedInput class must still match the
        repro.exec.worker.PublishedInput arriving in pickled frames
        (the entry point delegates to the canonical module)."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(
            (Path(__file__).resolve().parents[2] / "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 8)
        try:
            # The announce line doubles as the readiness signal and
            # carries the OS-assigned port (no hardcoded-port races).
            # runpy may emit a double-import RuntimeWarning first; skip
            # any such noise until the banner arrives.
            banner = ""
            for _ in range(10):
                banner = proc.stdout.readline()
                if "listening on" in banner:
                    break
            assert "listening on" in banner, banner
            endpoint = banner.rsplit(" ", 1)[-1].strip()
            executor = DistributedExecutor(
                [endpoint],
                share_inputs_min_bytes=1,
                chunksize=2,
                connect_timeout=5.0,
            )
            with executor:
                batch = Engine(executor).run_batch(spec, 8)
                assert executor.publish_frames_sent == 1
            assert batch.outputs == golden.outputs
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_worker_with_local_process_pool_uses_published_inputs(self):
        """The serve loop binds the cached matrix before handing chunks
        to its local process pool, so --processes workers see real
        inputs."""
        import threading

        from repro.exec.worker import serve

        stop = threading.Event()
        ready = threading.Event()
        address = []

        def on_ready(bound):
            address.append(bound)
            ready.set()

        thread = threading.Thread(
            target=serve,
            kwargs=dict(
                host="127.0.0.1",
                port=0,
                processes=2,
                stop_event=stop,
                ready_callback=on_ready,
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        spec = fixed_input_spec()
        golden = Engine(SerialExecutor()).run_batch(spec, 8)
        try:
            with DistributedExecutor(
                ["%s:%d" % address[0]], share_inputs_min_bytes=1, chunksize=2
            ) as executor:
                batch = Engine(executor).run_batch(spec, 8)
            assert batch.outputs == golden.outputs
        finally:
            stop.set()
            thread.join(timeout=10)
