"""Tests for the distributed executor, worker serve loop, and loopback rig."""

import socket

import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker
from repro.exec.worker import recv_frame, send_frame
from repro.lowerbounds import TopSubmatrixRankProtocol


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"remote task {x} failed")


def rank_spec(seed=7):
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=seed,
    )


class TestFrameProtocol:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, ("map", _square, [1, 2, 3]))
            kind, fn, items = recv_frame(right)
            assert kind == "map" and fn(4) == 16 and items == [1, 2, 3]
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_error(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()

    def test_ping(self):
        with LoopbackWorker() as worker:
            executor = DistributedExecutor([worker.endpoint])
            assert executor.ping() == [True]
            executor.close()


class TestDistributedMap:
    def test_map_preserves_order(self):
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint], chunksize=3) as ex:
                assert ex.map(_square, range(20)) == [x * x for x in range(20)]

    def test_run_batch_bit_identical_to_serial(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 24)
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint]) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 24)
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys
        assert batch.cost_totals() == golden.cost_totals()

    def test_concurrent_maps_do_not_interleave(self):
        """Per-call connections: overlapping maps stay isolated."""
        import concurrent.futures as cf

        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint], chunksize=2) as ex:
                with cf.ThreadPoolExecutor(max_workers=4) as threads:
                    futures = [
                        threads.submit(ex.map, _square, range(base, base + 12))
                        for base in (0, 100, 200, 300)
                    ]
                    for base, future in zip((0, 100, 200, 300), futures):
                        assert future.result(timeout=30) == [
                            x * x for x in range(base, base + 12)
                        ]

    def test_overlapping_batches_through_engine(self):
        """submit_batch overlap on a distributed fleet is bit-identical."""
        goldens = [Engine(SerialExecutor()).run_batch(rank_spec(seed), 12)
                   for seed in range(3)]
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor([w1.endpoint, w2.endpoint]) as executor:
                with Engine(executor) as engine:
                    futures = [
                        engine.submit_batch(rank_spec(seed), 12)
                        for seed in range(3)
                    ]
                    batches = [future.result(timeout=60) for future in futures]
        for golden, batch in zip(goldens, batches):
            assert batch.outputs == golden.outputs

    def test_task_error_reraised(self):
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                with pytest.raises(ValueError, match="remote task"):
                    executor.map(_boom, range(4))

    def test_unpicklable_runs_locally(self):
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                with pytest.warns(RuntimeWarning, match="not picklable"):
                    assert executor.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_empty_and_validation(self):
        with pytest.raises(ValueError):
            DistributedExecutor([])
        with pytest.raises(ValueError):
            DistributedExecutor(["host:1"], chunksize=0)
        with pytest.raises(ValueError):
            DistributedExecutor(["no-port-here"])
        with pytest.raises(ValueError):
            DistributedExecutor(["::1"])  # bare IPv6 without a port
        assert DistributedExecutor(["[::1]:9123"]).addresses == [("::1", 9123)]
        assert DistributedExecutor([("10.0.0.5", 80)]).addresses == [
            ("10.0.0.5", 80)
        ]
        with LoopbackWorker() as worker:
            with DistributedExecutor([worker.endpoint]) as executor:
                assert executor.map(_square, []) == []


class TestFailover:
    def test_disconnect_mid_batch_redistributes(self):
        """A worker hanging up mid-batch must not lose or reorder results."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2
            ) as executor:
                assert executor.map(_square, range(16)) == [
                    x * x for x in range(16)
                ]
        finally:
            flaky.stop()
            steady.stop()

    def test_requeued_tail_chunk_reaches_surviving_worker(self):
        """A chunk re-queued after the survivors' feeders exited must be
        re-dispatched to the live fleet, not spuriously declared
        undeliverable (local_fallback=False would then raise)."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint],
                chunksize=1,
                local_fallback=False,
            ) as executor:
                for _ in range(3):  # repeated maps re-roll the race
                    assert executor.map(_square, range(12)) == [
                        x * x for x in range(12)
                    ]
        finally:
            flaky.stop()
            steady.stop()

    def test_all_workers_gone_falls_back_locally(self):
        flaky = LoopbackWorker(max_requests_per_connection=1)
        try:
            with DistributedExecutor([flaky.endpoint], chunksize=2) as executor:
                with pytest.warns(RuntimeWarning, match="running .* locally|locally"):
                    assert executor.map(_square, range(10)) == [
                        x * x for x in range(10)
                    ]
        finally:
            flaky.stop()

    def test_unreachable_worker_falls_back_locally(self):
        # A port from the ephemeral range with nothing listening.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor([dead_endpoint], connect_timeout=0.5) as executor:
            with pytest.warns(RuntimeWarning):
                assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_no_fallback_raises(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with DistributedExecutor(
            [dead_endpoint], connect_timeout=0.5, local_fallback=False
        ) as executor:
            with pytest.raises(ConnectionError):
                executor.map(_square, [1, 2, 3])

    def test_engine_batch_survives_flaky_worker(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 20)
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2
            ) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 20)
        finally:
            flaky.stop()
            steady.stop()
        assert batch.outputs == golden.outputs
