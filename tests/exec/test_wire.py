"""Edge-case tests for the schema'd, authenticated wire protocol.

Covers the framing limits (a frame of exactly ``MAX_FRAME_BYTES``, the
sender-side size guard, zero-length frames, EOF after a partial length
header), the value/array codecs, and every rejection path of the
authenticated session: MAC mismatch, wrong secret, replayed frames,
cross-session splicing — plus a TLS loopback run over certificates
minted with the ``openssl`` CLI.
"""

import os
import shutil
import socket
import ssl
import subprocess
import threading

import numpy as np
import pytest

from repro.exec import wire
from repro.exec.distributed import DistributedExecutor, LoopbackWorker
from repro.exec.health import FleetDegradedWarning
from repro.exec.wire import (
    MAX_FRAME_BYTES,
    AuthenticationError,
    CorruptFrameError,
    FrameAuthenticationError,
    FrameSizeError,
    TruncatedFrameError,
    UnencodableError,
    WireProtocolError,
    WireSession,
    decode_array_payload,
    decode_value,
    encode_array_payload,
    encode_value,
    function_digest,
    recv_frame,
    register_wire_function,
    resolve_secret,
    send_frame,
)

_LENGTH = wire._LENGTH


@register_wire_function
def _double(x):
    return 2 * x


def _socketpair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def _session_pair(client_secret=None, server_secret=None,
                  client_codecs=wire.WIRE_CODECS,
                  server_codecs=wire.WIRE_CODECS):
    """Handshake both sides of a socketpair; return outcomes per side.

    Each element of the result is either a live :class:`WireSession` or
    the exception its side's handshake raised.
    """
    left, right = _socketpair()
    results = {}

    def server():
        try:
            results["server"] = WireSession.server(
                right, server_secret, server_codecs
            )
        except Exception as exc:  # captured for assertion, not ignored
            results["server"] = exc

    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    try:
        results["client"] = WireSession.client(left, client_secret, client_codecs)
    except Exception as exc:
        results["client"] = exc
    thread.join(timeout=5.0)
    return results["client"], results["server"], left, right


class TestValueCodec:
    ROUND_TRIPS = [
        None,
        True,
        False,
        0,
        -17,
        1 << 200,           # bigint beyond any fixed-width field
        -(1 << 200),
        3.25,
        float("inf"),
        "héllo",
        b"\x00\xff",
        (),
        ("nested", (1, [2, {"three": 4}])),
        [1, 2, 3],
        {"a": 1, 2: "b"},
    ]

    @pytest.mark.parametrize("value", ROUND_TRIPS, ids=repr)
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_numpy_array_round_trip(self):
        array = np.arange(12, dtype=np.uint8).reshape(3, 4)
        out = decode_value(encode_value(array))
        assert out.dtype == array.dtype
        assert np.array_equal(out, array)

    def test_registered_function_travels_by_name(self):
        fn = decode_value(encode_value(_double))
        assert fn is _double

    def test_lambda_is_unencodable(self):
        with pytest.raises(UnencodableError):
            encode_value(lambda x: x)

    def test_unregistered_class_is_unencodable(self):
        class Private:
            pass

        with pytest.raises(UnencodableError):
            encode_value(Private())

    def test_unencodable_is_not_a_connection_error(self):
        """Executors treat this as "run locally", never "requeue"."""
        assert not issubclass(UnencodableError, ConnectionError)
        assert issubclass(UnencodableError, TypeError)

    def test_truncated_payload_is_typed(self):
        payload = encode_value(("ok", [1, 2, 3]))
        with pytest.raises(CorruptFrameError):
            decode_value(payload[: len(payload) // 2])

    def test_trailing_garbage_is_typed(self):
        payload = encode_value("x")
        with pytest.raises(CorruptFrameError):
            decode_value(payload + b"\x00")

    def test_function_digest_is_content_addressed(self):
        fn_bytes = encode_value(_double)
        assert function_digest(fn_bytes) == function_digest(fn_bytes)
        assert len(function_digest(fn_bytes)) == 64


class TestFraming:
    def test_frame_of_exactly_max_frame_bytes(self, monkeypatch):
        """The limit is inclusive: a frame of exactly the cap passes."""
        obj = ("ok", [1, 2, 3])
        payload = encode_value(obj)
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", len(payload))
        left, right = _socketpair()
        try:
            send_frame(left, obj)
            assert recv_frame(right) == obj
        finally:
            left.close()
            right.close()

    def test_sender_side_size_guard_fires_before_any_write(self, monkeypatch):
        obj = ("ok", [1, 2, 3])
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", len(encode_value(obj)) - 1)
        left, right = _socketpair()
        try:
            with pytest.raises(FrameSizeError):
                send_frame(left, obj)
            # Not a single byte hit the socket: the stream is unpoisoned.
            right.setblocking(False)
            with pytest.raises(BlockingIOError):
                right.recv(1)
        finally:
            left.close()
            right.close()

    def test_receiver_side_cap_rejects_oversize_header(self):
        left, right = _socketpair()
        try:
            left.sendall(_LENGTH.pack(1 << 20))
            with pytest.raises(FrameSizeError):
                recv_frame(right, max_bytes=1 << 10)
        finally:
            left.close()
            right.close()

    def test_zero_length_frame_is_typed(self):
        """A header claiming zero bytes decodes to nothing — typed, not
        a silent ``None`` or an IndexError inside the decoder."""
        left, right = _socketpair()
        try:
            left.sendall(_LENGTH.pack(0))
            with pytest.raises(CorruptFrameError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_after_partial_length_header(self):
        """Half a length header then EOF is a TruncatedFrameError — not
        a silent short read misparsed as a tiny frame."""
        left, right = _socketpair()
        try:
            left.sendall(_LENGTH.pack(99)[:3])
            left.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(right)
        finally:
            right.close()

    def test_eof_mid_payload(self):
        left, right = _socketpair()
        try:
            left.sendall(_LENGTH.pack(100) + b"ten bytes.")
            left.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(right)
        finally:
            right.close()

    def test_clean_eof_between_frames_is_plain_connection_error(self):
        """The peer hanging up *between* frames is the normal end of a
        session — plain ConnectionError, no pathology subtype."""
        left, right = _socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError) as err:
                recv_frame(right)
            assert not isinstance(err.value, WireProtocolError)
        finally:
            right.close()

    def test_default_cap_is_generous(self):
        assert MAX_FRAME_BYTES == 1 << 32


class TestSessionAuth:
    def test_authenticated_round_trip(self):
        client, server, left, right = _session_pair()
        try:
            client.send(("ping",))
            assert server.recv() == ("ping",)
            server.send(("pong",))
            assert client.recv() == ("pong",)
        finally:
            left.close()
            right.close()

    def test_wrong_secret_rejected_on_both_sides(self):
        client, server, left, right = _session_pair(
            client_secret=b"left secret", server_secret=b"right secret"
        )
        try:
            assert isinstance(server, AuthenticationError)
            assert isinstance(client, AuthenticationError)
        finally:
            left.close()
            right.close()

    def test_tampered_published_input_detected(self):
        """Flip one byte of a publish frame's data in flight: the MAC
        catches it before the schema decoder ever sees the bytes."""
        client, server, left, right = _session_pair()
        try:
            data = bytes(range(64))
            frame = ("publish_inputs", "d" * 64, (8, 8), "uint8", "raw", data)
            header, chunks, mac = client.frame_bytes(frame)
            payload = bytearray(b"".join(chunks))
            payload[-1] ^= 0x01
            left.sendall(header + bytes(payload) + mac)
            with pytest.raises(FrameAuthenticationError):
                server.recv()
        finally:
            left.close()
            right.close()

    def test_replayed_frame_rejected(self):
        """The same honest bytes verify once; the strict sequence
        counter refuses the replay."""
        client, server, left, right = _session_pair()
        try:
            header, chunks, mac = client.frame_bytes(("ping",))
            raw = header + b"".join(chunks) + mac
            left.sendall(raw)
            assert server.recv() == ("ping",)
            left.sendall(raw)
            with pytest.raises(FrameAuthenticationError):
                server.recv()
        finally:
            left.close()
            right.close()

    def test_frame_from_another_session_rejected(self):
        """Fresh nonces per handshake: splicing a recorded frame from
        one session into another cannot verify."""
        client_a, server_a, left_a, right_a = _session_pair()
        client_b, server_b, left_b, right_b = _session_pair()
        try:
            header, chunks, mac = client_a.frame_bytes(("ping",))
            left_b.sendall(header + b"".join(chunks) + mac)
            with pytest.raises(FrameAuthenticationError):
                server_b.recv()
        finally:
            for sock in (left_a, right_a, left_b, right_b):
                sock.close()

    def test_truncated_mac_is_truncated_frame(self):
        client, server, left, right = _session_pair()
        try:
            header, chunks, mac = client.frame_bytes(("ping",))
            left.sendall(header + b"".join(chunks) + mac[:-5])
            left.close()
            with pytest.raises(TruncatedFrameError):
                server.recv()
        finally:
            right.close()

    def test_codec_negotiation_intersects_offers(self):
        client, server, left, right = _session_pair(
            client_codecs=("raw",), server_codecs=("gf2pack", "raw")
        )
        try:
            assert client.codecs == ("raw",)
            assert server.codecs == ("raw",)
        finally:
            left.close()
            right.close()

    def test_disjoint_codec_offers_fall_back_to_raw(self):
        client, server, left, right = _session_pair(
            client_codecs=("gf2pack",), server_codecs=()
        )
        try:
            assert client.codecs == ("raw",)
            assert server.codecs == ("raw",)
        finally:
            left.close()
            right.close()

    def test_handshake_against_non_protocol_peer_is_typed(self):
        """A client pointed at something that isn't a worker gets a
        typed AuthenticationError, not a decoder crash."""
        left, right = _socketpair()
        try:
            send_frame(right, ("not", "a", "challenge"))
            with pytest.raises(AuthenticationError):
                WireSession.client(left)
        finally:
            left.close()
            right.close()


class TestArrayPayloadCodec:
    def test_gf2pack_is_one_eighth_of_raw(self):
        rng = np.random.default_rng(7)
        array = rng.integers(0, 2, size=(64, 64), dtype=np.uint8)
        codec, data = encode_array_payload(array)
        assert codec == "gf2pack"
        assert len(data) == array.size // 8
        out = decode_array_payload(codec, data, array.shape, "uint8")
        assert np.array_equal(out, array)
        assert not out.flags.writeable

    def test_non_binary_uint8_ships_raw(self):
        array = np.arange(16, dtype=np.uint8).reshape(4, 4)
        codec, data = encode_array_payload(array)
        assert codec == "raw"
        assert np.array_equal(
            decode_array_payload(codec, data, array.shape, "uint8"), array
        )

    def test_float_array_round_trips_raw(self):
        array = np.linspace(0.0, 1.0, 12).reshape(3, 4)
        codec, data = encode_array_payload(array)
        assert codec == "raw"
        out = decode_array_payload(codec, data, array.shape, str(array.dtype))
        assert np.array_equal(out, array)

    def test_codec_list_without_gf2pack_forces_raw(self):
        array = np.zeros((8, 8), dtype=np.uint8)
        codec, _ = encode_array_payload(array, ("raw",))
        assert codec == "raw"

    def test_unknown_codec_rejected(self):
        with pytest.raises(CorruptFrameError):
            decode_array_payload("zstd", b"", (0,), "uint8")

    def test_bad_dtype_rejected(self):
        with pytest.raises(CorruptFrameError):
            decode_array_payload("raw", b"", (0,), "not-a-dtype")

    def test_object_dtype_rejected(self):
        with pytest.raises(CorruptFrameError):
            decode_array_payload("raw", b"", (0,), "object")

    def test_size_mismatch_rejected(self):
        with pytest.raises(CorruptFrameError):
            decode_array_payload("raw", b"\x00" * 7, (2, 4), "uint8")


class TestResolveSecret:
    def test_explicit_bytes_win(self, monkeypatch):
        monkeypatch.setenv(wire.DEFAULT_SECRET_ENV, "from-env")
        assert resolve_secret(b"explicit") == b"explicit"

    def test_explicit_str_is_encoded(self):
        assert resolve_secret("pass-phrase") == b"pass-phrase"

    def test_env_beats_dev_default(self, monkeypatch):
        monkeypatch.setenv(wire.DEFAULT_SECRET_ENV, "from-env")
        assert resolve_secret(None) == b"from-env"

    def test_dev_default_is_last_resort(self, monkeypatch):
        monkeypatch.delenv(wire.DEFAULT_SECRET_ENV, raising=False)
        assert resolve_secret(None) == wire._DEV_SECRET


needs_openssl = pytest.mark.skipif(
    shutil.which("openssl") is None, reason="openssl CLI not available"
)


@needs_openssl
class TestTLSLoopback:
    @pytest.fixture()
    def cert_pair(self, tmp_path):
        """A self-signed cert/key for 127.0.0.1, minted via openssl."""
        cert = tmp_path / "cert.pem"
        key = tmp_path / "key.pem"
        subprocess.run(
            [
                "openssl", "req", "-x509", "-newkey", "rsa:2048",
                "-keyout", str(key), "-out", str(cert),
                "-days", "1", "-nodes", "-subj", "/CN=127.0.0.1",
                "-addext", "subjectAltName=IP:127.0.0.1",
            ],
            check=True,
            capture_output=True,
        )
        return cert, key

    def test_map_over_tls_with_shared_secret(self, cert_pair):
        cert, key = cert_pair
        server_ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        server_ctx.load_cert_chain(str(cert), str(key))
        client_ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        client_ctx.load_verify_locations(str(cert))
        with LoopbackWorker(
            secret=b"tls-suite-secret", ssl_context=server_ctx
        ) as worker:
            with DistributedExecutor(
                [worker.endpoint],
                secret=b"tls-suite-secret",
                ssl_context=client_ctx,
                local_fallback=False,
            ) as executor:
                assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
                assert executor.registry.total("exec_handshakes_total") == 1

    def test_wrong_secret_over_tls_is_auth_failure(self, cert_pair):
        """TLS succeeding is not enough: the worker still demands the
        shared-secret handshake inside the tunnel."""
        cert, key = cert_pair
        server_ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        server_ctx.load_cert_chain(str(cert), str(key))
        client_ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        client_ctx.load_verify_locations(str(cert))
        with LoopbackWorker(
            secret=b"worker-secret", ssl_context=server_ctx
        ) as worker:
            with DistributedExecutor(
                [worker.endpoint],
                secret=b"client-secret",
                ssl_context=client_ctx,
                local_fallback=True,
            ) as executor:
                # Authentication fails closed; the work still completes
                # via the local fallback and telemetry says why.
                with pytest.warns(FleetDegradedWarning):
                    assert executor.map(_double, [5]) == [10]
                counts = executor.telemetry.counts()[worker.address]
                assert counts.get("auth", 0) >= 1
