"""Tests for resumable adaptive sweeps (SweepDriver + journal helpers)."""

import json

import numpy as np
import pytest

from repro.core import RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import SweepDriver, load_journal, params_key
from repro.exec.sweep import append_journal
from repro.lowerbounds import TopSubmatrixRankProtocol, conditional_full_rank_probability


def rank_spec_fn(k):
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(k),
        distribution=UniformRows(8, 8),
        seed=0,  # overridden by the driver
    )


class CountingSpecFn:
    """Wraps rank_spec_fn, counting one call per submitted batch."""

    def __init__(self):
        self.calls = []

    def __call__(self, k):
        self.calls.append(k)
        return rank_spec_fn(k)


GRID = [{"k": k} for k in (2, 3, 4)]


class TestSweepDriverBasics:
    def test_runs_whole_grid(self):
        driver = SweepDriver(rank_spec_fn, trials=32, seed=9)
        result = driver.run(GRID)
        assert [p["k"] for p in result.points] == [2, 3, 4]
        for point in result.points:
            assert point["trials"] == 32.0
            assert point["batches"] == 1.0
            assert 0.0 <= point["mean"] <= 1.0
            # Accept rate tracks the full-rank probability of the k-block.
            expected = conditional_full_rank_probability(point["k"], 0)
            assert abs(point["mean"] - expected) < 0.35

    def test_deterministic_across_runs_and_executors(self):
        first = SweepDriver(rank_spec_fn, trials=24, seed=3).run(GRID)
        second = SweepDriver(rank_spec_fn, trials=24, seed=3).run(GRID)
        assert [p.values for p in first.points] == [p.values for p in second.points]
        vectorized = SweepDriver(
            lambda k: RunSpec(
                protocol=TopSubmatrixRankProtocol(k),
                distribution=UniformRows(8, 8),
                seed=0,
                vectorized=True,
            ),
            trials=24,
            seed=3,
        ).run(GRID)
        assert [p.values for p in vectorized.points] == [
            p.values for p in first.points
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepDriver(rank_spec_fn, trials=0)
        with pytest.raises(ValueError):
            SweepDriver(rank_spec_fn, ci_width=-1.0)
        with pytest.raises(ValueError):
            SweepDriver(rank_spec_fn, trials=16, max_trials=8)
        with pytest.raises(ValueError):
            SweepDriver(rank_spec_fn, confidence=1.0)
        with pytest.raises(TypeError):
            SweepDriver(lambda k: "not a spec").run([{"k": 2}])


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_with_zero_recomputation(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        # "Interrupted" run: only the first two grid points completed.
        partial = CountingSpecFn()
        SweepDriver(
            partial, trials=16, checkpoint=journal_path, seed=5
        ).run(GRID[:2])
        assert sorted(partial.calls) == [2, 3]
        # Resume over the full grid: only the missing point is computed.
        resumed = CountingSpecFn()
        result = SweepDriver(
            resumed, trials=16, checkpoint=journal_path, seed=5
        ).run(GRID)
        assert resumed.calls == [4]  # zero recomputed points
        # And a second resume recomputes nothing at all.
        idle = CountingSpecFn()
        again = SweepDriver(
            idle, trials=16, checkpoint=journal_path, seed=5
        ).run(GRID)
        assert idle.calls == []
        assert [p.values for p in again.points] == [p.values for p in result.points]

    def test_resumed_values_match_uninterrupted_run(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        SweepDriver(rank_spec_fn, trials=16, checkpoint=journal_path, seed=5).run(
            GRID[:2]
        )
        resumed = SweepDriver(
            rank_spec_fn, trials=16, checkpoint=journal_path, seed=5
        ).run(GRID)
        straight = SweepDriver(rank_spec_fn, trials=16, seed=5).run(GRID)
        assert [p.values for p in resumed.points] == [
            p.values for p in straight.points
        ]

    def test_journal_tolerates_torn_tail_write(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        append_journal(journal_path, {"k": 2}, {"mean": 0.5})
        with open(journal_path, "a") as stream:
            stream.write('{"params": {"k": 3}, "values": {"me')  # killed mid-write
        journal = load_journal(journal_path)
        assert params_key({"k": 2}) in journal
        assert len(journal) == 1

    def test_journal_roundtrips_numpy_params(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        append_journal(
            journal_path, {"k": np.int64(2)}, {"mean": np.float64(0.25)}
        )
        journal = load_journal(journal_path)
        # numpy scalars canonicalize to the same key as plain ints.
        assert journal[params_key({"k": 2})]["mean"] == 0.25

    def test_missing_journal_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "absent.jsonl") == {}

    def test_journal_lines_are_valid_json(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        SweepDriver(rank_spec_fn, trials=8, checkpoint=journal_path, seed=1).run(
            GRID[:2]
        )
        lines = journal_path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"params", "values"}


class OutageExecutor(SerialExecutor):
    """Drops the first ``failures`` map calls like a vanished fleet."""

    def __init__(self, failures=1):
        self.failures = failures
        self.maps = 0

    def map(self, fn, items):
        self.maps += 1
        if self.maps <= self.failures:
            raise ConnectionError("fleet unreachable (injected)")
        return super().map(fn, items)


class TestBatchRetries:
    def test_lost_batch_is_retried_seed_identically(self):
        """A batch lost to a fleet outage resubmits under the same
        (point, batch-index) spec — the retried values are bit-identical
        to an undisturbed sweep, not a fresh draw."""
        driver = SweepDriver(
            rank_spec_fn, executor=OutageExecutor(failures=1), trials=16, seed=5
        )
        result = driver.run(GRID)
        straight = SweepDriver(rank_spec_fn, trials=16, seed=5).run(GRID)
        assert [p.values for p in result.points] == [
            p.values for p in straight.points
        ]
        assert driver.retried_batches == 1

    def test_retry_budget_exhaustion_raises_typed(self):
        driver = SweepDriver(
            rank_spec_fn,
            executor=OutageExecutor(failures=99),
            trials=8,
            seed=5,
            batch_retries=1,
        )
        with pytest.raises(ConnectionError, match="unreachable"):
            driver.run([{"k": 2}])  # one point: a deterministic retry count
        assert driver.retried_batches == 1  # one retry, then give up

    def test_zero_budget_fails_fast(self):
        driver = SweepDriver(
            rank_spec_fn,
            executor=OutageExecutor(failures=1),
            trials=8,
            seed=5,
            batch_retries=0,
        )
        with pytest.raises(ConnectionError):
            driver.run(GRID)
        assert driver.retried_batches == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepDriver(rank_spec_fn, batch_retries=-1)

    def test_task_errors_are_not_retried(self):
        """Only fleet outages (ConnectionError) consume the retry budget;
        a task exception propagates immediately."""
        driver = SweepDriver(
            lambda k: RunSpec(
                protocol=TopSubmatrixRankProtocol(9),  # exceeds 8x8 inputs
                distribution=UniformRows(8, 8),
                seed=0,
            ),
            trials=8,
            seed=1,
        )
        with pytest.raises(Exception) as excinfo:
            driver.run([{"k": 9}])
        assert not isinstance(excinfo.value, ConnectionError)
        assert driver.retried_batches == 0


class TestAdaptiveTrials:
    def test_fixed_mode_runs_one_batch(self):
        result = SweepDriver(rank_spec_fn, trials=16, seed=2).run([{"k": 3}])
        assert result.points[0]["batches"] == 1.0

    def test_adaptive_tops_up_until_ci_target(self):
        driver = SweepDriver(
            rank_spec_fn, trials=16, ci_width=0.2, max_trials=512, seed=2
        )
        point = driver.run([{"k": 3}]).points[0]
        assert point["trials"] > 16  # needed top-up batches
        assert point["batches"] == point["trials"] / 16
        assert (point["ci_upper"] - point["ci_lower"]) <= 0.2

    def test_adaptive_respects_max_trials(self):
        driver = SweepDriver(
            rank_spec_fn, trials=16, ci_width=1e-6, max_trials=64, seed=2
        )
        point = driver.run([{"k": 3}]).points[0]
        assert point["trials"] == 64.0

    def test_tighter_targets_cost_more_trials(self):
        loose = SweepDriver(
            rank_spec_fn, trials=16, ci_width=0.5, max_trials=1024, seed=2
        ).run([{"k": 3}])
        tight = SweepDriver(
            rank_spec_fn, trials=16, ci_width=0.15, max_trials=1024, seed=2
        ).run([{"k": 3}])
        assert tight.points[0]["trials"] > loose.points[0]["trials"]

    def test_adaptive_identical_on_warm_pool(self):
        """Backend choice must not change trials, top-ups, or values."""
        from repro.exec import WorkerPool

        serial = SweepDriver(
            rank_spec_fn, trials=16, ci_width=0.3, max_trials=128, seed=11
        ).run(GRID)
        with WorkerPool(max_workers=2) as pool:
            pooled = SweepDriver(
                rank_spec_fn,
                executor=pool,
                trials=16,
                ci_width=0.3,
                max_trials=128,
                seed=11,
            ).run(GRID)
        assert [p.values for p in serial.points] == [
            p.values for p in pooled.points
        ]

    def test_custom_trial_values(self):
        driver = SweepDriver(
            rank_spec_fn,
            trials=8,
            seed=4,
            trial_values=lambda batch: batch.rounds.astype(float),
        )
        point = driver.run([{"k": 3}]).points[0]
        assert point["mean"] == 3.0  # every trial runs exactly k rounds


class TestPriorities:
    def test_priority_orders_submission(self):
        """Lower priority value runs first; max_inflight=1 serializes the
        sweep so the spec_fn call order is exactly the schedule."""
        counting = CountingSpecFn()
        SweepDriver(
            counting,
            trials=8,
            seed=1,
            priority=lambda params: -params["k"],  # biggest k first
            max_inflight=1,
        ).run(GRID)
        assert counting.calls == [4, 3, 2]

    def test_default_priority_keeps_grid_order(self):
        counting = CountingSpecFn()
        SweepDriver(counting, trials=8, seed=1, max_inflight=1).run(GRID)
        assert counting.calls == [2, 3, 4]

    def test_priority_never_changes_values(self):
        """Scheduling is not seeding: reversed priorities, bounded
        in-flight slots, and the default greedy order all agree
        bit-for-bit."""
        baseline = SweepDriver(rank_spec_fn, trials=16, seed=3).run(GRID)
        reordered = SweepDriver(
            rank_spec_fn,
            trials=16,
            seed=3,
            priority=lambda params: -params["k"],
            max_inflight=1,
        ).run(GRID)
        assert [p.values for p in baseline.points] == [
            p.values for p in reordered.points
        ]
        assert [p["k"] for p in reordered.points] == [2, 3, 4]  # grid order

    def test_topup_batches_yield_to_unstarted_points(self):
        """Cooperative preemption: with one in-flight slot, an adaptive
        point's top-up re-enters the queue behind every unstarted
        point's initial batch, so each point starts before any point
        tops up."""
        counting = CountingSpecFn()
        SweepDriver(
            counting,
            trials=8,
            ci_width=0.25,
            max_trials=64,
            seed=2,
            max_inflight=1,
        ).run(GRID)
        first_three = counting.calls[:3]
        assert sorted(first_three) == [2, 3, 4]  # all initial batches first

    def test_adaptive_values_identical_with_and_without_preemption(self):
        free = SweepDriver(
            rank_spec_fn, trials=16, ci_width=0.3, max_trials=128, seed=11
        ).run(GRID)
        throttled = SweepDriver(
            rank_spec_fn,
            trials=16,
            ci_width=0.3,
            max_trials=128,
            seed=11,
            max_inflight=1,
            priority=lambda params: params["k"],
        ).run(GRID)
        assert [p.values for p in free.points] == [
            p.values for p in throttled.points
        ]

    def test_max_inflight_validation(self):
        with pytest.raises(ValueError):
            SweepDriver(rank_spec_fn, max_inflight=0)

    def test_resume_respects_priority_without_recomputation(self, tmp_path):
        """A resumed prioritised sweep reorders only the *missing*
        points; journal-completed points are neither recomputed nor
        reordered in the result."""
        driver_kwargs = dict(
            trials=8,
            seed=5,
            priority=lambda params: -params["k"],
            max_inflight=1,
        )
        grid = [{"k": k} for k in (2, 3, 4, 5)]
        journal_path = tmp_path / "sweep.jsonl"
        counting = CountingSpecFn()
        SweepDriver(
            counting, checkpoint=journal_path, **driver_kwargs
        ).run(grid[:2])  # completes k=3, then k=2 (priority order)
        assert counting.calls == [3, 2]
        resumed = CountingSpecFn()
        result = SweepDriver(
            resumed, checkpoint=journal_path, **driver_kwargs
        ).run(grid)
        # Only the missing points ran, highest k first.
        assert resumed.calls == [5, 4]
        # Result order is grid order, independent of priorities.
        assert [p["k"] for p in result.points] == [2, 3, 4, 5]
        # And the journalled values came back untouched.
        straight = SweepDriver(CountingSpecFn(), **driver_kwargs).run(grid)
        assert [p.values for p in result.points] == [
            p.values for p in straight.points
        ]

    def test_torn_tail_resume_under_priority_ordering(self, tmp_path):
        """A journal with a torn final line resumes under priorities:
        intact points are not recomputed, the torn point reruns, and
        values match an uninterrupted sweep."""
        driver_kwargs = dict(
            trials=16,
            seed=5,
            priority=lambda params: -params["k"],
            max_inflight=1,
        )
        journal_path = tmp_path / "sweep.jsonl"
        SweepDriver(
            rank_spec_fn, checkpoint=journal_path, **driver_kwargs
        ).run(GRID[:2])
        # Tear the last journal line mid-write (killed process).
        lines = journal_path.read_text().strip().splitlines()
        journal_path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:13])
        assert len(load_journal(journal_path)) == 1
        resumed = CountingSpecFn()
        result = SweepDriver(
            resumed, checkpoint=journal_path, **driver_kwargs
        ).run(GRID)
        # The torn point plus the never-run point recompute; the intact
        # one does not.
        assert len(resumed.calls) == 2
        straight = SweepDriver(rank_spec_fn, **driver_kwargs).run(GRID)
        assert [p.values for p in result.points] == [
            p.values for p in straight.points
        ]
        # The repaired journal now holds the full grid.
        assert len(load_journal(journal_path)) == 3
