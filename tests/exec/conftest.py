"""Lock-order instrumentation for the executor test suite.

Every test under ``tests/exec`` runs with ``threading.Lock`` / ``RLock`` /
``Condition`` construction monkeypatched (for ``repro.*`` callers only) by
:class:`repro.devtools.lockorder.LockOrderMonitor`.  The monitor records a
``held → acquired`` edge for every nested acquisition across every thread;
at session teardown the accumulated graph must be acyclic, otherwise two
code paths take the same pair of locks in opposite orders — a deadlock
waiting for the right interleaving.

The check is cumulative across the whole ``tests/exec`` session on
purpose: cycles between locks acquired by *different tests* (e.g. a pool
test and a distributed test sharing the scheduler lock) are exactly the
interleavings a per-test check would miss.
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.devtools.lockorder import LockOrderMonitor


@pytest.fixture(scope="session", autouse=True)
def lock_order_monitor() -> Iterator[LockOrderMonitor]:
    monitor = LockOrderMonitor(module_prefixes=("repro.",))
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()
    # Checked after uninstall so a failure here cannot leave the patched
    # factories installed for unrelated test sessions.
    monitor.assert_no_cycles()
