"""Tests for worker liveness, error telemetry, and retry policy."""

import pytest

from repro.exec.health import (
    DEAD,
    HEALTHY,
    SUSPECT,
    ErrorTelemetry,
    FleetDegradedWarning,
    HealthBoard,
    RetryPolicy,
    WorkerHealth,
    WorkerTimeoutError,
    degradation_message,
)


class TestWorkerHealth:
    def test_state_machine_walk(self):
        record = WorkerHealth()
        assert record.state == HEALTHY
        assert record.record_miss(1, 3, reason="heartbeat") == SUSPECT
        assert record.record_miss(1, 3, reason="heartbeat") == SUSPECT
        assert record.record_miss(1, 3, reason="timeout") == DEAD
        assert record.transitions == [
            (HEALTHY, SUSPECT, "heartbeat"),
            (SUSPECT, DEAD, "timeout"),
        ]

    def test_ok_resets_streak(self):
        record = WorkerHealth()
        record.record_miss(1, 3, reason="ping")
        assert record.record_ok() == HEALTHY
        assert record.misses == 0
        # The streak restarts from scratch after the success.
        assert record.record_miss(1, 3, reason="ping") == SUSPECT

    def test_mark_dead_is_unconditional(self):
        record = WorkerHealth()
        assert record.mark_dead("exhausted") == DEAD
        assert record.transitions == [(HEALTHY, DEAD, "exhausted")]


class TestHealthBoard:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthBoard(suspect_after=0)
        with pytest.raises(ValueError):
            HealthBoard(suspect_after=3, dead_after=2)

    def test_unknown_worker_is_healthy(self):
        board = HealthBoard()
        assert board.state("nowhere:1") == HEALTHY
        assert not board.is_dead("nowhere:1")

    def test_miss_sequence_promotes(self):
        board = HealthBoard(suspect_after=1, dead_after=3)
        worker = ("10.0.0.5", 9123)
        assert board.record_miss(worker) == SUSPECT
        assert board.record_miss(worker) == SUSPECT
        assert board.record_miss(worker) == DEAD
        assert board.is_dead(worker)
        # A dead worker that answers again is alive, whatever its past.
        assert board.record_ok(worker) == HEALTHY

    def test_snapshot_is_a_copy(self):
        board = HealthBoard(suspect_after=1, dead_after=2)
        board.record_miss("w", reason="heartbeat")
        snapshot = board.snapshot()
        snapshot["w"].mark_dead("tampering")
        snapshot["w"].transitions.append(("x", "y", "z"))
        assert board.state("w") == SUSPECT
        assert board.snapshot()["w"].transitions == [
            (HEALTHY, SUSPECT, "heartbeat")
        ]


class TestErrorTelemetry:
    def test_counts_by_worker_and_category(self):
        telemetry = ErrorTelemetry()
        telemetry.record("a", "transport")
        telemetry.record("a", "transport")
        telemetry.record("a", "timeout")
        telemetry.record("b", "connect", n=3)
        assert telemetry.counts() == {
            "a": {"transport": 2, "timeout": 1},
            "b": {"connect": 3},
        }
        assert telemetry.total() == 6
        assert telemetry.total("transport") == 2
        assert telemetry.total("nothing") == 0

    def test_counts_returns_a_copy(self):
        telemetry = ErrorTelemetry()
        telemetry.record("a", "transport")
        telemetry.counts()["a"]["transport"] = 99
        assert telemetry.total("transport") == 1


class TestRetryPolicy:
    def test_deterministic_in_seed_lane_attempt(self):
        assert RetryPolicy(seed=7).delay(2, lane=1) == RetryPolicy(
            seed=7
        ).delay(2, lane=1)
        assert RetryPolicy(seed=7).delay(0, lane=0) != RetryPolicy(
            seed=8
        ).delay(0, lane=0)

    def test_lanes_desynchronise(self):
        policy = RetryPolicy(seed=0)
        assert policy.delay(0, lane=0) != policy.delay(0, lane=1)

    def test_bounds(self):
        policy = RetryPolicy(seed=3, base=0.1, cap=0.8)
        for attempt in range(8):
            delay = policy.delay(attempt)
            exponential = min(0.8, 0.1 * 2.0**attempt)
            assert 0.5 * exponential <= delay <= exponential
        # Far attempts are capped, jitter aside.
        assert policy.delay(30) <= 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.5, cap=0.1)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestDegradationTypes:
    def test_fleet_degraded_warning_is_a_runtime_warning(self):
        """Existing `pytest.warns(RuntimeWarning)` call sites keep working."""
        assert issubclass(FleetDegradedWarning, RuntimeWarning)

    def test_worker_timeout_is_a_connection_error(self):
        """Transport handlers catch it uniformly yet can tell it apart."""
        assert issubclass(WorkerTimeoutError, ConnectionError)

    def test_degradation_message_shapes(self):
        assert degradation_message("fleet gone") == "fleet gone"
        assert (
            degradation_message("fleet gone", {"chunks": 3, "workers": 0})
            == "fleet gone (chunks=3, workers=0)"
        )
