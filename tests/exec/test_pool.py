"""Tests for the warm WorkerPool executor."""

import glob
import os
import time

import numpy as np
import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import WorkerPool
from repro.lowerbounds import TopSubmatrixRankProtocol


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"task {x} failed")


def _exit_once(path):
    """Kill the worker process the first time; succeed afterwards.

    The sentinel file is removed *before* dying so the retried batch,
    running on a rebuilt pool, completes normally — a deterministic
    worker-crash scenario.
    """
    if os.path.exists(path):
        os.remove(path)
        os._exit(1)
    return "recovered"


def rank_spec(seed=7, **overrides):
    spec = dict(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=seed,
    )
    spec.update(overrides)
    return RunSpec(**spec)


class TestWarmReuse:
    def test_bit_identical_to_serial(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 24)
        with WorkerPool(max_workers=2) as pool:
            batch = Engine(pool).run_batch(rank_spec(), 24)
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys
        assert batch.cost_totals() == golden.cost_totals()

    def test_workers_survive_across_batches(self):
        with WorkerPool(max_workers=2) as pool:
            engine = Engine(pool)
            engine.run_batch(rank_spec(1), 8)
            inner = pool._pool
            assert inner is not None
            engine.run_batch(rank_spec(2), 8)
            engine.run_batch(rank_spec(3), 8)
            # Same ProcessPoolExecutor object: no per-batch start-up.
            assert pool._pool is inner

    def test_plain_map_contract(self):
        with WorkerPool(max_workers=2) as pool:
            assert pool.map(_square, range(10)) == [x * x for x in range(10)]
            assert pool.map(_square, []) == []

    def test_unpicklable_falls_back_serially(self):
        with WorkerPool(max_workers=2) as pool:
            with pytest.warns(RuntimeWarning, match="serially"):
                assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
            # The pool is still usable for picklable work afterwards.
            assert pool.map(_square, [3]) == [9]


class TestFailureRecovery:
    def test_reusable_after_task_raises(self):
        """A task exception propagates but leaves the pool warm."""
        with WorkerPool(max_workers=2) as pool:
            assert pool.map(_square, range(4)) == [0, 1, 4, 9]
            inner = pool._pool
            with pytest.raises(ValueError, match="failed"):
                pool.map(_boom, range(4))
            assert pool._pool is inner  # workers kept, not rebuilt
            assert pool.map(_square, range(4)) == [0, 1, 4, 9]

    def test_engine_batch_after_task_raises(self):
        bad_spec = rank_spec(
            protocol=TopSubmatrixRankProtocol(9),  # k exceeds 8x8 inputs
        )
        with WorkerPool(max_workers=2) as pool:
            engine = Engine(pool)
            with pytest.raises(Exception):
                engine.run_batch(bad_spec, 8)
            golden = Engine(SerialExecutor()).run_batch(rank_spec(), 16)
            assert engine.run_batch(rank_spec(), 16).outputs == golden.outputs

    def test_rebuilds_after_worker_crash(self, tmp_path):
        """A dead worker breaks the pool; the batch retries on a new one."""
        sentinel = tmp_path / "die-once"
        sentinel.write_text("")
        with WorkerPool(max_workers=2) as pool:
            assert pool.map(_square, [1]) == [1]  # warm the pool up
            first = pool._pool
            assert pool.map(_exit_once, [str(sentinel)]) == ["recovered"]
            assert pool._pool is not first  # crash forced a rebuild
            assert pool.broken_pools == 1  # the crash was counted
            assert pool.degraded_batches == 0  # the retry succeeded
            # And the rebuilt pool keeps serving.
            assert pool.map(_square, range(6)) == [x * x for x in range(6)]

    def test_twice_broken_pool_degrades_loudly_and_counts(self, monkeypatch):
        """When the rebuilt pool breaks too, the batch runs serially with
        a typed FleetDegradedWarning and both counters advance."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.exec.health import FleetDegradedWarning

        with WorkerPool(max_workers=2) as pool:

            def always_broken(*args, **kwargs):
                raise BrokenProcessPool("injected worker death")

            monkeypatch.setattr(pool, "_map_once", always_broken)
            with pytest.warns(FleetDegradedWarning, match="serially"):
                assert pool.map(_square, range(4)) == [0, 1, 4, 9]
            assert pool.broken_pools == 2  # original + rebuilt attempt
            assert pool.degraded_batches == 1

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(max_workers=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_square, [1])
        pool.close()  # idempotent


class TestIdleReaping:
    # Deflake pattern: the "still warm right after use" asserts run under
    # a generous idle_timeout (no reap can fire for minutes, however
    # loaded the machine), then the timeout is shortened and one more map
    # schedules the short reap — the test waits on the *state change*, not
    # on wall-clock alignment between the assert and a 0.2s timer.
    LONG_IDLE = 300.0
    SHORT_IDLE = 0.05

    @staticmethod
    def _wait_reaped(pool, condition, deadline_s=10.0):
        deadline = time.monotonic() + deadline_s
        while not condition() and time.monotonic() < deadline:
            time.sleep(0.02)

    def test_idle_workers_reaped_and_rebuilt(self):
        with WorkerPool(max_workers=2, idle_timeout=self.LONG_IDLE) as pool:
            assert pool.map(_square, [2]) == [4]
            assert pool.warm  # safe: the reap timer is minutes away
            pool.idle_timeout = self.SHORT_IDLE
            assert pool.map(_square, [4]) == [16]  # schedules the short reap
            self._wait_reaped(pool, lambda: not pool.warm)
            assert not pool.warm  # reaped after idling
            # The next call transparently rebuilds the workers.
            pool.idle_timeout = self.LONG_IDLE
            assert pool.map(_square, [3]) == [9]
            assert pool.warm

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(idle_timeout=0.0)
        with pytest.raises(ValueError):
            WorkerPool(share_inputs_min_bytes=0)


class TestSharedInputs:
    def test_segment_reused_across_batches(self, rng):
        inputs = rng.integers(0, 2, size=(12, 9), dtype=np.uint8)
        spec = rank_spec(distribution=None, inputs=inputs, record_inputs=True)
        golden = Engine(SerialExecutor()).run_batch(spec, 10)
        with WorkerPool(max_workers=2, share_inputs_min_bytes=1) as pool:
            engine = Engine(pool)
            first = engine.run_batch(spec, 10)
            assert len(pool._segments) == 1
            second = engine.run_batch(spec, 10)
            # Same matrix => same digest => the one segment is reused.
            assert len(pool._segments) == 1
            assert first.outputs == golden.outputs == second.outputs
            for trial in first:
                assert np.array_equal(trial.inputs, inputs)

    def test_segments_unlinked_on_close(self, rng):
        before = set(glob.glob("/dev/shm/psm_*"))
        inputs = rng.integers(0, 2, size=(16, 9), dtype=np.uint8)
        spec = rank_spec(distribution=None, inputs=inputs)
        pool = WorkerPool(max_workers=2, share_inputs_min_bytes=1)
        try:
            Engine(pool).run_batch(spec, 10)
        finally:
            pool.close()
        assert set(glob.glob("/dev/shm/psm_*")) <= before

    def test_idle_reap_releases_segments(self, rng):
        inputs = rng.integers(0, 2, size=(12, 9), dtype=np.uint8)
        spec = rank_spec(distribution=None, inputs=inputs)
        golden = Engine(SerialExecutor()).run_batch(spec, 6)
        with WorkerPool(
            max_workers=2,
            idle_timeout=TestIdleReaping.LONG_IDLE,
            share_inputs_min_bytes=1,
        ) as pool:
            engine = Engine(pool)
            engine.run_batch(spec, 6)
            assert len(pool._segments) == 1  # safe: reap is minutes away
            pool.idle_timeout = TestIdleReaping.SHORT_IDLE
            engine.run_batch(spec, 6)  # schedules the short reap
            TestIdleReaping._wait_reaped(
                pool, lambda: not pool.warm and not pool._segments
            )
            assert not pool.warm
            assert pool._segments == {}  # idle pool pins no shared memory
            # The next batch republishes and still matches the golden run;
            # restore the long timeout so its asserts cannot race a reap.
            pool.idle_timeout = TestIdleReaping.LONG_IDLE
            assert engine.run_batch(spec, 6).outputs == golden.outputs
            assert len(pool._segments) == 1

    def test_distinct_matrices_get_distinct_segments(self, rng):
        with WorkerPool(max_workers=2, share_inputs_min_bytes=1) as pool:
            engine = Engine(pool)
            for seed in (1, 2):
                inputs = np.random.default_rng(seed).integers(
                    0, 2, size=(12, 9), dtype=np.uint8
                )
                engine.run_batch(
                    rank_spec(distribution=None, inputs=inputs), 6
                )
            assert len(pool._segments) == 2
