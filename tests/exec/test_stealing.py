"""Tests for the shared work-stealing chunk scheduler and its consumers."""

import threading

import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker, WorkerPool
from repro.exec.stealing import Chunk, ChunkScheduler
from repro.exec.wire import register_wire_function
from repro.lowerbounds import TopSubmatrixRankProtocol


@register_wire_function
def _square(x):
    return x * x


def rank_spec(seed=7):
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=seed,
    )


class TestChunkScheduler:
    def test_deals_round_robin(self):
        sched = ChunkScheduler(list(range(10)), chunksize=2, lanes=2)
        # Lane 0 gets chunks 0, 2, 4 (starts 0, 4, 8); lane 1 gets 1, 3.
        assert [sched.next_chunk(0).start for _ in range(3)] == [0, 4, 8]
        assert [sched.next_chunk(1).start for _ in range(2)] == [2, 6]

    def test_chunks_partition_items(self):
        items = list(range(11))
        sched = ChunkScheduler(items, chunksize=4, lanes=3)
        seen = []
        for lane in range(3):
            while (chunk := sched.next_chunk(lane)) is not None:
                seen.append(chunk)
        seen.sort(key=lambda c: c.start)
        assert [c.items for c in seen] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10]]

    def test_idle_lane_steals_from_richest(self):
        sched = ChunkScheduler(list(range(12)), chunksize=2, lanes=3)
        # Lane 0 drains its own deque (2 chunks), then must steal.
        assert sched.next_chunk(0) is not None
        assert sched.next_chunk(0) is not None
        stolen = sched.next_chunk(0)
        assert stolen is not None
        assert sched.steals[0] == 1

    def test_static_mode_never_steals(self):
        sched = ChunkScheduler(list(range(12)), chunksize=2, lanes=3, stealing=False)
        assert sched.next_chunk(0) is not None
        assert sched.next_chunk(0) is not None
        assert sched.next_chunk(0) is None  # own deque empty: stop
        assert sched.total_steals() == 0
        assert sched.queued == 4  # other lanes' chunks untouched

    def test_pending_tracks_completion(self):
        sched = ChunkScheduler(list(range(8)), chunksize=2, lanes=1)
        assert sched.pending == 4
        chunk = sched.next_chunk(0)
        assert sched.pending == 4  # in flight still counts
        sched.mark_done(chunk)
        assert sched.pending == 3

    def test_requeue_returns_chunk_to_pool(self):
        sched = ChunkScheduler(list(range(4)), chunksize=2, lanes=2)
        chunk = sched.next_chunk(0)
        sched.requeue(chunk, 0)
        assert sched.pending == 2
        # With stealing, lane 1 can pick up the re-queued chunk.
        starts = set()
        while (got := sched.next_chunk(1)) is not None:
            starts.add(got.start)
        assert chunk.start in starts

    def test_retire_lane_moves_chunks_to_survivors(self):
        sched = ChunkScheduler(
            list(range(12)), chunksize=2, lanes=3, stealing=False
        )
        sched.retire_lane(0)
        drained = []
        for lane in (1, 2):
            while (chunk := sched.next_chunk(lane)) is not None:
                drained.append(chunk.start)
        assert sorted(drained) == [0, 2, 4, 6, 8, 10]

    def test_drain_returns_queued_in_offset_order(self):
        sched = ChunkScheduler(list(range(9)), chunksize=2, lanes=2)
        sched.next_chunk(0)  # one chunk in flight stays out
        drained = sched.drain()
        assert [c.start for c in drained] == [2, 4, 6, 8]
        assert sched.queued == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkScheduler([1], chunksize=0, lanes=1)
        with pytest.raises(ValueError):
            ChunkScheduler([1], chunksize=1, lanes=0)

    def test_empty_items(self):
        sched = ChunkScheduler([], chunksize=2, lanes=2)
        assert sched.pending == 0
        assert sched.next_chunk(0) is None

    def test_concurrent_lanes_cover_everything_exactly_once(self):
        items = list(range(200))
        sched = ChunkScheduler(items, chunksize=3, lanes=4)
        claimed: list[Chunk] = []
        lock = threading.Lock()

        def lane(index):
            while (chunk := sched.next_chunk(index)) is not None:
                with lock:
                    claimed.append(chunk)
                sched.mark_done(chunk)

        threads = [threading.Thread(target=lane, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = sorted(x for chunk in claimed for x in chunk.items)
        assert flat == items
        assert sched.pending == 0


class TestWorkerPoolStealing:
    def test_steal_is_default_and_bit_identical_to_serial(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 24)
        with WorkerPool(max_workers=2) as pool:
            assert pool.scheduling == "steal"
            batch = Engine(pool).run_batch(rank_spec(), 24)
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys

    def test_static_mode_matches_steal_mode(self):
        with WorkerPool(max_workers=2, scheduling="static") as static_pool:
            static = Engine(static_pool).run_batch(rank_spec(), 24)
        with WorkerPool(max_workers=2, scheduling="steal") as steal_pool:
            steal = Engine(steal_pool).run_batch(rank_spec(), 24)
        assert static.outputs == steal.outputs

    def test_scheduling_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(scheduling="roulette")

    def test_task_error_propagates_and_pool_stays_warm(self):
        with WorkerPool(max_workers=2) as pool:
            with pytest.raises(ValueError, match="task"):
                pool.map(_boom_global, range(8))
            # The pool survived the task error and still works.
            assert pool.warm
            assert pool.map(_square, range(5)) == [0, 1, 4, 9, 16]


def _boom_global(x):
    raise ValueError(f"task {x}")


class TestDistributedStealing:
    def test_steal_mode_rebalances_off_slow_worker(self):
        """With one straggler, stealing moves chunks to the fast host."""
        with LoopbackWorker() as fast, LoopbackWorker(request_delay=0.05) as slow:
            with DistributedExecutor(
                [fast.endpoint, slow.endpoint], chunksize=1, scheduling="steal"
            ) as executor:
                assert executor.map(_square, range(10)) == [
                    x * x for x in range(10)
                ]
                assert executor.last_map_steals > 0

    def test_static_mode_pins_chunks(self):
        with LoopbackWorker() as w1, LoopbackWorker() as w2:
            with DistributedExecutor(
                [w1.endpoint, w2.endpoint], chunksize=1, scheduling="static"
            ) as executor:
                assert executor.map(_square, range(10)) == [
                    x * x for x in range(10)
                ]
                assert executor.last_map_steals == 0

    def test_steal_and_static_agree_on_skewed_fleet(self):
        """Same results either way on a skewed fleet; the wall-clock
        claim itself lives in benchmarks/bench_exec_steal.py (best-of-N
        with a 1.3x bar), not in the unit suite where a single noisy
        run would flake."""

        def run(scheduling):
            with LoopbackWorker() as fast, LoopbackWorker(
                request_delay=0.04
            ) as slow:
                with DistributedExecutor(
                    [fast.endpoint, slow.endpoint],
                    chunksize=1,
                    scheduling=scheduling,
                ) as executor:
                    result = executor.map(_square, range(12))
                    return result, executor.last_map_steals

        static_result, static_steals = run("static")
        steal_result, steal_steals = run("steal")
        assert static_result == steal_result == [x * x for x in range(12)]
        assert static_steals == 0
        assert steal_steals > 0  # the fast worker relieved the straggler

    def test_scheduling_validation(self):
        with pytest.raises(ValueError):
            DistributedExecutor(["host:1"], scheduling="roulette")

    def test_static_mode_with_unreachable_worker_completes(self):
        """Regression: chunks dealt to a never-connectable lane must be
        retired to the live workers — static mode used to spin forever
        re-dispatching an empty round.  local_fallback=False proves the
        orphaned chunks ran remotely."""
        import socket as socket_mod

        with socket_mod.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_endpoint = "127.0.0.1:%d" % probe.getsockname()[1]
        with LoopbackWorker() as good:
            with DistributedExecutor(
                [good.endpoint, dead_endpoint],
                chunksize=1,
                scheduling="static",
                connect_timeout=0.5,
                local_fallback=False,
            ) as executor:
                assert executor.map(_square, range(10)) == [
                    x * x for x in range(10)
                ]

    def test_static_mode_survives_two_worker_failures(self):
        """Regression: the second dead lane's chunks must be retired onto
        *live* lanes only — redistributing onto the first dead lane used
        to strand them (and hang) in static mode."""
        steady = LoopbackWorker()
        flaky_a = LoopbackWorker(max_requests_per_connection=1)
        flaky_b = LoopbackWorker(max_requests_per_connection=1)
        try:
            with DistributedExecutor(
                [steady.endpoint, flaky_a.endpoint, flaky_b.endpoint],
                chunksize=1,
                scheduling="static",
                local_fallback=False,
            ) as executor:
                for _ in range(3):  # repeated maps re-roll the failure race
                    assert executor.map(_square, range(12)) == [
                        x * x for x in range(12)
                    ]
        finally:
            steady.stop()
            flaky_a.stop()
            flaky_b.stop()

    def test_failover_with_stealing(self):
        """A dying worker's chunks are stolen/redistributed, not lost."""
        flaky = LoopbackWorker(max_requests_per_connection=1)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [flaky.endpoint, steady.endpoint], chunksize=2, scheduling="steal"
            ) as executor:
                assert executor.map(_square, range(16)) == [
                    x * x for x in range(16)
                ]
        finally:
            flaky.stop()
            steady.stop()

    def test_engine_batch_on_skewed_fleet_bit_identical(self):
        golden = Engine(SerialExecutor()).run_batch(rank_spec(), 20)
        with LoopbackWorker() as fast, LoopbackWorker(request_delay=0.02) as slow:
            with DistributedExecutor(
                [fast.endpoint, slow.endpoint], chunksize=2
            ) as executor:
                batch = Engine(executor).run_batch(rank_spec(), 20)
        assert batch.outputs == golden.outputs
        assert batch.cost_totals() == golden.cost_totals()
