"""Tests for Engine.submit_batch, BatchFuture, and as_completed."""

import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.core import Engine, PublicCoins, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import as_completed
from repro.lowerbounds import TopSubmatrixRankProtocol
from repro.protocols import GlobalParityProtocol


class SleepyParityProtocol(GlobalParityProtocol):
    """Parity with an artificial per-broadcast delay (cancellation window)."""

    supports_batch = False  # force the scalar (slow) path

    def __init__(self, delay: float = 0.01):
        self.delay = delay

    def broadcast(self, proc, round_index):
        time.sleep(self.delay)
        return super().broadcast(proc, round_index)


def rank_spec(seed=7, vectorized=False):
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=seed,
        vectorized=vectorized,
    )


class TestSubmitBatch:
    def test_bit_identical_to_run_batch(self):
        golden = Engine().run_batch(rank_spec(), 32)
        with Engine(SerialExecutor()) as engine:
            future = engine.submit_batch(rank_spec(), 32)
            batch = future.result(timeout=60)
        assert batch.outputs == golden.outputs
        assert batch.transcript_keys == golden.transcript_keys
        assert batch.cost_totals() == golden.cost_totals()

    def test_many_inflight_batches_independent(self):
        goldens = [Engine().run_batch(rank_spec(seed), 16) for seed in range(5)]
        with Engine() as engine:
            futures = [engine.submit_batch(rank_spec(seed), 16) for seed in range(5)]
            batches = [future.result(timeout=60) for future in futures]
        for golden, batch in zip(goldens, batches):
            assert batch.outputs == golden.outputs

    def test_submission_order_never_changes_seeding(self):
        """Completion order is scheduling; trial seeds are spec-only."""
        golden = Engine().run_batch(rank_spec(3), 16)
        with Engine() as engine:
            futures = [engine.submit_batch(rank_spec(3), 16) for _ in range(4)]
            seen = [future.result(timeout=60).outputs for future in as_completed(futures)]
        assert all(outputs == golden.outputs for outputs in seen)

    def test_vectorized_spec_through_future(self):
        golden = Engine().run_batch(rank_spec(vectorized=True), 40)
        with Engine() as engine:
            batch = engine.submit_batch(rank_spec(vectorized=True), 40).result(60)
        assert batch.outputs == golden.outputs

    def test_validates_eagerly(self):
        with Engine() as engine:
            with pytest.raises(ValueError):
                engine.submit_batch(rank_spec(), -1)
            spec = RunSpec(
                protocol=GlobalParityProtocol(),
                inputs=np.zeros((3, 3), dtype=np.uint8),
                public_coins=PublicCoins(np.random.default_rng(0)),
            )
            with pytest.raises(ValueError):
                engine.submit_batch(spec, 4)

    def test_engine_reusable_after_close(self):
        engine = Engine()
        assert engine.submit_batch(rank_spec(), 4).result(60)
        engine.close()
        assert engine.submit_batch(rank_spec(), 4).result(60)
        engine.close()
        engine.close()  # idempotent

    def test_exception_propagates(self):
        spec = RunSpec(
            protocol=TopSubmatrixRankProtocol(9),  # k exceeds the 4x4 inputs
            distribution=UniformRows(4, 4),
            seed=0,
        )
        with Engine() as engine:
            future = engine.submit_batch(spec, 4)
            assert future.exception(timeout=60) is not None
            with pytest.raises(Exception):
                future.result(timeout=60)


class TestCancel:
    def test_cancel_before_start(self):
        """A queued batch (beyond max_inflight) cancels cleanly."""
        spec = RunSpec(
            protocol=SleepyParityProtocol(0.02),
            distribution=UniformRows(3, 4),
            seed=1,
        )
        with Engine(SerialExecutor(), max_inflight=1) as engine:
            running = engine.submit_batch(spec, 10)  # occupies the only thread
            queued = engine.submit_batch(rank_spec(), 4)
            assert queued.cancel()
            assert queued.cancelled()
            assert queued.done()
            with pytest.raises(CancelledError):
                queued.result(timeout=5)
            # The running batch is unaffected.
            assert len(running.result(timeout=60)) == 10

    def test_cancel_after_completion_fails(self):
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 4)
            future.result(timeout=60)
            assert not future.cancel()
            assert future.done()


class TestBatchFutureSurface:
    def test_then_transforms_lazily(self):
        golden = Engine().run_batch(rank_spec(), 32)
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 32)
            accept_rate = future.then(lambda batch: batch.decisions(0).mean())
            assert accept_rate.result(timeout=60) == golden.decisions(0).mean()
            # The parent future still yields the raw batch.
            assert future.result(timeout=60).outputs == golden.outputs

    def test_then_chains(self):
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 16)
            doubled = future.then(lambda batch: len(batch)).then(lambda n: 2 * n)
            assert doubled.result(timeout=60) == 32

    def test_then_caches_single_application(self):
        calls = []
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 8)
            counted = future.then(lambda batch: calls.append(1) or len(batch))
            assert counted.result(timeout=60) == 8
            assert counted.result(timeout=60) == 8
        assert len(calls) == 1

    def test_then_chain_reuses_parent_cache(self):
        """Each link of a then-chain evaluates once, however it's consumed."""
        parent_calls, child_calls = [], []
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 8)
            parent = future.then(lambda batch: parent_calls.append(1) or len(batch))
            child_a = parent.then(lambda n: child_calls.append(1) or n + 1)
            child_b = parent.then(lambda n: child_calls.append(1) or n + 2)
            assert parent.result(timeout=60) == 8
            assert child_a.result(timeout=60) == 9
            assert child_b.result(timeout=60) == 10
        assert len(parent_calls) == 1  # not re-run per descendant
        assert len(child_calls) == 2

    def test_exception_covers_transform_chain(self):
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 4)
            broken = future.then(lambda batch: 1 / 0)
            exc = broken.exception(timeout=60)
            assert isinstance(exc, ZeroDivisionError)
            # The parent itself succeeded.
            assert future.exception(timeout=60) is None
            healthy = future.then(len)
            assert healthy.exception(timeout=60) is None
            assert healthy.result(timeout=60) == 4

    def test_add_done_callback_receives_wrapper(self):
        seen = []
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 4)
            future.add_done_callback(lambda f: seen.append(f.done()))
            future.result(timeout=60)
        assert seen == [True]

    def test_as_completed_yields_every_future(self):
        with Engine() as engine:
            futures = [engine.submit_batch(rank_spec(seed), 8) for seed in range(4)]
            finished = list(as_completed(futures, timeout=60))
        assert sorted(id(f) for f in finished) == sorted(id(f) for f in futures)

    def test_spec_and_trials_introspection(self):
        with Engine() as engine:
            spec = rank_spec()
            future = engine.submit_batch(spec, 12)
            assert future.trials == 12
            assert future.spec is spec
            future.result(timeout=60)


class TestAsCompletedTimeout:
    def test_timeout_raises_after_yielding_finished_futures(self):
        """A stalled batch must not hang the iterator: finished futures
        come out first, then TimeoutError."""
        from concurrent.futures import TimeoutError as FuturesTimeout

        slow_spec = RunSpec(
            protocol=SleepyParityProtocol(0.05),
            distribution=UniformRows(3, 4),
            seed=1,
        )
        with Engine(SerialExecutor(), max_inflight=1) as engine:
            fast = engine.submit_batch(rank_spec(), 4)
            fast.result(timeout=60)          # already done before iterating
            slow = engine.submit_batch(slow_spec, 40)  # ~6s of sleeps
            yielded = []
            with pytest.raises(FuturesTimeout):
                for future in as_completed([fast, slow], timeout=0.2):
                    yielded.append(future)
            assert yielded == [fast]
            assert not slow.done()
            slow.result(timeout=60)  # the batch itself is unharmed

    def test_timeout_none_waits_for_everything(self):
        with Engine() as engine:
            futures = [engine.submit_batch(rank_spec(seed), 4) for seed in range(3)]
            assert len(list(as_completed(futures, timeout=None))) == 3

    def test_generous_timeout_yields_all_in_completion_order(self):
        with Engine() as engine:
            futures = [engine.submit_batch(rank_spec(seed), 8) for seed in range(4)]
            seen = list(as_completed(futures, timeout=120))
        assert sorted(id(f) for f in seen) == sorted(id(f) for f in futures)
        assert all(f.done() for f in seen)

    def test_timeout_with_derived_futures(self):
        """then-derived futures ride their parent's completion through a
        timed as_completed."""
        with Engine() as engine:
            future = engine.submit_batch(rank_spec(), 8)
            derived = future.then(len)
            seen = list(as_completed([future, derived], timeout=60))
        assert set(map(id, seen)) == {id(future), id(derived)}
        assert derived.result(timeout=1) == 8
