"""Tests for the deterministic fault-injection harness (repro.exec.faults)."""

import socket
import threading

import pytest

from repro.exec.faults import (
    DEFAULT_KINDS,
    FAULT_KINDS,
    MANGLE_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    send_mangled,
)
from repro.exec.wire import (
    FrameAuthenticationError,
    TruncatedFrameError,
    WireProtocolError,
    WireSession,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="scope"):
            FaultEvent("nonsense", 0, "crash")
        with pytest.raises(ValueError, match="kind"):
            FaultEvent("map", 0, "meteor")
        with pytest.raises(ValueError, match="op"):
            FaultEvent("map", -1, "crash")
        with pytest.raises(ValueError, match="delay"):
            FaultEvent("map", 0, "slow", delay=-0.1)

    def test_frozen(self):
        event = FaultEvent("map", 0, "crash")
        with pytest.raises(AttributeError):
            event.kind = "slow"

    def test_vocabulary_is_consistent(self):
        assert MANGLE_KINDS <= set(FAULT_KINDS)
        assert set(DEFAULT_KINDS) <= set(FAULT_KINDS)
        assert "hang" not in DEFAULT_KINDS  # only scheduled explicitly


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        sites = ("worker-0", "worker-1")
        assert FaultPlan.from_seed(7, sites=sites) == FaultPlan.from_seed(
            7, sites=sites
        )
        assert FaultPlan.from_seed(7, sites=sites) != FaultPlan.from_seed(
            8, sites=sites
        )

    def test_json_round_trip_is_exact(self):
        plan = FaultPlan.from_seed(3, sites=("a", "b"), rate=0.5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_json('{"version": 99, "sites": {}}')

    def test_duplicate_schedule_slot_rejected(self):
        with pytest.raises(ValueError, match="two faults"):
            FaultPlan(
                {
                    "w": [
                        FaultEvent("map", 0, "crash"),
                        FaultEvent("map", 0, "slow"),
                    ]
                }
            )

    def test_from_seed_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.from_seed(0, rate=1.5)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.from_seed(0, horizon=0)
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan.from_seed(0, kinds=("crash", "meteor"))

    def test_rate_bounds_event_count(self):
        empty = FaultPlan.from_seed(0, rate=0.0)
        assert empty.events("worker-0") == ()
        # rate=1 schedules one fault at every op of every applicable scope.
        saturated = FaultPlan.from_seed(0, rate=1.0, horizon=4)
        ops = {
            (event.scope, event.op)
            for event in saturated.events("worker-0")
        }
        assert {("map", op) for op in range(4)} <= ops
        assert {("accept", op) for op in range(4)} <= ops

    def test_unknown_site_has_no_faults(self):
        plan = FaultPlan.from_seed(1)
        assert plan.events("never-heard-of-it") == ()
        assert plan.sites == ("worker-0",)

    def test_slow_events_carry_bounded_delay(self):
        plan = FaultPlan.from_seed(5, rate=1.0, horizon=16, max_delay=0.02)
        slow = [
            event
            for event in plan.events("worker-0")
            if event.kind == "slow"
        ]
        for event in slow:
            assert 0.002 <= event.delay <= 0.02


class TestFaultInjector:
    def test_counts_ops_per_scope(self):
        injector = FaultInjector(
            [FaultEvent("map", 1, "crash"), FaultEvent("publish", 0, "lose_publish")]
        )
        assert injector.next_fault("map") is None  # map op 0
        fault = injector.next_fault("map")  # map op 1
        assert fault is not None and fault.kind == "crash"
        # Scope counters are independent: publish is still at op 0.
        fault = injector.next_fault("publish")
        assert fault is not None and fault.kind == "lose_publish"
        assert [event.kind for event in injector.injected] == [
            "crash",
            "lose_publish",
        ]

    def test_exhausted_schedule_is_quiet(self):
        injector = FaultInjector([FaultEvent("map", 0, "crash")])
        assert injector.next_fault("map").kind == "crash"
        for _ in range(5):
            assert injector.next_fault("map") is None

    def test_hang_is_sticky_until_stop(self):
        injector = FaultInjector([])
        released = threading.Event()

        def wedge():
            injector.hang()  # blocks until stop()
            released.set()

        thread = threading.Thread(target=wedge, daemon=True)
        thread.start()
        deadline = 50
        while not injector.hung and deadline:
            threading.Event().wait(0.01)
            deadline -= 1
        assert injector.hung
        assert not released.is_set()
        injector.stop()
        thread.join(timeout=5.0)
        assert released.is_set()


class TestSendMangled:
    @staticmethod
    def _sessions():
        """An authenticated client/server session pair over a socketpair."""
        left, right = socket.socketpair()
        results = {}

        def server():
            results["server"] = WireSession.server(right)

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        client = WireSession.client(left)
        thread.join(timeout=5.0)
        return client, results["server"], left, right

    def _mangled_recv(self, kind):
        client, server, left, right = self._sessions()
        try:
            send_mangled(server, ("ok", [1, 2, 3]), kind)
            right.close()
            return client.recv()
        finally:
            left.close()

    def test_truncate_surfaces_as_truncated_frame(self):
        with pytest.raises(TruncatedFrameError):
            self._mangled_recv("truncate")

    def test_drop_mid_frame_surfaces_as_truncated_frame(self):
        with pytest.raises(TruncatedFrameError):
            self._mangled_recv("drop_mid_frame")

    def test_corrupt_surfaces_as_mac_failure(self):
        """Flipped payload bytes ride under the original (now wrong)
        MAC: detection is cryptographic, not pickle-decode luck."""
        with pytest.raises(FrameAuthenticationError):
            self._mangled_recv("corrupt")

    def test_every_mangle_is_a_typed_wire_error(self):
        """The invariant: damage never decodes into a plausible object."""
        for kind in sorted(MANGLE_KINDS):
            with pytest.raises(WireProtocolError):
                self._mangled_recv(kind)

    def test_mangled_frame_advances_the_send_sequence(self):
        """frame_bytes() burns a sequence number even when the bytes are
        then damaged — the honest frames around a mangled one must not
        shift into each other's MAC slots."""
        client, server, left, right = self._sessions()
        try:
            before = server._send_seq
            send_mangled(server, ("ok", [1]), "corrupt")
            assert server._send_seq == before + 1
        finally:
            left.close()
            right.close()

    def test_non_mangle_kind_rejected(self):
        client, server, left, right = self._sessions()
        try:
            with pytest.raises(ValueError, match="mangling"):
                send_mangled(server, "x", "crash")
        finally:
            left.close()
            right.close()
