"""Tests for confidence intervals and advantage estimation."""

import numpy as np
import pytest

from repro.infotheory import (
    estimate_advantage,
    estimate_tv_distance,
    hoeffding_interval,
    wilson_interval,
)
from repro.infotheory.estimation import _normal_quantile


class TestHoeffding:
    def test_contains_estimate(self):
        ci = hoeffding_interval(0.5, 100)
        assert ci.lower <= 0.5 <= ci.upper
        assert ci.contains(0.5)

    def test_radius_shrinks_with_samples(self):
        r_small = hoeffding_interval(0.5, 100).radius
        r_large = hoeffding_interval(0.5, 10000).radius
        assert r_large < r_small
        assert r_large == pytest.approx(r_small / 10, rel=0.01)

    def test_clamped_to_unit_interval(self):
        ci = hoeffding_interval(0.01, 10)
        assert ci.lower >= 0.0
        ci = hoeffding_interval(0.99, 10)
        assert ci.upper <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hoeffding_interval(0.5, 0)
        with pytest.raises(ValueError):
            hoeffding_interval(0.5, 10, confidence=1.5)

    def test_coverage_simulation(self):
        # 95% interval should cover the true mean in most trials.
        rng = np.random.default_rng(0)
        true_p, n, covered = 0.3, 200, 0
        trials = 200
        for _ in range(trials):
            mean = rng.binomial(n, true_p) / n
            if hoeffding_interval(mean, n, 0.95).contains(true_p):
                covered += 1
        assert covered / trials >= 0.93


class TestWilson:
    def test_extreme_counts(self):
        ci = wilson_interval(0, 50)
        assert ci.lower == pytest.approx(0.0, abs=1e-12)
        assert ci.upper > 0.0
        ci = wilson_interval(50, 50)
        assert ci.upper == pytest.approx(1.0, abs=1e-12)
        assert ci.lower < 1.0

    def test_centre_near_proportion(self):
        ci = wilson_interval(30, 100)
        assert ci.estimate == pytest.approx(0.3)
        assert ci.lower < 0.3 < ci.upper

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_normal_quantile_sanity(self):
        assert _normal_quantile(0.975) == pytest.approx(1.95996, abs=1e-3)
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            _normal_quantile(0.0)


class TestAdvantage:
    def test_perfect_distinguisher(self):
        est = estimate_advantage(np.ones(100), np.zeros(100))
        assert est.advantage == pytest.approx(0.5)

    def test_useless_distinguisher(self):
        est = estimate_advantage(np.ones(100), np.ones(100))
        assert est.advantage == 0.0

    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(1)
        est = estimate_advantage(
            rng.integers(0, 2, 500), rng.integers(0, 2, 500)
        )
        ci = est.interval
        assert ci.lower <= est.advantage <= ci.upper

    def test_unequal_sizes_raise(self):
        with pytest.raises(ValueError):
            estimate_advantage(np.ones(10), np.ones(20))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_advantage(np.array([]), np.array([]))


class TestTVEstimate:
    def test_identical_samples_zero(self):
        samples = ["a"] * 50 + ["b"] * 50
        ci = estimate_tv_distance(samples, list(samples))
        assert ci.estimate == 0.0

    def test_disjoint_samples_one(self):
        ci = estimate_tv_distance(["a"] * 50, ["b"] * 50)
        assert ci.estimate == 1.0

    def test_interval_covers_truth_for_same_distribution(self):
        rng = np.random.default_rng(2)
        p = rng.integers(0, 4, 2000).tolist()
        q = rng.integers(0, 4, 2000).tolist()
        ci = estimate_tv_distance(p, q, confidence=0.99)
        assert ci.lower <= 0.0 + 1e-12  # truth is 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_tv_distance([], ["a"])
