"""Tests for entropy / mutual information tools."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory import (
    binary_entropy,
    binary_entropy_inverse_gap,
    conditional_entropy,
    empirical_distribution,
    entropy,
    joint_entropy,
    mutual_information,
)


class TestEntropy:
    def test_uniform_is_log_support(self):
        assert entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_point_mass_is_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_invalid_distribution_raises(self):
        with pytest.raises(ValueError):
            entropy(np.array([0.5, 0.2]))
        with pytest.raises(ValueError):
            entropy(np.array([1.5, -0.5]))

    def test_binary_entropy_symmetric(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_binary_entropy_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_binary_entropy_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.2)


class TestFact23:
    """Fact 2.3: H(p) >= 0.9 implies p in [0.3, 0.7] and
    (1-H(p))/(p-1/2)^2 in [2, 3]."""

    def test_ratio_in_range_where_entropy_high(self):
        for p in np.linspace(0.31, 0.69, 50):
            if binary_entropy(p) >= 0.9:
                ratio = binary_entropy_inverse_gap(p)
                assert 2.0 <= ratio <= 3.0, f"ratio {ratio} at p={p}"

    def test_high_entropy_implies_p_range(self):
        for p in np.linspace(0.001, 0.999, 999):
            if binary_entropy(p) >= 0.9:
                assert 0.3 <= p <= 0.7

    def test_limit_at_half(self):
        assert binary_entropy_inverse_gap(0.5) == pytest.approx(
            2.0 / np.log(2.0)
        )


class TestJointQuantities:
    def test_independent_mutual_information_zero(self):
        x = np.array([0.3, 0.7])
        y = np.array([0.6, 0.4])
        joint = np.outer(x, y)
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)

    def test_identical_variables_full_information(self):
        joint = np.diag([0.5, 0.5])
        assert mutual_information(joint) == pytest.approx(1.0)
        assert conditional_entropy(joint) == pytest.approx(0.0, abs=1e-12)

    def test_chain_rule(self):
        rng = np.random.default_rng(7)
        joint = rng.random((4, 5))
        joint /= joint.sum()
        h_joint = joint_entropy(joint)
        h_y = entropy(joint.sum(axis=0))
        assert conditional_entropy(joint) == pytest.approx(h_joint - h_y)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            conditional_entropy(np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            mutual_information(np.array([1.0]))


class TestEmpirical:
    def test_counts(self):
        pmf = empirical_distribution(np.array([0, 0, 1, 2]), support=4)
        assert np.allclose(pmf, [0.5, 0.25, 0.25, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_distribution(np.array([], dtype=int), support=2)


@given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_entropy_bounds_property(weights):
    p = np.array(weights) / np.sum(weights)
    h = entropy(p)
    assert -1e-9 <= h <= np.log2(len(p)) + 1e-9


@given(
    st.integers(2, 5),
    st.integers(2, 5),
    st.integers(0, 2**31),
)
@settings(max_examples=50, deadline=None)
def test_information_inequalities_property(nx, ny, seed):
    rng = np.random.default_rng(seed)
    joint = rng.random((nx, ny))
    joint /= joint.sum()
    mi = mutual_information(joint)
    h_x = entropy(joint.sum(axis=1))
    h_y = entropy(joint.sum(axis=0))
    assert -1e-9 <= mi <= min(h_x, h_y) + 1e-9
    # Sub-additivity: H(X,Y) <= H(X) + H(Y)
    assert joint_entropy(joint) <= h_x + h_y + 1e-9
