"""Tests for Boolean Fourier analysis (Section 2.2 tools)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory import (
    fourier_coefficient,
    fourier_coefficients,
    inverse_fourier,
    parseval_gap,
    truth_table,
    walsh_hadamard,
)


class TestWalshHadamard:
    def test_constant_function(self):
        out = walsh_hadamard(np.ones(8))
        assert out[0] == pytest.approx(8.0)
        assert np.allclose(out[1:], 0.0)

    def test_non_power_of_two_raises(self):
        with pytest.raises(ValueError):
            walsh_hadamard(np.ones(6))

    def test_involution_up_to_scaling(self):
        rng = np.random.default_rng(3)
        values = rng.random(16)
        twice = walsh_hadamard(walsh_hadamard(values))
        assert np.allclose(twice, 16 * values)


class TestCoefficients:
    def test_empty_set_coefficient_is_mean(self):
        rng = np.random.default_rng(5)
        truth = rng.integers(0, 2, size=32).astype(float)
        coeffs = fourier_coefficients(truth)
        assert coeffs[0] == pytest.approx(truth.mean())

    def test_parity_function_single_coefficient(self):
        # f(x) = (-1)^{x_0 + x_1} over n=2 has all weight on S = {0,1}.
        n = 2
        xs = np.arange(1 << n)
        signs = ((-1.0) ** (np.bitwise_count(xs.astype(np.uint64)))).astype(float)
        coeffs = fourier_coefficients(signs)
        assert coeffs[3] == pytest.approx(1.0)
        assert np.allclose(np.delete(coeffs, 3), 0.0)

    def test_single_coefficient_matches_full_transform(self):
        rng = np.random.default_rng(11)
        truth = rng.random(64)
        coeffs = fourier_coefficients(truth)
        for mask in (0, 1, 7, 63, 32):
            assert fourier_coefficient(truth, mask) == pytest.approx(
                coeffs[mask]
            )

    def test_inverse_recovers_truth_table(self):
        rng = np.random.default_rng(13)
        truth = rng.random(32)
        assert np.allclose(inverse_fourier(fourier_coefficients(truth)), truth)

    def test_bad_mask_raises(self):
        with pytest.raises(ValueError):
            fourier_coefficient(np.ones(4), 4)


class TestParseval:
    @given(st.integers(1, 8), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_parseval_identity_property(self, n, seed):
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 2, size=1 << n).astype(float)
        assert parseval_gap(truth) < 1e-9

    def test_real_valued_functions_too(self):
        rng = np.random.default_rng(17)
        truth = rng.normal(size=128)
        assert parseval_gap(truth) < 1e-9


class TestLemma52Identity:
    """The algebraic identity behind Lemma 5.2's proof:
    f_hat(S_b ∪ {k+1}) = E_{U[b]}[f] − E_{U_{k+1}}[f]."""

    @given(k=st.integers(2, 6), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_bias_equals_fourier_coefficient(self, k, seed):
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 2, size=1 << (k + 1)).astype(float)
        b = int(rng.integers(0, 1 << k))
        # Support of U[b]: inputs whose last bit equals <x, b>.
        xs = np.arange(1 << (k + 1), dtype=np.uint64)
        heads = xs & np.uint64((1 << k) - 1)
        last = (xs >> np.uint64(k)) & np.uint64(1)
        parity = np.bitwise_count(heads & np.uint64(b)) % 2
        on_support = parity == last
        bias = truth[on_support].mean() - truth.mean()
        # The coefficient at S_b ∪ {k+1}: mask = b | 2^k.
        coeff = fourier_coefficient(truth, b | (1 << k))
        assert coeff == pytest.approx(bias, abs=1e-9)


class TestTruthTable:
    def test_majority(self):
        table = truth_table(lambda bits: int(bits.sum() >= 2), 3)
        # index 3 = 0b011 -> bits (1,1,0) -> majority 1
        assert table[3] == 1
        assert table[0] == 0
        assert table[7] == 1

    def test_indexing_convention(self):
        # Bit i of the index is coordinate x_i.
        table = truth_table(lambda bits: int(bits[2]), 3)
        assert table[4] == 1  # index 4 = 0b100 -> x_2 = 1
        assert table[3] == 0

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            truth_table(lambda bits: 0, -1)
