"""Tests for statistical distance, KL divergence, and Pinsker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory import (
    bernoulli_tv,
    chain_step_bound,
    kl_divergence,
    pinsker_bound,
    total_variation,
    tv_from_counts,
)


class TestTotalVariation:
    def test_identical_is_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert total_variation(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_known_value(self):
        assert total_variation(
            np.array([0.5, 0.5]), np.array([0.75, 0.25])
        ) == pytest.approx(0.25)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            total_variation(np.array([1.0]), np.array([0.5, 0.5]))

    def test_bernoulli_tv(self):
        assert bernoulli_tv(0.3, 0.8) == pytest.approx(0.5)


class TestCounts:
    def test_tv_from_counts(self):
        p = {"a": 3, "b": 1}
        q = {"a": 1, "b": 1, "c": 2}
        # p: a=.75 b=.25; q: a=.25 b=.25 c=.5 -> tv = (.5+0+.5)/2 = .5
        assert tv_from_counts(p, q) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tv_from_counts({}, {"a": 1})


class TestKL:
    def test_identical_is_zero(self):
        p = np.array([0.4, 0.6])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_support_escape_is_infinite(self):
        assert kl_divergence(
            np.array([0.5, 0.5]), np.array([1.0, 0.0])
        ) == float("inf")

    def test_known_value(self):
        # D(Ber(1) || Ber(1/2)) = 1 bit
        assert kl_divergence(
            np.array([0.0, 1.0]), np.array([0.5, 0.5])
        ) == pytest.approx(1.0)


class TestPinsker:
    def test_pinsker_bound_formula(self):
        assert pinsker_bound(0.5) == pytest.approx(0.5)

    def test_clamped_at_one(self):
        assert pinsker_bound(1000.0) == 1.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            pinsker_bound(-0.1)


class TestChainStep:
    def test_addition_and_clamp(self):
        assert chain_step_bound(0.2, 0.3) == pytest.approx(0.5)
        assert chain_step_bound(0.8, 0.9) == 1.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            chain_step_bound(-0.1, 0.0)


@given(
    st.lists(st.floats(0.01, 10.0), min_size=2, max_size=15),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_pinsker_inequality_property(weights_p, data):
    """Pinsker's inequality holds for arbitrary distribution pairs."""
    weights_q = data.draw(
        st.lists(
            st.floats(0.01, 10.0),
            min_size=len(weights_p),
            max_size=len(weights_p),
        )
    )
    p = np.array(weights_p) / np.sum(weights_p)
    q = np.array(weights_q) / np.sum(weights_q)
    tv = total_variation(p, q)
    assert tv <= pinsker_bound(kl_divergence(p, q)) + 1e-9


@given(
    st.lists(st.floats(0.01, 10.0), min_size=2, max_size=15),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_tv_is_a_metric_property(weights_p, data):
    size = len(weights_p)
    weights_q = data.draw(
        st.lists(st.floats(0.01, 10.0), min_size=size, max_size=size)
    )
    weights_r = data.draw(
        st.lists(st.floats(0.01, 10.0), min_size=size, max_size=size)
    )
    p = np.array(weights_p) / np.sum(weights_p)
    q = np.array(weights_q) / np.sum(weights_q)
    r = np.array(weights_r) / np.sum(weights_r)
    assert total_variation(p, q) == pytest.approx(total_variation(q, p))
    assert (
        total_variation(p, r)
        <= total_variation(p, q) + total_variation(q, r) + 1e-12
    )
    assert 0.0 <= total_variation(p, q) <= 1.0
