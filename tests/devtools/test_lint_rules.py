"""True-positive / false-positive fixture pairs for every lint rule.

Each rule gets at least one source snippet it MUST flag and one deceptively
similar snippet it MUST NOT flag — the false-positive fixtures encode the
allowlists (sanctioned helpers, the wire module, abstract stubs) that keep
the linter quiet on the real tree.
"""

from __future__ import annotations

import textwrap

from repro.devtools.lint import Finding, lint_paths, lint_source


def rules_fired(source: str, path: str = "src/repro/core/example.py") -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source), path=path)}


def findings(source: str, path: str = "src/repro/core/example.py") -> list[Finding]:
    return lint_source(textwrap.dedent(source), path=path)


# ----------------------------------------------------------------------
# DET01 — ambient randomness in trial paths
# ----------------------------------------------------------------------
class TestDET01:
    def test_flags_legacy_numpy_global_draw(self):
        src = """
            import numpy as np

            def sample():
                return np.random.randint(0, 2)
        """
        assert "DET01" in rules_fired(src)

    def test_flags_stdlib_random_module(self):
        src = """
            import random

            def sample():
                return random.random()
        """
        assert "DET01" in rules_fired(src)

    def test_flags_default_rng_inside_protocol_subclass(self):
        src = """
            import numpy as np
            from repro.core.protocol import Protocol

            class MyProtocol(Protocol):
                def setup(self, proc):
                    self.rng = np.random.default_rng(123)
        """
        assert "DET01" in rules_fired(src)

    def test_flags_unseeded_default_rng_anywhere(self):
        src = """
            import numpy as np

            def helper():
                return np.random.default_rng()
        """
        assert "DET01" in rules_fired(src)

    def test_flags_wall_clock_seeding(self):
        src = """
            import time
            import numpy as np

            def seeded():
                return np.random.default_rng(int(time.time()))
        """
        assert "DET01" in rules_fired(src)

    def test_allows_seeded_default_rng_outside_trial_classes(self):
        # Engine-level seeding from a SeedSequence is the sanctioned
        # pattern — only trial-path classes must route through expand_seed.
        src = """
            import numpy as np

            def make(seed_seq):
                return np.random.default_rng(seed_seq)
        """
        assert "DET01" not in rules_fired(src)

    def test_allows_expand_seed_in_protocol_subclass(self):
        src = """
            from repro.core.protocol import Protocol
            from repro.core.randomness import expand_seed

            class MyProtocol(Protocol):
                def setup(self, proc):
                    self.rng = expand_seed(proc.public_coins.draw_int(32))
        """
        assert "DET01" not in rules_fired(src)

    def test_allows_seed_sequence_plumbing(self):
        src = """
            import numpy as np

            def spawn(seed, index):
                return np.random.SeedSequence(seed, spawn_key=(index,))
        """
        assert "DET01" not in rules_fired(src)

    def test_randomness_module_is_allowlisted(self):
        src = """
            import numpy as np

            def fresh_generator():
                return np.random.default_rng()
        """
        assert (
            "DET01"
            not in rules_fired(src, path="src/repro/core/randomness.py")
        )

    def test_import_alias_is_tracked(self):
        src = """
            import numpy.random as nr

            def sample():
                return nr.randint(0, 2)
        """
        assert "DET01" in rules_fired(src)


# ----------------------------------------------------------------------
# DET02 — frozen spec mutation
# ----------------------------------------------------------------------
class TestDET02:
    def test_flags_object_setattr_outside_post_init(self):
        src = """
            def hack(spec):
                object.__setattr__(spec, "seed", 7)
        """
        assert "DET02" in rules_fired(src)

    def test_allows_object_setattr_in_post_init(self):
        src = """
            class RunSpec:
                def __post_init__(self):
                    object.__setattr__(self, "inputs", None)
        """
        assert "DET02" not in rules_fired(src)

    def test_flags_direct_field_assignment_on_spec(self):
        src = """
            def hack(spec):
                spec.seed = 99
        """
        assert "DET02" in rules_fired(src)

    def test_flags_trials_reassignment_on_batch_result(self):
        src = """
            def hack(result):
                result.trials = []
        """
        assert "DET02" in rules_fired(src)

    def test_allows_unrelated_attribute_assignment(self):
        src = """
            def configure(spec):
                spec.note = "not a RunSpec field"

            def other(result):
                result.cache = {}
        """
        assert "DET02" not in rules_fired(src)

    def test_allows_self_spec_binding(self):
        src = """
            class Runner:
                def __init__(self, spec):
                    self.spec = spec
        """
        assert "DET02" not in rules_fired(src)


# ----------------------------------------------------------------------
# BAT01 — batch flag/method contract
# ----------------------------------------------------------------------
class TestBAT01:
    def test_flags_flag_without_method(self):
        src = """
            from repro.core.protocol import Protocol

            class Broken(Protocol):
                supports_batch = True
        """
        assert "BAT01" in rules_fired(src)

    def test_flags_method_without_flag(self):
        src = """
            from repro.core.protocol import Protocol

            class Broken(Protocol):
                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))
        """
        assert "BAT01" in rules_fired(src)

    def test_allows_matched_pair(self):
        src = """
            from repro.core.protocol import Protocol

            class Good(Protocol):
                supports_batch = True

                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))
        """
        assert "BAT01" not in rules_fired(src)

    def test_allows_abstract_stub_without_flag(self):
        # The Protocol base class itself declares the contract via
        # raise-NotImplementedError stubs; those are declarations, not
        # implementations.
        src = """
            class Protocol:
                supports_batch = False

                def batch_decisions(self, inputs):
                    raise NotImplementedError("no batching")
        """
        assert "BAT01" not in rules_fired(src)

    def test_inherited_method_satisfies_flag(self):
        src = """
            from repro.core.protocol import Protocol

            class Base(Protocol):
                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))

            class Child(Base):
                supports_batch = True
        """
        assert "BAT01" not in rules_fired(src)

    def test_both_pairs_checked_independently(self):
        src = """
            from repro.core.protocol import Protocol

            class HalfBatched(Protocol):
                supports_batch = True
                supports_batch_keys = True

                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))
        """
        fired = findings(src)
        assert any(
            f.rule == "BAT01" and "batch_keys" in f.message for f in fired
        )


# ----------------------------------------------------------------------
# BAT02 — batched protocols carry a symbolic cost model
# ----------------------------------------------------------------------
class TestBAT02:
    def test_flags_batch_without_cost_model(self):
        src = """
            from repro.core.protocol import Protocol

            class Broken(Protocol):
                supports_batch = True
                supports_batch_keys = True

                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))

                def batch_keys(self, inputs):
                    return inputs.reshape(inputs.shape[0], -1)
        """
        fired = findings(src)
        assert any(
            f.rule == "BAT02" and "batch_decisions" in f.message
            for f in fired
        )

    def test_flags_cost_model_without_batch_contract(self):
        src = """
            from repro.core.protocol import Protocol
            from repro.costs import CostModel, Phase, Sym

            class ScalarOnly(Protocol):
                def cost_model(self):
                    n = Sym("n")
                    return CostModel([Phase("reveal", rounds=1, turns=n)])
        """
        fired = findings(src)
        assert any(
            f.rule == "BAT02" and "cost_model" in f.message for f in fired
        )

    def test_allows_matched_contract(self):
        src = """
            from repro.core.protocol import Protocol
            from repro.costs import CostModel, Phase, Sym

            class Good(Protocol):
                supports_batch = True
                supports_batch_keys = True

                def cost_model(self):
                    n = Sym("n")
                    return CostModel([Phase("reveal", rounds=1, turns=n)])

                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))

                def batch_keys(self, inputs):
                    return inputs.reshape(inputs.shape[0], -1)
        """
        assert "BAT02" not in rules_fired(src)

    def test_inherited_cost_model_satisfies_batch(self):
        src = """
            from repro.core.protocol import Protocol
            from repro.costs import CostModel, Phase, Sym

            class Modeled(Protocol):
                def cost_model(self):
                    n = Sym("n")
                    return CostModel([Phase("reveal", rounds=1, turns=n)])

                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))

            class Child(Modeled):
                supports_batch = True
        """
        assert "BAT02" not in rules_fired(src)

    def test_mixin_completed_by_subclass_is_allowed(self):
        src = """
            from repro.core.protocol import Protocol
            from repro.costs import CostModel, Phase, Sym

            class BatchMixin(Protocol):
                def batch_decisions(self, inputs):
                    return inputs.sum(axis=(1, 2))

            class Complete(BatchMixin):
                supports_batch = True

                def cost_model(self):
                    n = Sym("n")
                    return CostModel([Phase("reveal", rounds=1, turns=n)])
        """
        assert "BAT02" not in rules_fired(src)

    def test_abstract_stub_is_declaration_not_implementation(self):
        src = """
            class Protocol:
                def cost_model(self):
                    raise NotImplementedError("no model")

                def batch_decisions(self, inputs):
                    raise NotImplementedError("no batching")
        """
        assert "BAT02" not in rules_fired(src)

    def test_non_protocol_class_is_out_of_scope(self):
        src = """
            class Planner:
                def cost_model(self):
                    return {"rounds": 1}
        """
        assert "BAT02" not in rules_fired(src)


# ----------------------------------------------------------------------
# EXC01 — pickle quarantine
# ----------------------------------------------------------------------
class TestEXC01:
    def test_flags_pickle_loads_outside_wire(self):
        src = """
            import pickle

            def decode(blob):
                return pickle.loads(blob)
        """
        assert "EXC01" in rules_fired(src, path="src/repro/exec/worker.py")

    def test_flags_from_import_alias(self):
        src = """
            from pickle import loads as unfreeze

            def decode(blob):
                return unfreeze(blob)
        """
        assert "EXC01" in rules_fired(src, path="src/repro/exec/helper.py")

    def test_wire_module_is_no_longer_exempt(self):
        """The v1 protocol quarantined pickle inside wire.py; the v2
        schema protocol needs no pickle at all, so even the wire module
        is held to the rule now."""
        src = """
            import pickle

            def recv_frame(blob):
                return pickle.loads(blob)
        """
        assert "EXC01" in rules_fired(src, path="src/repro/exec/wire.py")

    def test_no_pickle_import_anywhere_in_exec(self):
        """Regression for the pickle-RCE fix: no repro.exec module may
        even import pickle — the schema codec replaced it wholesale."""
        from pathlib import Path

        exec_dir = Path(__file__).resolve().parents[2] / "src" / "repro" / "exec"
        offenders = [
            path.name
            for path in sorted(exec_dir.glob("*.py"))
            if any(
                line.startswith(("import pickle", "from pickle"))
                for line in path.read_text().splitlines()
            )
        ]
        assert offenders == []

    def test_allows_pickle_dumps(self):
        # Serialization is safe; only deserialization executes code.
        src = """
            import pickle

            def encode(obj):
                return pickle.dumps(obj)
        """
        assert "EXC01" not in rules_fired(src, path="src/repro/exec/worker.py")


# ----------------------------------------------------------------------
# EXC02 — bare acquire/release in repro.exec
# ----------------------------------------------------------------------
class TestEXC02:
    def test_flags_bare_acquire_in_exec(self):
        src = """
            import threading

            lock = threading.Lock()

            def work():
                lock.acquire()
                try:
                    pass
                finally:
                    lock.release()
        """
        assert "EXC02" in rules_fired(src, path="src/repro/exec/pool.py")

    def test_out_of_scope_module_not_flagged(self):
        src = """
            import threading

            lock = threading.Lock()

            def work():
                lock.acquire()
                lock.release()
        """
        assert "EXC02" not in rules_fired(src, path="src/repro/core/engine.py")

    def test_with_statement_not_flagged(self):
        src = """
            import threading

            lock = threading.Lock()

            def work():
                with lock:
                    pass
        """
        assert "EXC02" not in rules_fired(src, path="src/repro/exec/pool.py")

    def test_release_with_argument_not_flagged(self):
        # Lock releases are nullary; release(digest) is a store protocol.
        src = """
            def drop(store, digest):
                store.release(digest)
        """
        assert "EXC02" not in rules_fired(src, path="src/repro/exec/worker.py")


# ----------------------------------------------------------------------
# EXC03 — silent except-pass swallows in repro.exec
# ----------------------------------------------------------------------
class TestEXC03:
    def test_flags_typed_except_pass_in_exec(self):
        src = """
            def drop(sock):
                try:
                    sock.close()
                except OSError:
                    pass
        """
        assert "EXC03" in rules_fired(src, path="src/repro/exec/distributed.py")

    def test_flags_bare_except_pass(self):
        src = """
            def probe(link):
                try:
                    link.ping()
                except:
                    pass
        """
        assert "EXC03" in rules_fired(src, path="src/repro/exec/pool.py")

    def test_flags_ellipsis_body(self):
        src = """
            def probe(link):
                try:
                    link.ping()
                except ConnectionError:
                    ...
        """
        assert "EXC03" in rules_fired(src, path="src/repro/exec/worker.py")

    def test_out_of_scope_module_not_flagged(self):
        src = """
            def load(path):
                try:
                    open(path).close()
                except FileNotFoundError:
                    pass
        """
        assert "EXC03" not in rules_fired(src, path="src/repro/core/engine.py")

    def test_handler_with_real_body_not_flagged(self):
        src = """
            def probe(link, telemetry):
                try:
                    link.ping()
                except ConnectionError:
                    telemetry.record(link.address, "ping")
        """
        assert "EXC03" not in rules_fired(src, path="src/repro/exec/distributed.py")

    def test_handler_returning_sentinel_not_flagged(self):
        src = """
            def load(path):
                journal = {}
                try:
                    stream = open(path)
                except FileNotFoundError:
                    return journal
                with stream:
                    return journal
        """
        assert "EXC03" not in rules_fired(src, path="src/repro/exec/sweep.py")

    def test_pragma_with_reason_suppresses(self):
        src = """
            def drop(sock):
                try:
                    sock.close()
                except OSError:  # repro-lint: disable=EXC03 close is best-effort teardown
                    pass
        """
        assert "EXC03" not in rules_fired(src, path="src/repro/exec/distributed.py")


# ----------------------------------------------------------------------
# Pragmas and framework behaviour
# ----------------------------------------------------------------------
class TestPragmas:
    def test_pragma_with_reason_suppresses(self):
        src = """
            import numpy as np

            def sample():
                return np.random.randint(0, 2)  # repro-lint: disable=DET01 fixture noise
        """
        assert "DET01" not in rules_fired(src)

    def test_pragma_without_reason_is_sup01(self):
        src = """
            import numpy as np

            def sample():
                return np.random.randint(0, 2)  # repro-lint: disable=DET01
        """
        fired = rules_fired(src)
        assert "SUP01" in fired
        assert "DET01" in fired  # reasonless pragma does not suppress

    def test_malformed_pragma_is_sup01(self):
        src = """
            x = 1  # repro-lint: disable=
        """
        assert "SUP01" in rules_fired(src)

    def test_pragma_only_covers_its_line(self):
        src = """
            import numpy as np

            a = np.random.randint(0, 2)  # repro-lint: disable=DET01 test fixture
            b = np.random.randint(0, 2)
        """
        fired = findings(src)
        det = [f for f in fired if f.rule == "DET01"]
        assert len(det) == 1
        assert det[0].line == 5

    def test_multi_rule_pragma(self):
        src = """
            import pickle
            import numpy as np

            def f(blob):
                return np.random.randint(int(pickle.loads(blob)))  # repro-lint: disable=DET01,EXC01 sanctioned test decoder
        """
        assert rules_fired(src, path="src/repro/exec/helper.py") == set()

    def test_prose_mention_is_not_a_pragma(self):
        src = '''
            """Docs that mention repro-lint by name are fine."""

            MESSAGE = "run repro-lint before committing"
        '''
        assert "SUP01" not in rules_fired(src)


class TestFramework:
    def test_unparseable_file_reports_lnt00(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        results, n_files = lint_paths([str(tmp_path)])
        assert n_files == 1
        assert [f.rule for f in results] == ["LNT00"]

    def test_clean_tree_exits_zero(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        results, n_files = lint_paths([str(tmp_path)])
        assert results == []
        assert n_files == 1

    def test_findings_sorted_by_position(self):
        src = """
            import numpy as np

            b = np.random.randint(0, 2)
            a = np.random.rand()
        """
        fired = findings(src)
        assert [f.line for f in fired] == sorted(f.line for f in fired)

    def test_finding_format_is_clickable(self):
        finding = Finding("DET01", "src/x.py", 3, 7, "message")
        assert finding.format() == "src/x.py:3:7: DET01 message"

    def test_cli_reports_and_exits_nonzero(self, tmp_path, capsys):
        from repro.devtools.lint import main

        bad = tmp_path / "mod.py"
        bad.write_text("import numpy as np\nx = np.random.rand()\n")
        report = tmp_path / "report.json"
        status = main([str(tmp_path), "--report", str(report)])
        assert status == 1
        out = capsys.readouterr().out
        assert "DET01" in out
        import json

        payload = json.loads(report.read_text())
        assert payload["counts"]["DET01"] == 1
        assert payload["files_checked"] == 1

    def test_cli_clean_exits_zero(self, tmp_path):
        from repro.devtools.lint import main

        good = tmp_path / "mod.py"
        good.write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0

    def test_rule_filter(self, tmp_path):
        from repro.devtools.lint import main

        mixed = tmp_path / "mod.py"
        mixed.write_text(
            "import numpy as np\nimport pickle\n"
            "x = np.random.rand()\ny = pickle.loads(b'')\n"
        )
        # Only EXC01 requested: DET01 must not fail the run... but the
        # file is outside repro/exec so EXC01 still fires on pickle.loads.
        assert main([str(tmp_path), "--rules", "EXC01"]) == 1
        assert main([str(tmp_path), "--rules", "DET01"]) == 1

    def test_repo_tree_is_clean(self):
        # The acceptance gate: the shipped tree must lint clean.
        from pathlib import Path

        tree = Path(__file__).resolve().parents[2] / "src" / "repro"
        results, n_files = lint_paths([str(tree)])
        assert n_files > 0
        assert results == [], "\n".join(f.format() for f in results)
