"""Runtime lock-order checker: cycle detection, reentrancy, restoration.

The synthetic reproducer takes locks A→B on one thread and B→A on another
*sequentially* — no real deadlock ever happens, which is exactly the
point: the monitor flags the ordering hazard without needing the unlucky
interleaving.
"""

from __future__ import annotations

import threading
from typing import Iterator

import pytest

from repro.devtools.lockorder import (
    LockOrderError,
    LockOrderMonitor,
    TrackedLock,
)

#: This test module must itself be tracked by the monitors it builds.
_PREFIXES = ("repro.", __name__)


@pytest.fixture
def monitor() -> Iterator[LockOrderMonitor]:
    mon = LockOrderMonitor(module_prefixes=_PREFIXES)
    mon.install()
    try:
        yield mon
    finally:
        mon.uninstall()


def run_thread(fn) -> None:
    errors: list[BaseException] = []

    def wrapped() -> None:
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    thread = threading.Thread(target=wrapped)
    thread.start()
    thread.join()
    if errors:
        raise errors[0]


class TestCycleDetection:
    def test_consistent_order_is_acyclic(self, monitor):
        a, b = threading.Lock(), threading.Lock()
        with a:
            with b:
                pass

        def same_order():
            with a:
                with b:
                    pass

        run_thread(same_order)
        assert monitor.find_cycle() is None
        monitor.assert_no_cycles()

    def test_opposite_orders_form_a_cycle(self, monitor):
        a, b = threading.Lock(), threading.Lock()
        with a:
            with b:
                pass

        def reversed_order():
            with b:
                with a:
                    pass

        # Sequential, so no deadlock occurs — but the hazard is recorded.
        run_thread(reversed_order)
        cycle = monitor.find_cycle()
        assert cycle is not None
        with pytest.raises(LockOrderError) as excinfo:
            monitor.assert_no_cycles()
        # The report carries acquisition evidence for diagnosis.
        assert "acquired" in str(excinfo.value)

    def test_three_lock_rotation_cycle(self, monitor):
        a, b, c = threading.Lock(), threading.Lock(), threading.Lock()
        for first, second in ((a, b), (b, c), (c, a)):
            def pair(first=first, second=second):
                with first:
                    with second:
                        pass

            run_thread(pair)
        assert monitor.find_cycle() is not None

    def test_disjoint_pairs_are_acyclic(self, monitor):
        a, b, c, d = (threading.Lock() for _ in range(4))
        with a:
            with b:
                pass
        with c:
            with d:
                pass
        monitor.assert_no_cycles()


class TestReentrancy:
    def test_rlock_reacquire_adds_no_edge(self, monitor):
        lock = threading.RLock()
        with lock:
            with lock:  # reentrant: must not create a self-edge
                pass
        assert monitor.find_cycle() is None
        assert all(src != dst for src, dst in monitor.edges())

    def test_rlock_nested_under_other_lock_is_tracked(self, monitor):
        outer, inner = threading.Lock(), threading.RLock()
        with outer:
            with inner:
                pass
        assert len(list(monitor.edges())) == 1


class TestConditionIntegration:
    def test_condition_wait_releases_held_state(self, monitor):
        cond = threading.Condition()
        other = threading.Lock()
        done = threading.Event()

        def waiter():
            with cond:
                cond.wait(timeout=5)
                done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        # Give the waiter time to block, then notify under the condition:
        # if wait() failed to release the tracked lock this would deadlock.
        with cond:
            cond.notify()
        thread.join(timeout=5)
        assert done.is_set()
        # Taking another lock afterwards must not see the condition's
        # lock as still held by the waiter thread.
        with other:
            pass
        monitor.assert_no_cycles()

    def test_condition_with_explicit_tracked_lock(self, monitor):
        lock = threading.RLock()
        cond = threading.Condition(lock)
        with cond:
            cond.notify_all()
        monitor.assert_no_cycles()


class TestInstallation:
    def test_uninstall_restores_factories(self):
        real_lock, real_rlock = threading.Lock, threading.RLock
        real_cond = threading.Condition
        mon = LockOrderMonitor(module_prefixes=_PREFIXES)
        mon.install()
        try:
            assert isinstance(threading.Lock(), TrackedLock)
        finally:
            mon.uninstall()
        assert threading.Lock is real_lock
        assert threading.RLock is real_rlock
        assert threading.Condition is real_cond

    def test_untracked_modules_get_native_locks(self, monitor):
        # Simulate an acquisition from a caller outside the tracked
        # prefixes: build the lock through a namespace whose __name__
        # does not match.
        namespace = {"threading": threading, "__name__": "not_tracked"}
        exec("lock = threading.Lock()", namespace)
        assert not isinstance(namespace["lock"], TrackedLock)

    def test_double_install_is_rejected(self):
        mon = LockOrderMonitor(module_prefixes=_PREFIXES)
        mon.install()
        try:
            with pytest.raises(RuntimeError):
                mon.install()
        finally:
            mon.uninstall()

    def test_tracked_lock_supports_locked_probe(self, monitor):
        lock = threading.Lock()
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_exec_suite_edges_stay_acyclic(self, monitor):
        """End-to-end: drive the thread-pool executor under the monitor."""
        from repro.exec.futures import BatchFuture  # noqa: F401  (import side effects)
        from repro.core import Engine, RunSpec
        from repro.protocols.equality import DeterministicEqualityProtocol
        import numpy as np

        spec = RunSpec(
            protocol=DeterministicEqualityProtocol(m=2),
            inputs=np.ones((3, 2), dtype=np.uint8),
            seed=7,
        )
        engine = Engine("parallel")
        batch = engine.run_batch(spec, 8)
        assert len(batch) == 8
        monitor.assert_no_cycles()
