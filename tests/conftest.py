"""Shared pytest fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator; tests that need independence reseed."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic generators."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
