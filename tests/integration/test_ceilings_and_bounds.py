"""Integration: the three-layer chain of evidence for the lower bounds.

For each problem the reproduction produces three numbers per instance:

    measured (concrete protocol)
        ≤ information ceiling (optimal over all next-message functions)
        ≤ theorem bound (the paper's envelope, fitted constant ≤ 1)

These tests verify the full chain so every experiment's logic — "no
protocol we built beats the bound, and no protocol *could*, because even
the optimum is below it" — holds end to end.
"""

import numpy as np
import pytest

from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    first_round_distance_ceiling,
    optimal_single_broadcast_distance,
    transcript_distance,
)
from repro.distributions import (
    PlantedClique,
    RandomDigraph,
    ToyPRGOutput,
    UniformRows,
)
from repro.lowerbounds import (
    planted_clique_one_round_bound,
    toy_prg_one_round_bound,
)


def degree_spec(n):
    threshold = (n - 1) / 2 + 0.5

    def fn(i, rows, p):
        return (rows.sum(axis=1) >= threshold).astype(np.int64)

    return ProtocolSpec(n, 1, fn)


def mixture_pmf(spec, mixture):
    pmf: dict = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            pmf[key] = pmf.get(key, 0.0) + w * p
    return pmf


class TestPlantedCliqueChain:
    @pytest.mark.parametrize("k", [2, 3])
    def test_three_layer_chain(self, k):
        n = 7
        spec = degree_spec(n)
        reference = RandomDigraph(n)
        mixture = PlantedClique(n, k)
        measured = transcript_distance(
            exact_transcript_pmf(spec, reference),
            mixture_pmf(spec, mixture),
        )
        ceiling = first_round_distance_ceiling(reference, mixture)
        bound = planted_clique_one_round_bound(n, k, constant=1.0)
        assert measured <= ceiling + 1e-12
        assert ceiling <= bound + 1e-12 or bound == 1.0

    def test_per_row_ceiling_symmetry(self):
        """All rows are exchangeable under both distributions, so the
        per-row ceilings are identical."""
        n, k = 5, 2
        values = [
            optimal_single_broadcast_distance(
                RandomDigraph(n), PlantedClique(n, k), i
            )
            for i in range(n)
        ]
        for v in values[1:]:
            assert v == pytest.approx(values[0])

    def test_ceiling_scales_with_k(self):
        n = 6
        ceilings = [
            optimal_single_broadcast_distance(
                RandomDigraph(n), PlantedClique(n, k), 0
            )
            for k in (2, 3, 4)
        ]
        assert ceilings[0] <= ceilings[1] <= ceilings[2] + 1e-12


class TestToyPRGChain:
    @pytest.mark.parametrize("k", [3, 5])
    def test_three_layer_chain(self, k):
        n = 3

        def last_bit(i, rows, p):
            return rows[:, -1].astype(np.int64)

        spec = ProtocolSpec(n, 1, last_bit)
        uniform = UniformRows(n, k + 1)
        pseudo = ToyPRGOutput(n, k)
        measured = transcript_distance(
            exact_transcript_pmf(spec, uniform),
            mixture_pmf(spec, pseudo),
        )
        ceiling = first_round_distance_ceiling(uniform, pseudo)
        bound = toy_prg_one_round_bound(n, k, constant=1.0)
        assert measured <= ceiling + 1e-12
        assert ceiling <= bound + 1e-12

    def test_single_row_ceiling_is_zero_seed_anomaly(self):
        """The per-row ceiling equals 2^{-(k+1)} exactly — a single toy-PRG
        row differs from uniform only at the all-zero seed."""
        for k in (2, 4, 6):
            value = optimal_single_broadcast_distance(
                UniformRows(2, k + 1), ToyPRGOutput(2, k), 0
            )
            assert value == pytest.approx(2.0 ** -(k + 1))

    def test_joint_beats_marginal(self):
        """The paper's whole point: per-row (marginal) distinguishability
        is exponentially small, yet the Theorem 8.1 attack on the *joint*
        distribution wins — correlation, not marginals, carries the
        secret."""
        n, k = 10, 3
        per_row = optimal_single_broadcast_distance(
            UniformRows(n, k + 1), ToyPRGOutput(n, k), 0
        )
        assert per_row < 0.1
        # The joint attack from the test-suite achieves advantage ~1/2
        # (see tests/prg/test_attacks.py); here we just confirm the
        # marginal ceiling is far below the joint attack's 0.45+.
        assert 0.45 > 4 * per_row
