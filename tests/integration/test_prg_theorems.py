"""Integration: the PRG theorems (5.1, 5.3, 5.4, 1.3, 8.1) end to end."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    transcript_distance,
)
from repro.distinguish.distinguishers import random_function_protocol
from repro.distributions import (
    PRGOutput,
    ToyPRGOutput,
    UniformRows,
)
from repro.lowerbounds import toy_prg_bound, toy_prg_one_round_bound
from repro.prg import MatrixPRGProtocol, SupportMembershipAttack


def spec_from_random_protocol(n, rounds, seed):
    protocol = random_function_protocol(rounds, seed)
    fn_scalar = protocol._fn

    def fn(i, rows, p, _f=fn_scalar):
        return np.array([_f(i, row, p) for row in rows], dtype=np.int64)

    return ProtocolSpec(n, rounds, fn)


def mixture_pmf(spec, mixture):
    pmf: dict = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            pmf[key] = pmf.get(key, 0.0) + w * p
    return pmf


class TestTheorem51OneRound:
    """Toy PRG fools one-round protocols: distance <= O(n / 2^{k/2})."""

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_random_protocols_within_bound(self, k):
        n = 4
        pseudo = ToyPRGOutput(n, k)
        uniform = UniformRows(n, k + 1)
        bound = toy_prg_one_round_bound(n, k, constant=1.0)
        for seed in range(3):
            spec = spec_from_random_protocol(n, 1, seed)
            distance = transcript_distance(
                exact_transcript_pmf(spec, uniform),
                mixture_pmf(spec, pseudo),
            )
            assert distance <= bound

    def test_distance_decays_exponentially_in_k(self):
        """The headline scaling: doubling k roughly squares the distance —
        measured on the parity-of-last-bit protocol, the most natural
        attack on the derived bit."""
        n = 3

        def last_bit_fn(i, rows, p):
            return rows[:, -1].astype(np.int64)

        distances = {}
        for k in (2, 4, 8):
            spec = ProtocolSpec(n, 1, last_bit_fn)
            distances[k] = transcript_distance(
                exact_transcript_pmf(spec, UniformRows(n, k + 1)),
                mixture_pmf(spec, ToyPRGOutput(n, k)),
            )
        assert distances[2] > distances[4] > distances[8]
        # log-scale slope: each +2 in k buys at least a factor ~2.
        assert distances[4] <= distances[2] / 1.5
        assert distances[8] <= distances[4] / 1.5


class TestTheorem53MultiRound:
    """Toy PRG fools multi-round protocols: distance <= O(j*n / 2^{k/9})."""

    @pytest.mark.parametrize("j", [1, 2])
    def test_multi_round_within_bound(self, j):
        n, k = 3, 6
        pseudo = ToyPRGOutput(n, k)
        uniform = UniformRows(n, k + 1)
        for seed in range(2):
            spec = spec_from_random_protocol(n, j, seed)
            distance = transcript_distance(
                exact_transcript_pmf(spec, uniform),
                mixture_pmf(spec, pseudo),
            )
            assert distance <= toy_prg_bound(n, k, j, constant=1.0)


class TestTheorem54FullPRG:
    """Full PRG with m > k + 1 output bits."""

    def test_full_prg_within_bound(self):
        n, k, m = 3, 4, 6  # secret bits = 8 -> 256 components
        pseudo = PRGOutput(n, m, k)
        uniform = UniformRows(n, m)
        for seed in range(2):
            spec = spec_from_random_protocol(n, 1, seed)
            distance = transcript_distance(
                exact_transcript_pmf(spec, uniform),
                mixture_pmf(spec, pseudo),
            )
            # j=1 <= k/10 fails formally (k=4); we still verify the
            # qualitative claim with the theorem's envelope at constant 1.
            assert distance <= toy_prg_bound(n, k, 1, constant=1.0)


class TestTheorem13Construction:
    """The PRG protocol's joint output distribution equals PRGOutput."""

    def test_protocol_output_matches_distribution(self):
        n, k, m = 6, 3, 5
        protocol_counts: dict = {}
        dist_counts: dict = {}
        trials = 3000
        rng = np.random.default_rng(0)
        dist = PRGOutput(n, m, k)
        inputs = np.zeros((n, 1), dtype=np.uint8)
        for _ in range(trials):
            result = run_protocol(MatrixPRGProtocol(k, m), inputs, rng=rng)
            key = np.stack(result.outputs).tobytes()
            protocol_counts[key] = protocol_counts.get(key, 0) + 1
            key = dist.sample(rng).tobytes()
            dist_counts[key] = dist_counts.get(key, 0) + 1
        # Compare a coarse statistic: the GF(2) rank of the joint output
        # (the support is huge; rank is the structural fingerprint).
        from repro.linalg import BitMatrix

        def rank_histogram(counts):
            hist: dict = {}
            for key, c in counts.items():
                arr = np.frombuffer(key, dtype=np.uint8).reshape(n, m)
                r = BitMatrix.from_array(arr).rank()
                hist[r] = hist.get(r, 0) + c
            return hist

        hist_p = rank_histogram(protocol_counts)
        hist_d = rank_histogram(dist_counts)
        for r in set(hist_p) | set(hist_d):
            assert (
                abs(hist_p.get(r, 0) - hist_d.get(r, 0)) / trials < 0.05
            )


class TestTheorem81SeedAttack:
    """The attack succeeds exactly where the lower bound stops: O(k) rounds."""

    def test_attack_beats_prg_beyond_k_rounds(self, rng):
        n, k, m = 12, 4, 10
        attack = SupportMembershipAttack(k)
        assert attack.num_rounds(n) == k + 1  # O(k), matching Theorem 8.1
        prg_dist = PRGOutput(n, m, k)
        uniform = UniformRows(n, m)
        prg_rate = np.mean(
            [
                run_protocol(attack, prg_dist.sample(rng), rng=rng).outputs[0]
                for _ in range(15)
            ]
        )
        uni_rate = np.mean(
            [
                run_protocol(attack, uniform.sample(rng), rng=rng).outputs[0]
                for _ in range(15)
            ]
        )
        assert prg_rate == 1.0
        assert uni_rate <= 0.1
