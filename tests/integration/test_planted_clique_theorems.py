"""Integration: the planted-clique lower-bound theorems, measured exactly.

These tests run the exact transcript-distribution engine over protocol
families on small instances and verify the *inequalities* of Theorems 1.6
and 4.1 — the actual falsifiable content of the reproduction: a protocol
whose measured distance exceeded the bound would refute it.
"""

import numpy as np
import pytest

from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    expected_component_distance,
    transcript_distance,
)
from repro.distinguish.distinguishers import random_function_protocol
from repro.distributions import PlantedClique, PlantedCliqueAt, RandomDigraph
from repro.lowerbounds import (
    planted_clique_bound,
    planted_clique_one_round_bound,
    progress_curve,
    real_distance_curve,
)


def degree_spec(n, rounds=1):
    """The natural degree-threshold distinguisher as a vectorised spec."""
    threshold = (n - 1) / 2 + 0.5

    def fn(i, rows, p):
        return (rows.sum(axis=1) >= threshold).astype(np.int64)

    return ProtocolSpec(n, rounds, fn)


def random_specs(n, rounds, seeds):
    """Seeded generic protocols as vectorised specs."""
    specs = []
    for seed in seeds:
        protocol = random_function_protocol(rounds, seed)
        fn_scalar = protocol._fn  # the deterministic hash function

        def fn(i, rows, p, _f=fn_scalar):
            return np.array([_f(i, row, p) for row in rows], dtype=np.int64)

        specs.append(ProtocolSpec(n, rounds, fn))
    return specs


class TestTheorem16OneRound:
    """One-round planted clique: ||P(Pi, A_rand) - P(Pi, A_k)|| <= O(k^2/sqrt(n))."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_degree_protocol_within_bound(self, k):
        n = 8
        spec = degree_spec(n)
        distance = transcript_distance(
            exact_transcript_pmf(spec, RandomDigraph(n)),
            _mixture_pmf(spec, PlantedClique(n, k)),
        )
        assert distance <= planted_clique_one_round_bound(n, k, constant=1.0)

    def test_random_protocols_within_bound(self):
        n, k = 8, 2
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        bound = planted_clique_one_round_bound(n, k, constant=1.0)
        for spec in random_specs(n, 1, seeds=range(4)):
            distance = transcript_distance(
                exact_transcript_pmf(spec, reference),
                _mixture_pmf(spec, mixture),
            )
            assert distance <= bound

    def test_distance_grows_with_k_shape(self):
        """The k^2 shape: distance at k=4 clearly exceeds distance at k=2
        for the degree protocol (on fixed small n)."""
        n = 8
        spec = degree_spec(n)
        reference_pmf = exact_transcript_pmf(spec, RandomDigraph(n))
        distances = {
            k: transcript_distance(
                reference_pmf, _mixture_pmf(spec, PlantedClique(n, k))
            )
            for k in (2, 4, 6)
        }
        assert distances[2] <= distances[4] <= distances[6]

    def test_progress_function_dominates(self):
        """L_real <= L_progress <= bound, per the framework."""
        n, k = 6, 2
        spec = degree_spec(n)
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        progress = expected_component_distance(spec, mixture, reference)
        real = transcript_distance(
            exact_transcript_pmf(spec, reference),
            _mixture_pmf(spec, mixture),
        )
        assert real <= progress + 1e-12
        assert progress <= planted_clique_one_round_bound(n, k, constant=2.0)


class TestTheorem41MultiRound:
    """Multi-round: distance <= O(j * k^2 * sqrt((j + log n)/n))."""

    @pytest.mark.parametrize("j", [1, 2])
    def test_multi_round_within_bound(self, j):
        n, k = 6, 2
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        for spec in random_specs(n, j, seeds=(0, 1)):
            distance = transcript_distance(
                exact_transcript_pmf(spec, reference),
                _mixture_pmf(spec, mixture),
            )
            assert distance <= planted_clique_bound(n, k, j, constant=1.0)

    def test_turn_model_simulates_round_model(self):
        """Ablation: the sequential-turn relaxation is at least as strong
        as the round model — any round protocol runs unchanged in the turn
        model by masking the current round's messages, with an *identical*
        transcript distribution.  (Hence sup-over-protocols distance can
        only grow, which is why the paper proves bounds in the turn
        model.)"""
        n, k = 6, 3

        def round_fn(i, rows, p):
            majority = int(sum(p) * 2 >= len(p)) if p else 0
            return (
                (rows.sum(axis=1) >= (n - 1) / 2 + 0.5).astype(np.int64)
                | majority
            )

        def masked_turn_fn(i, rows, p):
            # Simulate the round protocol inside the turn model: ignore
            # messages of the current (partial) round.
            completed = (len(p) // n) * n
            return round_fn(i, rows, p[:completed])

        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        round_spec = ProtocolSpec(n, 2, round_fn, sees_current_round=False)
        turn_spec = ProtocolSpec(
            n, 2, masked_turn_fn, sees_current_round=True
        )
        for dist in (reference,):
            assert (
                transcript_distance(
                    exact_transcript_pmf(round_spec, dist),
                    exact_transcript_pmf(turn_spec, dist),
                )
                < 1e-12
            )
        round_distance = transcript_distance(
            exact_transcript_pmf(round_spec, reference),
            _mixture_pmf(round_spec, mixture),
        )
        turn_distance = transcript_distance(
            exact_transcript_pmf(turn_spec, reference),
            _mixture_pmf(turn_spec, mixture),
        )
        assert turn_distance == pytest.approx(round_distance)

    def test_curves_consistent(self):
        n, k = 5, 2
        spec = degree_spec(n, rounds=2)
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        progress = progress_curve(spec, mixture, reference)
        real = real_distance_curve(spec, mixture, reference)
        assert all(r <= p + 1e-12 for r, p in zip(real, progress))
        assert real[-1] <= planted_clique_bound(n, k, 2, constant=1.0)


class TestSingleComponentIsEasy:
    """Sanity inversion: distinguishing a FIXED clique A_C from A_rand is
    easy — one targeted broadcast suffices.  The hardness is specifically
    about the mixture, which is why the decomposition matters."""

    def test_fixed_clique_distinguishable(self):
        n = 6
        clique = frozenset({0, 1, 2})

        def fn(i, rows, p):
            # Processor 0 broadcasts whether it sees edges to 1 and 2.
            if i == 0:
                return ((rows[:, 1] == 1) & (rows[:, 2] == 1)).astype(np.int64)
            return np.zeros(rows.shape[0], dtype=np.int64)

        spec = ProtocolSpec(n, 1, fn)
        distance = transcript_distance(
            exact_transcript_pmf(spec, RandomDigraph(n)),
            exact_transcript_pmf(spec, PlantedCliqueAt(n, clique)),
        )
        assert distance == pytest.approx(0.75)  # 1 - 1/4


def _mixture_pmf(spec, mixture):
    pmf: dict = {}
    for w, comp in mixture.components():
        for key, p in exact_transcript_pmf(spec, comp).items():
            pmf[key] = pmf.get(key, 0.0) + w * p
    return pmf
