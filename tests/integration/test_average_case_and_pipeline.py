"""Integration: Theorem 1.4 (average-case rank), Theorem 1.5 (hierarchy),
Corollary 7.1 (derandomized pipeline) and Appendix B, end to end."""

import numpy as np
import pytest

from repro.cliques import (
    PlantedCliqueSubsampleProtocol,
    recovery_quality,
)
from repro.core import Protocol, run_protocol
from repro.distributions import PlantedClique, RankDeficientMatrix, UniformRows
from repro.linalg import BitMatrix, Q0, full_rank_probability
from repro.lowerbounds import (
    TopSubmatrixRankProtocol,
    accuracy_on_uniform,
    full_rank_indicator,
    optimal_accuracy_with_columns,
)
from repro.prg import DerandomizedProtocol, SupportMembershipAttack


class TestTheorem14AverageCase:
    def test_rank_deficient_fools_prefix_protocols(self, rng):
        """A protocol revealing j << n columns cannot tell RankDeficient
        from uniform: both produce near-identical revealed blocks."""
        n, j = 12, 3
        protocol = TopSubmatrixRankProtocol(n, rounds_budget=j)
        pseudo = RankDeficientMatrix(n)
        uniform = UniformRows(n, n)
        accepts = {name: 0 for name in ("pseudo", "uniform")}
        trials = 60
        for _ in range(trials):
            r1 = run_protocol(protocol, pseudo.sample(rng), rng=rng)
            r2 = run_protocol(protocol, uniform.sample(rng), rng=rng)
            accepts["pseudo"] += int(r1.outputs[0])
            accepts["uniform"] += int(r2.outputs[0])
        advantage = abs(accepts["pseudo"] - accepts["uniform"]) / trials / 2
        assert advantage < 0.15

    def test_no_low_round_protocol_hits_99_accuracy(self, rng):
        """The Theorem 1.4 claim, for the column-revealing family: with
        j = n/4 rounds accuracy stays far from 0.99."""
        n = 12
        j = 3
        acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(n, rounds_budget=j),
            n=n,
            k=n,
            n_samples=150,
            rng=rng,
            target_fn=full_rank_indicator,
        )
        ceiling = optimal_accuracy_with_columns(n, j)
        assert acc <= ceiling + 0.07
        assert acc < 0.9

    def test_majority_class_matches_q0(self, rng):
        """Pr[full rank] for uniform matrices ~ Q_0 ~ 0.289, the constant
        the impossibility argument leans on."""
        n, trials = 16, 300
        full = sum(
            int(
                BitMatrix.from_array(
                    rng.integers(0, 2, size=(n, n), dtype=np.uint8)
                ).is_full_rank()
            )
            for _ in range(trials)
        )
        assert abs(full / trials - Q0) < 0.1
        assert abs(full_rank_probability(n) - Q0) < 1e-3


class TestTheorem15Hierarchy:
    def test_hierarchy_gap_measured(self, rng):
        """k rounds -> exact; k/5 rounds -> stuck near the majority rate."""
        n, k = 10, 8
        exact_acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(k), n=n, k=k, n_samples=80, rng=rng
        )
        truncated_acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(k, rounds_budget=k // 5),
            n=n, k=k, n_samples=200, rng=rng,
        )
        assert exact_acc == 1.0
        assert truncated_acc < 0.9
        assert truncated_acc >= 0.55  # better than coin flipping


class RandomizedVoteProtocol(Protocol):
    """A randomized payload for the derandomization pipeline: every
    processor broadcasts input-bit XOR coin for `rounds` rounds; output is
    the majority of all broadcasts."""

    def __init__(self, rounds=4):
        self._rounds = rounds

    def num_rounds(self, n):
        return self._rounds

    def broadcast(self, proc, round_index):
        return (int(proc.input[round_index % proc.input.shape[0]])
                + proc.coins.draw_bit()) % 2

    def output(self, proc):
        total = sum(e.message for e in proc.transcript)
        return int(2 * total >= proc.transcript.n_turns)


class TestCorollary71Pipeline:
    def test_compiled_protocol_output_distribution_close(self):
        """Outputs of the derandomized protocol are distributed like the
        truly-random ones (up to the PRG's fooling error + noise)."""
        n, k, payload_rounds = 8, 10, 4
        inputs = UniformRows(n, 4).sample(np.random.default_rng(42))
        trials = 300

        def output_rate(make_protocol, seed0):
            ones = 0
            for s in range(trials):
                protocol = make_protocol()
                result = run_protocol(
                    protocol, inputs, rng=np.random.default_rng(seed0 + s)
                )
                # For the wrapped protocol the payload output is the final
                # element; both expose processor 0's output.
                ones += int(result.outputs[0])
            return ones / trials

        true_rate = output_rate(lambda: RandomizedVoteProtocol(payload_rounds), 0)
        compiled_rate = output_rate(
            lambda: DerandomizedProtocol(
                RandomizedVoteProtocol(payload_rounds),
                k=k,
                random_bits=payload_rounds,
            ),
            10_000,
        )
        assert abs(true_rate - compiled_rate) < 0.15

    def test_compiled_round_and_bit_overhead(self, rng):
        """Rounds grow by the PRG phase only; true coins drop to O(k)."""
        n, k, payload_rounds = 16, 6, 4
        payload = RandomizedVoteProtocol(payload_rounds)
        wrapped = DerandomizedProtocol(payload, k=k, random_bits=payload_rounds)
        inputs = UniformRows(n, 4).sample(rng)
        result = run_protocol(wrapped, inputs, rng=rng)
        prg_rounds = wrapped.prg.num_rounds(n)
        assert result.cost.rounds == prg_rounds + payload_rounds
        for proc in result.contexts:
            assert wrapped.true_coins_used(proc) <= k + prg_rounds


class TestEndToEndCliquePipeline:
    def test_subsample_protocol_after_derandomization(self, rng):
        """Appendix B's protocol is randomized (activation coins); wrap it
        with the PRG and verify it still recovers the clique."""
        n, k = 48, 20
        matrix, clique = PlantedClique(n, k).sample_with_clique(
            np.random.default_rng(3)
        )
        payload = PlantedCliqueSubsampleProtocol(k)
        wrapped = DerandomizedProtocol(payload, k=24, random_bits=30)
        recovered = None
        for seed in range(8):
            result = run_protocol(
                wrapped, matrix, rng=np.random.default_rng(seed)
            )
            if result.outputs[0]:
                recovered = result.outputs[0]
                break
        assert recovered is not None
        precision, recall = recovery_quality(recovered, clique)
        assert recall > 0.8 and precision > 0.8

    def test_attack_composes_with_prg_protocol(self, rng):
        """Run the PRG protocol, feed its outputs to the attack as inputs
        — the full Theorem 8.1 scenario in one pipeline."""
        from repro.prg import MatrixPRGProtocol

        n, k, m = 10, 3, 8
        prg_result = run_protocol(
            MatrixPRGProtocol(k, m), np.zeros((n, 1), dtype=np.uint8), rng=rng
        )
        pseudo_inputs = np.stack(prg_result.outputs)
        attack_result = run_protocol(
            SupportMembershipAttack(k), pseudo_inputs, rng=rng
        )
        assert all(out == 1 for out in attack_result.outputs)
