"""Smoke tests: the quickstart example must run end to end.

The heavier examples (clique demo, derandomization tour) are exercised by
the benchmark suite's equivalent code paths; here we only pin the
user-facing quickstart so a packaging/API regression cannot ship.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "ParityPoll outputs" in result.stdout
    assert "pseudo-random bits" in result.stdout
    assert "rank" in result.stdout


def test_all_examples_compile():
    """Every example at least byte-compiles (cheap regression net)."""
    import py_compile

    for path in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(path), doraise=True)
