"""Tests for the rank protocols and the time hierarchy (Theorems 1.4/1.5)."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.linalg import full_rank_probability
from repro.lowerbounds import (
    TopSubmatrixRankProtocol,
    accuracy_on_uniform,
    conditional_full_rank_probability,
    full_rank_indicator,
    optimal_accuracy_with_columns,
    top_submatrix_full_rank,
)


class TestIndicators:
    def test_full_rank_indicator(self):
        assert full_rank_indicator(np.eye(4, dtype=np.uint8)) == 1
        assert full_rank_indicator(np.zeros((3, 3), dtype=np.uint8)) == 0

    def test_requires_square(self):
        with pytest.raises(ValueError):
            full_rank_indicator(np.zeros((2, 3), dtype=np.uint8))

    def test_top_submatrix(self):
        matrix = np.zeros((4, 4), dtype=np.uint8)
        matrix[:2, :2] = np.eye(2)
        assert top_submatrix_full_rank(matrix, 2) == 1
        assert top_submatrix_full_rank(matrix, 3) == 0

    def test_block_too_large(self):
        with pytest.raises(ValueError):
            top_submatrix_full_rank(np.zeros((2, 2), dtype=np.uint8), 3)


class TestFullBudgetProtocol:
    def test_exact_on_all_samples(self, rng):
        """The k-round protocol computes F_k exactly — the upper-bound side
        of Theorem 1.5."""
        n, k = 8, 5
        protocol = TopSubmatrixRankProtocol(k)
        for _ in range(20):
            matrix = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
            result = run_protocol(protocol, matrix, rng=rng)
            assert result.outputs[0] == top_submatrix_full_rank(matrix, k)

    def test_round_count_is_k(self, rng):
        n, k = 8, 5
        protocol = TopSubmatrixRankProtocol(k)
        result = run_protocol(
            protocol, rng.integers(0, 2, size=(n, n), dtype=np.uint8), rng=rng
        )
        assert result.cost.rounds == k

    def test_all_processors_agree(self, rng):
        protocol = TopSubmatrixRankProtocol(4)
        matrix = rng.integers(0, 2, size=(6, 6), dtype=np.uint8)
        result = run_protocol(protocol, matrix, rng=rng)
        assert len(set(result.outputs)) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TopSubmatrixRankProtocol(0)
        with pytest.raises(ValueError):
            TopSubmatrixRankProtocol(4, rounds_budget=-1)


class TestTruncatedProtocol:
    def test_certain_rejection_used(self, rng):
        """If the revealed columns are dependent the truncated protocol
        answers 0, which is always correct."""
        n, k, j = 8, 6, 3
        protocol = TopSubmatrixRankProtocol(k, rounds_budget=j)
        matrix = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        matrix[:, 1] = matrix[:, 0]  # force dependent revealed columns
        result = run_protocol(protocol, matrix, rng=rng)
        assert result.outputs[0] == 0
        assert top_submatrix_full_rank(matrix, k) == 0

    def test_truncated_round_count(self, rng):
        protocol = TopSubmatrixRankProtocol(6, rounds_budget=2)
        matrix = rng.integers(0, 2, size=(8, 8), dtype=np.uint8)
        result = run_protocol(protocol, matrix, rng=rng)
        assert result.cost.rounds == 2


class TestClosedForms:
    def test_conditional_probability_at_zero_is_q0ish(self):
        assert conditional_full_rank_probability(
            12, 0
        ) == pytest.approx(full_rank_probability(12), rel=1e-9)

    def test_conditional_below_half_until_k(self):
        k = 10
        for j in range(k):
            assert conditional_full_rank_probability(k, j) < 0.5 + 1e-12
        assert conditional_full_rank_probability(k, k) == 1.0

    def test_optimal_accuracy_monotone_in_j(self):
        k = 10
        values = [optimal_accuracy_with_columns(k, j) for j in range(k + 1)]
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-12
        assert values[0] == pytest.approx(1 - full_rank_probability(k))
        assert values[-1] == 1.0

    def test_hierarchy_gap(self):
        """The Theorem 1.5 shape: below ~k rounds no column-revealing rule
        reaches 0.99, at k rounds accuracy is 1."""
        k = 20
        assert optimal_accuracy_with_columns(k, k // 20) < 0.99
        assert optimal_accuracy_with_columns(k, k // 2) < 0.99
        assert optimal_accuracy_with_columns(k, k) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            conditional_full_rank_probability(4, 5)
        with pytest.raises(ValueError):
            optimal_accuracy_with_columns(4, -1)


class TestAccuracyHarness:
    def test_full_budget_accuracy_is_one(self, rng):
        acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(4), n=6, k=4, n_samples=30, rng=rng
        )
        assert acc == 1.0

    def test_truncated_accuracy_matches_theory(self, rng):
        """Measured truncated-protocol accuracy tracks the closed form."""
        n, k, j = 8, 6, 2
        acc = accuracy_on_uniform(
            TopSubmatrixRankProtocol(k, rounds_budget=j),
            n=n, k=k, n_samples=250, rng=rng,
        )
        expected = optimal_accuracy_with_columns(k, j)
        assert abs(acc - expected) < 0.1
