"""Tests for the closed-form bound calculators."""

import math

import pytest

from repro.lowerbounds import (
    full_prg_bound,
    interesting_clique_range,
    lemma_1_8_bound,
    lemma_1_10_bound,
    lemma_4_3_bound,
    lemma_4_4_bound,
    max_rounds_fooled,
    planted_clique_bound,
    planted_clique_one_round_bound,
    toy_prg_bound,
    toy_prg_one_round_bound,
)


class TestScalingShapes:
    def test_lemma_1_10_scales_inverse_sqrt(self):
        assert lemma_1_10_bound(400) == pytest.approx(
            lemma_1_10_bound(100) / 2
        )

    def test_lemma_1_8_linear_in_k(self):
        assert lemma_1_8_bound(10000, 8) == pytest.approx(
            2 * lemma_1_8_bound(10000, 4)
        )

    def test_lemma_4_3_reduces_to_1_8_at_small_t(self):
        # With t = 1 the partial-function bound matches the total one.
        assert lemma_4_3_bound(10000, 5, 1) == pytest.approx(
            lemma_1_8_bound(10000, 5)
        )

    def test_lemma_4_4_grows_with_entropy_deficiency(self):
        assert lemma_4_4_bound(1000, 9) == pytest.approx(
            3 * lemma_4_4_bound(1000, 1)
        )

    def test_one_round_clique_bound_quadratic_in_k(self):
        assert planted_clique_one_round_bound(10**6, 4) == pytest.approx(
            4 * planted_clique_one_round_bound(10**6, 2)
        )

    def test_clique_bound_vanishes_in_lower_bound_regime(self):
        """k = n^{1/4-eps}: bound -> 0 as n grows (Corollary 4.2)."""
        values = []
        for n in (2**16, 2**20, 2**24):
            k = int(n ** (1 / 4 - 0.15))
            values.append(planted_clique_bound(n, k, j=2))
        assert values[0] > values[1] > values[2]
        assert values[2] < 0.1

    def test_clique_bound_trivial_above_sqrt_n(self):
        """At k = sqrt(n) the bound clamps to 1 — no contradiction with the
        degree algorithm working there."""
        n = 10**4
        assert planted_clique_bound(n, int(math.sqrt(n)), 1) == 1.0

    def test_prg_bounds_exponential_in_k(self):
        assert toy_prg_one_round_bound(100, 20) == pytest.approx(
            toy_prg_one_round_bound(100, 18) / 2
        )
        assert toy_prg_bound(100, 90, 2) == pytest.approx(
            toy_prg_bound(100, 81, 2) / 2
        )

    def test_all_bounds_clamped_to_one(self):
        assert planted_clique_one_round_bound(4, 100) == 1.0
        assert toy_prg_bound(10**9, 1, 1) == 1.0


class TestValidation:
    def test_full_prg_bound_rejects_large_m(self):
        with pytest.raises(ValueError):
            full_prg_bound(n=64, k=20, m=10**6, j=2)

    def test_full_prg_bound_valid_m(self):
        assert full_prg_bound(n=64, k=100, m=32, j=10) == toy_prg_bound(
            64, 100, 10
        )

    def test_interesting_range(self):
        low, high = interesting_clique_range(256)
        assert low == pytest.approx(8.0)
        assert high == pytest.approx(16.0)

    def test_max_rounds_fooled(self):
        assert max_rounds_fooled(100) == 10
        assert max_rounds_fooled(9) == 0
