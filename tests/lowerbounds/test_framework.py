"""Tests for the executable Section 3 framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distinguish import ProtocolSpec
from repro.distributions import PlantedClique, RandomDigraph
from repro.lowerbounds import (
    conditional_support_mask,
    lemma_1_8_bound,
    lemma_1_8_statistic,
    lemma_1_10_bound,
    lemma_1_10_statistic,
    lemma_5_2_statistic,
    prefix_pmf,
    progress_curve,
    real_distance_curve,
)


class TestPrefixPmf:
    def test_marginalisation(self):
        pmf = {(0, 0): 0.25, (0, 1): 0.25, (1, 0): 0.5}
        assert prefix_pmf(pmf, 1) == {(0,): 0.5, (1,): 0.5}
        assert prefix_pmf(pmf, 0) == {(): 1.0}


class TestCurves:
    def test_progress_dominates_real_distance(self):
        """The triangle inequality L_real <= L_progress, checked exactly —
        the paper's justification for tracking the progress function."""
        n, k = 4, 2
        spec = ProtocolSpec.from_scalar(
            n, 1, lambda i, row, p: int(row.sum() >= (n - 1) / 2 + 0.5)
        )
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        progress = progress_curve(spec, mixture, reference)
        real = real_distance_curve(spec, mixture, reference)
        assert len(progress) == len(real) == n + 1
        for lr, lp in zip(real, progress):
            assert lr <= lp + 1e-12

    def test_curves_monotone(self):
        """Both curves are non-decreasing in t: revealing more broadcasts
        cannot decrease statistical distance."""
        n, k = 4, 3
        spec = ProtocolSpec.from_scalar(
            n, 1, lambda i, row, p: int(row[(i + 1) % n])
        )
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        for curve in (
            progress_curve(spec, mixture, reference),
            real_distance_curve(spec, mixture, reference),
        ):
            for a, b in zip(curve, curve[1:]):
                assert b >= a - 1e-12

    def test_component_subsampling(self):
        n, k = 4, 2
        spec = ProtocolSpec.from_scalar(n, 1, lambda i, row, p: int(row[0]))
        mixture = PlantedClique(n, k)
        reference = RandomDigraph(n)
        curve = progress_curve(
            spec, mixture, reference, max_components=3,
            rng=np.random.default_rng(0),
        )
        assert len(curve) == n + 1
        assert curve[0] == 0.0


class TestLemmaStatistics:
    def test_lemma_1_10_on_dictator(self):
        """f(x) = x_0: the statistic is exactly (1/n) * (1/2)."""
        n = 6
        truth = np.array([(x >> 0) & 1 for x in range(1 << n)], dtype=float)
        stat = lemma_1_10_statistic(truth)
        assert stat == pytest.approx(0.5 / n)

    def test_lemma_1_10_on_constant(self):
        truth = np.ones(64)
        assert lemma_1_10_statistic(truth) == 0.0

    def test_lemma_1_10_within_bound_random_functions(self, rng):
        n = 10
        for _ in range(10):
            truth = (rng.random(1 << n) < 0.5).astype(float)
            stat = lemma_1_10_statistic(truth)
            assert stat <= lemma_1_10_bound(n, constant=2.0)

    def test_lemma_1_8_on_majority(self):
        n, k = 8, 2
        xs = np.arange(1 << n, dtype=np.uint64)
        truth = (np.bitwise_count(xs) >= n / 2).astype(float)
        stat = lemma_1_8_statistic(truth, k)
        # Majority is the distance-maximising shape; constant ~1 suffices.
        assert stat <= lemma_1_8_bound(n, k, constant=2.0)

    def test_lemma_1_8_with_domain_restriction(self, rng):
        """The partial-function variant (Lemma 4.3): restrict to a random
        half of the cube and the statistic stays bounded."""
        n, k = 8, 2
        truth = (rng.random(1 << n) < 0.5).astype(float)
        domain = rng.random(1 << n) < 0.5  # |D| ~ 2^{n-1}, t ~ 1
        stat = lemma_1_8_statistic(truth, k, domain=domain)
        from repro.lowerbounds import lemma_4_3_bound

        assert stat <= lemma_4_3_bound(n, k, t=2, constant=4.0)

    def test_lemma_1_8_subsampled_cliques(self, rng):
        n, k = 10, 3
        truth = (rng.random(1 << n) < 0.5).astype(float)
        full = lemma_1_8_statistic(truth, k, max_cliques=None)
        sampled = lemma_1_8_statistic(
            truth, k, max_cliques=40, rng=rng
        )
        assert abs(full - sampled) < 0.2

    def test_conditional_support_mask(self):
        mask = conditional_support_mask(3, (0, 2))
        # Selected strings have bits 0 and 2 set: indices 5 and 7.
        assert set(np.nonzero(mask)[0]) == {5, 7}

    def test_bad_truth_table_length(self):
        with pytest.raises(ValueError):
            lemma_1_10_statistic(np.ones(6))
        with pytest.raises(ValueError):
            lemma_1_8_statistic(np.ones(6), 2)


class TestLemma52:
    def test_inequality_on_random_functions(self, rng):
        k = 6
        for _ in range(10):
            truth = (rng.random(1 << (k + 1)) < 0.3).astype(float)
            lhs, rhs = lemma_5_2_statistic(truth)
            assert lhs <= rhs + 1e-9

    def test_tight_for_inner_product_indicator(self):
        """f(x, y) = [y = x·b*] for a fixed b*: f distinguishes U[b*]
        perfectly, and Lemma 5.2 says it can do so for essentially only
        that one b."""
        k = 5
        b_star = 0b10110
        size = 1 << (k + 1)
        truth = np.zeros(size)
        for x in range(1 << k):
            parity = bin(x & b_star).count("1") % 2
            truth[x | (parity << k)] = 1.0
        lhs, rhs = lemma_5_2_statistic(truth)
        assert lhs <= rhs + 1e-9
        # The b* term alone contributes (1 - 1/2)^2 = 1/4.
        assert lhs >= 0.25 - 1e-9

    def test_bad_length(self):
        with pytest.raises(ValueError):
            lemma_5_2_statistic(np.ones(5))


@given(n=st.integers(4, 9), seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_lemma_1_10_property(n, seed):
    """Lemma 1.10 with the proof's explicit constant 2, for arbitrary
    Boolean functions."""
    rng = np.random.default_rng(seed)
    truth = (rng.random(1 << n) < rng.random()).astype(float)
    assert lemma_1_10_statistic(truth) <= 2.0 / np.sqrt(n) + 1e-9


@given(k=st.integers(2, 6), seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_lemma_5_2_property(k, seed):
    """Lemma 5.2 for arbitrary Boolean functions on {0,1}^{k+1}."""
    rng = np.random.default_rng(seed)
    truth = (rng.random(1 << (k + 1)) < rng.random()).astype(float)
    lhs, rhs = lemma_5_2_statistic(truth)
    assert lhs <= rhs + 1e-9
