"""Tests for the degree heuristic."""

import numpy as np

from repro.cliques import degree_candidates, degree_recover, recovery_quality
from repro.distributions import PlantedClique


class TestDegreeCandidates:
    def test_returns_k_vertices(self, rng):
        adj = (rng.random((20, 20)) < 0.5).astype(np.uint8)
        assert len(degree_candidates(adj, 5)) == 5

    def test_prefers_high_degree(self):
        adj = np.zeros((5, 5), dtype=np.uint8)
        adj[0, 1:] = 1
        adj[1:, 0] = 1
        assert 0 in degree_candidates(adj, 1)


class TestDegreeRecover:
    def test_recovers_large_clique(self, rng):
        """k = n/2 >> sqrt(n): the degree heuristic succeeds."""
        n, k = 100, 50
        matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
        recovered = degree_recover(matrix, k)
        precision, recall = recovery_quality(recovered, clique)
        assert recall > 0.9

    def test_fails_on_small_clique(self, rng):
        """k ~ n^{1/4}: the degree signal is buried in noise."""
        n, k = 256, 4
        hits = 0
        trials = 10
        for _ in range(trials):
            matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
            recovered = degree_recover(matrix, k)
            _, recall = recovery_quality(recovered, clique)
            hits += recall
        assert hits / trials < 0.5  # mostly noise

    def test_refinement_no_worse_than_raw(self, rng):
        n, k = 80, 30
        matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
        raw = degree_candidates(matrix, k)
        refined = degree_recover(matrix, k, refine_rounds=3)
        _, recall_raw = recovery_quality(raw, clique)
        _, recall_refined = recovery_quality(refined, clique)
        assert recall_refined >= recall_raw - 0.1

    def test_output_size_k(self, rng):
        matrix, _ = PlantedClique(40, 10).sample_with_clique(rng)
        assert len(degree_recover(matrix, 10)) == 10
