"""Tests for the spectral planted-clique baseline."""

import numpy as np

from repro.cliques import recovery_quality, spectral_recover
from repro.distributions import PlantedClique, RandomDigraph


class TestSpectral:
    def test_recovers_clique_at_2_sqrt_n(self, rng):
        """k = 2*sqrt(n): comfortably in the spectral regime."""
        n = 144
        k = 24
        success = 0
        for _ in range(5):
            matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
            recovered = spectral_recover(matrix, k)
            _, recall = recovery_quality(recovered, clique)
            success += recall > 0.8
        assert success >= 4

    def test_output_size(self, rng):
        matrix, _ = PlantedClique(64, 16).sample_with_clique(rng)
        assert len(spectral_recover(matrix, 16)) == 16

    def test_runs_on_null_instance(self, rng):
        matrix = RandomDigraph(32).sample(rng)
        result = spectral_recover(matrix, 8)
        assert len(result) == 8  # returns *something*; caller verifies

    def test_beats_degree_in_middle_regime(self, rng):
        """Around k ~ 1.5*sqrt(n) the spectral method should recover at
        least as well as the raw degree heuristic on average."""
        from repro.cliques import degree_recover

        n, k = 100, 15
        spectral_recall = degree_recall = 0.0
        trials = 8
        for _ in range(trials):
            matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
            _, r_spec = recovery_quality(spectral_recover(matrix, k), clique)
            _, r_deg = recovery_quality(degree_recover(matrix, k), clique)
            spectral_recall += r_spec
            degree_recall += r_deg
        assert spectral_recall >= degree_recall - 0.5
