"""Tests for the Appendix B subsampling protocol."""

import numpy as np
import pytest

from repro.cliques import (
    PlantedCliqueSubsampleProtocol,
    activation_probability,
    expected_rounds,
    recovery_quality,
    subsample_recover,
)
from repro.core import run_protocol
from repro.distributions import PlantedClique


class TestParameters:
    def test_activation_probability(self):
        # log2(256) = 8 -> p = 64/k
        assert activation_probability(256, 64) == pytest.approx(1.0)
        assert activation_probability(256, 128) == pytest.approx(0.5)
        assert activation_probability(4, 1) == 1.0  # clamped

    def test_expected_rounds_scaling(self):
        # Rounds ~ n/k * log^2 n: doubling k halves the expectation.
        r1 = expected_rounds(1024, 128)
        r2 = expected_rounds(1024, 256)
        assert r1 - 2 == pytest.approx(2 * (r2 - 2))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PlantedCliqueSubsampleProtocol(0)
        with pytest.raises(ValueError):
            activation_probability(1, 4)


class TestCentralisedRecovery:
    def test_recovers_planted_clique(self, rng):
        """k = n/4 with boosted activation: comfortably recoverable."""
        n, k = 128, 32
        successes = 0
        for _ in range(5):
            matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
            recovered, rounds = subsample_recover(matrix, k, rng)
            if recovered is None:
                continue
            precision, recall = recovery_quality(recovered, clique)
            if recall > 0.9 and precision > 0.9:
                successes += 1
        assert successes >= 3

    def test_round_count_matches_activation(self, rng):
        n, k = 128, 32
        matrix, _ = PlantedClique(n, k).sample_with_clique(rng)
        _, rounds = subsample_recover(matrix, k, rng)
        p = activation_probability(n, k)
        # rounds = 2 + N_active <= 2 + 2np (else aborted with rounds=1)
        assert rounds == 1 or rounds <= 2 + 2 * n * p + 1

    def test_abort_on_null_instance_or_no_clique(self, rng):
        """On A_rand the activated subgraph's max clique is tiny, so the
        protocol aborts (returns None) almost always."""
        from repro.distributions import RandomDigraph

        n, k = 128, 32
        aborts = 0
        for _ in range(5):
            matrix = RandomDigraph(n).sample(rng)
            recovered, _ = subsample_recover(matrix, k, rng)
            if recovered is None or len(recovered) < k // 2:
                aborts += 1
        assert aborts >= 4


class TestProtocol:
    def test_protocol_recovers_clique(self, rng):
        n, k = 64, 24
        protocol = PlantedCliqueSubsampleProtocol(k)
        recovered_any = False
        for seed in range(6):
            matrix, clique = PlantedClique(n, k).sample_with_clique(
                np.random.default_rng(seed)
            )
            result = run_protocol(
                protocol, matrix, rng=np.random.default_rng(seed + 100)
            )
            out = result.outputs[0]
            if out is None:
                continue
            precision, recall = recovery_quality(out, clique)
            if recall > 0.8:
                recovered_any = True
                break
        assert recovered_any

    def test_all_processors_same_output(self, rng):
        n, k = 48, 16
        matrix, _ = PlantedClique(n, k).sample_with_clique(rng)
        protocol = PlantedCliqueSubsampleProtocol(k)
        result = run_protocol(protocol, matrix, rng=rng)
        assert len(set(result.outputs)) == 1

    def test_dynamic_round_count(self, rng):
        n, k = 48, 16
        matrix, _ = PlantedClique(n, k).sample_with_clique(rng)
        protocol = PlantedCliqueSubsampleProtocol(k)
        result = run_protocol(protocol, matrix, rng=rng)
        p = activation_probability(n, k)
        assert result.cost.rounds <= 2 + int(2 * n * p) + 1

    def test_rounds_shrink_with_larger_k(self):
        """The headline scaling: rounds ~ n/k."""
        n = 96
        rounds_by_k = {}
        for k in (24, 48):
            total = 0
            for seed in range(4):
                matrix, _ = PlantedClique(n, k).sample_with_clique(
                    np.random.default_rng(seed)
                )
                protocol = PlantedCliqueSubsampleProtocol(k)
                result = run_protocol(
                    protocol, matrix, rng=np.random.default_rng(seed + 50)
                )
                total += result.cost.rounds
            rounds_by_k[k] = total / 4
        assert rounds_by_k[48] < rounds_by_k[24]
