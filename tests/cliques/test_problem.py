"""Tests for planted-clique instances and verification helpers."""

import numpy as np
import pytest

from repro.cliques import (
    bidirected_skeleton,
    generate_instance,
    is_directed_clique,
    recovery_quality,
)


class TestInstances:
    def test_planted_instance_has_clique(self, rng):
        instance = generate_instance(12, 4, rng)
        assert instance.has_planted_clique
        assert len(instance.planted) == 4
        assert is_directed_clique(instance.adjacency, instance.planted)

    def test_null_instance(self, rng):
        instance = generate_instance(8, None, rng)
        assert not instance.has_planted_clique
        assert instance.n == 8

    def test_diagonal_always_zero(self, rng):
        for k in (None, 3):
            instance = generate_instance(10, k, rng)
            assert np.all(np.diag(instance.adjacency) == 0)


class TestVerification:
    def test_is_directed_clique_checks_both_directions(self):
        adj = np.zeros((3, 3), dtype=np.uint8)
        adj[0, 1] = 1  # only one direction
        assert not is_directed_clique(adj, {0, 1})
        adj[1, 0] = 1
        assert is_directed_clique(adj, {0, 1})

    def test_singleton_and_empty_cliques(self):
        adj = np.zeros((3, 3), dtype=np.uint8)
        assert is_directed_clique(adj, {1})
        assert is_directed_clique(adj, set())


class TestSkeleton:
    def test_skeleton_symmetric_and_and(self):
        adj = np.array(
            [[0, 1, 1], [1, 0, 0], [0, 1, 0]], dtype=np.uint8
        )
        skel = bidirected_skeleton(adj)
        assert np.array_equal(skel, skel.T)
        assert skel[0, 1] == 1  # both directions
        assert skel[0, 2] == 0  # one direction only
        assert np.all(np.diag(skel) == 0)

    def test_skeleton_density_quarter(self, rng):
        from repro.distributions import RandomDigraph

        adj = RandomDigraph(80).sample(rng)
        skel = bidirected_skeleton(adj)
        off = skel[~np.eye(80, dtype=bool)]
        assert 0.2 < off.mean() < 0.3


class TestRecoveryQuality:
    def test_perfect_recovery(self):
        precision, recall = recovery_quality({1, 2, 3}, frozenset({1, 2, 3}))
        assert precision == 1.0 and recall == 1.0

    def test_partial_recovery(self):
        precision, recall = recovery_quality({1, 2, 9}, frozenset({1, 2, 3, 4}))
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_empty_recovery(self):
        assert recovery_quality(set(), frozenset({1})) == (0.0, 0.0)

    def test_no_ground_truth_raises(self):
        with pytest.raises(ValueError):
            recovery_quality({1}, None)
