"""Tests for degree-detection information ceilings."""

import math

import numpy as np
import pytest

from repro.cliques import (
    degree_crossover_estimate,
    degree_profile_advantage_estimate,
    row_weight_pmf_planted,
    row_weight_pmf_rand,
    single_row_weight_tv,
)


class TestPmfs:
    def test_rand_pmf_is_binomial(self):
        pmf = row_weight_pmf_rand(4)
        # Binomial(3, 1/2) = [1, 3, 3, 1] / 8
        assert np.allclose(pmf, [1 / 8, 3 / 8, 3 / 8, 1 / 8])

    def test_planted_pmf_normalised(self):
        for n, k in [(8, 2), (16, 4), (64, 8)]:
            assert row_weight_pmf_planted(n, k).sum() == pytest.approx(1.0)

    def test_member_weight_floor(self):
        """A clique member's weight is at least k-1: the planted pmf puts
        extra mass at and above k-1, none below relative to the mixture
        weights."""
        n, k = 12, 6
        planted = row_weight_pmf_planted(n, k)
        rand = row_weight_pmf_rand(n)
        # Below k-1 the planted pmf is the (1 - k/n)-scaled random pmf.
        for w in range(k - 1):
            assert planted[w] == pytest.approx((1 - k / n) * rand[w])

    def test_validation(self):
        with pytest.raises(ValueError):
            row_weight_pmf_rand(1)
        with pytest.raises(ValueError):
            row_weight_pmf_planted(4, 5)


class TestTV:
    def test_monotone_in_k(self):
        n = 128
        values = [single_row_weight_tv(n, k) for k in (2, 4, 8, 16, 32)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_small_in_lower_bound_regime(self):
        n = 256
        k = round(n ** 0.25)
        assert single_row_weight_tv(n, k) < 0.01

    def test_large_for_big_cliques(self):
        assert single_row_weight_tv(64, 32) > 0.2

    def test_at_most_k_over_n(self):
        """The mixture differs only on the k/n member branch, so the TV is
        at most k/n."""
        for n, k in [(32, 4), (64, 16), (128, 8)]:
            assert single_row_weight_tv(n, k) <= k / n + 1e-12


class TestCrossover:
    def test_profile_estimate_clamped(self):
        assert degree_profile_advantage_estimate(64, 60) == 1.0

    def test_crossover_near_sqrt_n(self):
        for n in (256, 1024):
            crossover = degree_crossover_estimate(n)
            assert math.sqrt(n) / 2 <= crossover <= 2 * math.sqrt(
                n * math.log2(n)
            )

    def test_crossover_grows_with_n(self):
        assert degree_crossover_estimate(1024) > degree_crossover_estimate(64)

    def test_measured_attack_respects_ceiling(self, rng):
        """The implemented degree attack cannot beat the information
        ceiling of the degree profile."""
        from repro.distinguish import (
            DegreeThresholdDistinguisher,
            estimate_protocol_advantage,
        )
        from repro.distributions import PlantedClique, RandomDigraph

        n, k = 128, 8
        est = estimate_protocol_advantage(
            DegreeThresholdDistinguisher.for_clique_size(n, k),
            PlantedClique(n, k),
            RandomDigraph(n),
            n_samples=80,
            rng=rng,
        )
        ceiling = degree_profile_advantage_estimate(n, k)
        assert est.advantage <= ceiling + est.interval.radius
