"""Tests for exact max-clique search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cliques import greedy_clique, max_clique, max_clique_size


def complete_graph(n):
    adj = np.ones((n, n), dtype=np.uint8)
    np.fill_diagonal(adj, 0)
    return adj


def graph_from_edges(n, edges):
    adj = np.zeros((n, n), dtype=np.uint8)
    for u, v in edges:
        adj[u, v] = adj[v, u] = 1
    return adj


def is_clique(adj, vertices):
    vs = sorted(vertices)
    return all(adj[u, v] for u in vs for v in vs if u != v)


class TestMaxClique:
    def test_empty_graph(self):
        assert max_clique_size(np.zeros((5, 5), dtype=np.uint8)) == 1

    def test_complete_graph(self):
        assert max_clique(complete_graph(6)) == frozenset(range(6))

    def test_triangle_plus_pendant(self):
        adj = graph_from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert max_clique(adj) == frozenset({0, 1, 2})

    def test_two_cliques_picks_larger(self):
        edges = [(0, 1), (1, 2), (0, 2)]  # triangle
        edges += [(3, 4), (4, 5), (3, 5), (3, 6), (4, 6), (5, 6)]  # K4
        adj = graph_from_edges(7, edges)
        assert max_clique(adj) == frozenset({3, 4, 5, 6})

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            max_clique(np.zeros((2, 3), dtype=np.uint8))

    def test_planted_clique_found(self, rng):
        from repro.cliques import bidirected_skeleton
        from repro.distributions import PlantedClique

        matrix, clique = PlantedClique(24, 8).sample_with_clique(rng)
        skeleton = bidirected_skeleton(matrix)
        found = max_clique(skeleton)
        # The planted clique is by far the largest in a graph this small.
        assert clique <= found or len(found) >= 8


class TestGreedy:
    def test_returns_a_clique(self, rng):
        adj = (rng.random((12, 12)) < 0.5).astype(np.uint8)
        adj = adj & adj.T
        np.fill_diagonal(adj, 0)
        result = greedy_clique(adj)
        assert is_clique(adj, result)

    def test_complete_graph(self):
        assert greedy_clique(complete_graph(5)) == frozenset(range(5))

    def test_custom_order(self):
        adj = graph_from_edges(4, [(0, 1), (2, 3)])
        result = greedy_clique(adj, order=np.array([2, 3, 0, 1]))
        assert result == frozenset({2, 3})


@given(n=st.integers(2, 10), p=st.floats(0.1, 0.9), seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_max_clique_properties(n, p, seed):
    rng = np.random.default_rng(seed)
    upper = (rng.random((n, n)) < p).astype(np.uint8)
    adj = np.triu(upper, 1)
    adj = adj | adj.T
    clique = max_clique(adj)
    # It is a clique.
    assert is_clique(adj, clique)
    # It is at least as large as the greedy one.
    assert len(clique) >= len(greedy_clique(adj))
    # Nonempty on any graph with vertices.
    assert len(clique) >= 1
