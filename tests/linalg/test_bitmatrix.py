"""Unit and property tests for GF(2) bit matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import BitMatrix, BitVector


def numpy_gf2_rank(arr: np.ndarray) -> int:
    """Reference rank via plain-array Gaussian elimination (the naive
    ablation baseline for the bit-packed implementation)."""
    work = (np.asarray(arr) % 2).astype(np.int64)
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if work[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        work[[rank, pivot]] = work[[pivot, rank]]
        for r in range(rows):
            if r != rank and work[r, col]:
                work[r] ^= work[rank]
        rank += 1
    return rank


class TestConstruction:
    def test_zeros(self):
        m = BitMatrix.zeros(3, 70)
        assert (m.to_array() == 0).all()
        assert m.rows == 3 and m.cols == 70

    def test_identity(self):
        m = BitMatrix.identity(5)
        assert np.array_equal(m.to_array(), np.eye(5, dtype=np.uint8))
        assert m.rank() == 5

    def test_from_array_roundtrip(self, rng):
        arr = rng.integers(0, 2, size=(7, 130), dtype=np.uint8)
        assert np.array_equal(BitMatrix.from_array(arr).to_array(), arr)

    def test_from_rows(self):
        rows = [BitVector.from_bits([1, 0, 1]), BitVector.from_bits([0, 1, 1])]
        m = BitMatrix.from_rows(rows)
        assert np.array_equal(
            m.to_array(), np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        )

    def test_from_rows_mismatched_raises(self):
        with pytest.raises(ValueError):
            BitMatrix.from_rows(
                [BitVector.zeros(2), BitVector.zeros(3)]
            )

    def test_from_rows_empty(self):
        m = BitMatrix.from_rows([])
        assert m.rows == 0 and m.cols == 0

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            BitMatrix.from_array(np.zeros(4))

    def test_random_shape(self, rng):
        m = BitMatrix.random(5, 100, rng)
        assert m.to_array().shape == (5, 100)


class TestAccess:
    def test_get_set(self):
        m = BitMatrix.zeros(4, 90)
        m.set(2, 75, 1)
        assert m.get(2, 75) == 1
        m.set(2, 75, 0)
        assert m.get(2, 75) == 0

    def test_out_of_range(self):
        m = BitMatrix.zeros(2, 2)
        with pytest.raises(IndexError):
            m.get(2, 0)

    def test_row_column(self, rng):
        arr = rng.integers(0, 2, size=(4, 6), dtype=np.uint8)
        m = BitMatrix.from_array(arr)
        assert np.array_equal(m.row(1).to_array(), arr[1])
        assert np.array_equal(m.column(3).to_array(), arr[:, 3])

    def test_set_row(self):
        m = BitMatrix.zeros(2, 3)
        m.set_row(0, BitVector.from_bits([1, 1, 0]))
        assert np.array_equal(m.row(0).to_array(), [1, 1, 0])

    def test_submatrix(self, rng):
        arr = rng.integers(0, 2, size=(5, 5), dtype=np.uint8)
        m = BitMatrix.from_array(arr)
        assert np.array_equal(m.submatrix(3, 2).to_array(), arr[:3, :2])

    def test_submatrix_too_large(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(2, 2).submatrix(3, 1)


class TestArithmetic:
    def test_xor(self, rng):
        a = rng.integers(0, 2, size=(3, 80), dtype=np.uint8)
        b = rng.integers(0, 2, size=(3, 80), dtype=np.uint8)
        result = BitMatrix.from_array(a) ^ BitMatrix.from_array(b)
        assert np.array_equal(result.to_array(), a ^ b)

    def test_matvec_matches_numpy(self, rng):
        arr = rng.integers(0, 2, size=(6, 70), dtype=np.uint8)
        vec = rng.integers(0, 2, size=70, dtype=np.uint8)
        result = BitMatrix.from_array(arr).matvec(BitVector.from_array(vec))
        assert np.array_equal(result.to_array(), (arr @ vec) % 2)

    def test_vecmat_matches_numpy(self, rng):
        arr = rng.integers(0, 2, size=(6, 70), dtype=np.uint8)
        vec = rng.integers(0, 2, size=6, dtype=np.uint8)
        result = BitMatrix.from_array(arr).vecmat(BitVector.from_array(vec))
        assert np.array_equal(result.to_array(), (vec @ arr) % 2)

    def test_matmul_matches_numpy(self, rng):
        a = rng.integers(0, 2, size=(5, 40), dtype=np.uint8)
        b = rng.integers(0, 2, size=(40, 9), dtype=np.uint8)
        result = BitMatrix.from_array(a).matmul(BitMatrix.from_array(b))
        assert np.array_equal(result.to_array(), (a @ b) % 2)

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(2, 3).matmul(BitMatrix.zeros(4, 2))

    def test_transpose(self, rng):
        arr = rng.integers(0, 2, size=(4, 7), dtype=np.uint8)
        assert np.array_equal(
            BitMatrix.from_array(arr).transpose().to_array(), arr.T
        )


class TestRank:
    def test_identity_full_rank(self):
        assert BitMatrix.identity(8).is_full_rank()

    def test_zero_matrix_rank_zero(self):
        assert BitMatrix.zeros(4, 4).rank() == 0

    def test_duplicate_rows_reduce_rank(self):
        arr = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        assert BitMatrix.from_array(arr).rank() == 2

    def test_rank_matches_reference(self, rng):
        for _ in range(20):
            arr = rng.integers(0, 2, size=(10, 13), dtype=np.uint8)
            assert BitMatrix.from_array(arr).rank() == numpy_gf2_rank(arr)

    def test_wide_matrix(self, rng):
        arr = rng.integers(0, 2, size=(3, 200), dtype=np.uint8)
        assert BitMatrix.from_array(arr).rank() == numpy_gf2_rank(arr)

    def test_row_space_contains(self):
        arr = np.array([[1, 0, 0], [0, 1, 0]], dtype=np.uint8)
        m = BitMatrix.from_array(arr)
        assert m.row_space_contains(BitVector.from_bits([1, 1, 0]))
        assert not m.row_space_contains(BitVector.from_bits([0, 0, 1]))

    def test_rank_invariant_under_row_ops(self, rng):
        arr = rng.integers(0, 2, size=(6, 6), dtype=np.uint8)
        base = BitMatrix.from_array(arr).rank()
        arr2 = arr.copy()
        arr2[0] ^= arr2[1]  # row operation preserves rank
        assert BitMatrix.from_array(arr2).rank() == base


class TestDunder:
    def test_equality_hash(self, rng):
        arr = rng.integers(0, 2, size=(3, 3), dtype=np.uint8)
        a, b = BitMatrix.from_array(arr), BitMatrix.from_array(arr)
        assert a == b and hash(a) == hash(b)

    def test_copy_independent(self):
        a = BitMatrix.zeros(2, 2)
        b = a.copy()
        b.set(0, 0, 1)
        assert a.get(0, 0) == 0


@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 80),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_rank_property(rows, cols, seed):
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
    m = BitMatrix.from_array(arr)
    r = m.rank()
    assert r == numpy_gf2_rank(arr)
    assert 0 <= r <= min(rows, cols)
    assert m.transpose().rank() == r  # rank is transpose-invariant


@given(
    n=st.integers(1, 6),
    inner=st.integers(1, 40),
    m=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_matmul_property(n, inner, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, size=(n, inner), dtype=np.uint8)
    b = rng.integers(0, 2, size=(inner, m), dtype=np.uint8)
    result = BitMatrix.from_array(a).matmul(BitMatrix.from_array(b))
    assert np.array_equal(result.to_array(), (a @ b) % 2)


class TestWordLevelOps:
    """The kernels rewritten to pure word-level numpy in the batch PR."""

    def test_hconcat(self, rng):
        for c_left, c_right in [(70, 3), (64, 64), (1, 127), (0, 9), (9, 0), (63, 2)]:
            a = rng.integers(0, 2, size=(4, c_left), dtype=np.uint8)
            b = rng.integers(0, 2, size=(4, c_right), dtype=np.uint8)
            got = BitMatrix.from_array(a).hconcat(BitMatrix.from_array(b))
            assert np.array_equal(got.to_array(), np.hstack([a, b]))

    def test_hconcat_row_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(2, 3).hconcat(BitMatrix.zeros(3, 3))

    def test_transpose_ragged_shapes(self, rng):
        for rows, cols in [(65, 127), (130, 70), (1, 100), (100, 1), (64, 64)]:
            arr = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
            assert np.array_equal(
                BitMatrix.from_array(arr).transpose().to_array(), arr.T
            )

    def test_column_ragged(self, rng):
        arr = rng.integers(0, 2, size=(70, 130), dtype=np.uint8)
        m = BitMatrix.from_array(arr)
        for j in [0, 63, 64, 129]:
            assert np.array_equal(m.column(j).to_array(), arr[:, j])
        with pytest.raises(IndexError):
            m.column(130)

    def test_submatrix_word_sliced(self, rng):
        arr = rng.integers(0, 2, size=(10, 150), dtype=np.uint8)
        m = BitMatrix.from_array(arr)
        for rows, cols in [(10, 150), (3, 64), (7, 65), (0, 10), (10, 0)]:
            sub = m.submatrix(rows, cols)
            assert np.array_equal(sub.to_array(), arr[:rows, :cols])
            # tail words must be masked clean for equality/hash semantics
            assert sub == BitMatrix.from_array(arr[:rows, :cols])

    def test_identity_crosses_words(self):
        m = BitMatrix.identity(130)
        assert np.array_equal(m.to_array(), np.eye(130, dtype=np.uint8))

    def test_matmul_blocked_matches_unblocked(self, rng, monkeypatch):
        import repro.linalg.bitmatrix as bitmatrix_module

        a = rng.integers(0, 2, size=(30, 100), dtype=np.uint8)
        b = rng.integers(0, 2, size=(100, 45), dtype=np.uint8)
        expected = (a.astype(np.int64) @ b) % 2
        # force many tiny blocks: the blocking must be invisible
        monkeypatch.setattr(bitmatrix_module, "_MATMUL_BLOCK_BYTES", 64)
        got = BitMatrix.from_array(a).matmul(BitMatrix.from_array(b))
        assert np.array_equal(got.to_array(), expected)
