"""Tests for the random GF(2) matrix rank law (Kolchin)."""

import numpy as np
import pytest

from repro.linalg import (
    BitMatrix,
    Q0,
    count_matrices_of_rank,
    full_rank_probability,
    kolchin_q,
    rank_pmf,
)


class TestCounting:
    def test_total_count_is_all_matrices(self):
        for n, m in [(2, 2), (3, 3), (3, 4), (4, 3)]:
            total = sum(
                count_matrices_of_rank(n, m, r) for r in range(min(n, m) + 1)
            )
            assert total == 2 ** (n * m)

    def test_rank_zero_is_unique(self):
        assert count_matrices_of_rank(5, 5, 0) == 1

    def test_rank_one_2x2(self):
        # 2x2 rank-1: (2^2-1)(2^2-1)/(2-1) = 9
        assert count_matrices_of_rank(2, 2, 1) == 9

    def test_full_rank_2x2(self):
        # GL(2, F2) has order 6.
        assert count_matrices_of_rank(2, 2, 2) == 6

    def test_impossible_rank_zero_count(self):
        assert count_matrices_of_rank(3, 3, 4) == 0
        assert count_matrices_of_rank(3, 3, -1) == 0

    def test_brute_force_3x3(self):
        counts = np.zeros(4, dtype=int)
        for bits in range(2**9):
            arr = np.array(
                [(bits >> i) & 1 for i in range(9)], dtype=np.uint8
            ).reshape(3, 3)
            counts[BitMatrix.from_array(arr).rank()] += 1
        for r in range(4):
            assert counts[r] == count_matrices_of_rank(3, 3, r)


class TestPmf:
    def test_pmf_sums_to_one(self):
        for n in (2, 4, 6):
            assert rank_pmf(n).sum() == pytest.approx(1.0)

    def test_rectangular_pmf(self):
        pmf = rank_pmf(3, 5)
        assert len(pmf) == 4
        assert pmf.sum() == pytest.approx(1.0)

    def test_full_rank_probability_matches_pmf(self):
        for n in (2, 3, 5):
            assert full_rank_probability(n) == pytest.approx(rank_pmf(n)[-1])

    def test_full_rank_probability_decreasing_to_q0(self):
        probs = [full_rank_probability(n) for n in range(2, 12)]
        assert all(a > b for a, b in zip(probs, probs[1:]))
        assert probs[-1] == pytest.approx(Q0, abs=1e-3)


class TestKolchin:
    def test_q0_value_from_paper(self):
        # The paper quotes Q_0 ≈ 0.2887880950866.
        assert Q0 == pytest.approx(0.2887880950866, abs=1e-9)

    def test_q_sums_to_one(self):
        assert sum(kolchin_q(s) for s in range(30)) == pytest.approx(1.0)

    def test_q_peaks_at_corank_one(self):
        # The corank law peaks at s = 1: Q_1 = 2*Q_0 > Q_0 > Q_2 > ...
        values = [kolchin_q(s) for s in range(6)]
        assert values[1] == pytest.approx(2 * values[0])
        assert values[1] > values[0] > values[2]
        assert all(a > b for a, b in zip(values[1:], values[2:]))

    def test_negative_corank_raises(self):
        with pytest.raises(ValueError):
            kolchin_q(-1)

    def test_finite_n_converges_to_q(self):
        # P_{n,s} -> Q_s (paper, proof of Theorem 1.4).
        pmf = rank_pmf(14)
        for s in range(4):
            assert pmf[14 - s] == pytest.approx(kolchin_q(s), abs=1e-3)


class TestEmpirical:
    def test_sampled_rank_frequencies_match_law(self, rng):
        n, samples = 16, 400
        full = sum(
            1
            for _ in range(samples)
            if BitMatrix.random(n, n, rng).is_full_rank()
        )
        observed = full / samples
        # 400 samples: Hoeffding radius ~0.096 at 99% confidence.
        assert abs(observed - full_rank_probability(n)) < 0.1
