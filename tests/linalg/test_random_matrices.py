"""Tests for structured random-matrix samplers."""

import numpy as np
import pytest

from repro.linalg import (
    BitMatrix,
    matrix_with_rank,
    prg_matrix,
    rank_deficient_matrix,
    uniform_matrix,
)


class TestUniform:
    def test_shape(self, rng):
        m = uniform_matrix(5, 9, rng)
        assert m.rows == 5 and m.cols == 9

    def test_mean_density_near_half(self, rng):
        m = uniform_matrix(64, 64, rng)
        density = m.to_array().mean()
        assert 0.4 < density < 0.6


class TestPRGMatrix:
    def test_output_structure(self, rng):
        output, seeds, secret = prg_matrix(20, 30, 8, rng)
        assert output.rows == 20 and output.cols == 30
        assert seeds.rows == 20 and seeds.cols == 8
        assert secret.rows == 8 and secret.cols == 22

    def test_tail_is_seed_times_secret(self, rng):
        output, seeds, secret = prg_matrix(16, 24, 6, rng)
        out = output.to_array()
        expected_tail = (seeds.to_array() @ secret.to_array()) % 2
        assert np.array_equal(out[:, :6], seeds.to_array())
        assert np.array_equal(out[:, 6:], expected_tail)

    def test_rank_at_most_k(self, rng):
        # The defining property of the PRG output: everything lives in a
        # k-dimensional row structure.
        output, _, _ = prg_matrix(32, 48, 7, rng)
        assert output.rank() <= 7

    def test_m_equals_k_is_uniform_seed(self, rng):
        output, seeds, _ = prg_matrix(10, 5, 5, rng)
        assert output == seeds

    def test_invalid_k_raises(self, rng):
        with pytest.raises(ValueError):
            prg_matrix(4, 4, 0, rng)
        with pytest.raises(ValueError):
            prg_matrix(4, 4, 5, rng)


class TestRankDeficient:
    def test_never_full_rank(self, rng):
        for _ in range(10):
            m = rank_deficient_matrix(12, rng)
            assert m.rank() <= 11

    def test_rank_n_minus_1_with_positive_probability(self, rng):
        # rank(output) = rank(seed block); an n x (n-1) uniform block has
        # full column rank with probability ~0.5776, so roughly 6 in 10
        # samples hit rank exactly n-1.
        hits = sum(
            1 for _ in range(100) if rank_deficient_matrix(12, rng).rank() == 11
        )
        assert 35 <= hits <= 80


class TestMatrixWithRank:
    @pytest.mark.parametrize("r", [0, 1, 3, 5])
    def test_exact_rank(self, rng, r):
        m = matrix_with_rank(8, 10, r, rng)
        assert m.rank() == r

    def test_invalid_rank_raises(self, rng):
        with pytest.raises(ValueError):
            matrix_with_rank(3, 3, 4, rng)
