"""Property tests: batched GF(2) kernels are bit-identical to the scalar
``BitMatrix``/``BitVector`` paths, including ragged tail-word widths
(``n % 64 != 0``) and empty/degenerate shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import BitMatrix, BitMatrixBatch, BitVector, BitVectorBatch


def random_bits(rng, *shape):
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


#: Shapes chosen to cross word boundaries in every direction, plus the
#: empty/degenerate corners.
BATCH_SHAPES = [
    (4, 5, 5),
    (8, 7, 70),
    (3, 64, 64),
    (2, 65, 127),
    (1, 1, 1),
    (0, 5, 5),
    (5, 0, 7),
    (5, 7, 0),
    (6, 3, 200),
    (2, 130, 30),
]


class TestBitVectorBatch:
    @pytest.mark.parametrize("batch,n", [(4, 70), (1, 64), (3, 1), (0, 5), (2, 0)])
    def test_roundtrip(self, rng, batch, n):
        arr = random_bits(rng, batch, n)
        assert np.array_equal(BitVectorBatch.from_arrays(arr).to_arrays(), arr)

    def test_getitem_matches_scalar(self, rng):
        arr = random_bits(rng, 5, 90)
        vb = BitVectorBatch.from_arrays(arr)
        for i in range(5):
            assert vb[i] == BitVector.from_array(arr[i])

    def test_from_vectors(self, rng):
        vecs = [BitVector.random(70, rng) for _ in range(4)]
        vb = BitVectorBatch.from_vectors(vecs)
        assert list(vb) == vecs

    def test_from_vectors_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVectorBatch.from_vectors([BitVector.zeros(2), BitVector.zeros(3)])

    def test_xor_dots_weights(self, rng):
        a = random_bits(rng, 6, 77)
        b = random_bits(rng, 6, 77)
        va, vb = BitVectorBatch.from_arrays(a), BitVectorBatch.from_arrays(b)
        assert np.array_equal((va ^ vb).to_arrays(), a ^ b)
        assert np.array_equal(va.dots(vb), (a.astype(int) * b).sum(axis=1) % 2)
        assert np.array_equal(va.weights(), a.sum(axis=1))

    def test_random_tail_clear(self, rng):
        vb = BitVectorBatch.random(8, 70, rng)
        assert (vb.to_arrays().shape) == (8, 70)
        # repacking the unpacked bits must reproduce the words exactly
        assert np.array_equal(
            BitVectorBatch.from_arrays(vb.to_arrays()).words, vb.words
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVectorBatch.zeros(2, 5).dots(BitVectorBatch.zeros(2, 6))


class TestBitMatrixBatchKernels:
    @pytest.mark.parametrize("batch,rows,cols", BATCH_SHAPES)
    def test_roundtrip_and_getitem(self, rng, batch, rows, cols):
        arr = random_bits(rng, batch, rows, cols)
        mb = BitMatrixBatch.from_arrays(arr)
        assert np.array_equal(mb.to_arrays(), arr)
        for i in range(batch):
            assert mb[i] == BitMatrix.from_array(arr[i])

    @pytest.mark.parametrize("batch,rows,cols", BATCH_SHAPES)
    def test_rank_matches_scalar(self, rng, batch, rows, cols):
        arr = random_bits(rng, batch, rows, cols)
        mb = BitMatrixBatch.from_arrays(arr)
        expected = [BitMatrix.from_array(a).rank() for a in arr]
        assert np.array_equal(mb.rank(), expected)

    @pytest.mark.parametrize("batch,rows,cols", BATCH_SHAPES)
    def test_transpose_matches_scalar(self, rng, batch, rows, cols):
        arr = random_bits(rng, batch, rows, cols)
        mb = BitMatrixBatch.from_arrays(arr)
        assert np.array_equal(mb.transpose().to_arrays(), arr.transpose(0, 2, 1))

    @pytest.mark.parametrize("batch,rows,cols", BATCH_SHAPES)
    def test_matvec_vecmat_match_scalar(self, rng, batch, rows, cols):
        arr = random_bits(rng, batch, rows, cols)
        mb = BitMatrixBatch.from_arrays(arr)
        xs = random_bits(rng, batch, cols)
        got = mb.matvec(BitVectorBatch.from_arrays(xs)).to_arrays()
        for i in range(batch):
            scalar = BitMatrix.from_array(arr[i]).matvec(BitVector.from_array(xs[i]))
            assert np.array_equal(got[i], scalar.to_array())
        ys = random_bits(rng, batch, rows)
        got = mb.vecmat(BitVectorBatch.from_arrays(ys)).to_arrays()
        for i in range(batch):
            scalar = BitMatrix.from_array(arr[i]).vecmat(BitVector.from_array(ys[i]))
            assert np.array_equal(got[i], scalar.to_array())

    @pytest.mark.parametrize("batch,rows,cols", BATCH_SHAPES)
    def test_matmul_matches_scalar(self, rng, batch, rows, cols):
        arr = random_bits(rng, batch, rows, cols)
        other = random_bits(rng, batch, cols, 9)
        got = (
            BitMatrixBatch.from_arrays(arr)
            .matmul(BitMatrixBatch.from_arrays(other))
            .to_arrays()
        )
        for i in range(batch):
            scalar = BitMatrix.from_array(arr[i]).matmul(BitMatrix.from_array(other[i]))
            assert np.array_equal(got[i], scalar.to_array())

    def test_rank_structured_batches(self, rng):
        # duplicate rows, zero matrices and low-rank products in one batch
        arr = random_bits(rng, 30, 20, 20)
        arr[:10] = 0
        arr[10:20, 10:] = arr[10:20, :10]
        mb = BitMatrixBatch.from_arrays(arr)
        assert np.array_equal(
            mb.rank(), [BitMatrix.from_array(a).rank() for a in arr]
        )

    def test_xor(self, rng):
        a = random_bits(rng, 3, 5, 70)
        b = random_bits(rng, 3, 5, 70)
        got = BitMatrixBatch.from_arrays(a) ^ BitMatrixBatch.from_arrays(b)
        assert np.array_equal(got.to_arrays(), a ^ b)

    def test_from_matrices(self, rng):
        mats = [BitMatrix.random(6, 70, rng) for _ in range(5)]
        mb = BitMatrixBatch.from_matrices(mats)
        assert list(mb) == mats
        assert BitMatrixBatch.from_matrices([]).batch == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BitMatrixBatch.from_arrays(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            BitMatrixBatch.zeros(2, 3, 4).matmul(BitMatrixBatch.zeros(2, 5, 4))
        with pytest.raises(ValueError):
            BitMatrixBatch.zeros(2, 3, 4).matmul(BitMatrixBatch.zeros(3, 4, 4))
        with pytest.raises(ValueError):
            BitMatrixBatch.zeros(2, 3, 4).matvec(BitVectorBatch.zeros(2, 3))
        with pytest.raises(ValueError):
            BitMatrixBatch.zeros(2, 3, 4).vecmat(BitVectorBatch.zeros(2, 4))


class TestBatchedSampling:
    def test_random_matches_from_arrays_packing(self, rng):
        mb = BitMatrixBatch.random(4, 7, 70, rng)
        assert np.array_equal(
            BitMatrixBatch.from_arrays(mb.to_arrays()).words, mb.words
        )

    @pytest.mark.parametrize("r", [0, 1, 3, 6])
    def test_random_with_rank(self, rng, r):
        sample = BitMatrixBatch.random_with_rank(20, 6, 9, r, rng)
        assert sample.batch == 20
        assert np.array_equal(sample.rank(), np.full(20, r))

    def test_random_with_rank_impossible(self, rng):
        with pytest.raises(ValueError):
            BitMatrixBatch.random_with_rank(4, 3, 3, 5, rng)

    def test_is_full_rank(self, rng):
        mb = BitMatrixBatch.random_with_rank(10, 5, 8, 5, rng)
        assert mb.is_full_rank().all()
        assert not BitMatrixBatch.zeros(3, 4, 4).is_full_rank().any()


@given(
    batch=st.integers(1, 6),
    rows=st.integers(1, 20),
    cols=st.integers(1, 150),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_rank_property(batch, rows, cols, seed):
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, 2, size=(batch, rows, cols), dtype=np.uint8)
    mb = BitMatrixBatch.from_arrays(arr)
    assert np.array_equal(mb.rank(), [BitMatrix.from_array(a).rank() for a in arr])


@given(
    batch=st.integers(1, 5),
    rows=st.integers(1, 20),
    cols=st.integers(1, 130),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_transpose_vecmat_property(batch, rows, cols, seed):
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, 2, size=(batch, rows, cols), dtype=np.uint8)
    mb = BitMatrixBatch.from_arrays(arr)
    assert np.array_equal(mb.transpose().to_arrays(), arr.transpose(0, 2, 1))
    ys = rng.integers(0, 2, size=(batch, rows), dtype=np.uint8)
    got = mb.vecmat(BitVectorBatch.from_arrays(ys)).to_arrays()
    want = np.stack([(y.astype(int) @ a) % 2 for y, a in zip(ys, arr)])
    assert np.array_equal(got, want.astype(np.uint8))
