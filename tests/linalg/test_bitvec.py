"""Unit and property tests for GF(2) bit vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import BitVector


class TestConstruction:
    def test_zeros_has_no_ones(self):
        v = BitVector.zeros(130)
        assert v.weight() == 0
        assert v.is_zero()
        assert len(v) == 130

    def test_ones_has_full_weight(self):
        v = BitVector.ones(130)
        assert v.weight() == 130
        assert all(bit == 1 for bit in v)

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        v = BitVector.from_bits(bits)
        assert list(v) == bits

    def test_from_array_nonbinary_coerced(self):
        v = BitVector.from_array(np.array([0, 2, 5, 0]))
        assert list(v) == [0, 1, 1, 0]

    def test_from_int_roundtrip(self):
        value = 0b1011001110001
        v = BitVector.from_int(value, 70)
        assert v.to_int() == value

    def test_from_int_too_small_raises(self):
        with pytest.raises(ValueError):
            BitVector.from_int(0b111, 2)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_backing_store_validation(self):
        with pytest.raises(ValueError):
            BitVector(5, np.zeros(3, dtype=np.uint64))

    def test_empty_vector(self):
        v = BitVector.zeros(0)
        assert len(v) == 0
        assert v.weight() == 0
        assert v.to_int() == 0

    def test_random_has_correct_length(self, rng):
        v = BitVector.random(100, rng)
        assert len(v) == 100
        assert all(bit in (0, 1) for bit in v)

    def test_random_tail_bits_clear(self, rng):
        # Bits past position n-1 in the last word must stay clear.
        v = BitVector.random(65, rng)
        assert int(v.words[1]) < 2


class TestBitAccess:
    def test_set_and_get(self):
        v = BitVector.zeros(200)
        v[67] = 1
        assert v[67] == 1
        assert v.weight() == 1
        v[67] = 0
        assert v.weight() == 0

    def test_out_of_range_raises(self):
        v = BitVector.zeros(10)
        with pytest.raises(IndexError):
            _ = v[10]
        with pytest.raises(IndexError):
            v[-1] = 1


class TestArithmetic:
    def test_xor_is_addition(self):
        a = BitVector.from_bits([1, 0, 1, 0])
        b = BitVector.from_bits([1, 1, 0, 0])
        assert list(a ^ b) == [0, 1, 1, 0]
        assert list(a + b) == [0, 1, 1, 0]

    def test_xor_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector.zeros(3) ^ BitVector.zeros(4)

    def test_dot_parity(self):
        a = BitVector.from_bits([1, 1, 1, 0])
        b = BitVector.from_bits([1, 1, 0, 1])
        assert a.dot(b) == 0  # two overlapping ones
        c = BitVector.from_bits([1, 0, 0, 0])
        assert a.dot(c) == 1

    def test_concat(self):
        a = BitVector.from_bits([1, 0])
        b = BitVector.from_bits([1, 1, 1])
        assert list(a.concat(b)) == [1, 0, 1, 1, 1]

    def test_and(self):
        a = BitVector.from_bits([1, 1, 0])
        b = BitVector.from_bits([1, 0, 0])
        assert list(a & b) == [1, 0, 0]


class TestDunder:
    def test_equality_and_hash(self):
        a = BitVector.from_bits([1, 0, 1])
        b = BitVector.from_bits([1, 0, 1])
        c = BitVector.from_bits([1, 0, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_copy_is_independent(self):
        a = BitVector.from_bits([1, 0, 1])
        b = a.copy()
        b[0] = 0
        assert a[0] == 1

    def test_repr_small_and_large(self):
        assert "101" in repr(BitVector.from_bits([1, 0, 1]))
        assert "n=100" in repr(BitVector.zeros(100))


@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(bits):
    v = BitVector.from_bits(bits)
    assert list(v) == bits
    assert v.weight() == sum(bits)
    assert np.array_equal(v.to_array(), np.array(bits, dtype=np.uint8))


@given(
    bits_a=st.lists(st.integers(0, 1), min_size=1, max_size=150),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_xor_matches_numpy(bits_a, data):
    bits_b = data.draw(
        st.lists(st.integers(0, 1), min_size=len(bits_a), max_size=len(bits_a))
    )
    a, b = BitVector.from_bits(bits_a), BitVector.from_bits(bits_b)
    expected = (np.array(bits_a) ^ np.array(bits_b)).tolist()
    assert list(a ^ b) == expected


@given(
    bits_a=st.lists(st.integers(0, 1), min_size=1, max_size=150),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_dot_matches_numpy(bits_a, data):
    bits_b = data.draw(
        st.lists(st.integers(0, 1), min_size=len(bits_a), max_size=len(bits_a))
    )
    a, b = BitVector.from_bits(bits_a), BitVector.from_bits(bits_b)
    expected = int(np.array(bits_a) @ np.array(bits_b)) % 2
    assert a.dot(b) == expected


@given(st.integers(0, 2**100 - 1))
@settings(max_examples=50, deadline=None)
def test_int_roundtrip_property(value):
    v = BitVector.from_int(value, 100)
    assert v.to_int() == value


@given(
    n_left=st.integers(0, 200),
    n_right=st.integers(0, 200),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=50, deadline=None)
def test_concat_word_level_property(n_left, n_right, seed):
    """Word-level concat agrees with array concatenation across every
    tail-word alignment, including empty operands."""
    rng = np.random.default_rng(seed)
    a = BitVector.random(n_left, rng)
    b = BitVector.random(n_right, rng)
    combined = a.concat(b)
    assert np.array_equal(
        combined.to_array(), np.concatenate([a.to_array(), b.to_array()])
    )
    # the packed tail must be clean: repacking the bits reproduces the words
    assert BitVector.from_array(combined.to_array()) == combined


@given(n=st.integers(0, 300), seed=st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_int_roundtrip_from_random_vectors(n, seed):
    """Complements test_int_roundtrip_property above: starts from packed
    random vectors (multi-word, ragged tails) instead of integers."""
    rng = np.random.default_rng(seed)
    vec = BitVector.random(n, rng)
    value = vec.to_int()
    assert BitVector.from_int(value, n) == vec
    assert value == sum(bit << i for i, bit in enumerate(vec.to_array().tolist()))
