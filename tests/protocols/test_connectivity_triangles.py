"""Tests for the connectivity and triangle-counting workloads."""

import math

import numpy as np
import pytest

from repro.core import PublicCoins, run_protocol
from repro.protocols import (
    ConnectivityProtocol,
    FullExchangeTriangleProtocol,
    SampledTriangleProtocol,
    components_from_labels,
    count_triangles,
)


def symmetric_graph(n, edges):
    adj = np.zeros((n, n), dtype=np.uint8)
    for u, v in edges:
        adj[u, v] = adj[v, u] = 1
    return adj


class TestConnectivity:
    def test_two_components(self, rng):
        adj = symmetric_graph(5, [(0, 1), (1, 2), (3, 4)])
        result = run_protocol(ConnectivityProtocol(5), adj, rng=rng)
        labels = [out[0] for out in result.outputs]
        assert labels == [0, 0, 0, 3, 3]
        assert all(out[1] == 2 for out in result.outputs)

    def test_connected_graph(self, rng):
        adj = symmetric_graph(6, [(i, i + 1) for i in range(5)])
        result = run_protocol(ConnectivityProtocol(6), adj, rng=rng)
        assert all(out[0] == 0 for out in result.outputs)

    def test_isolated_vertices(self, rng):
        adj = np.zeros((4, 4), dtype=np.uint8)
        result = run_protocol(ConnectivityProtocol(4), adj, rng=rng)
        assert [out[0] for out in result.outputs] == [0, 1, 2, 3]
        assert all(out[1] == 4 for out in result.outputs)

    def test_early_termination_on_dense_graph(self, rng):
        """Random graphs have O(1) diameter: the dynamic termination stops
        after a handful of rounds, far below the worst-case cap n."""
        n = 24
        upper = np.triu(rng.integers(0, 2, size=(n, n), dtype=np.uint8), 1)
        adj = upper | upper.T
        result = run_protocol(ConnectivityProtocol(n), adj, rng=rng)
        assert result.cost.rounds <= 5

    def test_message_size_log_n(self):
        assert ConnectivityProtocol(64).message_size == 6
        assert ConnectivityProtocol(65).message_size == 7

    def test_matches_networkx(self, rng):
        networkx = pytest.importorskip("networkx")
        n = 16
        upper = np.triu((rng.random((n, n)) < 0.08).astype(np.uint8), 1)
        adj = upper | upper.T
        result = run_protocol(ConnectivityProtocol(n), adj, rng=rng)
        graph = networkx.from_numpy_array(adj)
        expected = networkx.number_connected_components(graph)
        assert result.outputs[0][1] == expected

    def test_components_from_labels(self):
        assert components_from_labels([0, 0, 3, 3, 5]) == 3


class TestCountTriangles:
    def test_triangle(self):
        adj = symmetric_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert count_triangles(adj) == 1

    def test_k4_has_four(self):
        adj = symmetric_graph(4, [(i, j) for i in range(4) for j in range(i)])
        assert count_triangles(adj) == 4

    def test_no_triangles_in_star(self):
        adj = symmetric_graph(5, [(0, i) for i in range(1, 5)])
        assert count_triangles(adj) == 0

    def test_rejects_asymmetric(self):
        adj = np.zeros((3, 3), dtype=np.uint8)
        adj[0, 1] = 1
        with pytest.raises(ValueError):
            count_triangles(adj)


class TestFullExchange:
    def test_exact_count(self, rng):
        n = 10
        upper = np.triu((rng.random((n, n)) < 0.4).astype(np.uint8), 1)
        adj = upper | upper.T
        protocol = FullExchangeTriangleProtocol(n)
        result = run_protocol(protocol, adj, rng=rng)
        assert all(out == count_triangles(adj) for out in result.outputs)

    def test_round_count(self):
        protocol = FullExchangeTriangleProtocol(64)  # b = 6
        assert protocol.num_rounds(64) == math.ceil(64 / 6)

    def test_bcast1_width(self, rng):
        n = 6
        adj = symmetric_graph(n, [(0, 1), (1, 2), (0, 2)])
        protocol = FullExchangeTriangleProtocol(n, message_size=1)
        result = run_protocol(protocol, adj, rng=rng)
        assert result.cost.rounds == n
        assert result.outputs[0] == 1


class TestSampledEstimator:
    def _run(self, adj, t_probes, seed=0):
        protocol = SampledTriangleProtocol(adj.shape[0], t_probes)
        public = PublicCoins(np.random.default_rng(seed))
        return run_protocol(
            protocol, adj, rng=np.random.default_rng(seed),
            public_coins=public,
        )

    def test_unbiased_on_complete_graph(self):
        n = 8
        adj = symmetric_graph(n, [(i, j) for i in range(n) for j in range(i)])
        result = self._run(adj, t_probes=20)
        assert result.outputs[0] == pytest.approx(math.comb(n, 3))

    def test_zero_on_empty_graph(self):
        result = self._run(np.zeros((8, 8), dtype=np.uint8), t_probes=20)
        assert result.outputs[0] == 0.0

    def test_estimate_converges(self, rng):
        n = 12
        upper = np.triu((rng.random((n, n)) < 0.5).astype(np.uint8), 1)
        adj = upper | upper.T
        truth = count_triangles(adj)
        estimates = [
            self._run(adj, t_probes=300, seed=s).outputs[0] for s in range(5)
        ]
        mean = float(np.mean(estimates))
        assert abs(mean - truth) < 0.5 * max(truth, 1)

    def test_requires_public_coins(self, rng):
        protocol = SampledTriangleProtocol(5, 3)
        with pytest.raises(ValueError):
            run_protocol(protocol, np.zeros((5, 5), dtype=np.uint8), rng=rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SampledTriangleProtocol(2, 5)
        with pytest.raises(ValueError):
            SampledTriangleProtocol(5, 0)
