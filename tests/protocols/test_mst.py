"""Tests for the Borůvka MST protocol and K4 counting (Section 9 problems)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_protocol
from repro.protocols import (
    BoruvkaMSTProtocol,
    count_k4,
    decode_weight_row,
    encode_weight_matrix,
    mst_reference_weight,
)


def random_weights(n, weight_bits, rng):
    upper = np.triu(
        rng.integers(1, (1 << weight_bits) - 1, size=(n, n)), 1
    )
    return upper + upper.T


class TestEncoding:
    def test_roundtrip(self, rng):
        weights = random_weights(6, 5, rng)
        rows = encode_weight_matrix(weights, 5)
        for i in range(6):
            assert np.array_equal(decode_weight_row(rows[i], 5), weights[i])

    def test_rejects_asymmetric(self):
        weights = np.zeros((3, 3), dtype=np.int64)
        weights[0, 1] = 1
        with pytest.raises(ValueError):
            encode_weight_matrix(weights, 4)

    def test_rejects_overflow(self):
        weights = np.full((2, 2), 20, dtype=np.int64)
        np.fill_diagonal(weights, 0)
        weights[0, 1] = weights[1, 0] = 16
        with pytest.raises(ValueError):
            encode_weight_matrix(weights, 4)

    def test_bad_row_length(self):
        with pytest.raises(ValueError):
            decode_weight_row(np.zeros(7, dtype=np.uint8), 4)


class TestBoruvka:
    def _solve(self, weights, weight_bits, seed=0):
        n = weights.shape[0]
        rows = encode_weight_matrix(weights, weight_bits)
        protocol = BoruvkaMSTProtocol(n, weight_bits)
        result = run_protocol(
            protocol, rows, rng=np.random.default_rng(seed)
        )
        return result

    def test_matches_prim_weight(self, rng):
        for _ in range(5):
            weights = random_weights(9, 6, rng)
            result = self._solve(weights, 6)
            edges, total = result.outputs[0]
            assert total == mst_reference_weight(weights)
            assert len(edges) == 8  # spanning tree of 9 vertices

    def test_tree_is_spanning_and_acyclic(self, rng):
        networkx = pytest.importorskip("networkx")
        weights = random_weights(10, 6, rng)
        edges, _ = self._solve(weights, 6).outputs[0]
        graph = networkx.Graph(list(edges))
        graph.add_nodes_from(range(10))
        assert networkx.is_tree(graph)

    def test_all_processors_agree(self, rng):
        weights = random_weights(7, 5, rng)
        result = self._solve(weights, 5)
        assert len(set(result.outputs)) == 1

    def test_logarithmic_rounds(self, rng):
        n = 16
        weights = random_weights(n, 7, rng)
        result = self._solve(weights, 7)
        assert result.cost.rounds <= int(np.ceil(np.log2(n))) + 2

    def test_path_like_weights(self):
        """Adversarial weights forcing sequential merges still finish
        within the Boruvka phase cap (components at least halve)."""
        n = 8
        weights = np.full((n, n), 60, dtype=np.int64)
        np.fill_diagonal(weights, 0)
        for i in range(n - 1):
            weights[i, i + 1] = weights[i + 1, i] = i + 1
        result = self._solve(weights, 6)
        edges, total = result.outputs[0]
        assert total == sum(range(1, n))  # the path is the MST
        assert len(edges) == n - 1

    def test_duplicate_weights_unique_mst(self, rng):
        """All-equal weights: the tie-broken MST is still a spanning tree
        and all processors agree on the same one."""
        n = 6
        weights = np.full((n, n), 5, dtype=np.int64)
        np.fill_diagonal(weights, 0)
        result = self._solve(weights, 4)
        edges, total = result.outputs[0]
        assert len(edges) == n - 1
        assert total == 5 * (n - 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoruvkaMSTProtocol(1, 4)
        with pytest.raises(ValueError):
            BoruvkaMSTProtocol(4, 0)


@given(n=st.integers(4, 9), seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_boruvka_weight_property(n, seed):
    """Random weight matrices: protocol MST weight == Prim reference."""
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.integers(1, 62, size=(n, n)), 1)
    weights = upper + upper.T
    rows = encode_weight_matrix(weights, 6)
    protocol = BoruvkaMSTProtocol(n, 6)
    result = run_protocol(protocol, rows, rng=np.random.default_rng(0))
    edges, total = result.outputs[0]
    assert total == mst_reference_weight(weights)
    assert len(edges) == n - 1


class TestCountK4:
    def test_k4_graph(self):
        adj = np.ones((4, 4), dtype=np.uint8)
        np.fill_diagonal(adj, 0)
        assert count_k4(adj) == 1

    def test_k5_has_five(self):
        adj = np.ones((5, 5), dtype=np.uint8)
        np.fill_diagonal(adj, 0)
        assert count_k4(adj) == 5  # C(5, 4)

    def test_triangle_has_none(self):
        adj = np.zeros((4, 4), dtype=np.uint8)
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            adj[u, v] = adj[v, u] = 1
        assert count_k4(adj) == 0

    def test_matches_brute_force(self, rng):
        from itertools import combinations

        n = 9
        upper = np.triu((rng.random((n, n)) < 0.6).astype(np.uint8), 1)
        adj = upper | upper.T
        brute = sum(
            1
            for quad in combinations(range(n), 4)
            if all(adj[a, b] for a, b in combinations(quad, 2))
        )
        assert count_k4(adj) == brute

    def test_rejects_asymmetric(self):
        adj = np.zeros((3, 3), dtype=np.uint8)
        adj[0, 1] = 1
        with pytest.raises(ValueError):
            count_k4(adj)
