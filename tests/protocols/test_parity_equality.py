"""Tests for the parity and equality workload protocols."""

import dataclasses

import numpy as np
import pytest

from repro.core import Engine, PublicCoins, RunSpec, run_protocol
from repro.distributions import UniformRows
from repro.protocols import (
    DeterministicEqualityProtocol,
    FingerprintEqualityProtocol,
    GlobalParityProtocol,
    fingerprint_error_bound,
)


class TestGlobalParity:
    def test_computes_parity(self, rng):
        for _ in range(10):
            inputs = rng.integers(0, 2, size=(5, 7), dtype=np.uint8)
            result = run_protocol(GlobalParityProtocol(), inputs, rng=rng)
            expected = int(inputs.sum()) % 2
            assert all(out == expected for out in result.outputs)

    def test_single_round_no_coins(self, rng):
        inputs = rng.integers(0, 2, size=(4, 4), dtype=np.uint8)
        result = run_protocol(GlobalParityProtocol(), inputs, rng=rng)
        assert result.cost.rounds == 1
        assert result.cost.total_private_bits == 0


class TestDeterministicEquality:
    def test_accepts_equal(self, rng):
        row = rng.integers(0, 2, size=6, dtype=np.uint8)
        inputs = np.tile(row, (4, 1))
        result = run_protocol(DeterministicEqualityProtocol(6), inputs, rng=rng)
        assert all(out == 1 for out in result.outputs)

    def test_rejects_unequal(self, rng):
        row = rng.integers(0, 2, size=6, dtype=np.uint8)
        inputs = np.tile(row, (4, 1))
        inputs[2, 3] ^= 1
        result = run_protocol(DeterministicEqualityProtocol(6), inputs, rng=rng)
        assert all(out == 0 for out in result.outputs)

    def test_round_count_is_m(self, rng):
        inputs = np.zeros((3, 9), dtype=np.uint8)
        result = run_protocol(DeterministicEqualityProtocol(9), inputs, rng=rng)
        assert result.cost.rounds == 9

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            DeterministicEqualityProtocol(0)


class TestBatchDecisions:
    """The parity/equality family rides the vectorized engine fast path."""

    def test_parity_batch_matches_scalar_loop(self, rng):
        protocol = GlobalParityProtocol()
        inputs = rng.integers(0, 2, size=(20, 5, 7), dtype=np.uint8)
        batched = protocol.batch_decisions(inputs)
        scalar = np.array(
            [
                run_protocol(protocol, matrix, rng=np.random.default_rng(0)).outputs[0]
                for matrix in inputs
            ],
            dtype=np.uint8,
        )
        assert np.array_equal(batched, scalar)

    def test_equality_batch_matches_scalar_loop(self, rng):
        protocol = DeterministicEqualityProtocol(6)
        row = rng.integers(0, 2, size=6, dtype=np.uint8)
        stacks = [np.tile(row, (4, 1)) for _ in range(6)]
        for index in (1, 3, 5):  # flip one bit in half the trials
            stacks[index] = stacks[index].copy()
            stacks[index][2, index % 6] ^= 1
        inputs = np.stack(stacks)
        batched = protocol.batch_decisions(inputs)
        scalar = np.array(
            [
                run_protocol(protocol, matrix, rng=np.random.default_rng(0)).outputs[0]
                for matrix in inputs
            ],
            dtype=np.uint8,
        )
        assert np.array_equal(batched, scalar)
        assert batched.tolist() == [1, 0, 1, 0, 1, 0]

    @pytest.mark.parametrize(
        "protocol, m",
        [(GlobalParityProtocol(), 7), (DeterministicEqualityProtocol(5), 5)],
    )
    def test_vectorized_engine_path_bit_identical(self, protocol, m):
        spec = RunSpec(
            protocol=protocol,
            distribution=UniformRows(4, m),
            seed=91,
            record_inputs=True,
        )
        scalar = Engine().run_batch(spec, 50)
        fast = Engine().run_batch(
            dataclasses.replace(spec, vectorized=True), 50
        )
        assert scalar.outputs == fast.outputs
        assert scalar.cost_totals() == fast.cost_totals()
        for a, b in zip(scalar, fast):
            assert np.array_equal(a.inputs, b.inputs)

    def test_equality_vectorized_accept_branch(self):
        """Fixed all-equal inputs exercise the accept=1 fast path."""
        inputs = np.tile(np.array([1, 0, 1, 1, 0], dtype=np.uint8), (4, 1))
        spec = RunSpec(
            protocol=DeterministicEqualityProtocol(5),
            inputs=inputs,
            seed=0,
            vectorized=True,
        )
        batch = Engine().run_batch(spec, 8)
        assert all(trial.outputs == [1, 1, 1, 1] for trial in batch)

    def test_batch_decisions_validates_shape(self):
        with pytest.raises(ValueError):
            GlobalParityProtocol().batch_decisions(np.zeros((3, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            DeterministicEqualityProtocol(6).batch_decisions(
                np.zeros((3, 4, 5), dtype=np.uint8)
            )

    def test_equality_batch_rejects_non_binary(self):
        """The scalar path raises on non-bit values (1-bit messages); the
        fast path must refuse them too rather than silently masking."""
        inputs = np.full((2, 3, 4), 2, dtype=np.uint8)
        with pytest.raises(ValueError, match="0/1"):
            DeterministicEqualityProtocol(4).batch_decisions(inputs)


class TestFingerprintEquality:
    def _run(self, inputs, t_probes, seed=0):
        protocol = FingerprintEqualityProtocol(inputs.shape[1], t_probes)
        public = PublicCoins(np.random.default_rng(seed))
        return run_protocol(
            protocol, inputs,
            rng=np.random.default_rng(seed + 1),
            public_coins=public,
        )

    def test_always_accepts_equal(self, rng):
        row = rng.integers(0, 2, size=16, dtype=np.uint8)
        inputs = np.tile(row, (5, 1))
        for seed in range(5):
            result = self._run(inputs, t_probes=4, seed=seed)
            assert all(out == 1 for out in result.outputs)

    def test_catches_unequal_whp(self, rng):
        row = rng.integers(0, 2, size=16, dtype=np.uint8)
        inputs = np.tile(row, (5, 1))
        inputs[3] = rng.integers(0, 2, size=16, dtype=np.uint8)
        caught = sum(
            1 - self._run(inputs, t_probes=8, seed=s).outputs[0]
            for s in range(10)
        )
        assert caught >= 9  # error bound 2^-8 per run

    def test_exponential_round_saving(self, rng):
        """The separation: 8 rounds of fingerprints vs m = 256 rounds
        deterministic, with error only 2^-8."""
        m = 256
        row = rng.integers(0, 2, size=m, dtype=np.uint8)
        inputs = np.tile(row, (4, 1))
        result = self._run(inputs, t_probes=8)
        assert result.cost.rounds == 8
        assert DeterministicEqualityProtocol(m).num_rounds(4) == m
        assert fingerprint_error_bound(8) == pytest.approx(2**-8)

    def test_requires_public_coins(self, rng):
        protocol = FingerprintEqualityProtocol(4, 2)
        with pytest.raises(ValueError):
            run_protocol(protocol, np.zeros((3, 4), dtype=np.uint8), rng=rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FingerprintEqualityProtocol(0, 2)
        with pytest.raises(ValueError):
            FingerprintEqualityProtocol(4, 0)
        with pytest.raises(ValueError):
            fingerprint_error_bound(-1)
