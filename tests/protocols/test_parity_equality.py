"""Tests for the parity and equality workload protocols."""

import numpy as np
import pytest

from repro.core import PublicCoins, run_protocol
from repro.protocols import (
    DeterministicEqualityProtocol,
    FingerprintEqualityProtocol,
    GlobalParityProtocol,
    fingerprint_error_bound,
)


class TestGlobalParity:
    def test_computes_parity(self, rng):
        for _ in range(10):
            inputs = rng.integers(0, 2, size=(5, 7), dtype=np.uint8)
            result = run_protocol(GlobalParityProtocol(), inputs, rng=rng)
            expected = int(inputs.sum()) % 2
            assert all(out == expected for out in result.outputs)

    def test_single_round_no_coins(self, rng):
        inputs = rng.integers(0, 2, size=(4, 4), dtype=np.uint8)
        result = run_protocol(GlobalParityProtocol(), inputs, rng=rng)
        assert result.cost.rounds == 1
        assert result.cost.total_private_bits == 0


class TestDeterministicEquality:
    def test_accepts_equal(self, rng):
        row = rng.integers(0, 2, size=6, dtype=np.uint8)
        inputs = np.tile(row, (4, 1))
        result = run_protocol(DeterministicEqualityProtocol(6), inputs, rng=rng)
        assert all(out == 1 for out in result.outputs)

    def test_rejects_unequal(self, rng):
        row = rng.integers(0, 2, size=6, dtype=np.uint8)
        inputs = np.tile(row, (4, 1))
        inputs[2, 3] ^= 1
        result = run_protocol(DeterministicEqualityProtocol(6), inputs, rng=rng)
        assert all(out == 0 for out in result.outputs)

    def test_round_count_is_m(self, rng):
        inputs = np.zeros((3, 9), dtype=np.uint8)
        result = run_protocol(DeterministicEqualityProtocol(9), inputs, rng=rng)
        assert result.cost.rounds == 9

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            DeterministicEqualityProtocol(0)


class TestFingerprintEquality:
    def _run(self, inputs, t_probes, seed=0):
        protocol = FingerprintEqualityProtocol(inputs.shape[1], t_probes)
        public = PublicCoins(np.random.default_rng(seed))
        return run_protocol(
            protocol, inputs,
            rng=np.random.default_rng(seed + 1),
            public_coins=public,
        )

    def test_always_accepts_equal(self, rng):
        row = rng.integers(0, 2, size=16, dtype=np.uint8)
        inputs = np.tile(row, (5, 1))
        for seed in range(5):
            result = self._run(inputs, t_probes=4, seed=seed)
            assert all(out == 1 for out in result.outputs)

    def test_catches_unequal_whp(self, rng):
        row = rng.integers(0, 2, size=16, dtype=np.uint8)
        inputs = np.tile(row, (5, 1))
        inputs[3] = rng.integers(0, 2, size=16, dtype=np.uint8)
        caught = sum(
            1 - self._run(inputs, t_probes=8, seed=s).outputs[0]
            for s in range(10)
        )
        assert caught >= 9  # error bound 2^-8 per run

    def test_exponential_round_saving(self, rng):
        """The separation: 8 rounds of fingerprints vs m = 256 rounds
        deterministic, with error only 2^-8."""
        m = 256
        row = rng.integers(0, 2, size=m, dtype=np.uint8)
        inputs = np.tile(row, (4, 1))
        result = self._run(inputs, t_probes=8)
        assert result.cost.rounds == 8
        assert DeterministicEqualityProtocol(m).num_rounds(4) == m
        assert fingerprint_error_bound(8) == pytest.approx(2**-8)

    def test_requires_public_coins(self, rng):
        protocol = FingerprintEqualityProtocol(4, 2)
        with pytest.raises(ValueError):
            run_protocol(protocol, np.zeros((3, 4), dtype=np.uint8), rng=rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FingerprintEqualityProtocol(0, 2)
        with pytest.raises(ValueError):
            FingerprintEqualityProtocol(4, 0)
        with pytest.raises(ValueError):
            fingerprint_error_bound(-1)
