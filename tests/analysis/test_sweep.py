"""Tests for the sweep runner."""

import pytest

from repro.analysis import run_sweep


def grid(ns):
    return [{"n": n} for n in ns]


class TestRunSweep:
    def test_collects_points(self):
        result = run_sweep(grid([1, 2, 3]), lambda n: {"square": float(n * n)})
        assert len(result.points) == 3
        assert result.column("n") == [1, 2, 3]
        assert result.column("square") == [1.0, 4.0, 9.0]

    def test_series_sorted_by_x(self):
        result = run_sweep(grid([3, 1, 2]), lambda n: {"y": float(n)})
        xs, ys = result.series("n", "y")
        assert xs == [1.0, 2.0, 3.0]
        assert ys == [1.0, 2.0, 3.0]

    def test_fit_through_sweep(self):
        result = run_sweep(
            grid([1, 2, 4, 8]), lambda n: {"y": 2.0 * n**3}
        )
        fit = result.fit_power_law("n", "y")
        assert fit.exponent == pytest.approx(3.0)

    def test_exponential_fit_through_sweep(self):
        result = run_sweep(
            grid([1, 2, 3, 4]), lambda n: {"y": 2.0 ** (-n)}
        )
        fit = result.fit_exponential_decay("n", "y")
        assert fit.rate == pytest.approx(-1.0)

    def test_markdown_rendering(self):
        result = run_sweep(grid([1, 2]), lambda n: {"y": n / 3})
        md = result.to_markdown(["n", "y"])
        assert md.startswith("| n | y |")
        assert "0.3333" in md

    def test_multi_parameter_grid(self):
        points = [{"n": n, "k": k} for n in (2, 4) for k in (1, 2)]
        result = run_sweep(points, lambda n, k: {"ratio": n / k})
        assert len(result.points) == 4
        assert result.points[0]["ratio"] == 2.0

    def test_bad_measure_return(self):
        with pytest.raises(TypeError):
            run_sweep(grid([1]), lambda n: 42)

    def test_point_getitem_priority(self):
        result = run_sweep(grid([5]), lambda n: {"v": 1.0})
        point = result.points[0]
        assert point["n"] == 5
        assert point["v"] == 1.0
        with pytest.raises(KeyError):
            point["missing"]


class TestCheckpointedSweep:
    def test_resume_skips_journaled_points(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        calls = []

        def measure(n):
            calls.append(n)
            return {"square": float(n * n)}

        first = run_sweep(grid([1, 2]), measure, checkpoint=journal)
        assert calls == [1, 2]
        # Rerunning a wider grid measures only the new points.
        second = run_sweep(grid([1, 2, 3]), measure, checkpoint=journal)
        assert calls == [1, 2, 3]
        assert second.column("square") == [1.0, 4.0, 9.0]
        assert second.points[:2] == first.points
        # A full rerun measures nothing.
        third = run_sweep(grid([1, 2, 3]), measure, checkpoint=journal)
        assert calls == [1, 2, 3]
        assert third.column("square") == [1.0, 4.0, 9.0]

    def test_journal_written_incrementally(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"

        def measure(n):
            if n == 3:
                raise RuntimeError("interrupted")
            return {"y": float(n)}

        with pytest.raises(RuntimeError):
            run_sweep(grid([1, 2, 3]), measure, checkpoint=journal)
        # Points completed before the crash survived.
        resumed = run_sweep(
            grid([1, 2]), lambda n: {"y": -1.0}, checkpoint=journal
        )
        assert resumed.column("y") == [1.0, 2.0]
