"""Tests for scaling-law fitting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    dominance_constant,
    fit_exponential_decay,
    fit_power_law,
    is_dominated,
)


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 8, 32])
        assert fit.predict(8) == pytest.approx(128.0)

    def test_negative_exponent(self):
        xs = [1.0, 4.0, 16.0]
        ys = [1.0 / math.sqrt(x) for x in xs]
        assert fit_power_law(xs, ys).exponent == pytest.approx(-0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0, 0.0])

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([2.0, 2.0], [1.0, 3.0])


class TestExponential:
    def test_exact_recovery(self):
        xs = [2, 4, 6, 8]
        ys = [5.0 * 2.0 ** (-0.5 * x) for x in xs]
        fit = fit_exponential_decay(xs, ys)
        assert fit.rate == pytest.approx(-0.5)
        assert fit.coefficient == pytest.approx(5.0)
        assert fit.halving_distance == pytest.approx(2.0)

    def test_toy_prg_rate_example(self):
        """The E-T5.1 measured series decays like 2^{-k}."""
        ks = [2, 4, 6, 8]
        distances = [0.21875, 0.0546875, 0.013671875, 0.00341796875]
        fit = fit_exponential_decay(ks, distances)
        assert fit.rate == pytest.approx(-1.0, abs=0.01)

    def test_flat_series(self):
        fit = fit_exponential_decay([1, 2, 3], [4.0, 4.0, 4.0])
        assert fit.rate == pytest.approx(0.0)
        assert fit.halving_distance == math.inf


class TestDominance:
    def test_constant_computed(self):
        assert dominance_constant([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.0)
        assert dominance_constant([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_zero_bound_handling(self):
        assert dominance_constant([0.0], [0.0]) == 0.0
        assert dominance_constant([0.1], [0.0]) == math.inf

    def test_is_dominated(self):
        assert is_dominated([0.1, 0.2], [0.2, 0.4])
        assert not is_dominated([0.3], [0.2])
        assert is_dominated([0.3], [0.2], constant=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dominance_constant([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            dominance_constant([-1.0], [1.0])


@given(
    exponent=st.floats(-3, 3),
    coefficient=st.floats(0.01, 100),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_power_law_roundtrip_property(exponent, coefficient, seed):
    xs = [1.0, 2.0, 3.0, 5.0, 8.0]
    ys = [coefficient * x**exponent for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.exponent == pytest.approx(exponent, abs=1e-6)
    assert fit.coefficient == pytest.approx(coefficient, rel=1e-6)
