"""Tests for the brute-force exact engine (dependent distributions)."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.distinguish import (
    ProtocolSpec,
    brute_force_transcript_pmf,
    exact_transcript_pmf,
    simulate_deterministic,
    transcript_distance,
)
from repro.distributions import RandomDigraph, UniformRows


class TestSimulateDeterministic:
    def test_matches_simulator(self, rng):
        n = 3
        spec = ProtocolSpec.from_scalar(
            n, 2, lambda i, row, p: int((row.sum() + sum(p)) % 2)
        )
        for _ in range(10):
            matrix = rng.integers(0, 2, size=(n, 4), dtype=np.uint8)
            direct = simulate_deterministic(spec, matrix)
            via_sim = run_protocol(
                spec.as_function_protocol(), matrix,
                scheduler="turn", rng=rng,
            ).transcript.key()
            assert direct == via_sim

    def test_round_model_visibility(self, rng):
        n = 2

        def echo(i, row, p):
            return p[-1] if p else 0

        spec = ProtocolSpec.from_scalar(n, 1, echo, sees_current_round=False)
        matrix = np.array([[1], [1]], dtype=np.uint8)
        assert simulate_deterministic(spec, matrix) == (0, 0)

    def test_wrong_rows_raises(self):
        spec = ProtocolSpec.from_scalar(3, 1, lambda i, row, p: 0)
        with pytest.raises(ValueError):
            simulate_deterministic(spec, np.zeros((2, 2), dtype=np.uint8))


class TestBruteForcePmf:
    def test_agrees_with_dp_engine_on_independent_rows(self, rng):
        """Cross-validation: the brute-force path and the row-independent
        DP path must produce the identical pmf where both apply."""
        n = 3
        dist = RandomDigraph(n)
        spec = ProtocolSpec.from_scalar(
            n, 1, lambda i, row, p: int(row.sum() % 2)
        )
        # Enumerate the joint support of A_rand manually.
        from itertools import product

        supports = [dist.row_support(i) for i in range(n)]
        joint = []
        for combo in product(*[range(s[0].shape[0]) for s in supports]):
            matrix = np.stack(
                [supports[i][0][idx] for i, idx in enumerate(combo)]
            )
            prob = float(
                np.prod([supports[i][1][idx] for i, idx in enumerate(combo)])
            )
            joint.append((matrix, prob))
        brute = brute_force_transcript_pmf(spec, joint)
        dp = exact_transcript_pmf(spec, dist)
        assert transcript_distance(brute, dp) < 1e-12

    def test_unnormalised_support_rejected(self):
        spec = ProtocolSpec.from_scalar(2, 1, lambda i, row, p: 0)
        support = [(np.zeros((2, 2), dtype=np.uint8), 0.5)]
        with pytest.raises(ValueError):
            brute_force_transcript_pmf(spec, support)

    def test_merges_colliding_transcripts(self):
        spec = ProtocolSpec.from_scalar(2, 1, lambda i, row, p: 0)
        support = [
            (np.zeros((2, 2), dtype=np.uint8), 0.5),
            (np.ones((2, 2), dtype=np.uint8), 0.5),
        ]
        pmf = brute_force_transcript_pmf(spec, support)
        assert pmf == {(0, 0): pytest.approx(1.0)}
