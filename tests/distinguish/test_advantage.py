"""Tests for advantage semantics."""

import pytest

from repro.distinguish import (
    guessing_probability,
    optimal_advantage_from_tv,
    tv_needed_for_advantage,
)


class TestConversions:
    def test_roundtrip(self):
        for adv in (0.0, 0.1, 0.25, 0.5):
            assert optimal_advantage_from_tv(
                tv_needed_for_advantage(adv)
            ) == pytest.approx(adv)

    def test_known_values(self):
        assert optimal_advantage_from_tv(1.0) == 0.5
        assert optimal_advantage_from_tv(0.0) == 0.0
        assert guessing_probability(0.5) == 1.0
        assert guessing_probability(0.0) == 0.5

    def test_range_validation(self):
        with pytest.raises(ValueError):
            optimal_advantage_from_tv(1.5)
        with pytest.raises(ValueError):
            tv_needed_for_advantage(0.6)
        with pytest.raises(ValueError):
            guessing_probability(-0.1)
