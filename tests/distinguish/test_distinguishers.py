"""Tests for the concrete distinguisher protocols."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.distinguish import (
    DegreeThresholdDistinguisher,
    NeighborhoodVoteDistinguisher,
    RandomParityProbe,
    estimate_protocol_advantage,
    random_function_protocol,
)
from repro.distributions import (
    PlantedClique,
    PRGOutput,
    RandomDigraph,
    UniformRows,
)


class TestDegreeThreshold:
    def test_detects_large_planted_clique(self, rng):
        """For k well above sqrt(n log n) the degree attack succeeds."""
        n, k = 64, 32
        est = estimate_protocol_advantage(
            DegreeThresholdDistinguisher.for_clique_size(n, k),
            PlantedClique(n, k),
            RandomDigraph(n),
            n_samples=60,
            rng=rng,
        )
        assert est.advantage > 0.25

    def test_fails_on_small_cliques(self, rng):
        """In the lower-bound regime k ~ n^{1/4} the one-round degree
        attack must have negligible advantage (Theorem 1.6)."""
        n, k = 256, 4  # k = n^{1/4}
        est = estimate_protocol_advantage(
            DegreeThresholdDistinguisher.for_clique_size(n, k),
            PlantedClique(n, k),
            RandomDigraph(n),
            n_samples=80,
            rng=rng,
        )
        assert est.advantage < 0.2

    def test_single_round(self):
        assert DegreeThresholdDistinguisher(1, 1).num_rounds(10) == 1


class TestNeighborhoodVote:
    def test_two_rounds(self):
        assert NeighborhoodVoteDistinguisher(1.0).num_rounds(8) == 2

    def test_detects_large_clique(self, rng):
        n, k = 64, 32
        est = estimate_protocol_advantage(
            NeighborhoodVoteDistinguisher.for_clique_size(n, k),
            PlantedClique(n, k),
            RandomDigraph(n),
            n_samples=60,
            rng=rng,
        )
        assert est.advantage > 0.2

    def test_runs_without_claimants(self, rng):
        protocol = NeighborhoodVoteDistinguisher(
            degree_threshold=1e9, vote_threshold=1
        )
        result = run_protocol(
            protocol, RandomDigraph(8).sample(rng), rng=rng
        )
        assert result.outputs[0] == 0


class TestRandomParityProbe:
    def test_round_count(self):
        assert RandomParityProbe(5, 8).num_rounds(4) == 5

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            RandomParityProbe(0, 8)

    def test_low_advantage_against_prg(self, rng):
        """Linear probes cannot beat the 2^{-Omega(k)} ceiling of
        Theorem 5.4 — with k = 10 the advantage is within noise of zero."""
        n, m, k = 16, 14, 10
        probe = RandomParityProbe(3, m, seed=1)
        est = estimate_protocol_advantage(
            probe, PRGOutput(n, m, k), UniformRows(n, m),
            n_samples=150, rng=rng,
        )
        assert est.advantage < 0.1

    def test_detects_tiny_secret(self, rng):
        """With k = 1 the kernel event has probability 1/2 per probe and
        several probes detect the collapse reliably."""
        n, m, k = 12, 8, 1
        probe = RandomParityProbe(6, m, seed=2)
        est = estimate_protocol_advantage(
            probe, PRGOutput(n, m, k), UniformRows(n, m),
            n_samples=120, rng=rng,
        )
        assert est.advantage > 0.3


class TestRandomFunctionProtocol:
    def test_deterministic_given_seed(self, rng):
        inputs = RandomDigraph(4).sample(rng)
        p1 = random_function_protocol(2, seed=7)
        p2 = random_function_protocol(2, seed=7)
        key1 = run_protocol(p1, inputs, rng=np.random.default_rng(0)).transcript.key()
        key2 = run_protocol(p2, inputs, rng=np.random.default_rng(1)).transcript.key()
        assert key1 == key2  # no private coins involved

    def test_different_seeds_differ(self, rng):
        inputs = RandomDigraph(6).sample(rng)
        keys = {
            run_protocol(
                random_function_protocol(2, seed=s), inputs,
                rng=np.random.default_rng(0),
            ).transcript.key()
            for s in range(8)
        }
        assert len(keys) > 1

    def test_message_size_respected(self, rng):
        protocol = random_function_protocol(1, seed=0, message_size=3)
        inputs = UniformRows(3, 2).sample(rng)
        result = run_protocol(protocol, inputs, rng=rng)
        assert all(0 <= e.message < 8 for e in result.transcript)
