"""Tests for Monte-Carlo transcript/advantage estimation."""

import numpy as np
import pytest

from repro.core import BatchFallbackWarning, FunctionProtocol
from repro.distinguish import (
    estimate_protocol_advantage,
    estimate_transcript_distance,
    run_distinguisher,
    sample_transcript_keys,
)
from repro.distributions import PlantedCliqueAt, UniformRows
from repro.distributions.prg_dists import PRGOutput
from repro.prg.attacks import SupportMembershipAttack


def weight_protocol(threshold):
    """Broadcast [row weight >= threshold]; processor 0's output is the OR
    of all broadcasts."""
    return FunctionProtocol(
        1,
        lambda i, row, p: int(row.sum() >= threshold),
        output_fn=lambda i, row, p: int(any(p)),
    )


class TestSampling:
    def test_keys_have_right_length(self, rng):
        keys = sample_transcript_keys(
            weight_protocol(1), UniformRows(3, 2), 5, rng
        )
        assert len(keys) == 5
        assert all(len(k) == 3 for k in keys)

    def test_distance_zero_same_distribution(self, rng):
        dist = UniformRows(3, 4)
        ci = estimate_transcript_distance(
            weight_protocol(2), dist, dist, 800, rng
        )
        assert ci.lower <= 0.1

    def test_distance_large_for_separated(self, rng):
        n = 4
        uniform = UniformRows(n, n)
        planted = PlantedCliqueAt(n, set(range(n)))  # all bits forced
        ci = estimate_transcript_distance(
            weight_protocol(n - 1), uniform, planted, 500, rng
        )
        assert ci.estimate > 0.5


class TestDistinguisher:
    def test_decisions_binary(self, rng):
        decisions = run_distinguisher(
            weight_protocol(2), UniformRows(3, 3), 20, rng
        )
        assert set(np.unique(decisions)) <= {0, 1}

    def test_custom_decision_fn(self, rng):
        decisions = run_distinguisher(
            weight_protocol(2),
            UniformRows(3, 3),
            10,
            rng,
            decision_fn=lambda result: 1,
        )
        assert decisions.sum() == 10

    def test_advantage_perfect_separation(self, rng):
        n = 4
        uniform = UniformRows(n, n)
        planted = PlantedCliqueAt(n, set(range(n)))
        est = estimate_protocol_advantage(
            weight_protocol(n), uniform, planted, 200, rng
        )
        # Planted rows have weight >= n-1... threshold n hits only all-ones
        # rows; clique rows have a forced 0 at the diagonal, so use the
        # accept-rate gap direction-agnostically.
        assert 0.0 <= est.advantage <= 0.5

    def test_advantage_zero_same_distribution(self, rng):
        dist = UniformRows(3, 3)
        est = estimate_protocol_advantage(
            weight_protocol(2), dist, dist, 400, rng
        )
        assert est.advantage < 0.08
        assert est.interval.lower <= 0.0 + 1e-12


class TestVectorizedKeyEstimators:
    """Key-based estimators ride the fast path, bit-identical to scalar."""

    def test_sample_transcript_keys_identical(self):
        args = (SupportMembershipAttack(4), PRGOutput(10, 8, 4), 60)
        scalar = sample_transcript_keys(*args, np.random.default_rng(2))
        fast = sample_transcript_keys(
            *args, np.random.default_rng(2), vectorized=True
        )
        assert scalar == fast
        assert all(len(key) == 10 * 5 for key in fast)

    def test_estimate_transcript_distance_identical(self):
        args = (
            SupportMembershipAttack(4),
            PRGOutput(10, 8, 4),
            UniformRows(10, 8),
            80,
        )
        scalar = estimate_transcript_distance(*args, np.random.default_rng(6))
        fast = estimate_transcript_distance(
            *args, np.random.default_rng(6), vectorized=True
        )
        assert scalar == fast

    def test_unsupported_protocol_warns_and_matches(self):
        args = (weight_protocol(2), UniformRows(3, 3), 12)
        scalar = sample_transcript_keys(*args, np.random.default_rng(4))
        with pytest.warns(BatchFallbackWarning):
            fast = sample_transcript_keys(
                *args, np.random.default_rng(4), vectorized=True
            )
        assert scalar == fast
