"""Property-based tests of the exact transcript engine's invariants."""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_protocol
from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    transcript_distance,
)
from repro.distributions import (
    PlantedCliqueAt,
    RandomDigraph,
    SharedVectorRows,
    UniformRows,
)
from repro.lowerbounds import prefix_pmf


def hashed_spec(n, rounds, seed, sees_current=True):
    """A random deterministic protocol derived from a hash — an arbitrary
    member of the class the theorems quantify over."""

    def fn(i, rows, p):
        out = np.empty(rows.shape[0], dtype=np.int64)
        prefix = (
            seed.to_bytes(8, "little") + i.to_bytes(4, "little") + bytes(p)
        )
        for idx, row in enumerate(rows):
            digest = hashlib.blake2b(
                prefix + bytes(row), digest_size=1
            ).digest()
            out[idx] = digest[0] & 1
        return out

    return ProtocolSpec(n, rounds, fn, sees_current_round=sees_current)


def random_distribution(n, kind, seed):
    rng = np.random.default_rng(seed)
    if kind == 0:
        return UniformRows(n, 3)
    if kind == 1:
        return RandomDigraph(n)
    if kind == 2:
        clique = frozenset(
            int(v) for v in rng.choice(n, size=min(2, n), replace=False)
        )
        return PlantedCliqueAt(n, clique)
    return SharedVectorRows(n, rng.integers(0, 2, size=2, dtype=np.uint8))


@given(
    n=st.integers(2, 4),
    rounds=st.integers(1, 2),
    kind=st.integers(0, 3),
    seed=st.integers(0, 2**31),
    sees=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_pmf_is_a_distribution(n, rounds, kind, seed, sees):
    spec = hashed_spec(n, rounds, seed, sees)
    pmf = exact_transcript_pmf(spec, random_distribution(n, kind, seed))
    assert abs(sum(pmf.values()) - 1.0) < 1e-9
    assert all(p > 0 for p in pmf.values())
    assert all(len(key) == rounds * n for key in pmf)


@given(
    n=st.integers(2, 4),
    kind_a=st.integers(0, 3),
    kind_b=st.integers(0, 3),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_prefix_distance_monotone(n, kind_a, kind_b, seed):
    """Revealing more turns can only increase TV distance (data
    processing): the prefix curve is non-decreasing."""
    spec = hashed_spec(n, 2, seed)
    dist_a = random_distribution(n, kind_a, seed)
    dist_b = random_distribution(n, kind_b, seed + 1)
    if dist_a.row_length != dist_b.row_length:
        return
    pmf_a = exact_transcript_pmf(spec, dist_a)
    pmf_b = exact_transcript_pmf(spec, dist_b)
    curve = [
        transcript_distance(prefix_pmf(pmf_a, t), prefix_pmf(pmf_b, t))
        for t in range(2 * n + 1)
    ]
    assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))


@given(
    n=st.integers(2, 3),
    seed=st.integers(0, 2**31),
    sees=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_exact_agrees_with_monte_carlo(n, seed, sees):
    """End-to-end cross-validation on random protocols."""
    spec = hashed_spec(n, 1, seed, sees)
    dist = UniformRows(n, 3)
    exact = exact_transcript_pmf(spec, dist)
    protocol = spec.as_function_protocol()
    rng = np.random.default_rng(seed)
    counts: dict = {}
    trials = 1500
    for _ in range(trials):
        key = run_protocol(
            protocol, dist.sample(rng),
            scheduler=spec.scheduler_name, rng=rng,
        ).transcript.key()
        counts[key] = counts.get(key, 0) + 1
    sampled = {k: c / trials for k, c in counts.items()}
    assert transcript_distance(exact, sampled) < 0.12
