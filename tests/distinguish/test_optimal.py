"""Tests for exact optimal-single-broadcast ceilings."""

import numpy as np
import pytest

from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    first_round_distance_ceiling,
    optimal_single_broadcast_distance,
    row_marginal_pmf,
    transcript_distance,
)
from repro.distributions import (
    PlantedClique,
    PlantedCliqueAt,
    RandomDigraph,
    ToyPRGOutput,
    UniformRows,
)


class TestRowMarginal:
    def test_uniform_marginal(self):
        pmf = row_marginal_pmf(UniformRows(2, 3), 0)
        assert len(pmf) == 8
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_mixture_marginal_averages(self):
        n, k = 4, 2
        pmf = row_marginal_pmf(PlantedClique(n, k), 0)
        assert sum(pmf.values()) == pytest.approx(1.0)
        # Row 0's marginal mixes the "in clique" and "not in clique" cases:
        # support is everything with bit 0 = 0.
        for key in pmf:
            row = np.frombuffer(key, dtype=np.uint8)
            assert row[0] == 0

    def test_type_error(self):
        from repro.distributions.base import InputDistribution

        with pytest.raises(TypeError):
            row_marginal_pmf(InputDistribution(2, 2), 0)


class TestOptimalDistance:
    def test_identical_distributions_zero(self):
        dist = RandomDigraph(4)
        assert optimal_single_broadcast_distance(dist, dist, 0) == 0.0

    def test_planted_clique_known_value(self):
        """Row marginal under A_k: w.p. k/n the row is a member with k-1
        forced ones.  The likelihood-ratio region is exactly the forced
        patterns; the closed-form TV follows by counting."""
        n, k = 5, 3
        value = optimal_single_broadcast_distance(
            RandomDigraph(n), PlantedClique(n, k), 0
        )
        # member prob = k/n; over the C(n-1, k-1) placements, each forces
        # k-1 bits to 1: TV = (k/n) * (1 - 2^{-(k-1)}) only when placements
        # don't overlap... compute instead by direct enumeration here:
        from itertools import combinations

        rand_pmf = row_marginal_pmf(RandomDigraph(n), 0)
        planted_pmf = row_marginal_pmf(PlantedClique(n, k), 0)
        manual = 0.5 * sum(
            abs(rand_pmf.get(s, 0.0) - planted_pmf.get(s, 0.0))
            for s in set(rand_pmf) | set(planted_pmf)
        )
        assert value == pytest.approx(manual)
        assert 0 < value <= k / n  # mixing weight caps the distance

    def test_dominates_any_concrete_protocol(self):
        """A protocol where only processor 0 broadcasts (others send 0)
        cannot exceed the single-broadcast ceiling."""
        n, k = 5, 3

        def lone_speaker(i, rows, p):
            if i == 0:
                return (rows.sum(axis=1) >= 3).astype(np.int64)
            return np.zeros(rows.shape[0], dtype=np.int64)

        spec = ProtocolSpec(n, 1, lone_speaker)
        reference = RandomDigraph(n)
        mixture = PlantedClique(n, k)
        mixture_pmf: dict = {}
        for w, comp in mixture.components():
            for key, p in exact_transcript_pmf(spec, comp).items():
                mixture_pmf[key] = mixture_pmf.get(key, 0.0) + w * p
        measured = transcript_distance(
            exact_transcript_pmf(spec, reference), mixture_pmf
        )
        ceiling = optimal_single_broadcast_distance(reference, mixture, 0)
        assert measured <= ceiling + 1e-12

    def test_toy_prg_single_row_ceiling(self):
        """One toy-PRG row alone is almost uniform: the optimal single
        broadcast gets only the zero-seed anomaly 2^{-(k+1)}."""
        k = 4
        value = optimal_single_broadcast_distance(
            UniformRows(3, k + 1), ToyPRGOutput(3, k), 0
        )
        assert value == pytest.approx(2.0 ** -(k + 1))


class TestRoundCeiling:
    def test_subadditive_sum(self):
        n, k = 4, 2
        reference = RandomDigraph(n)
        mixture = PlantedClique(n, k)
        per_row = [
            optimal_single_broadcast_distance(reference, mixture, i)
            for i in range(n)
        ]
        assert first_round_distance_ceiling(
            reference, mixture
        ) == pytest.approx(min(1.0, sum(per_row)))

    def test_fixed_component_is_easier(self):
        """Against a *fixed* clique the per-row ceiling is larger than
        against the mixture — quantifying the decomposition's point."""
        n = 6
        clique = frozenset({0, 1, 2})
        fixed = optimal_single_broadcast_distance(
            RandomDigraph(n), PlantedCliqueAt(n, clique), 0
        )
        mixed = optimal_single_broadcast_distance(
            RandomDigraph(n), PlantedClique(n, 3), 0
        )
        assert fixed > mixed

    def test_mismatched_n_rejected(self):
        with pytest.raises(ValueError):
            first_round_distance_ceiling(RandomDigraph(3), RandomDigraph(4))
