"""Tests for the exact transcript-distribution engine."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.distinguish import (
    ProtocolSpec,
    exact_transcript_pmf,
    mixture_transcript_pmf,
    transcript_distance,
)
from repro.distributions import (
    PlantedClique,
    PlantedCliqueAt,
    RandomDigraph,
    ToyPRGOutput,
    UniformRows,
)


def first_bit_spec(n, rounds=1, sees_current=True):
    return ProtocolSpec.from_scalar(
        n, rounds, lambda i, row, p: int(row[0]), sees_current_round=sees_current
    )


class TestBasicPmfs:
    def test_first_bit_uniform(self):
        pmf = exact_transcript_pmf(first_bit_spec(3), UniformRows(3, 2))
        assert len(pmf) == 8
        for p in pmf.values():
            assert p == pytest.approx(1 / 8)

    def test_constant_protocol_single_transcript(self):
        spec = ProtocolSpec.from_scalar(3, 2, lambda i, row, p: 1)
        pmf = exact_transcript_pmf(spec, UniformRows(3, 2))
        assert pmf == {(1,) * 6: pytest.approx(1.0)}

    def test_digraph_diagonal_forces_zero(self):
        # Broadcasting one's own diagonal bit always yields 0 under A_rand.
        spec = ProtocolSpec.from_scalar(
            3, 1, lambda i, row, p: int(row[i])
        )
        pmf = exact_transcript_pmf(spec, RandomDigraph(3))
        assert pmf == {(0, 0, 0): pytest.approx(1.0)}

    def test_pmf_normalised(self):
        spec = ProtocolSpec.from_scalar(
            4, 2, lambda i, row, p: int(row.sum() % 2)
        )
        pmf = exact_transcript_pmf(spec, UniformRows(4, 4))
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_row_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            exact_transcript_pmf(first_bit_spec(3), UniformRows(4, 2))

    def test_planted_forces_clique_bits(self):
        # Protocol: processor i broadcasts bit (i+1) mod n.  Under A_C with
        # C = all vertices, every broadcast is a forced 1.
        n = 3
        spec = ProtocolSpec.from_scalar(
            n, 1, lambda i, row, p: int(row[(i + 1) % n])
        )
        pmf = exact_transcript_pmf(spec, PlantedCliqueAt(n, {0, 1, 2}))
        assert pmf == {(1, 1, 1): pytest.approx(1.0)}


class TestConditioning:
    def test_multi_round_conditioning(self):
        """A processor that repeats its first broadcast produces perfectly
        correlated rounds — the engine must condition on its own history."""
        spec = ProtocolSpec.from_scalar(
            2, 2, lambda i, row, p: int(row[0])
        )
        pmf = exact_transcript_pmf(spec, UniformRows(2, 1))
        # Each processor's round-1 bit equals its round-0 bit.
        for key, p in pmf.items():
            assert key[0] == key[2] and key[1] == key[3]
            assert p == pytest.approx(1 / 4)

    def test_turn_vs_round_visibility(self):
        """In the turn model processor 1 can echo processor 0's message of
        the same round; in the round model it cannot see it."""

        def echo_fn(i, row, p):
            if i == 0:
                return int(row[0])
            return p[-1] if len(p) > 0 else 0

        turn_spec = ProtocolSpec.from_scalar(
            2, 1, echo_fn, sees_current_round=True
        )
        round_spec = ProtocolSpec.from_scalar(
            2, 1, echo_fn, sees_current_round=False
        )
        turn_pmf = exact_transcript_pmf(turn_spec, UniformRows(2, 1))
        round_pmf = exact_transcript_pmf(round_spec, UniformRows(2, 1))
        assert turn_pmf == {
            (0, 0): pytest.approx(0.5),
            (1, 1): pytest.approx(0.5),
        }
        assert round_pmf == {
            (0, 0): pytest.approx(0.5),
            (1, 0): pytest.approx(0.5),
        }


class TestAgainstSimulator:
    @pytest.mark.parametrize("sees_current", [True, False])
    def test_exact_matches_sampled(self, sees_current):
        """Cross-validation: exact pmf vs Monte-Carlo over the simulator."""
        n = 3
        spec = ProtocolSpec.from_scalar(
            n,
            2,
            lambda i, row, p: int((row.sum() + sum(p)) % 2),
            sees_current_round=sees_current,
        )
        dist = UniformRows(n, 3)
        exact = exact_transcript_pmf(spec, dist)
        protocol = spec.as_function_protocol()
        rng = np.random.default_rng(0)
        counts: dict = {}
        trials = 4000
        for _ in range(trials):
            result = run_protocol(
                protocol,
                dist.sample(rng),
                scheduler=spec.scheduler_name,
                rng=rng,
            )
            key = result.transcript.key()
            counts[key] = counts.get(key, 0) + 1
        sampled = {k: c / trials for k, c in counts.items()}
        assert transcript_distance(exact, sampled) < 0.05


class TestMixture:
    def test_mixture_pmf_is_average(self):
        n, k = 3, 2
        mixture = PlantedClique(n, k)
        spec = first_bit_spec(n)
        direct = mixture_transcript_pmf(spec, mixture)
        manual: dict = {}
        for w, comp in mixture.components():
            for key, p in exact_transcript_pmf(spec, comp).items():
                manual[key] = manual.get(key, 0.0) + w * p
        assert transcript_distance(direct, manual) < 1e-12

    def test_row_independent_passthrough(self):
        spec = first_bit_spec(2)
        dist = UniformRows(2, 2)
        assert mixture_transcript_pmf(spec, dist) == exact_transcript_pmf(
            spec, dist
        )

    def test_toy_prg_mixture(self):
        spec = ProtocolSpec.from_scalar(2, 1, lambda i, row, p: int(row[-1]))
        pmf = mixture_transcript_pmf(spec, ToyPRGOutput(2, 2))
        assert sum(pmf.values()) == pytest.approx(1.0)


class TestDistance:
    def test_zero_for_identical(self):
        pmf = {(0,): 0.5, (1,): 0.5}
        assert transcript_distance(pmf, dict(pmf)) == 0.0

    def test_one_for_disjoint(self):
        assert transcript_distance({(0,): 1.0}, {(1,): 1.0}) == pytest.approx(
            1.0
        )

    def test_vector_fn_shape_check(self):
        spec = ProtocolSpec(
            2, 1, lambda i, rows, p: np.zeros(3, dtype=np.int64)
        )
        with pytest.raises(ValueError):
            exact_transcript_pmf(spec, UniformRows(2, 1))

    def test_message_width_above_one(self):
        spec = ProtocolSpec.from_scalar(
            2, 1, lambda i, row, p: int(row[0]) * 3, message_size=2
        )
        pmf = exact_transcript_pmf(spec, UniformRows(2, 1))
        assert pmf == {
            (0, 0): pytest.approx(0.25),
            (0, 3): pytest.approx(0.25),
            (3, 0): pytest.approx(0.25),
            (3, 3): pytest.approx(0.25),
        }
