"""Observability hooks for the conformance suites.

When a conformance cell fails under ``REPRO_CHAOS_DIR`` (set in CI),
the fault-plan JSON it dumped is only half the replay story: it says
what was *injected*, not what the stack *observed*.  This hook dumps
the other half — the module's shared flight-recorder ring (health
transitions, fault injections, lane deaths, degradations) and its
metrics-registry snapshot — next to the plans, via
:func:`repro.obs.recorder.dump_on_chaos`.

A test module opts in by defining module-level ``CHAOS_RECORDER``
(:class:`~repro.obs.FlightRecorder`) and optionally ``CHAOS_REGISTRY``
(:class:`~repro.obs.MetricsRegistry`) and threading them into the
executors it builds; ``test_fault_matrix._chaos_executor`` does.
"""

import re

import pytest

from repro.obs.recorder import dump_on_chaos


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    recorder = getattr(item.module, "CHAOS_RECORDER", None)
    if recorder is None:
        return
    registry = getattr(item.module, "CHAOS_REGISTRY", None)
    name = re.sub(r"[^A-Za-z0-9_.=-]+", "-", item.nodeid)
    dump_on_chaos(recorder, name, registry=registry)
