"""Property tests: ``batch_keys`` ≡ per-trial ``transcript.key()``.

For every protocol declaring ``supports_batch_keys``, a whole-batch key
synthesis must agree row-for-row with running each trial through the
simulator and reading the transcript key — including batch=0, batch=1,
and ragged inputs wider than the protocol reveals.  Hypothesis drives the
shapes; the scalar simulator is the oracle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import run_protocol
from repro.lowerbounds.hierarchy import TopSubmatrixRankProtocol
from repro.prg.attacks import SupportMembershipAttack
from repro.protocols import DeterministicEqualityProtocol, GlobalParityProtocol

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def bit_stack(trials, n, m):
    return arrays(np.uint8, (trials, n, m), elements=st.integers(0, 1))


def scalar_keys(protocol, stack):
    """Oracle: every trial through the full simulator, one at a time."""
    return [run_protocol(protocol, matrix).transcript.key() for matrix in stack]


def assert_keys_match(protocol, stack):
    keys = protocol.batch_keys(stack)
    assert keys.ndim == 2
    assert keys.shape[0] == stack.shape[0]
    want = scalar_keys(protocol, stack)
    got = [tuple(row) for row in keys.tolist()]
    assert got == want
    # Decisions must agree on the same stack too (same batched contract).
    decisions = np.asarray(protocol.batch_decisions(stack))
    want_decisions = [
        run_protocol(protocol, matrix).outputs[0] for matrix in stack
    ]
    assert decisions.tolist() == want_decisions


class TestParityKeys:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 5),
        n=st.integers(1, 6),
        m=st.integers(0, 7),
    )
    @example(data=None, trials=0, n=3, m=4)
    @example(data=None, trials=1, n=1, m=0)
    def test_matches_scalar(self, data, trials, n, m):
        if data is None:
            stack = np.zeros((trials, n, m), dtype=np.uint8)
        else:
            stack = data.draw(bit_stack(trials, n, m))
        assert_keys_match(GlobalParityProtocol(), stack)


class TestEqualityKeys:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 4),
        n=st.integers(1, 5),
        m=st.integers(1, 5),
        extra=st.integers(0, 3),
    )
    @example(data=None, trials=1, n=2, m=3, extra=0)
    def test_matches_scalar(self, data, trials, n, m, extra):
        if data is None:
            stack = np.zeros((trials, n, m + extra), dtype=np.uint8)
        else:
            stack = data.draw(bit_stack(trials, n, m + extra))
        assert_keys_match(DeterministicEqualityProtocol(m), stack)

    def test_rejects_narrow_and_non_bit_inputs(self):
        protocol = DeterministicEqualityProtocol(4)
        with pytest.raises(ValueError):
            protocol.batch_keys(np.zeros((2, 3, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            protocol.batch_keys(np.full((2, 3, 4), 2, dtype=np.uint8))


class TestSeedAttackKeys:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 4),
        n=st.integers(1, 6),
        k=st.integers(1, 4),
        extra=st.integers(0, 3),
    )
    @example(data=None, trials=1, n=4, k=2, extra=1)
    def test_matches_scalar(self, data, trials, n, k, extra):
        if data is None:
            stack = np.zeros((trials, n, k + 1 + extra), dtype=np.uint8)
        else:
            stack = data.draw(bit_stack(trials, n, k + 1 + extra))
        assert_keys_match(SupportMembershipAttack(k), stack)

    def test_rejects_narrow_and_non_bit_inputs(self):
        protocol = SupportMembershipAttack(3)
        with pytest.raises(ValueError):
            protocol.batch_keys(np.zeros((2, 5, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            protocol.batch_keys(np.full((2, 5, 4), 3, dtype=np.uint8))


class TestHierarchyKeys:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 4),
        k=st.integers(1, 4),
        extra_rows=st.integers(0, 2),
        budget=st.none() | st.integers(0, 6),
    )
    @example(data=None, trials=1, k=2, extra_rows=1, budget=0)
    @example(data=None, trials=2, k=3, extra_rows=0, budget=None)
    def test_matches_scalar(self, data, trials, k, extra_rows, budget):
        protocol = TopSubmatrixRankProtocol(k, rounds_budget=budget)
        n = k + extra_rows
        if data is None:
            stack = np.zeros((trials, n, n), dtype=np.uint8)
        else:
            stack = data.draw(bit_stack(trials, n, n))
        assume(stack.shape[2] >= min(protocol.rounds_budget, k))
        assert_keys_match(protocol, stack)

    def test_rejects_small_and_non_bit_inputs(self):
        protocol = TopSubmatrixRankProtocol(4)
        with pytest.raises(ValueError):
            protocol.batch_keys(np.zeros((2, 3, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            protocol.batch_keys(np.full((2, 4, 4), 2, dtype=np.uint8))
