"""The symbolic cost-model conformance matrix.

Every protocol that declares :meth:`~repro.core.protocol.Protocol.cost_model`
is run across a parameter grid on both execution paths (scalar simulation
and the vectorized fast path, whose costs are *synthesized* rather than
measured) and its measured ``CostReport``s are checked against the
symbolic model:

* **exact models** (no realized symbols) — every cost kind must equal its
  formula bit for bit, and the whole-batch ``cost_totals()`` must equal
  ``model.predict(trials, ...)``;
* **bounded models** (dynamic termination / coins) — the realized round
  count is bound from the measurement, verified against its exact bounds,
  and every kind must then match exactly *at that* realized value.

A final group checks pure-formula extrapolation at parameter scales no
simulation could reach (``n = 10⁹``): the model layer is integer-exact,
so these are equalities, not approximations.
"""

import zlib

import numpy as np
import pytest

from repro.cliques.subsample import PlantedCliqueSubsampleProtocol
from repro.core import Engine, RunSpec, run_protocol
from repro.costs import COST_KINDS
from repro.distributions import UniformRows
from repro.distributions.undirected import (
    UndirectedPlantedClique,
    UndirectedRandomGraph,
)
from repro.lowerbounds.hierarchy import TopSubmatrixRankProtocol
from repro.prg.attacks import SupportMembershipAttack
from repro.protocols import DeterministicEqualityProtocol, GlobalParityProtocol
from repro.protocols.connectivity import ConnectivityProtocol
from repro.protocols.mst import BoruvkaMSTProtocol, RandomWeightMatrix
from repro.protocols.triangles import FullExchangeTriangleProtocol

TRIALS = 8

# name -> (protocol factory, distribution factory, binding factory).
# Each takes the grid point ``n`` (the processor count).
MATRIX = {
    "parity": (
        lambda n: GlobalParityProtocol(),
        lambda n: UniformRows(n, 1),
        lambda n: {"n": n},
    ),
    "equality": (
        lambda n: DeterministicEqualityProtocol(4),
        lambda n: UniformRows(n, 4),
        lambda n: {"n": n},
    ),
    "seed_attack": (
        lambda n: SupportMembershipAttack(3),
        lambda n: UniformRows(n, 5),
        lambda n: {"n": n},
    ),
    "rank_full_budget": (
        lambda n: TopSubmatrixRankProtocol(min(3, n)),
        lambda n: UniformRows(n, n),
        lambda n: {"n": n},
    ),
    "rank_truncated": (
        lambda n: TopSubmatrixRankProtocol(min(3, n), rounds_budget=1),
        lambda n: UniformRows(n, n),
        lambda n: {"n": n},
    ),
    "triangles": (
        lambda n: FullExchangeTriangleProtocol(n),
        lambda n: UndirectedRandomGraph(n),
        lambda n: {"n": n},
    ),
    "triangles_fixed_width": (
        lambda n: FullExchangeTriangleProtocol(n, message_size=2),
        lambda n: UndirectedRandomGraph(n),
        lambda n: {"n": n},
    ),
    "connectivity": (
        lambda n: ConnectivityProtocol(n),
        lambda n: UndirectedRandomGraph(n),
        lambda n: {"n": n},
    ),
    "mst": (
        lambda n: BoruvkaMSTProtocol(n, weight_bits=3),
        lambda n: RandomWeightMatrix(n, 3),
        lambda n: {"n": n},
    ),
    "subsample": (
        lambda n: PlantedCliqueSubsampleProtocol(k=3 * n),
        lambda n: UndirectedRandomGraph(n),
        lambda n: {"n": n},
    ),
}

GRID = [2, 4, 7]


def run_matrix_cell(name, n, vectorized):
    protocol_fn, dist_fn, bind_fn = MATRIX[name]
    spec = RunSpec(
        protocol=protocol_fn(n),
        distribution=dist_fn(n),
        seed=(zlib.crc32(name.encode()) ^ n) % (2**31),
        vectorized=vectorized,
    )
    batch = Engine().run_batch(spec, TRIALS)
    return protocol_fn(n), batch, bind_fn(n)


@pytest.mark.parametrize("vectorized", [False, True])
@pytest.mark.parametrize("n", GRID)
@pytest.mark.parametrize("name", sorted(MATRIX))
def test_measured_costs_conform(name, n, vectorized):
    protocol, batch, bindings = run_matrix_cell(name, n, vectorized)
    model = protocol.cost_model()
    problems = model.check_batch(batch, **bindings)
    assert problems == []


@pytest.mark.parametrize("vectorized", [False, True])
@pytest.mark.parametrize("n", GRID)
@pytest.mark.parametrize(
    "name", sorted(k for k in MATRIX if k not in {"connectivity", "mst", "subsample"})
)
def test_exact_models_predict_batch_totals(name, n, vectorized):
    """Exact models are fully predictive: whole-batch totals equal the
    pure-formula extrapolation, bit for bit, on both execution paths."""
    protocol, batch, bindings = run_matrix_cell(name, n, vectorized)
    model = protocol.cost_model()
    assert model.is_exact
    assert batch.cost_totals() == model.predict(TRIALS, **bindings)


@pytest.mark.parametrize("vectorized", [False, True])
@pytest.mark.parametrize("name", ["connectivity", "mst", "subsample"])
def test_bounded_models_bracket_batch_totals(name, vectorized):
    """Bounded models bracket measured totals via their realized bounds."""
    n = 6
    protocol, batch, bindings = run_matrix_cell(name, n, vectorized)
    model = protocol.cost_model()
    assert not model.is_exact
    bounds = model.predict_bounds(TRIALS, **bindings)
    totals = batch.cost_totals()
    for kind in COST_KINDS:
        lo, hi = bounds[kind]
        assert lo <= totals[kind] <= hi, (kind, lo, totals[kind], hi)


def test_single_trial_check_matches_run_protocol():
    """check_trial works on a bare ExecutionResult cost, not just batches."""
    protocol = DeterministicEqualityProtocol(3)
    result = run_protocol(protocol, np.zeros((5, 3), dtype=np.uint8))
    assert protocol.cost_model().check_trial(result.cost, n=5) == []


def test_mismatch_reports_name_the_kind_and_formula():
    protocol = DeterministicEqualityProtocol(3)
    result = run_protocol(protocol, np.zeros((5, 3), dtype=np.uint8))
    problems = protocol.cost_model().check_trial(result.cost, n=5, m=4)
    assert problems
    assert any("rounds: predicted 4 != measured 3" in p for p in problems)


class TestExtrapolation:
    """predict() is exact integer formula evaluation at any scale."""

    def test_triangles_at_billion_vertices(self):
        n = 10**9
        model = FullExchangeTriangleProtocol(4).cost_model()
        predicted = model.predict(1, n=n)
        width = 30  # ceil(log2(10**9))
        rounds = -(-n // width)
        assert predicted["rounds"] == rounds
        assert predicted["turns"] == n * rounds
        assert predicted["broadcast_bits"] == n * rounds * width

    def test_attack_stays_linear_in_k(self):
        model = SupportMembershipAttack(10**6).cost_model()
        predicted = model.predict(1, n=10**9)
        assert predicted["rounds"] == 10**6 + 1
        assert predicted["broadcast_bits"] == 10**9 * (10**6 + 1)

    def test_connectivity_bounds_at_scale(self):
        n = 10**6
        bounds = ConnectivityProtocol(8).cost_model().predict_bounds(1, n=n)
        assert bounds["rounds"] == (2, n)
        # width = ceil_log2(10**6) = 20
        assert bounds["broadcast_bits"] == (n * 2 * 20, n * n * 20)

    def test_mst_logarithmic_round_cap(self):
        n = 2**20
        model = BoruvkaMSTProtocol(8, weight_bits=5).cost_model()
        bounds = model.predict_bounds(1, n=n, w=5)
        assert bounds["rounds"] == (1, 22)  # ceil_log2(2**20) + 2

    def test_free_symbols_document_the_parameters(self):
        assert BoruvkaMSTProtocol(4, 3).cost_model().free_symbols() == {
            "n",
            "w",
            "R",
        }
        assert SupportMembershipAttack(2).cost_model().free_symbols() == {
            "n",
            "k",
        }


def test_cost_model_is_declared_for_every_batched_protocol():
    """The BAT02 contract, asserted dynamically: anything the engine can
    vectorize must expose a symbolic model the matrix can check."""
    for name, (protocol_fn, _, _) in MATRIX.items():
        protocol = protocol_fn(4)
        if getattr(protocol, "supports_batch", False):
            model = protocol.cost_model()
            assert model.phases, name
