"""Property tests: the graph/clique batch contract ≡ per-trial simulation.

PR 5 pinned the batched key-synthesis protocols (parity, equality, seed
attack, rank) against the scalar simulator; this suite extends the same
oracle to the protocols batched by the cost-model PR — connectivity, MST,
triangle counting and the planted-clique subsample protocol.  These are
harder cases: dynamic termination makes the keys *ragged* (per-trial
lengths differ), outputs are structured objects (tuples, frozensets,
``None``), and the subsample protocol draws private coins, so the batch
receives the engine's per-processor coin seeds and must replay the scalar
draw chain bit for bit.

Hypothesis drives trials (including 0 and 1), sizes and ragged input
widths; the scalar simulator is the oracle for outputs and keys alike.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cliques.subsample import PlantedCliqueSubsampleProtocol
from repro.core import run_protocol
from repro.protocols.connectivity import ConnectivityProtocol
from repro.protocols.mst import (
    BoruvkaMSTProtocol,
    encode_weight_matrix,
)
from repro.protocols.triangles import FullExchangeTriangleProtocol

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def bit_stack(trials, n, m):
    return arrays(np.uint8, (trials, n, m), elements=st.integers(0, 1))


def scalar_trials(protocol, stack, rngs=None):
    """Oracle: every trial through the full simulator, one at a time."""
    results = []
    for index, matrix in enumerate(stack):
        rng = None if rngs is None else rngs[index]
        results.append(run_protocol(protocol, matrix, rng=rng))
    return results


def assert_batch_matches_scalar(protocol, stack, coin_seeds=None, rngs=None):
    """Outputs and ragged keys from the batch contract ≡ scalar runs."""
    if coin_seeds is None:
        decisions = protocol.batch_decisions(stack)
        keys = protocol.batch_keys(stack)
    else:
        decisions = protocol.batch_decisions(stack, coin_seeds=coin_seeds)
        keys = protocol.batch_keys(stack, coin_seeds=coin_seeds)
    decisions = np.asarray(decisions)
    assert decisions.shape[0] == stack.shape[0]
    assert len(keys) == stack.shape[0]
    want = scalar_trials(protocol, stack, rngs=rngs)
    for index, result in enumerate(want):
        assert tuple(keys[index]) == result.transcript.key(), index
        if decisions.ndim == 2:
            assert list(decisions[index]) == result.outputs, index
        else:
            # One decision per trial: every processor agreed on it.
            assert all(o == decisions[index] for o in result.outputs), index


class TestConnectivityBatch:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 4),
        n=st.integers(1, 6),
        extra=st.integers(0, 2),
    )
    @example(data=None, trials=0, n=3, extra=0)
    @example(data=None, trials=1, n=1, extra=2)
    def test_matches_scalar(self, data, trials, n, extra):
        if data is None:
            stack = np.zeros((trials, n, n + extra), dtype=np.uint8)
        else:
            stack = np.zeros((trials, n, n + extra), dtype=np.uint8)
            # Only the first n columns may be populated: column j >= n
            # names a processor that never speaks (scalar raises too).
            stack[:, :, :n] = data.draw(bit_stack(trials, n, n))
        assert_batch_matches_scalar(ConnectivityProtocol(n), stack)

    def test_rejects_edges_to_silent_processors(self):
        stack = np.zeros((1, 3, 5), dtype=np.uint8)
        stack[0, 1, 4] = 1
        with pytest.raises(ValueError, match="never speak"):
            ConnectivityProtocol(3).batch_decisions(stack)

    def test_path_graph_hits_the_round_cap(self):
        # A path maximises label-propagation diameter: rounds == cap == n.
        n = 6
        adjacency = np.zeros((n, n), dtype=np.uint8)
        for i in range(n - 1):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1
        protocol = ConnectivityProtocol(n)
        keys = protocol.batch_keys(adjacency[None])
        assert len(keys[0]) == n * n  # cap reached, never two equal rounds
        assert_batch_matches_scalar(protocol, adjacency[None])


class TestTriangleBatch:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 4),
        n=st.integers(1, 6),
        extra=st.integers(0, 2),
        width=st.none() | st.integers(1, 4),
    )
    @example(data=None, trials=1, n=4, extra=1, width=None)
    def test_matches_scalar(self, data, trials, n, extra, width):
        stack = np.zeros((trials, n, n + extra), dtype=np.uint8)
        if data is not None:
            raw = data.draw(bit_stack(trials, n, n))
            upper = np.triu(raw, 1)
            stack[:, :, :n] = upper | upper.transpose(0, 2, 1)
            # Extra columns are ignored by both paths — fill arbitrarily.
            if extra:
                stack[:, :, n:] = data.draw(bit_stack(trials, n, extra))
        protocol = FullExchangeTriangleProtocol(n, message_size=width)
        assert_batch_matches_scalar(protocol, stack)

    def test_rejects_directed_graphs(self):
        stack = np.zeros((1, 3, 3), dtype=np.uint8)
        stack[0, 0, 1] = 1  # no reverse edge
        with pytest.raises(ValueError, match="symmetric"):
            FullExchangeTriangleProtocol(3).batch_decisions(stack)


def weight_stacks(trials, n, weight_bits, extra_fields):
    """Encoded random weight matrices (symmetric, plus ignored extras)."""
    return arrays(
        np.int64,
        (trials, n, n),
        elements=st.integers(0, (1 << weight_bits) - 1),
    ).map(
        lambda weights: np.stack(
            [
                np.concatenate(
                    [
                        encode_weight_matrix(
                            np.triu(w, 1) + np.triu(w, 1).T, weight_bits
                        ),
                        np.zeros((n, extra_fields * weight_bits), dtype=np.uint8),
                    ],
                    axis=1,
                )
                for w in weights
            ]
        )
        if len(weights)
        else np.zeros(
            (0, n, (n + extra_fields) * weight_bits), dtype=np.uint8
        )
    )


class TestMSTBatch:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 3),
        n=st.integers(2, 5),
        weight_bits=st.integers(1, 4),
        extra_fields=st.integers(0, 1),
    )
    @example(data=None, trials=1, n=2, weight_bits=2, extra_fields=0)
    @example(data=None, trials=2, n=4, weight_bits=1, extra_fields=1)
    def test_matches_scalar(self, data, trials, n, weight_bits, extra_fields):
        if data is None:
            stack = np.zeros(
                (trials, n, (n + extra_fields) * weight_bits), dtype=np.uint8
            )
        else:
            stack = data.draw(weight_stacks(trials, n, weight_bits, extra_fields))
        protocol = BoruvkaMSTProtocol(n, weight_bits=weight_bits)
        assert_batch_matches_scalar(protocol, stack)

    def test_distinct_weights_recover_the_unique_mst(self):
        # Distinct weights on the complete graph => the MST is unique;
        # two Borůvka phases: {0,1} and {2,3} merge first, then join via
        # the lightest cross edge (1, 2).
        n, w = 4, 4
        weights = np.zeros((n, n), dtype=np.int64)
        edges = {
            (0, 1): 1,
            (2, 3): 2,
            (1, 2): 3,
            (0, 3): 9,
            (0, 2): 10,
            (1, 3): 12,
        }
        for (u, v), weight in edges.items():
            weights[u, v] = weights[v, u] = weight
        stack = encode_weight_matrix(weights, w)[None]
        protocol = BoruvkaMSTProtocol(n, weight_bits=w)
        decisions = protocol.batch_decisions(stack)
        chosen, total = decisions[0]
        assert chosen == frozenset({(0, 1), (2, 3), (1, 2)})
        assert total == 6
        assert_batch_matches_scalar(protocol, stack)

    def test_rejects_bad_shapes(self):
        protocol = BoruvkaMSTProtocol(3, weight_bits=2)
        with pytest.raises(ValueError, match="multiple of"):
            protocol.batch_decisions(np.zeros((1, 3, 7), dtype=np.uint8))
        with pytest.raises(ValueError, match="at least"):
            protocol.batch_decisions(np.zeros((1, 3, 4), dtype=np.uint8))
        with pytest.raises(ValueError, match="n=3"):
            protocol.batch_decisions(np.zeros((1, 4, 8), dtype=np.uint8))


def subsample_rngs_and_seeds(base_seed, trials, n):
    """Paired scalar rngs and batch coin seeds from one entropy chain.

    The scalar simulator draws each processor's coin seed from the trial
    rng inside ``make_contexts``; handing the batch the same draws from a
    twin generator reproduces the activation coins bit for bit.
    """
    rngs = [np.random.default_rng((base_seed, t)) for t in range(trials)]
    seeds = np.stack(
        [
            np.random.default_rng((base_seed, t)).integers(
                0, 2**63, size=n, dtype=np.int64
            )
            for t in range(trials)
        ]
    ) if trials else np.zeros((0, n), dtype=np.int64)
    return rngs, seeds


class TestSubsampleBatch:
    @COMMON_SETTINGS
    @given(
        data=st.data(),
        trials=st.integers(0, 3),
        n=st.integers(2, 6),
        k=st.integers(1, 40),
        extra=st.integers(0, 2),
        base_seed=st.integers(0, 2**20),
    )
    @example(data=None, trials=0, n=4, k=3, extra=0, base_seed=5)
    @example(data=None, trials=1, n=2, k=1, extra=1, base_seed=7)
    @example(data=None, trials=1, n=6, k=40, extra=0, base_seed=11)
    def test_matches_scalar(self, data, trials, n, k, extra, base_seed):
        stack = np.zeros((trials, n, n + extra), dtype=np.uint8)
        if data is not None:
            raw = data.draw(bit_stack(trials, n, n))
            upper = np.triu(raw, 1)
            stack[:, :, :n] = upper | upper.transpose(0, 2, 1)
        protocol = PlantedCliqueSubsampleProtocol(k=k)
        rngs, seeds = subsample_rngs_and_seeds(base_seed, trials, n)
        assert_batch_matches_scalar(
            protocol, stack, coin_seeds=seeds, rngs=rngs
        )

    def test_abort_trials_have_one_round_keys(self):
        # k huge => p tiny => almost surely < 2 activations => abort after
        # the activation round; the key is exactly the n activation bits.
        n, trials = 5, 6
        stack = np.zeros((trials, n, n), dtype=np.uint8)
        protocol = PlantedCliqueSubsampleProtocol(k=10**6)
        rngs, seeds = subsample_rngs_and_seeds(99, trials, n)
        keys = protocol.batch_keys(stack, coin_seeds=seeds)
        assert all(len(key) == n for key in keys)
        decisions = protocol.batch_decisions(stack, coin_seeds=seeds)
        assert all(d is None for d in decisions)
        assert_batch_matches_scalar(
            protocol, stack, coin_seeds=seeds, rngs=rngs
        )

    def test_requires_coin_seeds(self):
        protocol = PlantedCliqueSubsampleProtocol(k=4)
        with pytest.raises(ValueError, match="coin_seeds"):
            protocol.batch_decisions(np.zeros((1, 4, 4), dtype=np.uint8))

    def test_rejects_mismatched_seed_shape(self):
        protocol = PlantedCliqueSubsampleProtocol(k=4)
        with pytest.raises(ValueError, match="coin_seeds must have shape"):
            protocol.batch_decisions(
                np.zeros((2, 4, 4), dtype=np.uint8),
                coin_seeds=np.zeros((2, 3), dtype=np.int64),
            )
