"""The fault-matrix conformance suite — chaos with a replayable schedule.

The robustness invariant every backend claims (``docs/robustness.md``):
under **any** fault schedule the deterministic harness
(:mod:`repro.exec.faults`) can produce, a batch either completes
**bit-identical** to :class:`~repro.core.engine.SerialExecutor` or fails
with a **loud typed error** — never silent partial or wrong output.

This suite pins that claim across a matrix of

* six pinned chaos seeds (each expanding, via :meth:`FaultPlan.from_seed`,
  into a full per-worker schedule of crashes, refusals, torn/corrupt
  frames, slow links, and lost publishes),
* every individual fault kind in isolation (single-fault cells),
* three fleet shapes: in-process ``LoopbackWorker`` fleets, a real
  ``python -m repro.exec.worker --fault-plan`` subprocess, and the
  ``WorkerPool`` process-pool backend (whose native fault is a dead
  worker process breaking the pool).

Every cell dumps its fault plan as a JSON artifact when
``REPRO_CHAOS_DIR`` is set — CI uploads those on failure, and
``FaultPlan.from_json`` replays the exact schedule locally.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker, WorkerPool
from repro.exec.faults import (
    DEFAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.lowerbounds import TopSubmatrixRankProtocol
from repro.obs import FlightRecorder, MetricsRegistry

TRIALS = 12

#: The pinned chaos seeds CI replays on every run.  Each expands into a
#: deterministic two-site fault schedule; a failing seed's plan JSON is
#: the replay artifact.
CHAOS_SEEDS = (11, 23, 37, 41, 53, 67)

SITES = ("worker-0", "worker-1")


def distribution_spec():
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        distribution=UniformRows(8, 8),
        seed=7,
    )


def fixed_input_spec():
    rng = np.random.default_rng(0)
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(5),
        inputs=rng.integers(0, 2, size=(16, 16), dtype=np.uint8),
        seed=3,
    )


WORKLOADS = {
    "distribution": distribution_spec,
    # Exercises the publish/refill protocol under faults too.
    "fixed_inputs": fixed_input_spec,
}


@pytest.fixture(scope="module")
def goldens():
    return {
        name: Engine(SerialExecutor()).run_batch(spec_fn(), TRIALS)
        for name, spec_fn in WORKLOADS.items()
    }


def _dump_plan(cell: str, plan: FaultPlan) -> None:
    """Write the cell's schedule where CI can pick it up as an artifact."""
    directory = os.environ.get("REPRO_CHAOS_DIR")
    if not directory:
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{cell}.json").write_text(plan.to_json(), encoding="utf-8")


def _assert_bit_identical(batch, golden):
    assert batch.outputs == golden.outputs
    assert batch.transcript_keys == golden.transcript_keys
    assert batch.cost_totals() == golden.cost_totals()


#: Shared across every cell in this module; on failure the conformance
#: conftest hook dumps both to ``REPRO_CHAOS_DIR`` next to the fault
#: plans, so a breaking schedule ships with the health transitions and
#: failure counters the stack observed while it ran.
CHAOS_RECORDER = FlightRecorder(capacity=4096)
CHAOS_REGISTRY = MetricsRegistry()


def _chaos_executor(endpoints, **overrides):
    """The conformance cells' executor configuration.

    The heartbeat monitor is disabled because its probes consume
    ``accept``/``ping`` fault-schedule slots, which would make the
    replayed schedule depend on wall-clock probe timing; hangs are not
    in :data:`DEFAULT_KINDS`, so the deadline alone bounds every cell.
    """
    options = dict(
        chunksize=3,
        task_timeout=30.0,
        heartbeat_interval=None,
        lane_retries=2,
        share_inputs_min_bytes=1,
        recorder=CHAOS_RECORDER,
        registry=CHAOS_REGISTRY,
    )
    options.update(overrides)
    return DistributedExecutor(endpoints, **options)


class TestSeededScheduleMatrix:
    """Pinned seeds × workloads on two-worker loopback fleets."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    def test_seeded_fleet_chaos_is_bit_identical(
        self, goldens, chaos_seed, workload
    ):
        plan = FaultPlan.from_seed(chaos_seed, sites=SITES)
        _dump_plan(f"loopback-{workload}-seed{chaos_seed}", plan)
        workers = [
            LoopbackWorker(fault_injector=plan.injector(site))
            for site in SITES
        ]
        try:
            with _chaos_executor([w.endpoint for w in workers]) as executor:
                batch = Engine(executor).run_batch(
                    WORKLOADS[workload](), TRIALS
                )
            _assert_bit_identical(batch, goldens[workload])
        finally:
            for worker in workers:
                worker.stop()

    def test_total_outage_is_loud_and_typed(self, goldens):
        """The invariant's other half: a schedule that exhausts every
        retry cannot end in silence — with fallback off it must raise a
        typed ConnectionError, and with fallback on it must both warn
        and still produce golden results."""
        plan = FaultPlan.from_seed(
            0, sites=SITES, kinds=("crash",), rate=1.0, horizon=64
        )
        _dump_plan("loopback-total-outage", plan)
        workers = [
            LoopbackWorker(fault_injector=plan.injector(site))
            for site in SITES
        ]
        try:
            with _chaos_executor(
                [w.endpoint for w in workers], local_fallback=False
            ) as executor:
                with pytest.raises(ConnectionError):
                    Engine(executor).run_batch(distribution_spec(), TRIALS)
        finally:
            for worker in workers:
                worker.stop()
        workers = [
            LoopbackWorker(fault_injector=plan.injector(site))
            for site in SITES
        ]
        try:
            with _chaos_executor([w.endpoint for w in workers]) as executor:
                with pytest.warns(RuntimeWarning, match="locally"):
                    batch = Engine(executor).run_batch(
                        distribution_spec(), TRIALS
                    )
                assert executor.degraded_maps == 1
            _assert_bit_identical(batch, goldens["distribution"])
        finally:
            for worker in workers:
                worker.stop()


class TestSingleFaultCells:
    """Each fault kind in isolation, against a two-worker fleet."""

    CELLS = {
        "crash": FaultEvent("map", 0, "crash"),
        "refuse": FaultEvent("accept", 0, "refuse"),
        "drop_mid_frame": FaultEvent("map", 0, "drop_mid_frame"),
        "truncate": FaultEvent("map", 1, "truncate"),
        "corrupt": FaultEvent("map", 0, "corrupt"),
        "slow": FaultEvent("map", 0, "slow", delay=0.2),
        "lose_publish": FaultEvent("publish", 0, "lose_publish"),
        "hang": FaultEvent("map", 0, "hang"),
    }

    @pytest.mark.parametrize("kind", sorted(CELLS))
    def test_single_fault_is_bit_identical(self, goldens, kind):
        plan = FaultPlan({"worker-0": [self.CELLS[kind]], "worker-1": []})
        _dump_plan(f"loopback-single-{kind}", plan)
        workers = [
            LoopbackWorker(fault_injector=plan.injector(site))
            for site in SITES
        ]
        overrides = {}
        if kind == "hang":
            # A hung worker is only ever unwedged by deadline/heartbeat;
            # keep the cell fast with a tight chunk deadline.
            overrides["task_timeout"] = 0.5
        try:
            with _chaos_executor(
                [w.endpoint for w in workers], **overrides
            ) as executor:
                batch = Engine(executor).run_batch(
                    fixed_input_spec(), TRIALS
                )
            _assert_bit_identical(batch, goldens["fixed_inputs"])
        finally:
            for worker in workers:
                worker.stop()


class TestMangleDetectionIsTyped:
    """Damaged frames are caught by *verification*, not decode luck.

    A corrupt frame rides under its original (now wrong) MAC, so the
    client rejects it cryptographically and telemetry records the lane
    failure as ``auth``; torn frames (``drop_mid_frame``, ``truncate``)
    surface as :class:`~repro.exec.wire.TruncatedFrameError` — a typed
    transport failure.  Either way the cell stays bit-identical to the
    serial golden: detection feeds the ordinary requeue path.
    """

    MANGLE_CATEGORIES = {
        "corrupt": "auth",
        "drop_mid_frame": "transport",
        "truncate": "transport",
    }

    @pytest.mark.parametrize("kind", sorted(MANGLE_CATEGORIES))
    def test_mangled_cell_is_categorized_and_bit_identical(
        self, goldens, kind
    ):
        plan = FaultPlan(
            {"worker-0": [FaultEvent("map", 0, kind)], "worker-1": []}
        )
        _dump_plan(f"loopback-mangle-{kind}", plan)
        workers = [
            LoopbackWorker(fault_injector=plan.injector(site))
            for site in SITES
        ]
        try:
            with _chaos_executor([w.endpoint for w in workers]) as executor:
                batch = Engine(executor).run_batch(fixed_input_spec(), TRIALS)
                counts = executor.telemetry.counts().get(
                    workers[0].address, {}
                )
                expected = self.MANGLE_CATEGORIES[kind]
                assert counts.get(expected, 0) >= 1, counts
                if kind == "corrupt":
                    # Cryptographic detection, not a lucky decode error:
                    # the flipped bytes never reach the schema decoder.
                    assert counts.get("corrupt", 0) == 0, counts
            _assert_bit_identical(batch, goldens["fixed_inputs"])
        finally:
            for worker in workers:
                worker.stop()


class TestSubprocessWorkerCells:
    """Real ``python -m repro.exec.worker --fault-plan`` chaos."""

    #: Two cells keep subprocess start-up cost bounded; the remaining
    #: seeds run in-process above (same serve loop, same injector).
    SUBPROCESS_SEEDS = CHAOS_SEEDS[:2]

    @pytest.mark.parametrize("chaos_seed", SUBPROCESS_SEEDS)
    def test_cli_worker_under_fault_plan(self, goldens, tmp_path, chaos_seed):
        plan = FaultPlan.from_seed(chaos_seed, sites=("worker-0",))
        _dump_plan(f"subprocess-seed{chaos_seed}", plan)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json(), encoding="utf-8")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.exec.worker",
                "--port",
                "0",
                "--fault-plan",
                str(plan_path),
                "--fault-site",
                "worker-0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = ""
            for _ in range(10):
                banner = proc.stdout.readline()
                if "listening on" in banner:
                    break
            assert "listening on" in banner, banner
            endpoint = banner.rsplit(" ", 1)[-1].strip()
            with _chaos_executor([endpoint]) as executor:
                batch = Engine(executor).run_batch(fixed_input_spec(), TRIALS)
            _assert_bit_identical(batch, goldens["fixed_inputs"])
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestWorkerPoolCells:
    """The process-pool backend's native fault: dead worker processes.

    The pool has no wire protocol to mangle; its failure model is a
    worker process dying (``BrokenProcessPool``), which the pool answers
    with one rebuild-and-retry and then a loud serial fallback.  Each
    pinned seed deterministically picks how many consecutive breakages
    the cell injects (0, 1, or 2 — through the documented recovery
    ladder), and the batch must come out bit-identical regardless.
    """

    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    def test_breaking_pool_workers_is_bit_identical(
        self, goldens, monkeypatch, chaos_seed
    ):
        from concurrent.futures.process import BrokenProcessPool

        breakages = chaos_seed % 3
        with WorkerPool(max_workers=2, share_inputs_min_bytes=1) as pool:
            real_map_once = pool._map_once
            remaining = [breakages]

            def breaking_map_once(*args, **kwargs):
                if remaining[0] > 0:
                    remaining[0] -= 1
                    raise BrokenProcessPool(
                        f"injected worker death (seed {chaos_seed})"
                    )
                return real_map_once(*args, **kwargs)

            monkeypatch.setattr(pool, "_map_once", breaking_map_once)
            if breakages == 2:
                with pytest.warns(RuntimeWarning, match="serially"):
                    batch = Engine(pool).run_batch(fixed_input_spec(), TRIALS)
                assert pool.degraded_batches == 1
            else:
                batch = Engine(pool).run_batch(fixed_input_spec(), TRIALS)
                assert pool.degraded_batches == 0
            assert pool.broken_pools == breakages
        _assert_bit_identical(batch, goldens["fixed_inputs"])


class TestHungWorkerDetectionWindow:
    """The heartbeat acceptance criterion, at conformance level: a hung
    (not dead — its sockets still connect) worker is flagged within the
    suspect window and the batch completes far inside task_timeout."""

    def test_hung_worker_flagged_within_window(self, goldens):
        injector = FaultInjector([FaultEvent("map", 0, "hang")])
        hung = LoopbackWorker(fault_injector=injector)
        steady = LoopbackWorker()
        try:
            with DistributedExecutor(
                [hung.endpoint, steady.endpoint],
                chunksize=3,
                task_timeout=30.0,
                heartbeat_interval=0.1,
                suspect_after=1,
                dead_after=2,
                lane_retries=0,
                share_inputs_min_bytes=1,
            ) as executor:
                start = time.monotonic()
                batch = Engine(executor).run_batch(fixed_input_spec(), TRIALS)
                assert time.monotonic() - start < 10.0
                assert executor.health.is_dead(hung.address)
            _assert_bit_identical(batch, goldens["fixed_inputs"])
        finally:
            hung.stop()
            steady.stop()
