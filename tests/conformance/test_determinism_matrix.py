"""The cross-backend determinism conformance matrix.

Every PR claims the same invariant — *trial ``t`` of a spec is a pure
function of the spec, never of scheduling* — but each backend's test file
only pins its own corner.  This suite runs one golden :class:`RunSpec`
across every executor backend × ``vectorized={False, True}`` and asserts
bit-identical ``decisions``, ``transcript_keys`` and costs against the
serial scalar reference, in one place.

The golden specs cover every fast-path shape: the seed-length attack
(multi-round keys, batched rank decisions), global parity (one-round
keys, XOR decisions), and the graph/clique protocols batched by the
cost-model PR — connectivity and MST (dynamic termination, ragged keys,
structured outputs), triangle counting (multi-bit payload packing) and
the planted-clique subsample protocol (private-coin replay through the
engine's coin-seed hand-off).
"""

import contextlib

import numpy as np
import pytest

from repro.cliques.subsample import PlantedCliqueSubsampleProtocol
from repro.core import Engine, ParallelExecutor, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.distributions.undirected import (
    UndirectedPlantedClique,
    UndirectedRandomGraph,
)
from repro.exec import DistributedExecutor, LoopbackWorker, WorkerPool
from repro.prg.attacks import SupportMembershipAttack
from repro.protocols import GlobalParityProtocol
from repro.protocols.connectivity import ConnectivityProtocol
from repro.protocols.mst import BoruvkaMSTProtocol, RandomWeightMatrix
from repro.protocols.triangles import FullExchangeTriangleProtocol

TRIALS = 10


@contextlib.contextmanager
def serial_executor():
    yield SerialExecutor()


@contextlib.contextmanager
def parallel_executor():
    yield ParallelExecutor(max_workers=2)


@contextlib.contextmanager
def worker_pool():
    with WorkerPool(max_workers=2) as pool:
        yield pool


@contextlib.contextmanager
def distributed_executor():
    with LoopbackWorker() as worker:
        with DistributedExecutor([worker.endpoint], chunksize=2) as executor:
            yield executor


BACKENDS = {
    "serial": serial_executor,
    "parallel": parallel_executor,
    "worker_pool": worker_pool,
    "distributed": distributed_executor,
}

GOLDEN_SPECS = {
    "seed_attack": lambda vectorized: RunSpec(
        protocol=SupportMembershipAttack(k=4),
        distribution=UniformRows(10, 7),
        seed=2026,
        vectorized=vectorized,
    ),
    "parity": lambda vectorized: RunSpec(
        protocol=GlobalParityProtocol(),
        distribution=UniformRows(5, 6),
        seed=411,
        vectorized=vectorized,
    ),
    "connectivity": lambda vectorized: RunSpec(
        protocol=ConnectivityProtocol(7),
        distribution=UndirectedRandomGraph(7),
        seed=905,
        vectorized=vectorized,
    ),
    "triangles": lambda vectorized: RunSpec(
        protocol=FullExchangeTriangleProtocol(6),
        distribution=UndirectedRandomGraph(6),
        seed=77,
        vectorized=vectorized,
    ),
    "mst": lambda vectorized: RunSpec(
        protocol=BoruvkaMSTProtocol(6, weight_bits=3),
        distribution=RandomWeightMatrix(6, 3),
        seed=58,
        vectorized=vectorized,
    ),
    "subsample": lambda vectorized: RunSpec(
        protocol=PlantedCliqueSubsampleProtocol(k=8),
        distribution=UndirectedPlantedClique(10, 8),
        seed=331,
        vectorized=vectorized,
    ),
}


@pytest.fixture(scope="module")
def references():
    """The serial scalar batch every matrix cell must reproduce."""
    return {
        name: Engine(SerialExecutor()).run_batch(spec_fn(False), TRIALS)
        for name, spec_fn in GOLDEN_SPECS.items()
    }


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("vectorized", [False, True])
@pytest.mark.parametrize("workload", sorted(GOLDEN_SPECS))
def test_backend_matrix_bit_identical(references, workload, vectorized, backend):
    reference = references[workload]
    with BACKENDS[backend]() as executor:
        batch = Engine(executor).run_batch(
            GOLDEN_SPECS[workload](vectorized), TRIALS
        )
    assert len(batch) == len(reference) == TRIALS
    assert np.array_equal(batch.decisions(0), reference.decisions(0))
    assert batch.outputs == reference.outputs
    assert batch.transcript_keys == reference.transcript_keys
    assert batch.costs == reference.costs
    assert [t.trial_index for t in batch] == [
        t.trial_index for t in reference
    ]


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_async_submission_matches_matrix(references, backend):
    """submit_batch through each backend stays on the same golden values."""
    reference = references["seed_attack"]
    with BACKENDS[backend]() as executor:
        with Engine(executor) as engine:
            future = engine.submit_batch(GOLDEN_SPECS["seed_attack"](False), TRIALS)
            batch = future.result(timeout=120)
    assert batch.outputs == reference.outputs
    assert batch.transcript_keys == reference.transcript_keys
