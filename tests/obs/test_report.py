"""Tests for ``python -m repro.obs.report`` (repro.obs.report).

The acceptance bar: running the CLI against a chaos metrics dump must
print per-worker failure counts matching what ``ErrorTelemetry``
reported live.
"""

import json
import subprocess
import sys

import pytest

from repro.exec.health import ErrorTelemetry
from repro.obs import FlightRecorder, MetricsRegistry, Tracer
from repro.obs.report import main, render_flightrec, render_metrics, render_trace


def fake_clock(start: int = 0, step: int = 1000):
    state = {"now": start - step}

    def tick() -> int:
        state["now"] += step
        return state["now"]

    return tick


@pytest.fixture
def telemetry_registry():
    """A registry populated the way a chaotic run populates it: through
    ErrorTelemetry, with tuple worker addresses."""
    registry = MetricsRegistry()
    telemetry = ErrorTelemetry(registry=registry)
    for _ in range(3):
        telemetry.record(("127.0.0.1", 9123), "timeout")
    telemetry.record(("127.0.0.1", 9123), "connect")
    telemetry.record(("127.0.0.1", 9124), "corrupt")
    return registry, telemetry


class TestRenderMetrics:
    def test_failure_matrix_matches_error_telemetry(self, telemetry_registry):
        registry, telemetry = telemetry_registry
        text = "\n".join(render_metrics(registry))
        assert "failures by worker x category" in text
        # rows match the live telemetry view, totals included
        line_9123 = next(
            line for line in text.splitlines() if line.startswith("127.0.0.1:9123")
        )
        counts = telemetry.counts()[("127.0.0.1", 9123)]
        # columns: connect, corrupt, timeout, total (sorted categories)
        assert line_9123.split()[1:] == [
            str(counts.get("connect", 0)),
            "0",
            str(counts.get("timeout", 0)),
            str(sum(counts.values())),
        ]
        assert "TOTAL" in text

    def test_histogram_section(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        registry.histogram("lat", buckets=[1.0]).observe(1.5)
        text = "\n".join(render_metrics(registry))
        assert "== histogram lat ==" in text
        assert "2" in text  # count column


class TestRenderTrace:
    def test_per_track_summary_uses_thread_names(self):
        tracer = Tracer(clock=fake_clock(step=1_000_000))
        with tracer.span("chunk", track="lane-0"):
            tracer.instant("steal", track="lane-0")
        text = "\n".join(render_trace(tracer.to_chrome()))
        line = next(l for l in text.splitlines() if l.startswith("lane-0"))
        track, spans, instants, busy_ms = line.split()
        assert (spans, instants) == ("1", "1")
        assert float(busy_ms) == pytest.approx(2.0)  # two 1 ms ticks


class TestRenderFlightrec:
    def test_by_kind_and_tail(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(6):
            recorder.record("health", worker=f"w{i}", new="dead")
        recorder.record("fleet_degraded", chunks_left=2)
        text = "\n".join(render_flightrec(json.loads(recorder.to_json())))
        assert "retained 4 of 7 events (capacity 4)" in text
        assert "fleet_degraded" in text
        assert "#7 fleet_degraded" in text


class TestCli:
    def test_requires_at_least_one_input(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_full_invocation(self, tmp_path, capsys, telemetry_registry):
        registry, _ = telemetry_registry
        metrics = tmp_path / "m.json"
        metrics.write_text(registry.to_json())
        tracer = Tracer(clock=fake_clock())
        tracer.instant("steal", track="lane-0")
        trace = tmp_path / "t.json"
        tracer.dump_chrome(trace)
        recorder = FlightRecorder()
        recorder.record("lane_death", lane=0)
        flightrec = recorder.dump(tmp_path / "f.json")

        assert main([str(metrics), "--trace", str(trace), "--flightrec", str(flightrec)]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "== trace ==" in out
        assert "== flight recorder ==" in out
        assert "127.0.0.1:9124" in out

    def test_module_entry_point(self, tmp_path):
        """python -m repro.obs.report works end to end as a subprocess."""
        registry = MetricsRegistry()
        registry.counter("exec_errors_total", worker="w0", category="x").inc()
        metrics = tmp_path / "m.json"
        metrics.write_text(registry.to_json())
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(metrics)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "failures by worker x category" in result.stdout
