"""Unit tests for the flight recorder (repro.obs.recorder)."""

import json
import threading

import pytest

from repro.obs import FlightRecorder, MetricsRegistry
from repro.obs.recorder import dump_on_chaos


class TestRing:
    def test_capacity_bounds_retention_but_not_seq(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record("tick", i=i)
        assert len(recorder) == 3
        assert recorder.total_recorded == 10
        events = recorder.events()
        assert [e["i"] for e in events] == [7, 8, 9]
        assert [e["seq"] for e in events] == [8, 9, 10]
        assert all(e["kind"] == "tick" and "ts" in e for e in events)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_returns_copies(self):
        recorder = FlightRecorder()
        recorder.record("x")
        recorder.events()[0]["kind"] = "mutated"
        assert recorder.events()[0]["kind"] == "x"

    def test_clear_empties_window_keeps_total(self):
        recorder = FlightRecorder()
        recorder.record("x")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_recorded == 1

    def test_concurrent_records_all_counted(self):
        recorder = FlightRecorder(capacity=10_000)
        per_thread = 500

        def hammer() -> None:
            for _ in range(per_thread):
                recorder.record("evt")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.total_recorded == 4 * per_thread
        # every seq unique and consecutive
        seqs = [e["seq"] for e in recorder.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestExport:
    def test_to_json_envelope(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("health", worker="w0", old="healthy", new="suspect")
        payload = json.loads(recorder.to_json())
        assert payload["schema"] == FlightRecorder.SCHEMA
        assert payload["capacity"] == 2
        assert payload["total_recorded"] == 1
        assert payload["events"][0]["worker"] == "w0"

    def test_exotic_payload_degrades_to_string(self):
        recorder = FlightRecorder()
        recorder.record("odd", obj=object())
        assert "object object at" in json.loads(recorder.to_json())["events"][0]["obj"]

    def test_dump_creates_parents(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("x")
        target = recorder.dump(tmp_path / "deep" / "dir" / "dump.json")
        assert json.loads(target.read_text())["total_recorded"] == 1


class TestDumpOnChaos:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_DIR", raising=False)
        assert dump_on_chaos(FlightRecorder(), "cell") is None

    def test_dumps_recorder_and_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
        recorder = FlightRecorder()
        recorder.record("fault_injected", site="worker-0", fault="crash")
        registry = MetricsRegistry()
        registry.counter("exec_errors_total", worker="w0", category="crash").inc()
        path = dump_on_chaos(recorder, "cell-seed23", registry=registry)
        assert path is not None and path.name == "cell-seed23.flightrec.json"
        dumped = json.loads(path.read_text())
        assert dumped["events"][0]["fault"] == "crash"
        metrics_path = path.parent / "cell-seed23.metrics.json"
        restored = MetricsRegistry.from_json(metrics_path.read_text())
        assert restored.total("exec_errors_total") == 1
