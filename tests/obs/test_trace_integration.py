"""The tracing acceptance test: a traced 4-worker loopback fleet
exports schema-valid Chrome trace-event JSON showing per-lane chunk
spans, steal instants, a heartbeat track, and worker-side execution
spans correlated by context id.
"""

import json

import pytest

from repro.core import Engine, RunSpec, SerialExecutor
from repro.distributions import UniformRows
from repro.exec import DistributedExecutor, LoopbackWorker
from repro.exec.faults import FaultEvent, FaultInjector
from repro.lowerbounds import TopSubmatrixRankProtocol
from repro.obs import Tracer, validate_chrome_trace

TRIALS = 24


def spec() -> RunSpec:
    return RunSpec(
        protocol=TopSubmatrixRankProtocol(4),
        distribution=UniformRows(8, 8),
        seed=7,
    )


@pytest.fixture
def traced_fleet_payload(tmp_path):
    """Run one traced batch on a 4-worker fleet (one slow worker, so
    steals must happen) and return the exported Chrome payload."""
    tracer = Tracer()
    # worker 0 answers every map frame 0.2 s late: its lane drains
    # slowly and the other lanes steal its backlog.
    slow = FaultInjector(
        [FaultEvent("map", op, "slow", delay=0.2) for op in range(64)],
        site="worker-0",
    )
    workers = [LoopbackWorker(fault_injector=slow, tracer=tracer)]
    workers += [LoopbackWorker(tracer=tracer) for _ in range(3)]
    try:
        with DistributedExecutor(
            [w.endpoint for w in workers],
            chunksize=2,
            heartbeat_interval=0.05,
            share_inputs_min_bytes=1,
            tracer=tracer,
        ) as executor:
            batch = Engine(executor, tracer=tracer).run_batch(spec(), TRIALS)
            steals = executor.last_map_steals
    finally:
        for w in workers:
            w.stop()

    golden = Engine(SerialExecutor()).run_batch(spec(), TRIALS)
    assert batch.outputs == golden.outputs  # tracing never costs determinism
    assert steals >= 1, "slow lane produced no steals to trace"

    target = tmp_path / "fleet_trace.json"
    tracer.dump_chrome(target)
    return json.loads(target.read_text())


class TestFleetTraceExport:
    def test_schema_valid_with_lane_steal_heartbeat_tracks(
        self, traced_fleet_payload
    ):
        payload = traced_fleet_payload
        assert validate_chrome_trace(payload) == []

        events = payload["traceEvents"]
        track_of = {
            (m["pid"], m["tid"]): m["args"]["name"]
            for m in events
            if m["ph"] == "M" and m["name"] == "thread_name"
        }
        tracks = set(track_of.values())
        # all four lanes dispatched chunks
        assert {f"lane-{i}" for i in range(4)} <= tracks
        assert "heartbeat" in tracks
        assert "engine" in tracks

        def on(event):
            return track_of[(event["pid"], event["tid"])]

        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]

        # per-lane chunk spans, with items/worker args for the viewer
        chunk_spans = [e for e in spans if e["name"] == "chunk"]
        assert chunk_spans and all(on(e).startswith("lane-") for e in chunk_spans)
        assert all(
            e["args"]["items"] >= 1 and "worker" in e["args"] for e in chunk_spans
        )

        # steal instants on the stealing lanes
        steal_marks = [e for e in instants if e["name"] == "steal"]
        assert steal_marks and all(on(e).startswith("lane-") for e in steal_marks)

        # the heartbeat monitor probed, and verdicts are in the args
        probes = [e for e in spans if e["name"] == "probe"]
        assert probes and all(on(e) == "heartbeat" for e in probes)
        assert all(e["args"]["alive"] in (True, False) for e in probes)

        # engine-level run_batch/map spans frame the whole thing
        assert {e["name"] for e in spans if on(e) == "engine"} >= {
            "run_batch",
            "map",
        }

    def test_worker_side_spans_correlate_by_context(self, traced_fleet_payload):
        events = traced_fleet_payload["traceEvents"]
        track_of = {
            (m["pid"], m["tid"]): m["args"]["name"]
            for m in events
            if m["ph"] == "M" and m["name"] == "thread_name"
        }

        def on(event):
            return track_of[(event["pid"], event["tid"])]

        chunk_ctx = {
            e["args"]["ctx"]
            for e in events
            if e["ph"] == "X" and e["name"] == "chunk"
        }
        exec_spans = [
            e for e in events if e["ph"] == "X" and e["name"] == "exec_chunk"
        ]
        # in-process loopback workers share the tracer, so their serve
        # loops recorded exec spans on the worker track...
        assert exec_spans and all(on(e) == "worker" for e in exec_spans)
        # ...and every one carries a context id some dispatched chunk sent
        exec_ctx = {e["args"]["ctx"] for e in exec_spans}
        assert exec_ctx and exec_ctx <= chunk_ctx
