"""Unit tests for the unified metrics registry (repro.obs.metrics)."""

import json
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", worker="w0")
        b = registry.counter("x_total", worker="w0")
        assert a is b
        assert registry.counter("x_total", worker="w1") is not a

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", b="2", a="1")
        assert a is registry.counter("x_total", a="1", b="2")
        assert a.labels == {"a": "1", "b": "2"}


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_observe_buckets_count_sum(self):
        h = MetricsRegistry().histogram("lat", buckets=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        snap = h.snapshot_value()
        assert snap["bounds"] == [1.0, 10.0]
        # one observation per bucket, including the overflow bucket
        assert snap["bucket_counts"] == [1, 1, 1]


class TestLabelCollisions:
    def test_kind_collision_is_loud(self):
        """Reusing a metric name with a different kind must TypeError,
        never silently fork the series."""
        registry = MetricsRegistry()
        registry.counter("things_total")
        with pytest.raises(TypeError):
            registry.gauge("things_total")
        with pytest.raises(TypeError):
            registry.histogram("things_total")

    def test_same_name_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("t", k="a").inc(1)
        registry.counter("t", k="b").inc(2)
        assert registry.total("t") == 3
        assert registry.total("t", k="a") == 1
        assert len(registry.series("t")) == 2


class TestTotals:
    def test_total_unknown_metric_is_zero(self):
        assert MetricsRegistry().total("nope_total") == 0

    def test_total_subset_filter(self):
        registry = MetricsRegistry()
        registry.counter("e", worker="w0", category="timeout").inc(2)
        registry.counter("e", worker="w0", category="connect").inc(1)
        registry.counter("e", worker="w1", category="timeout").inc(5)
        assert registry.total("e") == 8
        assert registry.total("e", worker="w0") == 3
        assert registry.total("e", category="timeout") == 7
        assert registry.total("e", worker="w1", category="connect") == 0

    def test_total_of_histogram_is_type_error(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(1.0)
        with pytest.raises(TypeError):
            registry.total("lat")


class TestJsonRoundTrip:
    def test_empty_registry_round_trip(self):
        registry = MetricsRegistry()
        payload = registry.to_json()
        decoded = json.loads(payload)
        assert decoded["schema"] == MetricsRegistry.SCHEMA
        restored = MetricsRegistry.from_json(payload)
        assert restored.snapshot() == registry.snapshot()
        assert restored.to_json() == payload

    def test_populated_round_trip_is_exact(self):
        registry = MetricsRegistry()
        registry.counter("c_total", worker="w0", category="timeout").inc(3)
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        restored = MetricsRegistry.from_json(registry.to_json())
        assert restored.snapshot() == registry.snapshot()
        assert restored.total("c_total", worker="w0") == 3
        assert restored.to_json() == registry.to_json()

    def test_concurrent_increments_all_land(self):
        """N threads hammering one counter and its JSON export: the
        final snapshot must contain every increment."""
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 500

        def hammer(i: int) -> None:
            for _ in range(per_thread):
                registry.counter("hot_total", thread=str(i % 2)).inc()
                registry.gauge("depth").inc()

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        # Snapshot while writers are live: must never raise or deadlock.
        registry.to_json()
        for t in threads:
            t.join()
        assert registry.total("hot_total") == threads_n * per_thread
        restored = MetricsRegistry.from_json(registry.to_json())
        assert restored.total("hot_total") == threads_n * per_thread

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_json('{"schema": "other-v9", "metrics": {}}')


def test_exported_types_are_public():
    assert Counter.__name__ == "Counter"
    assert Gauge.__name__ == "Gauge"
    assert Histogram.__name__ == "Histogram"
