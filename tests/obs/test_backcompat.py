"""Back-compat: every pre-registry counter still reads at its old
attribute path, but is served from the unified ``repro.obs`` registry.

Also pins the richer shapes this PR added behind those attributes:
``Engine.batch_fallbacks`` as a per-reason dict that still compares to
the old bare int, ``HealthBoard.transition_history()``, and the
``ErrorTelemetry`` → registry-JSON round trip.
"""

import threading

import pytest

from repro.core.engine import Engine, FALLBACKS_METRIC, FallbackCounts, RunSpec
from repro.core.errors import BatchFallbackWarning
from repro.distributions.uniform import UniformRows
from repro.exec.health import ERRORS_METRIC, ErrorTelemetry, HealthBoard
from repro.obs import FlightRecorder, MetricsRegistry
from repro.protocols.parity import GlobalParityProtocol


class UnbatchedParityProtocol(GlobalParityProtocol):
    supports_batch = False
    supports_batch_keys = False


class TestFallbackCounts:
    def test_int_compatibility(self):
        counts = FallbackCounts({"no_batch_support": 2, "full_fidelity": 1})
        assert counts == 3
        assert counts != 2
        assert int(counts) == 3
        assert counts.total == 3
        assert counts["no_batch_support"] == 2
        assert FallbackCounts() == 0

    def test_dict_comparison_still_works(self):
        assert FallbackCounts({"a": 1}) == {"a": 1}
        assert FallbackCounts({"a": 1}) != {"a": 2}

    def test_not_equal_to_bool(self):
        assert FallbackCounts() != False  # noqa: E712 — the comparison is the test


class TestEngineBatchFallbacks:
    def fallback_spec(self):
        return RunSpec(
            protocol=UnbatchedParityProtocol(),
            distribution=UniformRows(8, 6),
            seed=5,
            vectorized=True,
        )

    def test_per_reason_counts_and_registry_series(self):
        registry = MetricsRegistry()
        engine = Engine(registry=registry)
        assert engine.batch_fallbacks == 0
        with pytest.warns(BatchFallbackWarning, match="no_batch_support"):
            engine.run_batch(self.fallback_spec(), 4)
        with pytest.warns(BatchFallbackWarning):
            engine.run_batch(self.fallback_spec(), 4)
        # old int semantics and new per-reason shape, same attribute
        assert engine.batch_fallbacks == 2
        assert engine.batch_fallbacks == {"no_batch_support": 2}
        # served from the shared registry, not a private int
        assert registry.total(FALLBACKS_METRIC, reason="no_batch_support") == 2

    def test_warning_names_the_reason_code(self):
        engine = Engine()
        with pytest.warns(BatchFallbackWarning, match=r"\[no_batch_support\]"):
            engine.run_batch(self.fallback_spec(), 4)


class TestHealthBoardHistory:
    def test_transition_history_export(self):
        board = HealthBoard(suspect_after=1, dead_after=2)
        worker = ("10.0.0.5", 9123)
        board.record_miss(worker, reason="timeout")
        board.record_miss(worker, reason="timeout")
        board.record_ok(worker)
        history = board.transition_history()
        assert [(h["old"], h["new"]) for h in history] == [
            ("healthy", "suspect"),
            ("suspect", "dead"),
            ("dead", "healthy"),
        ]
        assert all(h["worker"] == str(worker) for h in history)
        assert history[0]["reason"] == "timeout"

    def test_transitions_land_in_flight_recorder(self):
        recorder = FlightRecorder()
        board = HealthBoard(suspect_after=1, dead_after=2, recorder=recorder)
        board.record_miss("w0", reason="timeout")
        board.record_ok("w0")
        kinds = [(e["kind"], e["old"], e["new"]) for e in recorder.events()]
        assert kinds == [
            ("health", "healthy", "suspect"),
            ("health", "suspect", "healthy"),
        ]

    def test_no_event_without_state_change(self):
        recorder = FlightRecorder()
        board = HealthBoard(suspect_after=3, dead_after=5, recorder=recorder)
        board.record_ok("w0")
        board.record_miss("w0", reason="timeout")  # still healthy
        assert recorder.events() == []


class TestErrorTelemetryRoundTrip:
    def test_counts_keep_tuple_keys(self):
        telemetry = ErrorTelemetry()
        telemetry.record(("127.0.0.1", 9123), "timeout", 2)
        telemetry.record("lane-3", "connect")
        assert telemetry.counts() == {
            ("127.0.0.1", 9123): {"timeout": 2},
            "lane-3": {"connect": 1},
        }
        assert telemetry.total() == 3
        assert telemetry.total("timeout") == 2

    def test_snapshot_round_trips_through_registry_json(self):
        """The chaos artifact path: live telemetry → metrics JSON →
        restored registry → the same counts the CLI report renders."""
        registry = MetricsRegistry()
        telemetry = ErrorTelemetry(registry=registry)
        telemetry.record(("127.0.0.1", 9123), "timeout", 3)
        telemetry.record(("127.0.0.1", 9124), "corrupt")
        restored = MetricsRegistry.from_json(registry.to_json())
        assert restored.total(ERRORS_METRIC) == 4
        assert (
            restored.total(ERRORS_METRIC, worker="127.0.0.1:9123", category="timeout")
            == 3
        )

    def test_empty_telemetry_round_trip(self):
        registry = MetricsRegistry()
        ErrorTelemetry(registry=registry)
        restored = MetricsRegistry.from_json(registry.to_json())
        assert restored.total(ERRORS_METRIC) == 0

    def test_concurrent_records_all_land(self):
        telemetry = ErrorTelemetry()
        per_thread = 250

        def hammer(i: int) -> None:
            for _ in range(per_thread):
                telemetry.record(("10.0.0.1", 9000 + i), "timeout")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert telemetry.total() == 4 * per_thread
        assert telemetry.total("timeout") == 4 * per_thread

    def test_label_collision_two_workers_same_formatting(self):
        """Distinct Hashable worker keys that format to the same label
        share a series; counts() maps the label back to the first key."""
        telemetry = ErrorTelemetry()
        telemetry.record(("h", 1), "timeout")
        telemetry.record("h:1", "timeout")
        assert telemetry.total("timeout") == 2
        (worker_counts,) = telemetry.counts().values()
        assert worker_counts == {"timeout": 2}
