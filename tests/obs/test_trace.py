"""Unit tests for the span tracer and Chrome trace export (repro.obs.trace)."""

import json
import threading

from repro.obs import NULL_TRACER, NullTracer, Tracer, validate_chrome_trace
from repro.obs.trace import _NULL_SPAN


def fake_clock(start: int = 0, step: int = 1000):
    """A deterministic nanosecond clock: start, start+step, ..."""
    state = {"now": start - step}

    def tick() -> int:
        state["now"] += step
        return state["now"]

    return tick


class TestSpans:
    def test_span_records_exact_timestamps(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("run_batch", track="engine", trials=4):
            pass
        (event,) = tracer.events()
        assert event == {
            "type": "span",
            "name": "run_batch",
            "track": "engine",
            "start_ns": 0,
            "end_ns": 1000,
            "args": {"trials": 4},
        }

    def test_close_is_idempotent(self):
        tracer = Tracer(clock=fake_clock())
        span = tracer.span("s")
        span.close()
        span.close()
        assert len(tracer.events()) == 1

    def test_explicit_close_with_late_args(self):
        """The worker/feed pattern: open, annotate the outcome, close."""
        tracer = Tracer(clock=fake_clock())
        span = tracer.span("chunk", track="lane-0")
        span.args["outcome"] = "timeout"
        span.close()
        (event,) = tracer.events()
        assert event["args"] == {"outcome": "timeout"}

    def test_instants_and_contexts(self):
        tracer = Tracer(clock=fake_clock())
        tracer.instant("steal", track="lane-1", victim=0)
        assert tracer.new_context() == 1
        assert tracer.new_context() == 2
        (event,) = tracer.events()
        assert event["type"] == "instant"
        assert event["ts_ns"] == 0

    def test_adopt_merges_worker_side_events(self):
        client = Tracer(clock=fake_clock())
        worker = Tracer(clock=fake_clock(start=500))
        with worker.span("exec_chunk", track="worker", ctx=1):
            pass
        client.adopt(worker.events())
        assert [e["name"] for e in client.events()] == ["exec_chunk"]

    def test_threaded_recording_is_lossless(self):
        tracer = Tracer()
        per_thread = 200

        def emit(i: int) -> None:
            for _ in range(per_thread):
                with tracer.span("s", track=f"t{i}"):
                    pass

        threads = [threading.Thread(target=emit, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events()) == 4 * per_thread


class TestNullTracer:
    def test_null_tracer_is_free_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything", track="t", big=list(range(10))) is _NULL_SPAN
        assert NULL_TRACER.span("other") is _NULL_SPAN  # one shared instance
        with NULL_TRACER.span("ctx") as span:
            span.close()
        NULL_TRACER.instant("steal")
        assert NULL_TRACER.new_context() is None
        assert NULL_TRACER.events() == []

    def test_real_tracer_is_enabled(self):
        assert Tracer(clock=fake_clock()).enabled is True
        assert isinstance(NULL_TRACER, NullTracer)


class TestChromeExport:
    def test_export_schema_and_units(self):
        tracer = Tracer(clock=fake_clock(step=2500))
        with tracer.span("chunk", track="lane-0", items=3):
            tracer.instant("steal", track="lane-1")
        payload = tracer.to_chrome()
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        by_ph = {}
        for event in payload["traceEvents"]:
            by_ph.setdefault(event["ph"], []).append(event)
        # two tracks -> two thread_name metadata records
        assert {m["args"]["name"] for m in by_ph["M"]} == {"lane-0", "lane-1"}
        (span,) = by_ph["X"]
        assert span["ts"] == 0.0  # ns -> µs
        assert span["dur"] == 5.0  # two ticks of 2500 ns
        (instant,) = by_ph["i"]
        assert instant["s"] == "t"
        # events on different tracks land on different tids
        assert span["tid"] != instant["tid"]

    def test_json_round_trip_stays_valid(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("s"):
            pass
        payload = json.loads(tracer.to_chrome_json())
        assert validate_chrome_trace(payload) == []

    def test_dump_chrome_writes_loadable_file(self, tmp_path):
        tracer = Tracer(clock=fake_clock())
        tracer.instant("mark")
        target = tmp_path / "trace.json"
        tracer.dump_chrome(target)
        assert validate_chrome_trace(json.loads(target.read_text())) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["top level must be an object"]

    def test_rejects_missing_events_list(self):
        assert validate_chrome_trace({"traceEvents": 3}) == [
            "traceEvents must be a list"
        ]

    def test_flags_bad_events(self):
        payload = {
            "traceEvents": [
                {"ph": "Q", "name": "x", "pid": 1, "tid": 1},
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1},
                {"ph": "i", "pid": 1, "tid": "one", "ts": 0.0},
            ]
        }
        problems = validate_chrome_trace(payload)
        # event 0: unknown phase; event 1: negative dur;
        # event 2: missing name AND non-integer tid
        assert len(problems) == 4
        assert any("unknown phase" in p for p in problems)
        assert any("non-negative dur" in p for p in problems)
        assert any("missing name" in p for p in problems)
        assert any("integer tid" in p for p in problems)
