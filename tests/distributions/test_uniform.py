"""Tests for the uniform input distributions."""

import numpy as np
import pytest

from repro.distributions import RandomDigraph, UniformRows


class TestUniformRows:
    def test_shape(self, rng):
        dist = UniformRows(5, 7)
        sample = dist.sample(rng)
        assert sample.shape == (5, 7)
        assert set(np.unique(sample)) <= {0, 1}

    def test_row_support_complete(self):
        support, probs = UniformRows(2, 3).row_support(0)
        assert support.shape == (8, 3)
        assert probs.sum() == pytest.approx(1.0)
        assert len({tuple(r) for r in support}) == 8

    def test_sample_many(self, rng):
        batch = UniformRows(3, 4).sample_many(6, rng)
        assert batch.shape == (6, 3, 4)

    def test_mean_density(self, rng):
        sample = UniformRows(50, 50).sample(rng)
        assert 0.4 < sample.mean() < 0.6

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            UniformRows(0, 3)


class TestRandomDigraph:
    def test_zero_diagonal(self, rng):
        sample = RandomDigraph(10).sample(rng)
        assert np.all(np.diag(sample) == 0)

    def test_row_support_excludes_self_loop(self):
        dist = RandomDigraph(3)
        for i in range(3):
            support, probs = dist.row_support(i)
            assert support.shape == (4, 3)  # 2^(n-1) rows
            assert np.all(support[:, i] == 0)
            assert probs.sum() == pytest.approx(1.0)

    def test_sample_row_matches_support(self, rng):
        dist = RandomDigraph(4)
        support, _ = dist.row_support(2)
        support_set = {tuple(r) for r in support}
        for _ in range(20):
            assert tuple(dist.sample_row(2, rng)) in support_set

    def test_off_diagonal_density(self, rng):
        sample = RandomDigraph(60).sample(rng)
        off_diag = sample[~np.eye(60, dtype=bool)]
        assert 0.45 < off_diag.mean() < 0.55
