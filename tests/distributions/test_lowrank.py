"""Tests for the rank-deficient distribution of Theorem 1.4."""

import numpy as np
import pytest

from repro.distributions import RankDeficientMatrix
from repro.linalg import BitMatrix


class TestRankDeficient:
    def test_never_full_rank(self, rng):
        dist = RankDeficientMatrix(8)
        for _ in range(25):
            sample = dist.sample(rng)
            assert BitMatrix.from_array(sample).rank() <= dist.max_rank()

    def test_shape_square(self, rng):
        sample = RankDeficientMatrix(6).sample(rng)
        assert sample.shape == (6, 6)

    def test_parameters(self):
        dist = RankDeficientMatrix(10)
        assert dist.k == 9
        assert dist.m == 10
        assert dist.max_rank() == 9

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            RankDeficientMatrix(1)

    def test_close_to_uniform_in_single_entries(self, rng):
        """The distribution is close to uniform; single-entry marginals are
        indistinguishable from fair coins."""
        dist = RankDeficientMatrix(10)
        acc = np.zeros((10, 10))
        trials = 300
        for _ in range(trials):
            acc += dist.sample(rng)
        freqs = acc / trials
        assert np.abs(freqs - 0.5).max() < 0.12
