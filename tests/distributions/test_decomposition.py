"""Tests for exact joint pmfs and the mixture decompositions."""

import numpy as np
import pytest

from repro.distributions import (
    PlantedClique,
    RandomDigraph,
    ToyPRGOutput,
    UniformRows,
    empirical_matrix_pmf,
    exact_matrix_pmf,
    pmf_distance,
)


class TestExactPmf:
    def test_uniform_rows_pmf(self):
        pmf = exact_matrix_pmf(UniformRows(2, 2))
        assert len(pmf) == 16
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert all(p == pytest.approx(1 / 16) for p in pmf.values())

    def test_digraph_pmf_support(self):
        pmf = exact_matrix_pmf(RandomDigraph(3))
        # 6 free off-diagonal entries.
        assert len(pmf) == 64
        for key in pmf:
            matrix = np.frombuffer(key, dtype=np.uint8).reshape(3, 3)
            assert np.all(np.diag(matrix) == 0)

    def test_toy_prg_mixture_pmf(self):
        pmf = exact_matrix_pmf(ToyPRGOutput(2, 2))
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            exact_matrix_pmf(UniformRows(4, 8))

    def test_type_error_for_plain_distribution(self):
        from repro.distributions.base import InputDistribution

        with pytest.raises(TypeError):
            exact_matrix_pmf(InputDistribution(2, 2))


class TestMixtureIdentity:
    def test_planted_clique_is_average_of_components(self):
        """A_k == average over C of A_C — the paper's core decomposition."""
        direct = exact_matrix_pmf(PlantedClique(3, 2))
        assert sum(direct.values()) == pytest.approx(1.0)

    def test_toy_prg_single_processor_marginal_uniform(self):
        """For n=1 the toy PRG output pmf is exactly uniform on {0,1}^{k+1}:
        every (x, bit) pair is achieved by exactly half the secrets b...
        except the all-zero seed, where the derived bit is always 0.  The
        exact pmf quantifies this: distance from uniform is 2^{-(k+1)}."""
        k = 3
        pmf = exact_matrix_pmf(ToyPRGOutput(1, k))
        uniform = {key: 1.0 / (1 << (k + 1)) for key in _all_keys(k + 1)}
        distance = pmf_distance(pmf, uniform)
        assert distance == pytest.approx(2.0 ** -(k + 1))


def _all_keys(m):
    for value in range(1 << m):
        yield np.array(
            [(value >> i) & 1 for i in range(m)], dtype=np.uint8
        ).reshape(1, m).tobytes()


class TestEmpiricalPmf:
    def test_matches_exact_for_uniform(self, rng):
        dist = UniformRows(2, 2)
        empirical = empirical_matrix_pmf(dist, 8000, rng)
        exact = exact_matrix_pmf(dist)
        assert pmf_distance(empirical, exact) < 0.08

    def test_positive_sample_count_required(self, rng):
        with pytest.raises(ValueError):
            empirical_matrix_pmf(UniformRows(2, 2), 0, rng)
