"""Tests for the undirected (Section 9) extension distributions."""

import numpy as np
import pytest

from repro.distributions import UndirectedPlantedClique, UndirectedRandomGraph


class TestUndirectedRandomGraph:
    def test_symmetric_zero_diagonal(self, rng):
        sample = UndirectedRandomGraph(10).sample(rng)
        assert np.array_equal(sample, sample.T)
        assert np.all(np.diag(sample) == 0)

    def test_rows_are_dependent(self, rng):
        """The defining obstruction: A[i,j] == A[j,i] always — rows share
        bits, unlike every directed distribution in the paper."""
        dist = UndirectedRandomGraph(6)
        for _ in range(10):
            sample = dist.sample(rng)
            assert sample[2, 5] == sample[5, 2]

    def test_edge_density(self, rng):
        sample = UndirectedRandomGraph(60).sample(rng)
        off = sample[~np.eye(60, dtype=bool)]
        assert 0.45 < off.mean() < 0.55

    def test_enumerate_support_complete(self):
        dist = UndirectedRandomGraph(3)
        support = list(dist.enumerate_support())
        assert len(support) == 8  # 2^C(3,2)
        assert sum(p for _, p in support) == pytest.approx(1.0)
        for matrix, _ in support:
            assert np.array_equal(matrix, matrix.T)

    def test_enumerate_refuses_large(self):
        with pytest.raises(ValueError):
            list(UndirectedRandomGraph(8).enumerate_support())


class TestUndirectedPlantedClique:
    def test_clique_planted_symmetric(self, rng):
        dist = UndirectedPlantedClique(12, 5)
        matrix, clique = dist.sample_with_clique(rng)
        assert np.array_equal(matrix, matrix.T)
        members = sorted(clique)
        for a in members:
            for b in members:
                if a != b:
                    assert matrix[a, b] == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            UndirectedPlantedClique(4, 0)

    def test_enumerate_support_normalised(self):
        dist = UndirectedPlantedClique(4, 2)
        support = list(dist.enumerate_support())
        assert sum(p for _, p in support) == pytest.approx(1.0)

    def test_enumerate_refuses_large(self):
        with pytest.raises(ValueError):
            list(UndirectedPlantedClique(8, 3).enumerate_support())


class TestUndirectedConjecture:
    def test_one_round_distance_small(self):
        """The Section 9 conjecture, measured exactly on a tiny instance:
        a one-round degree protocol's transcript distance between
        undirected G(n,1/2) and the undirected planted-clique mixture is
        small — consistent with the directed Theorem 1.6 extending."""
        from repro.distinguish import (
            ProtocolSpec,
            brute_force_transcript_pmf,
            transcript_distance,
        )

        n, k = 4, 2

        def degree_fn(i, rows, p):
            return (rows.sum(axis=1) >= (n - 1) / 2 + 0.5).astype(np.int64)

        spec = ProtocolSpec(n, 1, degree_fn)
        pmf_rand = brute_force_transcript_pmf(
            spec, list(UndirectedRandomGraph(n).enumerate_support())
        )
        pmf_planted = brute_force_transcript_pmf(
            spec, list(UndirectedPlantedClique(n, k).enumerate_support())
        )
        distance = transcript_distance(pmf_rand, pmf_planted)
        # k=2 plants a single edge: the distance must be tiny.
        assert distance < 0.2
