"""Tests for the PRG output distributions U[b], toy mixture, U_M, full."""

import numpy as np
import pytest

from repro.distributions import (
    PRGOutput,
    SharedMatrixRows,
    SharedVectorRows,
    ToyPRGOutput,
)


class TestSharedVectorRows:
    def test_rows_satisfy_inner_product(self, rng):
        b = np.array([1, 0, 1], dtype=np.uint8)
        dist = SharedVectorRows(4, b)
        sample = dist.sample(rng)
        assert sample.shape == (4, 4)
        for row in sample:
            assert row[3] == (row[:3] @ b) % 2

    def test_row_support_is_graph_of_parity(self):
        b = np.array([1, 1], dtype=np.uint8)
        support, probs = SharedVectorRows(2, b).row_support(0)
        assert support.shape == (4, 3)
        for row in support:
            assert row[2] == (row[0] + row[1]) % 2
        assert probs.sum() == pytest.approx(1.0)

    def test_secret_must_be_1d(self):
        with pytest.raises(ValueError):
            SharedVectorRows(2, np.zeros((2, 2), dtype=np.uint8))


class TestToyPRGOutput:
    def test_component_count(self):
        assert ToyPRGOutput(3, 4).n_components() == 16

    def test_components_weights(self):
        comps = list(ToyPRGOutput(2, 3).components())
        assert len(comps) == 8
        assert sum(w for w, _ in comps) == pytest.approx(1.0)

    def test_sample_shape(self, rng):
        sample = ToyPRGOutput(5, 6).sample(rng)
        assert sample.shape == (5, 7)

    def test_refuses_huge_enumeration(self):
        with pytest.raises(ValueError):
            list(ToyPRGOutput(2, 25).components())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ToyPRGOutput(2, 0)

    def test_marginal_of_single_row_nearly_uniform(self, rng):
        """One processor's output alone is *nearly* uniform on
        {0,1}^{k+1}: for a non-zero seed x the derived bit x·b is a fair
        coin over b, while the all-zero seed forces it to 0.  So the
        outcome (0…0, 1) never occurs and (0…0, 0) has doubled mass."""
        k = 3
        dist = ToyPRGOutput(1, k)
        counts = np.zeros(1 << (k + 1))
        trials = 4000
        for _ in range(trials):
            row = dist.sample(rng)[0]
            index = int(sum(int(b) << i for i, b in enumerate(row)))
            counts[index] += 1
        freqs = counts / counts.sum()
        zero_seed_bit1 = 1 << k  # row (0,0,0,1)
        assert counts[zero_seed_bit1] == 0
        assert freqs[0] == pytest.approx(2 / 16, abs=0.03)
        nonzero = np.delete(freqs, [0, zero_seed_bit1])
        assert np.abs(nonzero - 1 / 16).max() < 0.03


class TestSharedMatrixRows:
    def test_rows_satisfy_matrix_product(self, rng):
        secret = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        dist = SharedMatrixRows(4, secret)
        sample = dist.sample(rng)
        assert sample.shape == (4, 5)
        for row in sample:
            assert np.array_equal(row[3:], (row[:3] @ secret) % 2)

    def test_row_support_size(self):
        secret = np.zeros((2, 3), dtype=np.uint8)
        support, _ = SharedMatrixRows(2, secret).row_support(0)
        assert support.shape == (4, 5)

    def test_secret_must_be_2d(self):
        with pytest.raises(ValueError):
            SharedMatrixRows(2, np.zeros(3, dtype=np.uint8))


class TestPRGOutput:
    def test_secret_bits(self):
        assert PRGOutput(4, 10, 3).secret_bits == 21

    def test_sample_linear_structure(self, rng):
        dist = PRGOutput(20, 12, 4)
        sample = dist.sample(rng)
        # All rows lie in a rank <= 4 structure: the tail is a linear
        # function of the head.
        from repro.linalg import BitMatrix

        assert BitMatrix.from_array(sample).rank() <= 4 + 0  # head rank <= k

    def test_component_enumeration_small(self):
        dist = PRGOutput(2, 3, 2)  # secret bits = 2
        comps = list(dist.components())
        assert len(comps) == 4

    def test_refuses_huge_enumeration(self):
        with pytest.raises(ValueError):
            list(PRGOutput(2, 30, 8).components())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PRGOutput(2, 3, 0)
        with pytest.raises(ValueError):
            PRGOutput(2, 3, 4)

    def test_m_equals_k_is_uniform(self, rng):
        dist = PRGOutput(3, 4, 4)
        sample = dist.sample(rng)
        assert sample.shape == (3, 4)
