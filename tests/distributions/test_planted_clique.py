"""Tests for the planted-clique distributions A_C and A_k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    PlantedClique,
    PlantedCliqueAt,
    exact_matrix_pmf,
    pmf_distance,
)


class TestPlantedCliqueAt:
    def test_clique_edges_forced(self, rng):
        dist = PlantedCliqueAt(6, {1, 3, 4})
        for _ in range(10):
            sample = dist.sample(rng)
            for u in (1, 3, 4):
                for v in (1, 3, 4):
                    if u != v:
                        assert sample[u, v] == 1
            assert np.all(np.diag(sample) == 0)

    def test_row_support_clique_member(self):
        dist = PlantedCliqueAt(4, {0, 1})
        support, probs = dist.row_support(0)
        # Row 0: bit 0 = 0 forced, bit 1 = 1 forced, bits 2,3 free -> 4 rows.
        assert support.shape[0] == 4
        assert np.all(support[:, 0] == 0)
        assert np.all(support[:, 1] == 1)
        assert probs.sum() == pytest.approx(1.0)

    def test_row_support_non_member_is_arand_marginal(self):
        dist = PlantedCliqueAt(4, {0, 1})
        support, _ = dist.row_support(3)
        assert support.shape[0] == 8  # only the diagonal constraint
        assert np.all(support[:, 3] == 0)

    def test_vertex_out_of_range(self):
        with pytest.raises(ValueError):
            PlantedCliqueAt(4, {0, 7})

    def test_sample_row_respects_constraints(self, rng):
        dist = PlantedCliqueAt(5, {0, 2, 4})
        for _ in range(20):
            row = dist.sample_row(2, rng)
            assert row[2] == 0
            assert row[0] == 1 and row[4] == 1

    def test_name(self):
        assert "0, 2" in PlantedCliqueAt(4, {0, 2}).name


class TestPlantedClique:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PlantedClique(4, 0)
        with pytest.raises(ValueError):
            PlantedClique(4, 5)

    def test_sample_with_clique_is_consistent(self, rng):
        dist = PlantedClique(8, 3)
        for _ in range(10):
            matrix, clique = dist.sample_with_clique(rng)
            assert len(clique) == 3
            for u in clique:
                for v in clique:
                    if u != v:
                        assert matrix[u, v] == 1

    def test_n_components(self):
        assert PlantedClique(5, 2).n_components() == 10
        assert PlantedClique(6, 3).n_components() == 20

    def test_components_weights_sum_to_one(self):
        total = sum(w for w, _ in PlantedClique(5, 2).components())
        assert total == pytest.approx(1.0)

    def test_clique_sampler_uniform(self, rng):
        dist = PlantedClique(5, 2)
        counts = {}
        for _ in range(600):
            c = dist.sample_clique(rng)
            counts[c] = counts.get(c, 0) + 1
        assert len(counts) == 10
        for count in counts.values():
            assert 25 <= count <= 100  # expectation 60

    def test_mixture_decomposition_exact(self):
        """The Section 3 identity: A_k equals the average of the A_C —
        verified literally on a small instance."""
        n, k = 3, 2
        mixture = PlantedClique(n, k)
        mixed_pmf: dict = {}
        for weight, component in mixture.components():
            for key, p in exact_matrix_pmf(component).items():
                mixed_pmf[key] = mixed_pmf.get(key, 0.0) + weight * p
        direct = exact_matrix_pmf(mixture)
        assert pmf_distance(mixed_pmf, direct) < 1e-12


@given(n=st.integers(3, 7), data=st.data())
@settings(max_examples=30, deadline=None)
def test_component_rows_independent_property(n, data):
    """For fixed C the rows are independent: the joint pmf equals the
    product of marginals (checked on a random row pair)."""
    k = data.draw(st.integers(2, n))
    clique = frozenset(
        data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=k, max_size=k, unique=True
            )
        )
    )
    dist = PlantedCliqueAt(n, clique)
    i = data.draw(st.integers(0, n - 1))
    support, probs = dist.row_support(i)
    # Each support row is equally likely, and the support is exactly the
    # set of rows satisfying the forced-bit constraints.
    assert np.allclose(probs, 1.0 / support.shape[0])
    forced_ones = (clique - {i}) if i in clique else frozenset()
    for row in support:
        assert row[i] == 0
        for j in forced_ones:
            assert row[j] == 1
    expected_size = 2 ** (n - 1 - len(forced_ones))
    assert support.shape[0] == expected_size
