"""Tests for the Corollary 7.1 derandomization transform."""

import numpy as np
import pytest

from repro.core import Protocol, ProtocolViolation, run_protocol
from repro.prg import DerandomizedProtocol, matrix_prg_rounds


class CoinFlipBroadcast(Protocol):
    """A payload protocol: every processor broadcasts fresh random bits for
    ``rounds`` rounds and outputs the bits it drew."""

    def __init__(self, rounds=2):
        self._rounds = rounds

    def num_rounds(self, n):
        return self._rounds

    def broadcast(self, proc, round_index):
        bit = proc.coins.draw_bit()
        proc.memory.setdefault("drawn", []).append(bit)
        return bit

    def output(self, proc):
        return list(proc.memory.get("drawn", []))


class TestStructure:
    def test_round_count_is_sum(self):
        n, k, payload_rounds = 8, 4, 3
        payload = CoinFlipBroadcast(payload_rounds)
        wrapped = DerandomizedProtocol(payload, k=k, random_bits=payload_rounds)
        expected = matrix_prg_rounds(n, k, k + payload_rounds) + payload_rounds
        assert wrapped.num_rounds(n) == expected

    def test_wide_payload_rejected(self):
        class Wide(Protocol):
            message_size = 2

            def num_rounds(self, n):
                return 1

            def broadcast(self, proc, round_index):
                return 0

        with pytest.raises(ProtocolViolation):
            DerandomizedProtocol(Wide(), k=4, random_bits=4)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            DerandomizedProtocol(CoinFlipBroadcast(), k=4, random_bits=-1)


class TestExecution:
    def test_runs_and_outputs_bits(self, rng):
        payload = CoinFlipBroadcast(2)
        wrapped = DerandomizedProtocol(payload, k=4, random_bits=2)
        inputs = np.zeros((8, 1), dtype=np.uint8)
        result = run_protocol(wrapped, inputs, rng=rng)
        for out in result.outputs:
            assert len(out) == 2
            assert set(out) <= {0, 1}

    def test_payload_bits_come_from_prg(self, rng):
        """The payload's coin stream must equal the PRG output."""
        payload = CoinFlipBroadcast(3)
        k = 5
        wrapped = DerandomizedProtocol(payload, k=k, random_bits=3)
        inputs = np.zeros((10, 1), dtype=np.uint8)
        result = run_protocol(wrapped, inputs, rng=rng)
        secret = wrapped.prg.shared_matrix(result.contexts[0]).to_array()
        for proc, drawn in zip(result.contexts, result.outputs):
            seed = proc.memory["prg_seed"].to_array()
            pseudo = np.concatenate([seed, (seed @ secret) % 2])
            assert list(pseudo[: len(drawn)]) == drawn

    def test_true_randomness_is_o_of_k(self, rng):
        """Corollary 7.1's headline: each processor flips only
        k + ⌈k·R/n⌉ true coins regardless of how many the payload uses."""
        n, k, payload_bits = 16, 6, 12
        payload = CoinFlipBroadcast(payload_bits)
        wrapped = DerandomizedProtocol(payload, k=k, random_bits=payload_bits)
        inputs = np.zeros((n, 1), dtype=np.uint8)
        result = run_protocol(wrapped, inputs, rng=rng)
        cap = k + matrix_prg_rounds(n, k, k + payload_bits)
        for proc in result.contexts:
            assert wrapped.true_coins_used(proc) <= cap

    def test_exhausting_pseudo_randomness_raises(self, rng):
        from repro.core import RandomnessExhausted

        payload = CoinFlipBroadcast(5)
        # Provision fewer bits than the payload consumes.
        wrapped = DerandomizedProtocol(payload, k=2, random_bits=2)
        inputs = np.zeros((4, 1), dtype=np.uint8)
        with pytest.raises(RandomnessExhausted):
            run_protocol(wrapped, inputs, rng=rng)

    def test_deterministic_replay(self):
        """Same true-randomness seed => identical compiled execution."""
        inputs = np.zeros((6, 1), dtype=np.uint8)

        def run(seed):
            wrapped = DerandomizedProtocol(
                CoinFlipBroadcast(2), k=3, random_bits=2
            )
            return run_protocol(
                wrapped, inputs, rng=np.random.default_rng(seed)
            ).transcript.key()

        assert run(11) == run(11)
        assert run(11) != run(12) or run(13) != run(11)
