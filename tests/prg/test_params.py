"""Tests for the PRG parameter-selection API."""

import pytest

from repro.core import run_protocol
from repro.prg import (
    MatrixPRGProtocol,
    PRGParameters,
    choose_parameters,
    matrix_prg_rounds,
)


class TestConstraints:
    def test_fooling_horizon_constraint(self):
        params = choose_parameters(n=64, m=64, j_rounds=30)
        assert params.k >= 10 * 30

    def test_error_constraint(self):
        tight = choose_parameters(n=64, m=64, j_rounds=2, epsilon=1e-9)
        loose = choose_parameters(n=64, m=64, j_rounds=2, epsilon=0.1)
        assert tight.k > loose.k
        # 2*j*n/2^{k/9} <= epsilon at the chosen k.
        assert 2 * 2 * 64 / 2 ** (tight.k / 9) <= 1e-9

    def test_output_length_constraint(self):
        params = choose_parameters(n=64, m=4096, j_rounds=1)
        assert params.m <= 2 ** (params.k / 20)

    def test_m_padded_to_k(self):
        params = choose_parameters(n=1024, m=1, j_rounds=5)
        assert params.m >= params.k

    def test_default_epsilon_is_inverse_n(self):
        params = choose_parameters(n=128, m=128, j_rounds=1)
        assert params.epsilon == pytest.approx(1 / 128)

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_parameters(n=1, m=4, j_rounds=1)
        with pytest.raises(ValueError):
            choose_parameters(n=4, m=0, j_rounds=1)
        with pytest.raises(ValueError):
            choose_parameters(n=4, m=4, j_rounds=0)
        with pytest.raises(ValueError):
            choose_parameters(n=4, m=4, j_rounds=1, epsilon=2.0)


class TestCostSheet:
    def test_round_formula_consistency(self):
        params = choose_parameters(n=256, m=512, j_rounds=3)
        assert params.construction_rounds == matrix_prg_rounds(
            256, params.k, params.m
        )

    def test_security_margin_positive(self):
        params = choose_parameters(n=64, m=64, j_rounds=4)
        assert params.breaking_rounds == params.k + 1
        assert params.security_margin > 0

    def test_stretch_greater_than_one_for_large_m(self):
        params = choose_parameters(n=4096, m=4096, j_rounds=2)
        assert params.stretch > 1.0

    def test_summary_mentions_k(self):
        params = choose_parameters(n=64, m=64, j_rounds=1)
        assert f"k={params.k}" in params.summary()

    def test_parameters_actually_run(self):
        """The chosen parameters drive a real PRG execution with exactly
        the predicted costs."""
        import numpy as np

        params = choose_parameters(n=32, m=4, j_rounds=1, epsilon=0.5)
        protocol = MatrixPRGProtocol(params.k, params.m)
        result = run_protocol(
            protocol,
            np.zeros((params.n, 1), dtype=np.uint8),
            rng=np.random.default_rng(0),
        )
        assert result.cost.rounds == params.construction_rounds
        assert (
            result.cost.max_private_bits <= params.private_bits_per_processor
        )
        assert result.outputs[0].shape == (params.m,)
