"""Tests for the toy PRG protocol."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.prg import ToyPRGProtocol, toy_prg_rounds


def run_toy(n, k, seed=0):
    protocol = ToyPRGProtocol(k)
    inputs = np.zeros((n, 1), dtype=np.uint8)
    return protocol, run_protocol(
        protocol, inputs, rng=np.random.default_rng(seed)
    )


class TestRounds:
    def test_round_formula(self):
        assert toy_prg_rounds(8, 8) == 1
        assert toy_prg_rounds(8, 9) == 2
        assert toy_prg_rounds(4, 16) == 4
        assert toy_prg_rounds(100, 3) == 1

    def test_protocol_uses_formula(self):
        protocol, result = run_toy(n=6, k=13)
        assert result.cost.rounds == toy_prg_rounds(6, 13) == 3


class TestOutputs:
    def test_output_shape(self):
        _, result = run_toy(n=5, k=7)
        for out in result.outputs:
            assert out.shape == (8,)
            assert set(np.unique(out)) <= {0, 1}

    def test_derived_bit_is_inner_product(self):
        protocol, result = run_toy(n=6, k=9, seed=3)
        b = protocol.shared_vector(result.contexts[0])
        for out in result.outputs:
            assert out[-1] == (out[:-1] @ b) % 2

    def test_all_processors_agree_on_shared_vector(self):
        protocol, result = run_toy(n=4, k=6, seed=5)
        vectors = [protocol.shared_vector(c) for c in result.contexts]
        for v in vectors[1:]:
            assert np.array_equal(v, vectors[0])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ToyPRGProtocol(0)


class TestRandomnessAccounting:
    def test_private_bits_at_most_k_plus_share(self):
        n, k = 8, 12
        protocol, result = run_toy(n=n, k=k)
        rounds = toy_prg_rounds(n, k)
        for used in result.cost.private_bits_per_processor:
            assert used <= k + rounds

    def test_seeds_are_distinct_whp(self):
        _, result = run_toy(n=10, k=32, seed=7)
        seeds = {tuple(out[:-1]) for out in result.outputs}
        assert len(seeds) == 10

    def test_shared_bits_vary_across_runs(self):
        protocol_a, result_a = run_toy(n=4, k=8, seed=1)
        protocol_b, result_b = run_toy(n=4, k=8, seed=2)
        b_a = protocol_a.shared_vector(result_a.contexts[0])
        b_b = protocol_b.shared_vector(result_b.contexts[0])
        assert not np.array_equal(b_a, b_b)
