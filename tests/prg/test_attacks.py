"""Tests for the Theorem 8.1 seed-length attack."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.distributions import PRGOutput, UniformRows
from repro.prg import SupportMembershipAttack, attack_rounds, false_positive_bound


class TestStructure:
    def test_rounds_linear_in_k(self):
        assert attack_rounds(4) == 5
        attack = SupportMembershipAttack(6)
        assert attack.num_rounds(10) == 7

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SupportMembershipAttack(0)

    def test_short_inputs_rejected(self, rng):
        attack = SupportMembershipAttack(4)
        inputs = np.zeros((3, 2), dtype=np.uint8)  # rows too short
        with pytest.raises(ValueError):
            run_protocol(attack, inputs, rng=rng)


class TestDetection:
    def test_always_accepts_prg_outputs(self, rng):
        n, k, m = 12, 4, 10
        attack = SupportMembershipAttack(k)
        dist = PRGOutput(n, m, k)
        for _ in range(10):
            result = run_protocol(attack, dist.sample(rng), rng=rng)
            assert all(out == 1 for out in result.outputs)

    def test_rarely_accepts_uniform(self, rng):
        n, k, m = 16, 4, 10
        attack = SupportMembershipAttack(k)
        dist = UniformRows(n, m)
        accepts = 0
        for _ in range(30):
            result = run_protocol(attack, dist.sample(rng), rng=rng)
            accepts += result.outputs[0]
        # False-positive probability <= 2^{k-n} = 2^-12.
        assert accepts == 0

    def test_false_positive_bound(self):
        assert false_positive_bound(16, 4) == pytest.approx(2.0**-12)

    def test_advantage_breaks_prg(self, rng):
        """The attack achieves advantage ~1/2 — far above what any
        (k/10)-round protocol could, confirming seed-length optimality."""
        n, k, m = 10, 3, 8
        attack = SupportMembershipAttack(k)
        prg_dist = PRGOutput(n, m, k)
        uni_dist = UniformRows(n, m)
        prg_accepts = sum(
            run_protocol(attack, prg_dist.sample(rng), rng=rng).outputs[0]
            for _ in range(20)
        )
        uni_accepts = sum(
            run_protocol(attack, uni_dist.sample(rng), rng=rng).outputs[0]
            for _ in range(20)
        )
        advantage = abs(prg_accepts - uni_accepts) / 20 / 2
        assert advantage > 0.45

    def test_all_processors_agree(self, rng):
        n, k, m = 8, 3, 6
        attack = SupportMembershipAttack(k)
        result = run_protocol(
            attack, UniformRows(n, m).sample(rng), rng=rng
        )
        assert len(set(result.outputs)) == 1
