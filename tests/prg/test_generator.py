"""Tests for the full PRG protocol (Theorem 1.3)."""

import numpy as np
import pytest

from repro.core import run_protocol
from repro.linalg import BitMatrix
from repro.prg import (
    MatrixPRGProtocol,
    matrix_prg_rounds,
    seed_bits_per_processor,
)


def run_prg(n, k, m, seed=0):
    protocol = MatrixPRGProtocol(k, m)
    inputs = np.zeros((n, 1), dtype=np.uint8)
    result = run_protocol(protocol, inputs, rng=np.random.default_rng(seed))
    return protocol, result


class TestRoundAccounting:
    def test_round_formula(self):
        assert matrix_prg_rounds(n=16, k=4, m=8) == 1  # 16 shared bits
        assert matrix_prg_rounds(n=16, k=4, m=12) == 2  # 32 shared bits
        assert matrix_prg_rounds(n=16, k=4, m=4) == 0  # no tail
        assert matrix_prg_rounds(n=10, k=3, m=10) == 3  # 21 bits -> ceil

    def test_theorem_1_3_order_k_rounds(self):
        """For m = c·n the construction takes O(k) rounds: exactly
        ⌈k(m-k)/n⌉ ≤ k·c."""
        n, k = 64, 16
        for c in (1, 2, 3):
            m = c * n
            rounds = matrix_prg_rounds(n, k, m)
            assert rounds <= c * k
            assert rounds >= (c - 1) * k  # tight up to the -k^2/n slack

    def test_protocol_round_count(self):
        protocol, result = run_prg(n=12, k=5, m=17)
        assert result.cost.rounds == matrix_prg_rounds(12, 5, 17) == 5

    def test_seed_bits_formula(self):
        assert seed_bits_per_processor(n=16, k=4, m=12) == 6


class TestOutputs:
    def test_output_length_m(self):
        _, result = run_prg(n=6, k=4, m=11)
        for out in result.outputs:
            assert out.shape == (11,)

    def test_tail_is_linear_in_seed(self):
        protocol, result = run_prg(n=8, k=5, m=13, seed=2)
        secret = protocol.shared_matrix(result.contexts[0]).to_array()
        for out in result.outputs:
            assert np.array_equal(out[5:], (out[:5] @ secret) % 2)

    def test_all_processors_agree_on_secret(self):
        protocol, result = run_prg(n=5, k=3, m=9, seed=4)
        matrices = [protocol.shared_matrix(c) for c in result.contexts]
        for mat in matrices[1:]:
            assert mat == matrices[0]

    def test_joint_output_low_rank(self):
        """The defining structural weakness: the n×m joint output always
        has GF(2) rank at most k."""
        _, result = run_prg(n=24, k=6, m=20, seed=5)
        joint = BitMatrix.from_array(np.stack(result.outputs))
        assert joint.rank() <= 6

    def test_m_equals_k_passthrough(self):
        _, result = run_prg(n=4, k=6, m=6)
        assert result.cost.rounds == 0
        for out in result.outputs:
            assert out.shape == (6,)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MatrixPRGProtocol(0, 4)
        with pytest.raises(ValueError):
            MatrixPRGProtocol(5, 4)


class TestRandomnessAccounting:
    def test_private_bits_match_theorem(self):
        n, k, m = 16, 6, 22
        _, result = run_prg(n=n, k=k, m=m)
        cap = seed_bits_per_processor(n, k, m)
        for used in result.cost.private_bits_per_processor:
            assert used <= cap
        # Processor 0 speaks in every broadcast round.
        assert result.cost.private_bits_per_processor[0] == cap

    def test_output_distribution_matches_prg_dists(self):
        """The protocol's joint output is distributed as PRGOutput: verify
        the structural invariants on many runs."""
        for seed in range(5):
            protocol, result = run_prg(n=10, k=4, m=12, seed=seed)
            joint = np.stack(result.outputs)
            secret = protocol.shared_matrix(result.contexts[0]).to_array()
            assert np.array_equal(joint[:, 4:], (joint[:, :4] @ secret) % 2)
