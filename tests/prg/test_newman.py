"""Tests for the Newman-style simulation (Theorem A.1)."""

import numpy as np
import pytest

from repro.core import Protocol, run_protocol
from repro.prg import (
    NewmanCompiled,
    newman_family_size,
    newman_public_bits,
    simulation_error,
)


class RandomizedEquality(Protocol):
    """A toy randomized workload: each processor broadcasts the parity of
    its input with a fresh random mask bit, for two rounds."""

    def num_rounds(self, n):
        return 2

    def broadcast(self, proc, round_index):
        mask = proc.coins.draw_bit()
        return (int(proc.input.sum()) + mask) % 2

    def output(self, proc):
        return sum(e.message for e in proc.transcript) % 2


class TestParameters:
    def test_public_bits_log_family(self):
        assert newman_public_bits(1024) == 10
        assert newman_public_bits(1000) == 10
        assert newman_public_bits(1) == 1

    def test_family_size_grows_with_precision(self):
        loose = newman_family_size(4, 8, 1, epsilon=0.5)
        tight = newman_family_size(4, 8, 1, epsilon=0.1)
        assert tight >= loose

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            newman_family_size(4, 8, 1, epsilon=0.0)

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            newman_public_bits(0)
        with pytest.raises(ValueError):
            NewmanCompiled(RandomizedEquality(), 0)


class TestCompiled:
    def test_run_batch_backend_identity_with_stateful_protocol(self):
        """Regression: run_batch must give every trial a fresh protocol
        copy.  FingerprintEqualityProtocol caches its probes on ``self``;
        sharing one instance across serial trials made them reuse trial
        1's probes while pool workers redrew them, breaking the
        serial/parallel bit-identity guarantee."""
        from repro.core import ParallelExecutor
        from repro.protocols import FingerprintEqualityProtocol

        compiled = NewmanCompiled(
            FingerprintEqualityProtocol(16, 2), t_family=8, master_seed=3
        )
        inputs = np.ones((4, 16), dtype=np.uint8)
        serial = compiled.run_batch(inputs, 8, seed=3, executor="serial")
        parallel = compiled.run_batch(
            inputs, 8, seed=3, executor=ParallelExecutor(max_workers=2)
        )
        assert [r.transcript.key() for r in serial] == [
            r.transcript.key() for r in parallel
        ]
        # Every trial redraws its own probes: full public-coin cost each.
        assert [r.cost.public_bits for r in serial] == [35] * 8
        assert [r.cost.public_bits for r in parallel] == [35] * 8

    def test_public_bit_accounting(self, rng):
        compiled = NewmanCompiled(RandomizedEquality(), t_family=64)
        inputs = np.ones((4, 3), dtype=np.uint8)
        result = compiled.run(inputs, rng)
        assert result.cost.public_bits == 6

    def test_transcripts_come_from_family(self, rng):
        """With a tiny family the compiled protocol only ever produces the
        family's transcripts."""
        protocol = RandomizedEquality()
        compiled = NewmanCompiled(protocol, t_family=2, master_seed=1)
        inputs = np.ones((3, 2), dtype=np.uint8)
        family_keys = set()
        for seed in compiled.family_seeds:
            res = run_protocol(
                protocol, inputs, rng=np.random.default_rng(seed)
            )
            family_keys.add(res.transcript.key())
        for _ in range(20):
            assert compiled.run(inputs, rng).transcript.key() in family_keys

    def test_simulation_error_decreases_with_family_size(self):
        """Larger families simulate better (the Chernoff argument).

        Theorem A.1 needs T exponential in the transcript length, so we
        use a 2-processor instance (4-outcome transcript space) where
        T = 256 is comfortably in the theorem's regime.
        """
        protocol = RandomizedEquality()
        inputs = np.ones((2, 3), dtype=np.uint8)
        errors = []
        for t in (2, 256):
            compiled = NewmanCompiled(protocol, t_family=t, master_seed=3)
            err = simulation_error(
                protocol,
                compiled,
                inputs,
                n_samples=1500,
                rng=np.random.default_rng(17),
            )
            errors.append(err)
        assert errors[1] < errors[0]

    def test_large_family_small_error(self):
        protocol = RandomizedEquality()
        inputs = np.ones((2, 3), dtype=np.uint8)  # 4-bit transcript space
        compiled = NewmanCompiled(protocol, t_family=1024, master_seed=5)
        err = simulation_error(
            protocol, compiled, inputs, n_samples=2000,
            rng=np.random.default_rng(23),
        )
        # Family deviation ~ sqrt(outcomes/T)/2 ≈ 0.06; plug-in noise over
        # 16 outcomes with 2000 samples ≈ 0.04.
        assert err < 0.15

    def test_vectorized_bit_identical(self):
        """The original-protocol batch rides the key-synthesis fast path
        for supports_batch_keys protocols — same error, no simulation."""
        from repro.protocols import GlobalParityProtocol

        protocol = GlobalParityProtocol()
        inputs = np.ones((3, 4), dtype=np.uint8)
        compiled = NewmanCompiled(protocol, t_family=8, master_seed=2)
        scalar = simulation_error(
            protocol, compiled, inputs, n_samples=200,
            rng=np.random.default_rng(31),
        )
        fast = simulation_error(
            protocol, compiled, inputs, n_samples=200,
            rng=np.random.default_rng(31), vectorized=True,
        )
        assert scalar == fast
        # A deterministic payload is simulated exactly.
        assert fast == 0.0

    def test_vectorized_custom_statistic_falls_back(self):
        """A custom statistic needs recorded transcripts, so the fast
        path declines — with a signal, and identical values."""
        from repro.core import BatchFallbackWarning
        from repro.protocols import GlobalParityProtocol

        protocol = GlobalParityProtocol()
        inputs = np.ones((3, 4), dtype=np.uint8)
        compiled = NewmanCompiled(protocol, t_family=8, master_seed=2)
        statistic = lambda trial: trial.transcript.key()  # noqa: E731
        scalar = simulation_error(
            protocol, compiled, inputs, n_samples=50,
            rng=np.random.default_rng(7), statistic=statistic,
        )
        with pytest.warns(BatchFallbackWarning):
            fast = simulation_error(
                protocol, compiled, inputs, n_samples=50,
                rng=np.random.default_rng(7), statistic=statistic,
                vectorized=True,
            )
        assert scalar == fast
