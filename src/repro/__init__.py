"""repro — Broadcast Congested Clique: Planted Cliques and Pseudorandom
Generators.

A faithful, executable reproduction of Chen & Grossman (PODC 2019):

* :mod:`repro.core` — the ``BCAST(b)`` simulator (protocols, schedulers,
  transcripts, metered randomness);
* :mod:`repro.linalg` — bit-packed GF(2) linear algebra and random-matrix
  rank laws;
* :mod:`repro.infotheory` — entropy/divergence/Fourier tools and
  estimation machinery;
* :mod:`repro.distributions` — ``A_rand``, planted-clique, and PRG-output
  input distributions with the row-independent decomposition;
* :mod:`repro.prg` — the paper's PRG, the derandomization transform, the
  seed-length attack, and the Newman baseline;
* :mod:`repro.cliques` — planted-clique algorithms (Appendix B protocol,
  degree and spectral baselines, exact search);
* :mod:`repro.lowerbounds` — bound calculators, the Section 3 progress
  framework, and the rank/time-hierarchy protocols;
* :mod:`repro.distinguish` — exact transcript distributions and
  Monte-Carlo advantage estimation with concrete distinguishers;
* :mod:`repro.exec` — asynchronous job scheduling over the engine:
  batch futures, the shared work-stealing chunk scheduler, warm worker
  pools, the distributed executor (with once-per-worker published
  inputs), and resumable adaptive sweep driving with priorities and
  cooperative preemption.

Quickstart — describe an execution with :class:`~repro.core.RunSpec` and
run it through the :class:`~repro.core.Engine`::

    import numpy as np
    from repro.core import Engine, RunSpec
    from repro.prg import MatrixPRGProtocol

    prg = MatrixPRGProtocol(k=16, m=64)
    inputs = np.zeros((32, 1), dtype=np.uint8)   # PRG ignores inputs
    spec = RunSpec(protocol=prg, inputs=inputs, seed=0)

    result = Engine().run(spec)                  # one full execution
    print(result.cost.summary())
    print(result.outputs[0])   # 64 pseudo-random bits for processor 0

    # N independent trials; Engine("parallel") fans them out over a
    # process pool with bit-identical results (SeedSequence.spawn seeding)
    batch = Engine("parallel").run_batch(spec, trials=100)
    print(batch.cost_summary())

Specs can sample a fresh input per trial instead of fixing one
(``RunSpec(protocol=..., distribution=UniformRows(8, 16), seed=7)``), and
the Monte-Carlo estimators in :mod:`repro.distinguish`,
:mod:`repro.prg.newman`, :mod:`repro.lowerbounds.hierarchy` and
:mod:`repro.analysis.sweep` all accept an ``executor=`` selecting the same
backends.  :func:`repro.core.run_protocol` remains as a one-line wrapper
over the engine for single executions.
"""

__version__ = "1.0.0"

from . import analysis, cliques, core, distinguish, distributions, infotheory, linalg
from . import exec  # noqa: A004 - the subsystem is named after what it does
from . import lowerbounds, prg, protocols

__all__ = [
    "analysis",
    "cliques",
    "core",
    "distinguish",
    "distributions",
    "exec",
    "infotheory",
    "linalg",
    "lowerbounds",
    "prg",
    "protocols",
    "__version__",
]
