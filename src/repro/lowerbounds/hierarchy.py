"""Average-case hardness of rank and the time hierarchy (Theorems 1.4/1.5).

The separating function of Theorem 1.5 is
``F_k(A) = [the top k × k submatrix of A has full GF(2) rank]``:

* **upper bound** — ``F_k`` is computable *exactly* in ``k`` rounds of
  ``BCAST(1)``: in round ``j`` each of processors ``0 … k-1`` broadcasts
  bit ``j`` of its row; after ``k`` rounds everyone knows the block and
  computes its rank locally (:class:`TopSubmatrixRankProtocol`);
* **lower bound** — by Theorem 1.4 (via the PRG), no ``k/20``-round
  protocol reaches accuracy 0.99 on uniform inputs.  Empirically we sweep
  truncated-budget protocols and verify their accuracy stays pinned near
  the majority-class rate ``1 − Q_0 ≈ 0.711``, far below 0.99, until the
  budget reaches ``k``.

:func:`optimal_accuracy_with_columns` gives the exact accuracy ceiling for
*any* decision rule that sees only the first ``j`` columns of the block —
the information revealed by the truncated protocol — so the measured curve
can be compared with its information-theoretic limit.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine, Executor, RunSpec, derive_seed
from ..core.processor import ProcessorContext
from ..core.protocol import Protocol, require_bits
from ..costs import CostModel, Phase, Sym, min_
from ..distributions.uniform import UniformRows
from ..linalg.batch import BitMatrixBatch
from ..linalg.bitmatrix import BitMatrix

__all__ = [
    "full_rank_indicator",
    "top_submatrix_full_rank",
    "TopSubmatrixRankProtocol",
    "conditional_full_rank_probability",
    "optimal_accuracy_with_columns",
    "accuracy_on_uniform",
    "submit_accuracy_on_uniform",
]


def full_rank_indicator(matrix: np.ndarray) -> int:
    """``F_full-rank``: 1 iff the square 0/1 matrix has full GF(2) rank."""
    matrix = np.asarray(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("full-rank indicator needs a square matrix")
    return int(BitMatrix.from_array(matrix).is_full_rank())


def top_submatrix_full_rank(matrix: np.ndarray, k: int) -> int:
    """``F_k``: 1 iff the leading ``k × k`` block has full GF(2) rank."""
    matrix = np.asarray(matrix)
    if k > min(matrix.shape):
        raise ValueError(f"block size {k} exceeds matrix shape {matrix.shape}")
    return full_rank_indicator(matrix[:k, :k])


class TopSubmatrixRankProtocol(Protocol):
    """Computes ``F_k`` in ``min(rounds_budget, k)`` rounds of ``BCAST(1)``.

    With the full budget (``rounds_budget = k``, the default) the output is
    exact.  With a truncated budget ``j < k`` every processor knows only
    the first ``j`` columns of the block; the output is then the Bayes
    decision given that information: "not full rank" if the revealed
    columns are already dependent (certainty), else the majority of the
    conditional full-rank probability — which stays below 1/2 for every
    ``j < k``, so the truncated protocol answers 0.

    Outputs are a deterministic function of the input matrix, so the
    protocol supports the engine's vectorized fast path: a whole batch of
    trials is decided by one lock-step rank elimination over the revealed
    blocks, and its transcript keys (processors ``0 … k-1`` reveal their
    prefix bits, everyone else broadcasts 0) by one scatter + transpose.
    """

    supports_batch = True
    supports_batch_keys = True

    def __init__(self, k: int, rounds_budget: int | None = None):
        if k < 1:
            raise ValueError("block size k must be positive")
        self.k = k
        self.rounds_budget = k if rounds_budget is None else rounds_budget
        if self.rounds_budget < 0:
            raise ValueError("rounds budget must be non-negative")

    def num_rounds(self, n: int) -> int:
        return min(self.rounds_budget, self.k)

    def cost_model(self) -> CostModel:
        """Exact: ``min(budget, k)`` reveal rounds of ``n`` one-bit turns
        (only processors ``0 … k-1`` broadcast meaningful bits, but every
        processor speaks — silent zeros still cost a turn and a bit)."""
        n, k, budget = Sym("n"), Sym("k"), Sym("budget")
        rounds = min_(budget, k)
        return CostModel(
            [
                Phase(
                    "reveal",
                    rounds=rounds,
                    turns=n * rounds,
                    broadcast_bits=n * rounds,
                )
            ],
            params={"k": self.k, "budget": self.rounds_budget},
        )

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        if proc.proc_id < self.k and round_index < self.k:
            return int(proc.input[round_index])
        return 0

    def _revealed_block(self, proc: ProcessorContext) -> np.ndarray:
        """The ``k × j`` revealed left block (j = rounds actually run)."""
        j = min(self.rounds_budget, self.k)
        block = np.zeros((self.k, j), dtype=np.uint8)
        for event in proc.transcript:
            if event.sender < self.k and event.round_index < j:
                block[event.sender, event.round_index] = event.message
        return block

    def output(self, proc: ProcessorContext) -> int:
        block = self._revealed_block(proc)
        j = block.shape[1]
        if j >= self.k:
            return int(BitMatrix.from_array(block).is_full_rank())
        if j == 0:
            # No information: majority class is "not full rank".
            return 0
        revealed_rank = BitMatrix.from_array(block).rank()
        if revealed_rank < j:
            return 0  # dependent columns already — certainly not full rank
        posterior = conditional_full_rank_probability(self.k, j)
        return int(posterior > 0.5)

    def _validated_block(self, inputs: np.ndarray) -> np.ndarray:
        """The ``(trials, k, j)`` revealed block, shape- and bit-checked —
        shared by :meth:`batch_decisions` and :meth:`batch_keys` so
        scalar-parity validation cannot drift."""
        inputs = np.asarray(inputs)
        j = min(self.rounds_budget, self.k)
        if inputs.ndim != 3 or inputs.shape[1] < self.k or inputs.shape[2] < j:
            raise ValueError(
                f"inputs must expose a {self.k} x {j} revealed block, got "
                f"shape {inputs.shape}"
            )
        revealed = inputs[:, : self.k, :j]
        require_bits(revealed, "revealed block entries")
        return revealed

    def batch_decisions(self, inputs: np.ndarray) -> np.ndarray:
        """Decisions for a ``(trials, n, n)`` batch via one batched rank."""
        revealed = self._validated_block(inputs)
        trials, j = revealed.shape[0], revealed.shape[2]
        if j == 0:
            return np.zeros(trials, dtype=np.uint8)
        ranks = BitMatrixBatch.from_arrays(revealed).rank()
        if j >= self.k:
            return (ranks == self.k).astype(np.uint8)
        full_guess = int(conditional_full_rank_probability(self.k, j) > 0.5)
        return np.where(ranks < j, 0, full_guess).astype(np.uint8)

    def batch_keys(self, inputs: np.ndarray) -> np.ndarray:
        """Transcript keys for a ``(trials, n, >=j)`` batch: in round ``r``
        processor ``p < k`` broadcasts bit ``r`` of its row and everyone
        else broadcasts 0."""
        inputs = np.asarray(inputs)
        revealed = self._validated_block(inputs)
        trials, n = inputs.shape[0], inputs.shape[1]
        j = revealed.shape[2]
        keys = np.zeros((trials, j, n), dtype=np.uint8)
        keys[:, :, : self.k] = revealed.transpose(0, 2, 1)
        return keys.reshape(trials, j * n)


def conditional_full_rank_probability(k: int, j: int) -> float:
    """``Pr[k×k uniform block full rank | first j columns independent]``.

    Each remaining column must avoid the span of its predecessors:
    ``∏_{i=j}^{k-1} (1 − 2^{i-k})``.  Strictly below 1/2 for every
    ``j < k`` (the last factor alone is 1/2).
    """
    if not 0 <= j <= k:
        raise ValueError(f"need 0 <= j <= k, got j={j}, k={k}")
    prob = 1.0
    for i in range(j, k):
        prob *= 1.0 - 2.0 ** (i - k)
    return prob


def optimal_accuracy_with_columns(k: int, j: int) -> float:
    """Exact accuracy ceiling for any rule seeing only the first ``j``
    columns of a uniform ``k × k`` block.

    ``= Pr[first j columns dependent] · 1
       + Pr[independent] · max(q_j, 1 − q_j)``
    where ``q_j`` is :func:`conditional_full_rank_probability`.
    """
    if not 0 <= j <= k:
        raise ValueError(f"need 0 <= j <= k, got j={j}, k={k}")
    p_independent = 1.0
    for i in range(j):
        p_independent *= 1.0 - 2.0 ** (i - k)
    q = conditional_full_rank_probability(k, j)
    return (1.0 - p_independent) + p_independent * max(q, 1.0 - q)


def accuracy_on_uniform(
    protocol: Protocol,
    n: int,
    k: int,
    n_samples: int,
    rng: np.random.Generator,
    target_fn=None,
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> float:
    """Fraction of samples on which processor 0's output matches ``F_k``
    over uniform ``n × n`` input matrices.

    Trials run through the execution engine with per-trial inputs
    recorded; pass ``executor="parallel"`` to spread them over cores, or
    ``vectorized=True`` to evaluate the whole batch (both the protocol's
    decisions and the default ``F_k`` target) with batched GF(2) kernels —
    same seeds, bit-identical accuracy, no per-trial simulation.
    """
    if k > n:
        raise ValueError(f"block size {k} exceeds matrix size {n}")
    spec = _accuracy_spec(protocol, n, rng, vectorized)
    batch = Engine(executor).run_batch(spec, n_samples)
    return _accuracy_from_batch(batch, k, target_fn, n_samples)


def _accuracy_spec(protocol, n, rng, vectorized) -> RunSpec:
    return RunSpec(
        protocol=protocol,
        distribution=UniformRows(n, n),
        seed=derive_seed(rng),
        record_inputs=True,
        vectorized=vectorized,
    )


def _accuracy_from_batch(batch, k, target_fn, n_samples) -> float:
    decisions = np.fromiter(
        (int(trial.outputs[0]) for trial in batch), dtype=np.int64, count=len(batch)
    )
    if target_fn is None and len(batch):
        blocks = np.stack([trial.inputs[:k, :k] for trial in batch])
        targets = (BitMatrixBatch.from_arrays(blocks).rank() == k).astype(np.int64)
    else:
        if target_fn is None:
            target_fn = lambda matrix: top_submatrix_full_rank(matrix, k)  # noqa: E731
        targets = np.fromiter(
            (int(target_fn(trial.inputs)) for trial in batch),
            dtype=np.int64,
            count=len(batch),
        )
    return int((decisions == targets).sum()) / n_samples


def submit_accuracy_on_uniform(
    engine: Engine,
    protocol: Protocol,
    n: int,
    k: int,
    n_samples: int,
    rng: np.random.Generator,
    target_fn=None,
    vectorized: bool = False,
):
    """Asynchronous :func:`accuracy_on_uniform`: submit now, score later.

    Returns a :class:`~repro.exec.futures.BatchFuture` whose ``result()``
    is the accuracy — bit-identical to the blocking call for the same
    ``rng`` state, since the batch seed is drawn here at submission.
    Budget sweeps submit one batch per truncation budget and consume them
    with :func:`repro.exec.as_completed`, overlapping all budgets on a
    warm pool or distributed fleet.
    """
    if k > n:
        raise ValueError(f"block size {k} exceeds matrix size {n}")
    spec = _accuracy_spec(protocol, n, rng, vectorized)
    future = engine.submit_batch(spec, n_samples)
    return future.then(
        lambda batch: _accuracy_from_batch(batch, k, target_fn, n_samples)
    )
