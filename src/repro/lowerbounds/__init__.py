"""Theorem machinery: closed-form bound calculators, the Section 3 progress
framework (exact), and the rank/time-hierarchy protocols."""

from .bounds import (
    full_prg_bound,
    interesting_clique_range,
    lemma_1_8_bound,
    lemma_1_10_bound,
    lemma_4_3_bound,
    lemma_4_4_bound,
    max_rounds_fooled,
    planted_clique_bound,
    planted_clique_one_round_bound,
    toy_prg_bound,
    toy_prg_one_round_bound,
)
from .framework import (
    conditional_support_mask,
    lemma_1_8_statistic,
    lemma_1_10_statistic,
    lemma_5_2_statistic,
    prefix_pmf,
    progress_curve,
    real_distance_curve,
)
from .hierarchy import (
    TopSubmatrixRankProtocol,
    accuracy_on_uniform,
    submit_accuracy_on_uniform,
    conditional_full_rank_probability,
    full_rank_indicator,
    optimal_accuracy_with_columns,
    top_submatrix_full_rank,
)

__all__ = [
    "full_prg_bound",
    "interesting_clique_range",
    "lemma_1_8_bound",
    "lemma_1_10_bound",
    "lemma_4_3_bound",
    "lemma_4_4_bound",
    "max_rounds_fooled",
    "planted_clique_bound",
    "planted_clique_one_round_bound",
    "toy_prg_bound",
    "toy_prg_one_round_bound",
    "conditional_support_mask",
    "lemma_1_8_statistic",
    "lemma_1_10_statistic",
    "lemma_5_2_statistic",
    "prefix_pmf",
    "progress_curve",
    "real_distance_curve",
    "TopSubmatrixRankProtocol",
    "accuracy_on_uniform",
    "submit_accuracy_on_uniform",
    "conditional_full_rank_probability",
    "full_rank_indicator",
    "optimal_accuracy_with_columns",
    "top_submatrix_full_rank",
]
