"""The abstract lower-bound framework of Section 3, made executable.

The paper's engine: to show ``A_pseudo`` is indistinguishable from
``A_rand``,

1. decompose ``A_pseudo = (1/|I|) Σ_I A_I`` into row-independent
   components (:class:`~repro.distributions.base.MixtureDistribution`);
2. track the **progress function**
   ``L_progress(t) = E_I || P_I^{(t)} − P_rand^{(t)} ||`` turn by turn;
3. bound each turn's increment with a statistical inequality about Boolean
   functions on large subsets of the cube.

This module computes all three objects *exactly* on small instances: the
per-turn progress curve, the per-turn real-distance curve (and the triangle
inequality ``L_real ≤ L_progress``), and the statistical-inequality
statistics of Lemmas 1.8/1.10/4.3/4.4/5.2 for arbitrary (partial) Boolean
functions given as truth tables.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..distinguish.exact import (
    ProtocolSpec,
    exact_transcript_pmf,
    transcript_distance,
)
from ..distributions.base import (
    MixtureDistribution,
    RowIndependentDistribution,
    all_bitstrings,
)

__all__ = [
    "prefix_pmf",
    "progress_curve",
    "real_distance_curve",
    "lemma_1_10_statistic",
    "lemma_1_8_statistic",
    "lemma_5_2_statistic",
    "conditional_support_mask",
]


def prefix_pmf(
    pmf: dict[tuple[int, ...], float], n_turns: int
) -> dict[tuple[int, ...], float]:
    """Marginal of a transcript pmf on its first ``n_turns`` payloads."""
    out: dict[tuple[int, ...], float] = {}
    for key, p in pmf.items():
        prefix = key[:n_turns]
        out[prefix] = out.get(prefix, 0.0) + p
    return out


def progress_curve(
    spec: ProtocolSpec,
    mixture: MixtureDistribution,
    reference: RowIndependentDistribution,
    max_components: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """``L_progress(t)`` for every turn ``t = 0 … n_rounds·n``.

    When ``max_components`` is given, a uniform subsample of components is
    used (unbiased estimate of the expectation over ``I``).
    """
    reference_pmf = exact_transcript_pmf(spec, reference)
    components = [c for _, c in mixture.components()]
    if max_components is not None and len(components) > max_components:
        if rng is None:
            rng = np.random.default_rng(0)
        idx = rng.choice(len(components), size=max_components, replace=False)
        components = [components[i] for i in idx]
    total_turns = spec.n_rounds * spec.n
    curve = np.zeros(total_turns + 1)
    for component in components:
        pmf = exact_transcript_pmf(spec, component)
        for t in range(total_turns + 1):
            curve[t] += transcript_distance(
                prefix_pmf(pmf, t), prefix_pmf(reference_pmf, t)
            )
    curve /= len(components)
    return [float(v) for v in curve]


def real_distance_curve(
    spec: ProtocolSpec,
    mixture: MixtureDistribution,
    reference: RowIndependentDistribution,
) -> list[float]:
    """``L_real(t) = ||P_pseudo^{(t)} − P_rand^{(t)}||`` for every turn.

    Always pointwise ≤ the progress curve (triangle inequality) — a
    property test of the framework itself.
    """
    reference_pmf = exact_transcript_pmf(spec, reference)
    mixture_pmf: dict[tuple[int, ...], float] = {}
    for weight, component in mixture.components():
        for key, p in exact_transcript_pmf(spec, component).items():
            mixture_pmf[key] = mixture_pmf.get(key, 0.0) + weight * p
    total_turns = spec.n_rounds * spec.n
    return [
        transcript_distance(
            prefix_pmf(mixture_pmf, t), prefix_pmf(reference_pmf, t)
        )
        for t in range(total_turns + 1)
    ]


# ----------------------------------------------------------------------
# Statistical-inequality statistics (exact, for truth-table functions)
# ----------------------------------------------------------------------
def conditional_support_mask(
    n: int, ones: tuple[int, ...] = (), domain: np.ndarray | None = None
) -> np.ndarray:
    """Boolean mask over ``{0,1}^n`` selecting ``x ∈ D`` with ``x_i = 1``
    for all ``i ∈ ones``; ``domain`` is an optional base mask ``D``."""
    strings = all_bitstrings(n)
    mask = np.ones(strings.shape[0], dtype=bool) if domain is None else domain.copy()
    for i in ones:
        mask &= strings[:, i] == 1
    return mask


def _restricted_mean(truth: np.ndarray, mask: np.ndarray) -> float:
    count = int(mask.sum())
    if count == 0:
        return float("nan")
    return float(truth[mask].mean())


def lemma_1_10_statistic(
    truth: np.ndarray, domain: np.ndarray | None = None
) -> float:
    """``E_{i←[n]} ||f(U_D) − f(U_D^{[i]})||`` for a Boolean truth table.

    With ``domain=None`` this is the total-function Lemma 1.10 statistic
    (bounded by ``O(1/√n)``); with a restricted domain it is the
    Lemma 4.4 statistic (bounded by ``O(√(t/n))`` for ``|D| ≥ 2^{n-t}``).
    Coordinates whose restriction empties the domain contribute the
    convention value 1.
    """
    truth = np.asarray(truth, dtype=float)
    size = truth.shape[0]
    n = size.bit_length() - 1
    if 1 << n != size:
        raise ValueError("truth table length must be a power of two")
    base_mask = (
        np.ones(size, dtype=bool) if domain is None else np.asarray(domain, bool)
    )
    base_mean = _restricted_mean(truth, base_mask)
    total = 0.0
    for i in range(n):
        mask_i = conditional_support_mask(n, (i,), base_mask)
        mean_i = _restricted_mean(truth, mask_i)
        if np.isnan(mean_i):
            total += 1.0
        else:
            total += abs(mean_i - base_mean)
    return total / n


def lemma_1_8_statistic(
    truth: np.ndarray,
    k: int,
    domain: np.ndarray | None = None,
    max_cliques: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """``E_{C∼S_k} ||f(U_D) − f(U_D^C)||`` for a Boolean truth table.

    With ``domain=None`` this is the Lemma 1.8 statistic
    (``≤ O(k/√n)``); restricted domains give Lemma 4.3
    (``≤ O(k√(t/n))``).  Enumerates all size-``k`` subsets unless
    ``max_cliques`` asks for a uniform subsample.
    """
    truth = np.asarray(truth, dtype=float)
    size = truth.shape[0]
    n = size.bit_length() - 1
    if 1 << n != size:
        raise ValueError("truth table length must be a power of two")
    base_mask = (
        np.ones(size, dtype=bool) if domain is None else np.asarray(domain, bool)
    )
    base_mean = _restricted_mean(truth, base_mask)
    subsets = list(combinations(range(n), k))
    if max_cliques is not None and len(subsets) > max_cliques:
        if rng is None:
            rng = np.random.default_rng(0)
        idx = rng.choice(len(subsets), size=max_cliques, replace=False)
        subsets = [subsets[i] for i in idx]
    total = 0.0
    for subset in subsets:
        mask_c = conditional_support_mask(n, subset, base_mask)
        mean_c = _restricted_mean(truth, mask_c)
        if np.isnan(mean_c):
            total += 1.0  # the paper's convention for empty U_D^C
        else:
            total += abs(mean_c - base_mean)
    return total / len(subsets)


def lemma_5_2_statistic(truth: np.ndarray) -> tuple[float, float]:
    """Lemma 5.2: ``Σ_b ||f(U_{k+1}) − f(U[b])||² ≤ E[f]``.

    The truth table is over ``{0,1}^{k+1}`` (last coordinate is the derived
    bit).  Returns ``(lhs, rhs)`` so callers can assert ``lhs ≤ rhs``.
    """
    truth = np.asarray(truth, dtype=float)
    size = truth.shape[0]
    width = size.bit_length() - 1
    if 1 << width != size:
        raise ValueError("truth table length must be a power of two")
    k = width - 1
    strings = all_bitstrings(width)
    heads = strings[:, :k]
    last = strings[:, k]
    overall_mean = float(truth.mean())
    lhs = 0.0
    for b_index in range(1 << k):
        b = np.array([(b_index >> i) & 1 for i in range(k)], dtype=np.uint8)
        parity = (heads @ b) & 1
        mask = parity == last
        lhs += (float(truth[mask].mean()) - overall_mean) ** 2
    return lhs, overall_mean
