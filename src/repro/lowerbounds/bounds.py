"""Closed-form bound calculators for every theorem in the paper.

Each function evaluates the right-hand side of a theorem's inequality for
concrete parameters, so experiments can print "measured vs bound" rows.
``O(·)`` constants are not specified by the paper; every bound takes an
explicit ``constant`` argument (default 1) and the experiments report the
raw scaling term — the reproduction checks *shape* (monotonicity, scaling
exponents, dominance with a fitted constant), not absolute constants.
"""

from __future__ import annotations

import math

__all__ = [
    "lemma_1_10_bound",
    "lemma_1_8_bound",
    "lemma_4_4_bound",
    "lemma_4_3_bound",
    "planted_clique_one_round_bound",
    "planted_clique_bound",
    "toy_prg_one_round_bound",
    "toy_prg_bound",
    "full_prg_bound",
    "interesting_clique_range",
    "max_rounds_fooled",
]


def lemma_1_10_bound(n: int, constant: float = 1.0) -> float:
    """Lemma 1.10: ``E_i ||f(U) − f(U^[i])|| ≤ O(1/√n)``.

    The proof gives the explicit constant 2 (Pinsker applied to an average
    mutual information of ``1/n``).
    """
    return min(1.0, constant / math.sqrt(n))


def lemma_1_8_bound(n: int, k: int, constant: float = 1.0) -> float:
    """Lemma 1.8: ``E_C ||f(U_n) − f(U_n^C)|| ≤ O(k/√n)`` for ``k ≤ n^{1/4}``."""
    return min(1.0, constant * k / math.sqrt(n))


def lemma_4_4_bound(n: int, t: int, constant: float = 1.0) -> float:
    """Lemma 4.4 (partial functions): ``E_i ||f(U_D) − f(U_D^[i])|| ≤ O(√(t/n))``
    for ``|D| ≥ 2^{n-t}``."""
    return min(1.0, constant * math.sqrt(max(t, 1) / n))


def lemma_4_3_bound(n: int, k: int, t: int, constant: float = 1.0) -> float:
    """Lemma 4.3: ``E_C ||f(U_D) − f(U_D^C)|| ≤ O(k·√(t/n))``."""
    return min(1.0, constant * k * math.sqrt(max(t, 1) / n))


def planted_clique_one_round_bound(n: int, k: int, constant: float = 1.0) -> float:
    """Theorem 1.6: one-round transcript distance ``≤ O(k²/√n)``."""
    return min(1.0, constant * k * k / math.sqrt(n))


def planted_clique_bound(n: int, k: int, j: int, constant: float = 1.0) -> float:
    """Theorem 4.1: ``j``-round transcript distance
    ``≤ O(j·k²·√((j + log n)/n))``."""
    return min(
        1.0, constant * j * k * k * math.sqrt((j + math.log2(n)) / n)
    )


def toy_prg_one_round_bound(n: int, k: int, constant: float = 1.0) -> float:
    """Theorem 5.1: one-round transcript distance ``≤ O(n/2^{k/2})``."""
    return min(1.0, constant * n / 2.0 ** (k / 2.0))


def toy_prg_bound(n: int, k: int, j: int, constant: float = 1.0) -> float:
    """Theorem 5.3: ``j ≤ k/10`` rounds, distance ``≤ O(j·n/2^{k/9})``."""
    return min(1.0, constant * j * n / 2.0 ** (k / 9.0))


def full_prg_bound(
    n: int, k: int, m: int, j: int, constant: float = 1.0
) -> float:
    """Theorem 5.4: for ``j ≤ k/10`` and ``m ≤ 2^{k/20}``, distance
    ``≤ O(j·n/2^{k/9})`` (the ``m`` dependence is absorbed for valid ``m``).
    """
    if m > 2.0 ** (k / 20.0) + 1e-9:
        raise ValueError(
            f"Theorem 5.4 requires m ≤ 2^(k/20); got m={m}, k={k}"
        )
    return toy_prg_bound(n, k, j, constant)


def interesting_clique_range(n: int) -> tuple[float, float]:
    """The paper's "interesting" planted-clique regime
    ``(log n, √n)`` (Section 1.2)."""
    return math.log2(n), math.sqrt(n)


def max_rounds_fooled(k: int) -> int:
    """Largest round count the PRG provably fools: ``⌊k/10⌋``."""
    return k // 10
