"""Exact maximum clique via Bron–Kerbosch with pivoting.

Used on the small *activated* subgraphs of the Appendix B protocol (whose
expected size is ``O(n·log²n / k)``) and as ground truth in tests.  The
input is an undirected 0/1 adjacency matrix (use
:func:`~repro.cliques.problem.bidirected_skeleton` first for directed
instances).
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_clique", "max_clique_size", "greedy_clique"]


def max_clique(adjacency: np.ndarray) -> frozenset[int]:
    """A maximum clique of an undirected graph (exact, exponential worst
    case — intended for small or sparse random graphs)."""
    adjacency = np.asarray(adjacency)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError("adjacency must be square")
    neighbours = [
        frozenset(int(v) for v in np.nonzero(adjacency[u])[0] if v != u)
        for u in range(n)
    ]
    best: list[frozenset[int]] = [frozenset()]

    def expand(r: set[int], p: set[int], x: set[int]) -> None:
        if not p and not x:
            if len(r) > len(best[0]):
                best[0] = frozenset(r)
            return
        if len(r) + len(p) <= len(best[0]):
            return  # cannot beat the incumbent
        # Pivot on the vertex covering the most of P.
        pivot = max(p | x, key=lambda u: len(neighbours[u] & p))
        for v in list(p - neighbours[pivot]):
            expand(r | {v}, p & neighbours[v], x & neighbours[v])
            p.remove(v)
            x.add(v)

    expand(set(), set(range(n)), set())
    return best[0]


def max_clique_size(adjacency: np.ndarray) -> int:
    """Size of the maximum clique."""
    return len(max_clique(adjacency))


def greedy_clique(adjacency: np.ndarray, order: np.ndarray | None = None) -> frozenset[int]:
    """Greedy clique: scan vertices (default: by decreasing degree) and add
    each one adjacent to everything taken so far.  Fast baseline."""
    adjacency = np.asarray(adjacency)
    n = adjacency.shape[0]
    if order is None:
        order = np.argsort(-adjacency.sum(axis=1), kind="stable")
    chosen: list[int] = []
    for v in order:
        v = int(v)
        if all(adjacency[v, u] for u in chosen):
            chosen.append(v)
    return frozenset(chosen)
