"""Planted-clique problem, algorithms and baselines: the distributed
Appendix B protocol, the degree heuristic, the centralized spectral
comparator, and exact max-clique ground truth."""

from .problem import (
    PlantedCliqueInstance,
    bidirected_skeleton,
    generate_instance,
    is_directed_clique,
    recovery_quality,
)
from .exhaustive import greedy_clique, max_clique, max_clique_size
from .degree import degree_candidates, degree_recover
from .detection_bounds import (
    degree_crossover_estimate,
    degree_profile_advantage_estimate,
    row_weight_pmf_planted,
    row_weight_pmf_rand,
    single_row_weight_tv,
)
from .spectral import spectral_recover
from .subsample import (
    PlantedCliqueSubsampleProtocol,
    activation_probability,
    expected_rounds,
    subsample_recover,
)

__all__ = [
    "PlantedCliqueInstance",
    "bidirected_skeleton",
    "generate_instance",
    "is_directed_clique",
    "recovery_quality",
    "greedy_clique",
    "max_clique",
    "max_clique_size",
    "degree_candidates",
    "degree_recover",
    "degree_crossover_estimate",
    "degree_profile_advantage_estimate",
    "row_weight_pmf_planted",
    "row_weight_pmf_rand",
    "single_row_weight_tv",
    "spectral_recover",
    "PlantedCliqueSubsampleProtocol",
    "activation_probability",
    "expected_rounds",
    "subsample_recover",
]
