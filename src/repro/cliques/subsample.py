"""The Appendix B planted-clique protocol (Theorem B.1).

For ``k = ω(log² n)`` the hidden clique can be *found* in
``O(n/k · polylog n)`` rounds of ``BCAST(1)`` with probability
``1 - 1/n²``:

1. every processor activates itself with probability ``p = log²n / k``
   and broadcasts the decision (1 round);
2. if more than ``2np`` processors activated, abort;
3. the activated processors broadcast the induced subgraph: in round
   ``1 + t`` each activated processor broadcasts its edge toward the
   ``t``-th activated vertex (``N_active`` rounds — everyone then knows
   every activated row restricted to the activated set);
4. everyone locally computes the maximum clique ``C_active`` of the
   activated *bidirected* subgraph; if it is smaller than the threshold
   (``p·k/2`` expected activated clique members), abort;
5. every processor broadcasts whether it has out-edges to at least a
   ``9/10`` fraction of ``C_active`` (1 round); the claimants are the
   recovered clique.

Membership testing uses out-edges only: a non-member has each edge toward
``C_active ∩ C`` independently with probability 1/2, so reaching a 9/10
fraction of ``|C_active| ≈ log²n`` vertices has probability
``2^{-Ω(log²n)}`` — negligible — while true members reach all of
``C_active ∩ C`` deterministically.

The class below is the protocol with exact round accounting (dynamic round
count: ``2 + N_active`` or 1 on abort); :func:`subsample_recover` is the
same algorithm run centrally for large-scale benchmarking.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol, require_bits
from ..core.randomness import expand_seed
from ..core.transcript import Transcript
from ..costs import Const, CostModel, Phase, Realized, Sym
from .exhaustive import max_clique
from .problem import bidirected_skeleton

__all__ = [
    "PlantedCliqueSubsampleProtocol",
    "subsample_recover",
    "activation_probability",
    "expected_rounds",
]

#: Precision (bits) used to realise the biased activation coin.
_COIN_PRECISION = 24


def activation_probability(n: int, k: int, factor: float = 1.0) -> float:
    """``p = factor · log²n / k``, clamped to [0, 1] (log base 2)."""
    if n < 2:
        raise ValueError("need at least 2 processors")
    log_n = math.log2(n)
    return min(1.0, factor * log_n * log_n / k)


def expected_rounds(n: int, k: int, factor: float = 1.0) -> float:
    """Expected round count ``2 + n·p = O(n/k · polylog n)``."""
    return 2.0 + n * activation_probability(n, k, factor)


class PlantedCliqueSubsampleProtocol(Protocol):
    """Executable Appendix B protocol.

    Parameters
    ----------
    k:
        The planted clique size the protocol targets.
    activation_factor:
        Multiplier on the activation probability ``log²n / k`` — the
        theorem's constant, exposed for finite-size tuning.
    support_fraction:
        The membership threshold (paper: ``9/10``).
    clique_threshold_factor:
        Abort unless the activated max clique reaches this fraction of its
        expectation ``p·k`` (paper: ``1/2``).

    Outputs: every processor outputs the recovered ``frozenset`` of
    claimant vertices, or ``None`` if the protocol aborted.

    The protocol is randomized, but its only coin use is the round-0
    activation draw — ``_COIN_PRECISION`` private bits per processor — so
    it supports the engine's vectorized fast path: the engine hands
    ``batch_decisions`` / ``batch_keys`` the per-processor coin seeds it
    would have given the scalar simulator, and the batch replays the same
    draws bit for bit.
    """

    supports_batch = True
    supports_batch_keys = True
    batch_uses_coins = True
    batch_coin_bits = _COIN_PRECISION

    def __init__(
        self,
        k: int,
        activation_factor: float = 1.0,
        support_fraction: float = 0.9,
        clique_threshold_factor: float = 0.5,
    ):
        if k < 1:
            raise ValueError("clique size k must be positive")
        self.k = k
        self.activation_factor = activation_factor
        self.support_fraction = support_fraction
        self.clique_threshold_factor = clique_threshold_factor
        self._clique_cache: dict[tuple, frozenset[int] | None] = {}

    # ------------------------------------------------------------------
    # Round structure
    # ------------------------------------------------------------------
    def num_rounds(self, n: int) -> int:
        """Worst-case cap; the run terminates dynamically via ``finished``."""
        return n + 2

    def _activation_cap(self, n: int) -> float:
        return 2.0 * n * activation_probability(n, self.k, self.activation_factor)

    def _active_set(self, transcript: Transcript) -> list[int]:
        return sorted(
            e.sender for e in transcript.messages_in_round(0) if e.message == 1
        )

    def _aborted_after_activation(self, n: int, transcript: Transcript) -> bool:
        active = self._active_set(transcript)
        return len(active) > self._activation_cap(n) or len(active) < 2

    def finished(self, n: int, transcript: Transcript, completed_rounds: int) -> bool:
        if completed_rounds < 1:
            return False
        if self._aborted_after_activation(n, transcript):
            return True
        return completed_rounds >= len(self._active_set(transcript)) + 2

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------
    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        if round_index == 0:
            p = activation_probability(proc.n, self.k, self.activation_factor)
            draw = proc.coins.draw_int(_COIN_PRECISION)
            active = int(draw < p * (1 << _COIN_PRECISION))
            proc.memory["active"] = bool(active)
            return active
        active = self._active_set(proc.transcript)
        if round_index <= len(active):
            # Edge-broadcast phase: my edge toward the t-th activated vertex.
            if proc.memory.get("active"):
                target = active[round_index - 1]
                return int(proc.input[target])
            return 0
        # Membership round.
        return self._membership_claim(proc)

    def _activated_subgraph(self, proc: ProcessorContext) -> np.ndarray:
        """The activated induced directed subgraph from the transcript."""
        active = self._active_set(proc.transcript)
        size = len(active)
        position = {v: t for t, v in enumerate(active)}
        sub = np.zeros((size, size), dtype=np.uint8)
        for event in proc.transcript:
            if 1 <= event.round_index <= size and event.sender in position:
                sub[position[event.sender], event.round_index - 1] = event.message
        np.fill_diagonal(sub, 0)
        return sub

    def _active_clique(self, proc: ProcessorContext) -> frozenset[int] | None:
        """Max clique of the activated bidirected subgraph (None if the
        abort threshold is missed).  Deterministic, so every processor
        computes the same set; cached per transcript prefix."""
        active = self._active_set(proc.transcript)
        cache_key = proc.transcript.prefix((len(active) + 1) * proc.n).key()
        if cache_key in self._clique_cache:
            return self._clique_cache[cache_key]
        sub = self._activated_subgraph(proc)
        skeleton = sub & sub.T
        local = max_clique(skeleton)
        p = activation_probability(proc.n, self.k, self.activation_factor)
        threshold = self.clique_threshold_factor * p * self.k
        if len(local) < threshold:
            result: frozenset[int] | None = None
        else:
            result = frozenset(active[t] for t in local)
        self._clique_cache[cache_key] = result
        return result

    def _membership_claim(self, proc: ProcessorContext) -> int:
        clique = self._active_clique(proc)
        if clique is None:
            return 0
        others = [v for v in clique if v != proc.proc_id]
        if not others:
            return 0
        support = sum(int(proc.input[v]) for v in others)
        return int(support >= self.support_fraction * len(others))

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def output(self, proc: ProcessorContext) -> frozenset[int] | None:
        if self._aborted_after_activation(proc.n, proc.transcript):
            return None
        if self._active_clique(proc) is None:
            return None
        active = self._active_set(proc.transcript)
        membership_round = len(active) + 1
        claimants = frozenset(
            e.sender
            for e in proc.transcript.messages_in_round(membership_round)
            if e.message == 1
        )
        return claimants

    # ------------------------------------------------------------------
    # Symbolic cost model
    # ------------------------------------------------------------------
    def cost_model(self) -> CostModel:
        """Bounded: the realized round count ``R`` (1 on activation abort,
        else ``N_active + 2``) is measured; at that ``R`` every kind is
        exact — one activation round costing ``_COIN_PRECISION`` private
        bits per processor, then ``R - 1`` single-bit rounds for the edge
        and membership phases."""
        n, rounds = Sym("n"), Sym("R")
        return CostModel(
            [
                Phase(
                    "activation",
                    rounds=1,
                    turns=n,
                    broadcast_bits=n,
                    total_private_bits=Const(_COIN_PRECISION) * n,
                ),
                Phase(
                    "edges+membership",
                    rounds=rounds - 1,
                    turns=n * (rounds - 1),
                    broadcast_bits=n * (rounds - 1),
                ),
            ],
            realized=[Realized("R", source="rounds", lo=1, hi=n + 2)],
        )

    # ------------------------------------------------------------------
    # Vectorized fast path
    # ------------------------------------------------------------------
    def _batch_trace(
        self, inputs: np.ndarray, coin_seeds: np.ndarray | None
    ) -> tuple[np.ndarray, list[tuple[int, ...]]]:
        """Batched replay shared by :meth:`batch_decisions` and
        :meth:`batch_keys` (memoized on the input/seed identities).

        Activation draws replay the scalar per-processor coin chain
        (``expand_seed`` of each engine-supplied seed, one
        ``_COIN_PRECISION``-bit draw); the per-trial edge and membership
        rounds are then single fancy-indexing passes over the adjacency
        stack, with only the max-clique search left per trial.
        """
        cached = getattr(self, "_batch_cache", None)
        if (
            cached is not None
            and cached[0] is inputs
            and cached[1] is coin_seeds
        ):
            return cached[2], cached[3]
        if coin_seeds is None:
            raise ValueError(
                "the subsample protocol draws private coins; batch calls "
                "must supply coin_seeds (the engine does, via "
                "batch_uses_coins)"
            )
        stack = np.asarray(inputs, dtype=np.uint8)
        if stack.ndim != 3:
            raise ValueError(
                f"inputs must be a (trials, n, m) stack, got shape {stack.shape}"
            )
        trials, n, m = stack.shape
        if m < n:
            raise ValueError(
                f"adjacency rows must cover all n={n} vertices, got {m} bits"
            )
        require_bits(stack[:, :, :n], "subsample adjacency")
        seeds = np.asarray(coin_seeds)
        if seeds.shape != (trials, n):
            raise ValueError(
                f"coin_seeds must have shape ({trials}, {n}), got {seeds.shape}"
            )
        p = activation_probability(n, self.k, self.activation_factor)
        draws = np.empty((trials, n), dtype=np.int64)
        for t in range(trials):
            for i in range(n):
                draws[t, i] = expand_seed(int(seeds[t, i])).integers(
                    0, 1 << _COIN_PRECISION
                )
        active_mask = draws < p * (1 << _COIN_PRECISION)
        counts = active_mask.sum(axis=1)
        cap = 2.0 * n * p
        threshold = self.clique_threshold_factor * p * self.k
        diag = np.arange(n)
        outputs = np.empty(trials, dtype=object)
        keys: list[tuple[int, ...]] = []
        for t in range(trials):
            activation_bits = active_mask[t].astype(np.int64)
            if counts[t] > cap or counts[t] < 2:
                outputs[t] = None
                keys.append(tuple(int(v) for v in activation_bits))
                continue
            adj = stack[t, :, :n]
            active = np.nonzero(active_mask[t])[0]
            # Round 1 + r: everyone's edge toward the r-th activated
            # vertex (inactive processors broadcast 0).
            edge_block = np.where(active_mask[t][:, None], adj[:, active], 0)
            sub = adj[np.ix_(active, active)].copy()
            np.fill_diagonal(sub, 0)
            local = max_clique(sub & sub.T)
            if len(local) < threshold:
                outputs[t] = None
                membership = np.zeros(n, dtype=np.int64)
            else:
                cols = active[np.array(sorted(local), dtype=np.int64)]
                in_clique = np.zeros(n, dtype=np.int64)
                in_clique[cols] = 1
                support = (
                    adj[:, cols].sum(axis=1).astype(np.int64)
                    - in_clique * adj[diag, diag].astype(np.int64)
                )
                len_others = len(cols) - in_clique
                claims = (
                    support >= self.support_fraction * len_others
                ).astype(np.int64)
                membership = np.where(len_others == 0, 0, claims)
                outputs[t] = frozenset(
                    int(v) for v in np.nonzero(membership == 1)[0]
                )
            key = np.concatenate(
                [
                    activation_bits,
                    edge_block.T.reshape(-1).astype(np.int64),
                    membership,
                ]
            )
            keys.append(tuple(int(v) for v in key))
        self._batch_cache = (inputs, coin_seeds, outputs, keys)
        return outputs, keys

    def batch_decisions(
        self, inputs: np.ndarray, coin_seeds: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-trial recovered cliques (or ``None``) for a whole
        ``(trials, n, m)`` batch under engine-supplied coin seeds."""
        outputs, _ = self._batch_trace(inputs, coin_seeds)
        return outputs

    def batch_keys(
        self, inputs: np.ndarray, coin_seeds: np.ndarray | None = None
    ) -> list[tuple[int, ...]]:
        """Ragged per-trial transcript keys: activation bits, then the
        edge rounds in round-major order, then the membership round
        (activation bits only on abort)."""
        _, keys = self._batch_trace(inputs, coin_seeds)
        return keys


def subsample_recover(
    adjacency: np.ndarray,
    k: int,
    rng: np.random.Generator,
    activation_factor: float = 1.0,
    support_fraction: float = 0.9,
    clique_threshold_factor: float = 0.5,
) -> tuple[frozenset[int] | None, int]:
    """Centralised run of the Appendix B algorithm.

    Returns ``(recovered set or None, simulated BCAST(1) round count)`` —
    the same quantities the protocol produces, without simulator overhead,
    for large-``n`` benchmarking.
    """
    adjacency = np.asarray(adjacency, dtype=np.uint8)
    n = adjacency.shape[0]
    p = activation_probability(n, k, activation_factor)
    active = np.nonzero(rng.random(n) < p)[0]
    rounds = 1
    if len(active) > 2 * n * p or len(active) < 2:
        return None, rounds
    rounds += len(active) + 1
    sub = adjacency[np.ix_(active, active)]
    skeleton = bidirected_skeleton(sub)
    local = max_clique(skeleton)
    if len(local) < clique_threshold_factor * p * k:
        return None, rounds
    clique_vertices = [int(active[t]) for t in local]
    claimants = []
    for u in range(n):
        others = [v for v in clique_vertices if v != u]
        if not others:
            continue
        support = int(adjacency[u, others].sum())
        if support >= support_fraction * len(others):
            claimants.append(u)
    return frozenset(claimants), rounds
