"""Planted-clique problem instances and verification.

The paper's graphs are *directed*: an instance is an ``n × n`` 0/1
adjacency matrix with zero diagonal, and a set ``C`` is a planted clique
iff **every ordered pair** within ``C`` is an edge (``A[u, v] = 1`` for all
``u ≠ v ∈ C``).  The *bidirected skeleton* — the undirected graph keeping
``{u, v}`` iff both ``A[u, v]`` and ``A[v, u]`` are 1 — is where clique
search happens: in a random digraph each skeleton edge appears with
probability 1/4, while planted cliques survive in full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions.planted_clique import PlantedClique
from ..distributions.uniform import RandomDigraph

__all__ = [
    "PlantedCliqueInstance",
    "generate_instance",
    "is_directed_clique",
    "bidirected_skeleton",
    "recovery_quality",
]


@dataclass
class PlantedCliqueInstance:
    """A problem instance: adjacency matrix plus (optional) ground truth."""

    adjacency: np.ndarray
    planted: frozenset[int] | None

    @property
    def n(self) -> int:
        return self.adjacency.shape[0]

    @property
    def has_planted_clique(self) -> bool:
        return self.planted is not None


def generate_instance(
    n: int, k: int | None, rng: np.random.Generator
) -> PlantedCliqueInstance:
    """Draw an instance: from ``A_k`` if ``k`` given, else from ``A_rand``."""
    if k is None:
        return PlantedCliqueInstance(RandomDigraph(n).sample(rng), None)
    matrix, clique = PlantedClique(n, k).sample_with_clique(rng)
    return PlantedCliqueInstance(matrix, clique)


def is_directed_clique(adjacency: np.ndarray, vertices) -> bool:
    """True iff every ordered pair inside ``vertices`` is an edge."""
    members = sorted(set(int(v) for v in vertices))
    for u in members:
        for v in members:
            if u != v and not adjacency[u, v]:
                return False
    return True


def bidirected_skeleton(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric 0/1 matrix of pairs connected in **both** directions."""
    adjacency = np.asarray(adjacency, dtype=np.uint8)
    skeleton = adjacency & adjacency.T
    np.fill_diagonal(skeleton, 0)
    return skeleton


def recovery_quality(
    recovered, planted: frozenset[int] | None
) -> tuple[float, float]:
    """``(precision, recall)`` of a recovered vertex set vs the ground truth."""
    if planted is None:
        raise ValueError("instance has no planted clique to compare against")
    recovered = set(int(v) for v in recovered)
    if not recovered:
        return 0.0, 0.0
    hits = len(recovered & planted)
    return hits / len(recovered), hits / len(planted)
