"""The degree heuristic for planted clique.

"Once k goes substantially above √n, it is possible to find the clique by
considering the vertices with highest degree" (Section 1.2).  Clique
members gain ``≈ (k-1)/2`` expected out-degree over the background
``(n-1)/2`` with fluctuation ``Θ(√n)``, so top-``k``-by-degree recovers
the clique when ``k = Ω(√(n log n))`` and fails below — the crossover the
benchmark ``bench_clique_algorithms`` maps out against the lower-bound
regime ``k ≤ n^{1/4}``.
"""

from __future__ import annotations

import numpy as np

from .problem import bidirected_skeleton

__all__ = ["degree_candidates", "degree_recover"]


def degree_candidates(adjacency: np.ndarray, k: int) -> frozenset[int]:
    """The ``k`` vertices of largest total degree (in + out)."""
    adjacency = np.asarray(adjacency)
    totals = adjacency.sum(axis=1) + adjacency.sum(axis=0)
    top = np.argsort(-totals, kind="stable")[:k]
    return frozenset(int(v) for v in top)


def degree_recover(
    adjacency: np.ndarray, k: int, refine_rounds: int = 2
) -> frozenset[int]:
    """Degree heuristic with local refinement.

    Start from the top-``k`` degree vertices, then repeatedly re-select the
    ``k`` vertices with the most bidirected edges into the current
    candidate set — a couple of rounds of this cleans up the stragglers the
    raw degree ranking misses.
    """
    skeleton = bidirected_skeleton(adjacency)
    candidates = np.zeros(adjacency.shape[0], dtype=bool)
    for v in degree_candidates(adjacency, k):
        candidates[v] = True
    for _ in range(refine_rounds):
        support = skeleton @ candidates.astype(np.int64)
        top = np.argsort(-support, kind="stable")[:k]
        refreshed = np.zeros_like(candidates)
        refreshed[top] = True
        if np.array_equal(refreshed, candidates):
            break
        candidates = refreshed
    return frozenset(int(v) for v in np.nonzero(candidates)[0])
