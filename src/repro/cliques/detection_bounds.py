"""Information-theoretic ceilings for degree-based clique detection.

Theorem 1.6 bounds what *any* one-round protocol can do; this module
computes, in closed form, what the specific *degree statistics* can do —
the exact total-variation distance between a processor's row-weight
distribution under ``A_rand`` and under ``A_k``:

* under ``A_rand`` the row weight is ``Binomial(n-1, 1/2)``;
* under ``A_k`` the row weight is the mixture: with probability ``k/n``
  the processor is in the clique and its weight is
  ``(k-1) + Binomial(n-k, 1/2)``, else ``Binomial(n-1, 1/2)``.

The TV distance between these is the best advantage any test of a single
row's weight can achieve; ``n`` independent-looking rows give roughly an
``√n``-fold amplification via the central limit of the degree profile.
These ceilings explain *where* the measured crossover of the degree attack
falls (``k ≍ √(n log n)``), complementing the universal lower bound.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "row_weight_pmf_rand",
    "row_weight_pmf_planted",
    "single_row_weight_tv",
    "degree_profile_advantage_estimate",
    "degree_crossover_estimate",
]


def _binomial_pmf(n: int, p: float) -> np.ndarray:
    """pmf of Binomial(n, p) on {0, …, n}, numerically stable for our n."""
    pmf = np.zeros(n + 1)
    log_p, log_q = math.log(p), math.log(1 - p)
    for k in range(n + 1):
        log_choose = (
            math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
        )
        pmf[k] = math.exp(log_choose + k * log_p + (n - k) * log_q)
    return pmf / pmf.sum()


def row_weight_pmf_rand(n: int) -> np.ndarray:
    """pmf of a row's weight under ``A_rand``: Binomial(n-1, 1/2)."""
    if n < 2:
        raise ValueError("need at least two vertices")
    full = np.zeros(n)
    full[: n] = _binomial_pmf(n - 1, 0.5)
    return full


def row_weight_pmf_planted(n: int, k: int) -> np.ndarray:
    """pmf of a row's weight under ``A_k`` (mixture of member/non-member)."""
    if not 1 <= k <= n:
        raise ValueError(f"clique size k={k} out of range for n={n}")
    non_member = row_weight_pmf_rand(n)
    member = np.zeros(n)
    tail = _binomial_pmf(n - k, 0.5)
    member[k - 1 : k - 1 + len(tail)] = tail
    return (k / n) * member + (1 - k / n) * non_member


def single_row_weight_tv(n: int, k: int) -> float:
    """Exact TV distance between one row's weight under the two cases.

    This is the advantage ceiling for any single-processor degree test —
    already ``O(k/n · k/√n)``-ish small in the lower-bound regime.
    """
    return float(
        0.5
        * np.abs(
            row_weight_pmf_rand(n) - row_weight_pmf_planted(n, k)
        ).sum()
    )


def degree_profile_advantage_estimate(n: int, k: int) -> float:
    """Heuristic ceiling for the full n-row degree profile.

    Treating rows as independent (they are not exactly, but nearly so off
    the clique), n repetitions amplify the per-row squared Hellinger
    affinity; we report the standard ``min(1, √n · tv_row)`` estimate —
    a *ceiling shape*, not a bound, used to locate the crossover.
    """
    return min(1.0, math.sqrt(n) * single_row_weight_tv(n, k))


def degree_crossover_estimate(n: int, threshold: float = 0.25) -> int:
    """Smallest k whose estimated profile advantage exceeds ``threshold``.

    Lands at ``k ≍ √(n log n)`` — the "substantially above √n" of
    Section 1.2.
    """
    for k in range(2, n + 1):
        if degree_profile_advantage_estimate(n, k) >= threshold:
            return k
    return n
