"""The classical spectral algorithm for planted clique.

The centralized baseline ([FK00]-style, as referenced in Section 1.4's
related work): for ``k = Ω(√n)`` the planted clique shifts the top of the
spectrum of the centred adjacency matrix, and the leading eigenvector's
largest coordinates concentrate on the clique.  We run it on the
*bidirected skeleton* of the directed instance (edge probability 1/4 off
the clique, 1 on it), centre by the background mean, take the top-``k``
coordinates of the leading eigenvector, and refine by neighbour support.

This is a *non-distributed* comparator: it sees the whole matrix at once.
Its success threshold (``k ≈ c√n``) bounds from above what any distributed
protocol could hope for and anchors the experiment's "who wins where"
narrative.
"""

from __future__ import annotations

import numpy as np

from .problem import bidirected_skeleton

__all__ = ["spectral_recover"]


def spectral_recover(
    adjacency: np.ndarray, k: int, refine_rounds: int = 3
) -> frozenset[int]:
    """Recover a candidate clique with the spectral method.

    Parameters
    ----------
    adjacency:
        Directed adjacency matrix of the instance.
    k:
        Target clique size.
    refine_rounds:
        Rounds of neighbour-support refinement applied to the spectral
        candidate set.
    """
    skeleton = bidirected_skeleton(adjacency).astype(float)
    n = skeleton.shape[0]
    # Background skeleton density of a random digraph is 1/4.
    centred = skeleton - 0.25 * (1.0 - np.eye(n))
    eigenvalues, eigenvectors = np.linalg.eigh(centred)
    leading = eigenvectors[:, int(np.argmax(eigenvalues))]
    # The eigenvector's sign is arbitrary; pick the orientation whose top
    # coordinates form the denser candidate set.
    best_set: frozenset[int] = frozenset()
    best_score = -1.0
    skeleton_u8 = skeleton.astype(np.uint8)
    for oriented in (leading, -leading):
        top = np.argsort(-oriented, kind="stable")[:k]
        candidates = frozenset(int(v) for v in top)
        score = _internal_density(skeleton_u8, candidates)
        if score > best_score:
            best_score = score
            best_set = candidates
    return _refine(skeleton_u8, best_set, k, refine_rounds)


def _internal_density(skeleton: np.ndarray, vertices: frozenset[int]) -> float:
    members = sorted(vertices)
    if len(members) < 2:
        return 0.0
    block = skeleton[np.ix_(members, members)]
    pairs = len(members) * (len(members) - 1)
    return float(block.sum()) / pairs


def _refine(
    skeleton: np.ndarray, candidates: frozenset[int], k: int, rounds: int
) -> frozenset[int]:
    indicator = np.zeros(skeleton.shape[0], dtype=np.int64)
    for v in candidates:
        indicator[v] = 1
    for _ in range(rounds):
        support = skeleton @ indicator
        top = np.argsort(-support, kind="stable")[:k]
        refreshed = np.zeros_like(indicator)
        refreshed[top] = 1
        if np.array_equal(refreshed, indicator):
            break
        indicator = refreshed
    return frozenset(int(v) for v in np.nonzero(indicator)[0])
