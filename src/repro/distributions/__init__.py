"""Input distributions: uniform, planted clique, and PRG outputs, with the
row-independent decomposition machinery of Section 3."""

from .base import (
    InputDistribution,
    MixtureDistribution,
    RowIndependentDistribution,
    all_bitstrings,
)
from .uniform import RandomDigraph, UniformRows
from .planted_clique import PlantedClique, PlantedCliqueAt
from .prg_dists import PRGOutput, SharedMatrixRows, SharedVectorRows, ToyPRGOutput
from .lowrank import RankDeficientMatrix
from .undirected import UndirectedPlantedClique, UndirectedRandomGraph
from .decomposition import empirical_matrix_pmf, exact_matrix_pmf, pmf_distance

__all__ = [
    "InputDistribution",
    "MixtureDistribution",
    "RowIndependentDistribution",
    "all_bitstrings",
    "RandomDigraph",
    "UniformRows",
    "PlantedClique",
    "PlantedCliqueAt",
    "PRGOutput",
    "SharedMatrixRows",
    "SharedVectorRows",
    "ToyPRGOutput",
    "RankDeficientMatrix",
    "UndirectedPlantedClique",
    "UndirectedRandomGraph",
    "empirical_matrix_pmf",
    "exact_matrix_pmf",
    "pmf_distance",
]
