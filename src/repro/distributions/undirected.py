"""Undirected planted clique — the Section 9 open-problem extension.

The paper: "It would be interesting to extend the framework to work for
undirected graphs as well.  This causes the rows of the input matrix not
to be independent (instead, each pair of rows contain one shared bit)."

These distributions implement exactly that setting: symmetric adjacency
matrices where ``A[i, j] = A[j, i]`` is a *single* shared coin.  They are
deliberately **not** :class:`RowIndependentDistribution` subclasses — the
row dependence is the open problem — but they expose
:meth:`enumerate_support` so the brute-force exact transcript engine
(:func:`repro.distinguish.exact.brute_force_transcript_pmf`) can measure
distances on tiny instances, giving the conjectured undirected analogue of
Theorem 1.6 an empirical footing.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterator

import numpy as np

from .base import InputDistribution

__all__ = ["UndirectedRandomGraph", "UndirectedPlantedClique"]


def _symmetric_from_edge_bits(n: int, bits: int) -> np.ndarray:
    """Decode ``C(n,2)`` little-endian edge bits into a symmetric matrix."""
    matrix = np.zeros((n, n), dtype=np.uint8)
    position = 0
    for i in range(n):
        for j in range(i + 1, n):
            value = (bits >> position) & 1
            matrix[i, j] = matrix[j, i] = value
            position += 1
    return matrix


class UndirectedRandomGraph(InputDistribution):
    """G(n, 1/2): each unordered pair is one fair coin, zero diagonal.

    Processor ``i`` receives row ``i`` — so processors ``i`` and ``j``
    *share* the bit ``A[i, j]``: rows are pairwise dependent.
    """

    def __init__(self, n: int):
        super().__init__(n, n)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        upper = np.triu(
            rng.integers(0, 2, size=(self.n, self.n), dtype=np.uint8), 1
        )
        return upper | upper.T

    def n_edge_bits(self) -> int:
        return comb(self.n, 2)

    def enumerate_support(self) -> Iterator[tuple[np.ndarray, float]]:
        """All ``2^{C(n,2)}`` graphs with their probabilities (tiny n only)."""
        edge_bits = self.n_edge_bits()
        if edge_bits > 20:
            raise ValueError(
                f"enumerating 2^{edge_bits} graphs is infeasible; sample instead"
            )
        total = 1 << edge_bits
        prob = 1.0 / total
        for bits in range(total):
            yield _symmetric_from_edge_bits(self.n, bits), prob


class UndirectedPlantedClique(InputDistribution):
    """G(n, 1/2) with a clique planted on a random size-``k`` vertex set."""

    def __init__(self, n: int, k: int):
        super().__init__(n, n)
        if not 0 < k <= n:
            raise ValueError(f"clique size k={k} must satisfy 0 < k <= n={n}")
        self.k = k

    def sample_with_clique(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, frozenset[int]]:
        matrix = UndirectedRandomGraph(self.n).sample(rng)
        clique = frozenset(
            int(v) for v in rng.choice(self.n, size=self.k, replace=False)
        )
        members = sorted(clique)
        for a in members:
            for b in members:
                if a != b:
                    matrix[a, b] = 1
        return matrix, clique

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        matrix, _ = self.sample_with_clique(rng)
        return matrix

    def enumerate_support(self) -> Iterator[tuple[np.ndarray, float]]:
        """All (graph, probability) pairs of the mixture (tiny n only).

        Enumerates clique placements × free edge bits; probabilities of
        coinciding matrices are merged by the caller's accumulation (the
        same adjacency matrix may arise from several placements).
        """
        edge_bits = comb(self.n, 2)
        if edge_bits > 18:
            raise ValueError(
                f"enumerating 2^{edge_bits} graphs is infeasible; sample instead"
            )
        placements = list(combinations(range(self.n), self.k))
        base = UndirectedRandomGraph(self.n)
        weight = 1.0 / len(placements)
        for clique in placements:
            members = list(clique)
            for matrix, prob in base.enumerate_support():
                planted = matrix.copy()
                rows, cols = np.ix_(members, members)
                planted[rows, cols] = 1
                np.fill_diagonal(planted, 0)
                yield planted, prob * weight
