"""Input-distribution abstractions.

Inputs to an ``n``-processor protocol are ``n × m`` 0/1 matrices; processor
``i`` receives row ``i``.  Two structural properties drive everything in
the paper:

* **row independence** — a distribution whose rows are mutually independent
  can be analysed one broadcast at a time (each processor's input says
  nothing about the others'); :class:`RowIndependentDistribution` exposes
  per-row marginals, which the exact transcript-distribution engine
  (:mod:`repro.distinguish.exact`) consumes.
* **mixtures of row-independent components** — the paper's key idea
  (Section 1.1) is to write a correlated distribution (e.g. the planted
  clique distribution ``A_k``) as an average of row-independent ones
  (``A_C`` for fixed cliques ``C``); :class:`MixtureDistribution` represents
  exactly this decomposition.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "InputDistribution",
    "RowIndependentDistribution",
    "MixtureDistribution",
    "all_bitstrings",
]


def all_bitstrings(m: int) -> np.ndarray:
    """All ``2^m`` bit strings of length ``m`` as a ``(2^m, m)`` uint8 array.

    Row ``x`` holds the little-endian bits of the integer ``x``, matching
    the truth-table convention of :mod:`repro.infotheory.fourier`.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    if m > 26:
        raise ValueError(f"refusing to materialise 2^{m} bit strings")
    xs = np.arange(1 << m, dtype=np.uint32)
    return ((xs[:, None] >> np.arange(m, dtype=np.uint32)[None, :]) & 1).astype(
        np.uint8
    )


class InputDistribution:
    """A distribution over ``n × row_length`` 0/1 input matrices."""

    def __init__(self, n: int, row_length: int):
        if n <= 0 or row_length < 0:
            raise ValueError(f"invalid dimensions n={n}, row_length={row_length}")
        self.n = n
        self.row_length = row_length

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one input matrix (``uint8`` of shape ``(n, row_length)``)."""
        raise NotImplementedError

    def sample_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` matrices, shape ``(count, n, row_length)``."""
        return np.stack([self.sample(rng) for _ in range(count)])

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(n={self.n}, row_length={self.row_length})"


class RowIndependentDistribution(InputDistribution):
    """An input distribution whose ``n`` rows are mutually independent.

    Subclasses define the per-row marginals, either implicitly (through
    :meth:`sample_row`) or exactly (through :meth:`row_support`, required
    by the exact transcript engine).
    """

    def sample_row(self, i: int, rng: np.random.Generator) -> np.ndarray:
        """Draw row ``i`` from its marginal."""
        rows, probs = self.row_support(i)
        idx = rng.choice(rows.shape[0], p=probs)
        return rows[idx].copy()

    def row_support(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact marginal of row ``i``: ``(support, probs)`` where
        ``support`` is ``(S, row_length)`` uint8 and ``probs`` sums to 1."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return np.stack([self.sample_row(i, rng) for i in range(self.n)])


class MixtureDistribution(InputDistribution):
    """A finite mixture ``D = sum_I w_I · D_I`` of row-independent components.

    This is the Section 3 decomposition: ``components()`` yields the pairs
    ``(w_I, D_I)``.  Sampling first draws a component then samples from it,
    which is distributionally identical to sampling from ``D``.
    """

    def components(
        self,
    ) -> Iterator[tuple[float, RowIndependentDistribution]]:
        """Yield ``(weight, component)`` pairs; weights sum to 1."""
        raise NotImplementedError

    def n_components(self) -> int:
        """Number of mixture components (may be expensive; default counts)."""
        return sum(1 for _ in self.components())

    def sample_component(
        self, rng: np.random.Generator
    ) -> RowIndependentDistribution:
        """Draw a component ``D_I`` with probability ``w_I``."""
        weights = []
        comps = []
        for w, comp in self.components():
            weights.append(w)
            comps.append(comp)
        idx = rng.choice(len(comps), p=np.asarray(weights) / np.sum(weights))
        return comps[idx]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.sample_component(rng).sample(rng)
