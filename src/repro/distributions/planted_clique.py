"""Planted-clique input distributions (Sections 1.2–1.3 of the paper).

* :class:`PlantedCliqueAt` — ``A_C``: the conditional distribution of
  ``A_rand`` on the event that every ordered pair within the fixed vertex
  set ``C`` is an edge.  Crucially its rows are **independent** (footnote 13
  of the paper): fixing ``C`` fixes which entries are forced to 1, and all
  other entries are independent fair coins.
* :class:`PlantedClique` — ``A_k``: the mixture of ``A_C`` over a uniformly
  random size-``k`` subset ``C``.  Rows are *not* independent (they share
  the identity of ``C``), which is exactly why the paper decomposes ``A_k``
  into the ``A_C`` components.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterator

import numpy as np

from .base import (
    MixtureDistribution,
    RowIndependentDistribution,
    all_bitstrings,
)

__all__ = ["PlantedCliqueAt", "PlantedClique"]


class PlantedCliqueAt(RowIndependentDistribution):
    """``A_C``: random digraph conditioned on ``C`` being a (bidirected)
    clique.

    Row ``i`` for ``i ∈ C``: bit ``i`` is 0, bits ``j ∈ C \\ {i}`` are 1,
    the rest are independent fair coins.  Row ``i`` for ``i ∉ C`` is the
    ``A_rand`` marginal (bit ``i`` zero, rest uniform).
    """

    def __init__(self, n: int, clique: frozenset[int] | set[int] | tuple[int, ...]):
        super().__init__(n, n)
        clique = frozenset(clique)
        for v in clique:
            if not 0 <= v < n:
                raise ValueError(f"clique vertex {v} out of range for n={n}")
        self.clique = clique

    def sample_row(self, i: int, rng: np.random.Generator) -> np.ndarray:
        row = rng.integers(0, 2, size=self.n, dtype=np.uint8)
        row[i] = 0
        if i in self.clique:
            for j in self.clique:
                if j != i:
                    row[j] = 1
        return row

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        mat = rng.integers(0, 2, size=(self.n, self.n), dtype=np.uint8)
        np.fill_diagonal(mat, 0)
        members = sorted(self.clique)
        for i in members:
            for j in members:
                if i != j:
                    mat[i, j] = 1
        return mat

    def row_support(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        support = all_bitstrings(self.n)
        mask = support[:, i] == 0
        if i in self.clique:
            for j in self.clique:
                if j != i:
                    mask &= support[:, j] == 1
        support = support[mask]
        probs = np.full(support.shape[0], 1.0 / support.shape[0])
        return support, probs

    @property
    def name(self) -> str:
        return f"A_C(C={sorted(self.clique)})"


class PlantedClique(MixtureDistribution):
    """``A_k``: plant a clique on a uniformly random size-``k`` vertex set.

    ``components()`` enumerates all ``C(n, k)`` row-independent components
    ``A_C`` with equal weight — the Section 3 decomposition.  Sampling is
    O(n²) and does not enumerate components.
    """

    def __init__(self, n: int, k: int):
        super().__init__(n, n)
        if not 0 < k <= n:
            raise ValueError(f"clique size k={k} must satisfy 0 < k <= n={n}")
        self.k = k

    def sample_clique(self, rng: np.random.Generator) -> frozenset[int]:
        """Draw the planted vertex set ``C`` uniformly over size-k subsets."""
        return frozenset(
            int(v) for v in rng.choice(self.n, size=self.k, replace=False)
        )

    def sample_component(self, rng: np.random.Generator) -> PlantedCliqueAt:
        return PlantedCliqueAt(self.n, self.sample_clique(rng))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.sample_component(rng).sample(rng)

    def sample_with_clique(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, frozenset[int]]:
        """Draw ``(matrix, planted C)`` — the search-problem ground truth."""
        component = self.sample_component(rng)
        return component.sample(rng), component.clique

    def components(self) -> Iterator[tuple[float, PlantedCliqueAt]]:
        weight = 1.0 / comb(self.n, self.k)
        for clique in combinations(range(self.n), self.k):
            yield weight, PlantedCliqueAt(self.n, frozenset(clique))

    def n_components(self) -> int:
        return comb(self.n, self.k)

    @property
    def name(self) -> str:
        return f"A_k(n={self.n}, k={self.k})"
