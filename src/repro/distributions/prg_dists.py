"""Pseudo-random input distributions (Sections 5–7 of the paper).

* :class:`SharedVectorRows` — ``U[b]`` per processor: each row is
  ``(x, x·b)`` for a **fixed** secret ``b ∈ {0,1}^k`` and uniform
  ``x ∈ {0,1}^k``.  Rows are independent once ``b`` is fixed.
* :class:`ToyPRGOutput` — case (B) of Theorem 5.1/5.3: ``b`` uniform, then
  all processors draw from ``U[b]``.  A mixture over the ``2^k`` choices of
  ``b``.
* :class:`SharedMatrixRows` — ``U_M`` per processor: rows ``(x, x^T M)``
  for a fixed secret ``M ∈ {0,1}^{k×(m-k)}`` and uniform ``x ∈ {0,1}^k``.
* :class:`PRGOutput` — case (B) of Theorem 5.4: ``M`` uniform, then all
  processors draw from ``U_M``.  This is the joint output distribution of
  the full PRG of Theorem 1.3.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import (
    MixtureDistribution,
    RowIndependentDistribution,
    all_bitstrings,
)

__all__ = [
    "SharedVectorRows",
    "ToyPRGOutput",
    "SharedMatrixRows",
    "PRGOutput",
]


class SharedVectorRows(RowIndependentDistribution):
    """``U[b]`` rows: ``(x, x·b)`` with ``x ~ U_k``, for fixed ``b``.

    Row length is ``k + 1``; the support is the ``2^k`` strings whose last
    bit equals the inner product of the first ``k`` bits with ``b``.
    """

    def __init__(self, n: int, secret: np.ndarray):
        secret = np.asarray(secret, dtype=np.uint8)
        if secret.ndim != 1:
            raise ValueError("secret b must be a 1-D bit array")
        super().__init__(n, secret.shape[0] + 1)
        self.secret = secret
        self.k = secret.shape[0]

    def sample_row(self, i: int, rng: np.random.Generator) -> np.ndarray:
        x = rng.integers(0, 2, size=self.k, dtype=np.uint8)
        parity = np.uint8(int(x @ self.secret) & 1)
        return np.concatenate([x, [parity]])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        xs = rng.integers(0, 2, size=(self.n, self.k), dtype=np.uint8)
        parities = (xs @ self.secret) & 1
        return np.hstack([xs, parities[:, None].astype(np.uint8)])

    def row_support(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        xs = all_bitstrings(self.k)
        parities = (xs @ self.secret) & 1
        support = np.hstack([xs, parities[:, None].astype(np.uint8)])
        probs = np.full(support.shape[0], 1.0 / support.shape[0])
        return support, probs

    @property
    def name(self) -> str:
        return f"U[b](k={self.k})"


class ToyPRGOutput(MixtureDistribution):
    """Case (B) of Theorem 5.1: uniform secret ``b``, rows from ``U[b]``."""

    def __init__(self, n: int, k: int):
        if k <= 0:
            raise ValueError("seed length k must be positive")
        super().__init__(n, k + 1)
        self.k = k

    def sample_component(self, rng: np.random.Generator) -> SharedVectorRows:
        secret = rng.integers(0, 2, size=self.k, dtype=np.uint8)
        return SharedVectorRows(self.n, secret)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.sample_component(rng).sample(rng)

    def components(self) -> Iterator[tuple[float, SharedVectorRows]]:
        if self.k > 20:
            raise ValueError(
                f"enumerating 2^{self.k} components is infeasible; sample instead"
            )
        secrets = all_bitstrings(self.k)
        weight = 1.0 / secrets.shape[0]
        for b in secrets:
            yield weight, SharedVectorRows(self.n, b)

    def n_components(self) -> int:
        return 1 << self.k

    @property
    def name(self) -> str:
        return f"ToyPRG(n={self.n}, k={self.k})"


class SharedMatrixRows(RowIndependentDistribution):
    """``U_M`` rows: ``(x, x^T M)`` with ``x ~ U_k``, for fixed ``M``.

    ``M`` has shape ``(k, m - k)``; rows have length ``m``.
    """

    def __init__(self, n: int, secret: np.ndarray):
        secret = np.asarray(secret, dtype=np.uint8)
        if secret.ndim != 2:
            raise ValueError("secret M must be a 2-D bit array")
        k, tail = secret.shape
        super().__init__(n, k + tail)
        self.secret = secret
        self.k = k
        self.m = k + tail

    def sample_row(self, i: int, rng: np.random.Generator) -> np.ndarray:
        x = rng.integers(0, 2, size=self.k, dtype=np.uint8)
        tail = (x @ self.secret) & 1
        return np.concatenate([x, tail.astype(np.uint8)])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        xs = rng.integers(0, 2, size=(self.n, self.k), dtype=np.uint8)
        tails = (xs @ self.secret) & 1
        return np.hstack([xs, tails.astype(np.uint8)])

    def row_support(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        xs = all_bitstrings(self.k)
        tails = (xs @ self.secret) & 1
        support = np.hstack([xs, tails.astype(np.uint8)])
        probs = np.full(support.shape[0], 1.0 / support.shape[0])
        return support, probs

    @property
    def name(self) -> str:
        return f"U_M(k={self.k}, m={self.m})"


class PRGOutput(MixtureDistribution):
    """Case (B) of Theorem 5.4: uniform secret ``M ∈ {0,1}^{k×(m-k)}``.

    This is the joint distribution of all processors' pseudo-random strings
    produced by the PRG of Theorem 1.3.
    """

    def __init__(self, n: int, m: int, k: int):
        if not 0 < k <= m:
            raise ValueError(f"need 0 < k <= m, got k={k}, m={m}")
        super().__init__(n, m)
        self.k = k
        self.m = m

    @property
    def secret_bits(self) -> int:
        return self.k * (self.m - self.k)

    def sample_component(self, rng: np.random.Generator) -> SharedMatrixRows:
        secret = rng.integers(
            0, 2, size=(self.k, self.m - self.k), dtype=np.uint8
        )
        return SharedMatrixRows(self.n, secret)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.sample_component(rng).sample(rng)

    def components(self) -> Iterator[tuple[float, SharedMatrixRows]]:
        if self.secret_bits > 20:
            raise ValueError(
                f"enumerating 2^{self.secret_bits} secrets is infeasible"
            )
        secrets = all_bitstrings(self.secret_bits)
        weight = 1.0 / secrets.shape[0]
        for flat in secrets:
            yield weight, SharedMatrixRows(
                self.n, flat.reshape(self.k, self.m - self.k)
            )

    def n_components(self) -> int:
        return 1 << self.secret_bits

    @property
    def name(self) -> str:
        return f"PRGOutput(n={self.n}, m={self.m}, k={self.k})"
