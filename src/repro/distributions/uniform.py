"""Uniform input distributions.

* :class:`UniformRows` — every processor receives ``m`` independent uniform
  bits (the paper's ``U_m`` per processor / ``U_{n×m}`` jointly).
* :class:`RandomDigraph` — the paper's ``A_rand``: the adjacency matrix of a
  random *directed* graph where each off-diagonal entry is an independent
  fair coin and the diagonal is fixed to 0 (no self-loops).  Processor
  (vertex) ``i`` receives its out-edge indicator row.
"""

from __future__ import annotations

import numpy as np

from .base import RowIndependentDistribution, all_bitstrings

__all__ = ["UniformRows", "RandomDigraph"]


class UniformRows(RowIndependentDistribution):
    """Each row independently uniform on ``{0,1}^row_length``."""

    def __init__(self, n: int, row_length: int):
        super().__init__(n, row_length)

    def sample_row(self, i: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, 2, size=self.row_length, dtype=np.uint8)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, 2, size=(self.n, self.row_length), dtype=np.uint8)

    def row_support(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        support = all_bitstrings(self.row_length)
        probs = np.full(support.shape[0], 1.0 / support.shape[0])
        return support, probs


class RandomDigraph(RowIndependentDistribution):
    """``A_rand``: uniform directed graph on ``n`` vertices, zero diagonal."""

    def __init__(self, n: int):
        super().__init__(n, n)

    def sample_row(self, i: int, rng: np.random.Generator) -> np.ndarray:
        row = rng.integers(0, 2, size=self.n, dtype=np.uint8)
        row[i] = 0
        return row

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        mat = rng.integers(0, 2, size=(self.n, self.n), dtype=np.uint8)
        np.fill_diagonal(mat, 0)
        return mat

    def row_support(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        support = all_bitstrings(self.n)
        mask = support[:, i] == 0
        support = support[mask]
        probs = np.full(support.shape[0], 1.0 / support.shape[0])
        return support, probs
