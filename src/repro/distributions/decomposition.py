"""Exact joint pmfs and decomposition checks (the Section 3 framework).

The paper's central manoeuvre is to write a correlated input distribution
``A_pseudo`` as an average ``(1/|I|) Σ_I A_I`` of *row-independent*
components.  These helpers compute exact joint probability mass functions
for small instances so tests can verify the decompositions literally:

* ``A_k  =  avg over size-k subsets C of A_C``   (planted clique),
* ``ToyPRGOutput  =  avg over b of U[b]^n``      (toy PRG),
* ``PRGOutput     =  avg over M of U_M^n``       (full PRG).

Matrices are keyed by ``bytes`` of the flattened uint8 array.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from .base import (
    InputDistribution,
    MixtureDistribution,
    RowIndependentDistribution,
)

__all__ = [
    "exact_matrix_pmf",
    "pmf_distance",
    "empirical_matrix_pmf",
]

_MAX_OUTCOMES = 1 << 22


def exact_matrix_pmf(dist: InputDistribution) -> dict[bytes, float]:
    """Exact joint pmf of an input distribution over full matrices.

    Row-independent distributions are expanded as the product of their row
    marginals; mixtures as the weighted sum of their components'.  Intended
    for tiny instances (the outcome count is capped at ``2^22``).
    """
    if isinstance(dist, MixtureDistribution):
        pmf: dict[bytes, float] = {}
        for weight, component in dist.components():
            for key, p in exact_matrix_pmf(component).items():
                pmf[key] = pmf.get(key, 0.0) + weight * p
        return pmf
    if isinstance(dist, RowIndependentDistribution):
        return _row_product_pmf(dist)
    raise TypeError(
        f"cannot compute an exact pmf for {type(dist).__name__}; "
        "need a mixture or row-independent distribution"
    )


def _row_product_pmf(dist: RowIndependentDistribution) -> dict[bytes, float]:
    supports = [dist.row_support(i) for i in range(dist.n)]
    total = 1
    for rows, _ in supports:
        total *= rows.shape[0]
        if total > _MAX_OUTCOMES:
            raise ValueError(
                f"joint support exceeds {_MAX_OUTCOMES} outcomes; "
                "use empirical_matrix_pmf instead"
            )
    pmf: dict[bytes, float] = {}
    index_ranges = [range(rows.shape[0]) for rows, _ in supports]
    for combo in product(*index_ranges):
        prob = 1.0
        rows = []
        for i, idx in enumerate(combo):
            support, probs = supports[i]
            rows.append(support[idx])
            prob *= probs[idx]
        key = np.stack(rows).astype(np.uint8).tobytes()
        pmf[key] = pmf.get(key, 0.0) + prob
    return pmf


def pmf_distance(p: dict[bytes, float], q: dict[bytes, float]) -> float:
    """Total-variation distance between two sparse pmfs."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(s, 0.0) - q.get(s, 0.0)) for s in support)


def empirical_matrix_pmf(
    dist: InputDistribution, n_samples: int, rng: np.random.Generator
) -> dict[bytes, float]:
    """Plug-in joint pmf from samples (for distributions too big to expand)."""
    if n_samples <= 0:
        raise ValueError("need a positive sample count")
    pmf: dict[bytes, float] = {}
    weight = 1.0 / n_samples
    for _ in range(n_samples):
        key = dist.sample(rng).astype(np.uint8).tobytes()
        pmf[key] = pmf.get(key, 0.0) + weight
    return pmf
