"""The close-to-uniform rank-deficient distribution of Theorem 1.4.

Setting ``k = n - 1`` and ``m = n`` in the PRG output distribution gives an
``n × n`` matrix whose last column is a fixed linear combination of the
first ``n - 1`` — so its rank is at most ``n - 1`` always, yet by
Theorem 5.3 no ``n/20``-round ``BCAST(1)`` protocol can tell it apart from
a uniform matrix.  Since a uniform matrix is full-rank with probability
``Q_0 ≈ 0.289``, no such protocol can compute the full-rank indicator with
accuracy better than ``0.99`` on uniform inputs.
"""

from __future__ import annotations

import numpy as np

from .prg_dists import PRGOutput

__all__ = ["RankDeficientMatrix"]


class RankDeficientMatrix(PRGOutput):
    """``n`` processors each holding one row of a random rank-``< n`` matrix.

    Equivalent to the toy-PRG output with seed length ``n - 1`` and one
    derived bit per processor.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("need at least 2 processors")
        super().__init__(n=n, m=n, k=n - 1)

    def max_rank(self) -> int:
        """The support never contains a full-rank matrix."""
        return self.n - 1

    @property
    def name(self) -> str:
        return f"RankDeficient(n={self.n})"


def sample_rank(dist: RankDeficientMatrix, rng: np.random.Generator) -> int:
    """Convenience: sample one matrix and return its GF(2) rank."""
    from ..linalg import BitMatrix

    return BitMatrix.from_array(dist.sample(rng)).rank()
