"""Exact optimal-distinguisher ceilings for single broadcasts.

The lower-bound theorems control what *any* protocol achieves; for the
very first broadcast the optimum is computable exactly: a processor that
broadcasts one bit ``f(x_i)`` of its own input can shift the transcript
distribution by at most the total-variation distance between its row
marginals under the two input distributions — and the likelihood-ratio
test achieves it.  These functions compute that ceiling exactly (row
supports are enumerable for small ``n``), giving every experiment a
protocol-free upper anchor:

    measured distance (any 1-broadcast protocol)
        ≤ optimal_single_broadcast_distance
        ≤ theorem bound.

For a full synchronous round of ``n`` simultaneous broadcasts under
row-independent components, the per-row ceilings combine subadditively;
:func:`first_round_distance_ceiling` returns that sum (cf. the per-turn
increments in the Section 3 induction).
"""

from __future__ import annotations

import numpy as np

from ..distributions.base import (
    InputDistribution,
    MixtureDistribution,
    RowIndependentDistribution,
)

__all__ = [
    "row_marginal_pmf",
    "optimal_single_broadcast_distance",
    "first_round_distance_ceiling",
]


def row_marginal_pmf(dist: InputDistribution, i: int) -> dict[bytes, float]:
    """Exact marginal distribution of row ``i`` as a sparse pmf.

    Row-independent distributions read their declared supports; mixtures
    average their components' marginals (this is where the planted-clique
    row marginal — "am I in the clique?" — comes from).
    """
    if isinstance(dist, MixtureDistribution):
        pmf: dict[bytes, float] = {}
        for weight, component in dist.components():
            for key, p in row_marginal_pmf(component, i).items():
                pmf[key] = pmf.get(key, 0.0) + weight * p
        return pmf
    if isinstance(dist, RowIndependentDistribution):
        support, probs = dist.row_support(i)
        pmf = {}
        for row, p in zip(support, probs):
            key = np.asarray(row, dtype=np.uint8).tobytes()
            pmf[key] = pmf.get(key, 0.0) + float(p)
        return pmf
    raise TypeError(
        f"cannot compute an exact row marginal for {type(dist).__name__}"
    )


def optimal_single_broadcast_distance(
    dist_a: InputDistribution, dist_b: InputDistribution, i: int
) -> float:
    """Exact ceiling on ``||f(row_i under A) − f(row_i under B)||`` over
    **all** Boolean functions ``f`` — the TV distance of the marginals.

    The optimal ``f`` is the likelihood-ratio indicator
    ``f(x) = [P_A(x) > P_B(x)]``; no broadcast bit can reveal more.
    """
    pmf_a = row_marginal_pmf(dist_a, i)
    pmf_b = row_marginal_pmf(dist_b, i)
    support = set(pmf_a) | set(pmf_b)
    return 0.5 * sum(
        abs(pmf_a.get(s, 0.0) - pmf_b.get(s, 0.0)) for s in support
    )


def first_round_distance_ceiling(
    dist_a: InputDistribution, dist_b: InputDistribution
) -> float:
    """Subadditive ceiling for one full synchronous round: the sum of the
    per-row optimal single-broadcast distances (clamped at 1).

    This is exactly the quantity the Section 3 induction accumulates per
    turn — the ``Σ_t E[extra evidence of turn t]`` of the proof of
    Theorem 1.6 — evaluated at its information-theoretic optimum instead
    of for a specific protocol.
    """
    if dist_a.n != dist_b.n:
        raise ValueError("distributions must have the same processor count")
    total = sum(
        optimal_single_broadcast_distance(dist_a, dist_b, i)
        for i in range(dist_a.n)
    )
    return min(1.0, total)
