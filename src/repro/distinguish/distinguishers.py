"""Concrete distinguisher protocols — the best-effort adversaries.

A lower bound quantifies over *all* protocols; an experiment can only run
concrete ones.  These are the natural attacks:

* :class:`DegreeThresholdDistinguisher` — the degree statistic that solves
  planted clique once ``k`` is substantially above ``√n`` (the paper's
  Section 1.2 remark) and that the lower bound says must fail below
  ``n^{1/4}``.
* :class:`NeighborhoodVoteDistinguisher` — a two-phase refinement: vote on
  high-degree candidates, then count support toward the candidate set.
* :class:`RandomParityProbe` — a linear test against the PRG output: probe
  rounds reveal ``⟨row, s_r⟩`` for shared vectors ``s_r``; under ``U_M``
  the parities collapse whenever the effective vector lands in the secret's
  kernel, an event of probability ``≈ 2^{-k}`` per probe — matching the
  ``2^{-Ω(k)}`` ceiling of Theorem 5.4.
* :func:`random_function_protocol` — a seeded random deterministic protocol,
  used to sweep "generic" protocols in the exact-distance experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..core.randomness import expand_seed

__all__ = [
    "DegreeThresholdDistinguisher",
    "NeighborhoodVoteDistinguisher",
    "RandomParityProbe",
    "random_function_protocol",
]


class DegreeThresholdDistinguisher(Protocol):
    """One round: processor ``i`` broadcasts ``[weight(row_i) ≥ τ]``;
    everyone accepts iff at least ``vote_threshold`` processors claimed a
    high degree.

    With a planted clique of size ``k``, member rows gain ``≈ (k-1)/2``
    expected weight, so ``τ = n/2 + (k-1)/4`` and ``vote_threshold = k/2``
    are the natural settings (:meth:`for_clique_size`).
    """

    def __init__(self, degree_threshold: float, vote_threshold: float):
        self.degree_threshold = degree_threshold
        self.vote_threshold = vote_threshold

    @classmethod
    def for_clique_size(cls, n: int, k: int) -> "DegreeThresholdDistinguisher":
        return cls(
            degree_threshold=(n - 1) / 2.0 + (k - 1) / 4.0,
            vote_threshold=k / 2.0,
        )

    def num_rounds(self, n: int) -> int:
        return 1

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        return int(int(proc.input.sum()) >= self.degree_threshold)

    def output(self, proc: ProcessorContext) -> int:
        votes = sum(e.message for e in proc.transcript.messages_in_round(0))
        return int(votes >= self.vote_threshold)


class NeighborhoodVoteDistinguisher(Protocol):
    """Two rounds: (1) high-degree claims as above; (2) every processor
    broadcasts whether it has out-edges to at least a ``support_fraction``
    of the claimants.  Accept iff enough support votes arrive.

    This is the broadcast-friendly version of common-neighbourhood
    counting: clique members support each other, random vertices support a
    random-looking claimant set at rate ``≈ 1/2``.
    """

    def __init__(
        self,
        degree_threshold: float,
        support_fraction: float = 0.75,
        vote_threshold: float = 1.0,
    ):
        self.degree_threshold = degree_threshold
        self.support_fraction = support_fraction
        self.vote_threshold = vote_threshold

    @classmethod
    def for_clique_size(cls, n: int, k: int) -> "NeighborhoodVoteDistinguisher":
        return cls(
            degree_threshold=(n - 1) / 2.0 + (k - 1) / 4.0,
            support_fraction=0.75,
            vote_threshold=max(2.0, k / 2.0),
        )

    def num_rounds(self, n: int) -> int:
        return 2

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        if round_index == 0:
            return int(int(proc.input.sum()) >= self.degree_threshold)
        claimants = [
            e.sender
            for e in proc.transcript.messages_in_round(0)
            if e.message == 1
        ]
        if not claimants:
            return 0
        support = sum(int(proc.input[v]) for v in claimants if v != proc.proc_id)
        others = sum(1 for v in claimants if v != proc.proc_id)
        if others == 0:
            return 0
        return int(support >= self.support_fraction * others)

    def output(self, proc: ProcessorContext) -> int:
        votes = sum(e.message for e in proc.transcript.messages_in_round(1))
        return int(votes >= self.vote_threshold)


class RandomParityProbe(Protocol):
    """Linear probes against pseudo-random inputs.

    Round ``r`` uses a shared probe vector ``s_r`` (pseudo-derived from
    ``seed``; in the model these would be public coins or hard-wired).
    Every processor broadcasts ``⟨row, s_r⟩ mod 2``; the verdict accepts
    iff some round's parities are constant across all processors — the
    signature of the probe hitting the PRG secret's kernel.
    """

    def __init__(self, n_rounds: int, row_length: int, seed: int = 0):
        if n_rounds < 1:
            raise ValueError("need at least one probe round")
        self._n_rounds = n_rounds
        self.row_length = row_length
        self.probes = self._derive_probes(n_rounds, row_length, seed)

    @staticmethod
    def _derive_probes(n_rounds: int, row_length: int, seed: int) -> np.ndarray:
        rng = expand_seed(seed)
        return rng.integers(0, 2, size=(n_rounds, row_length), dtype=np.uint8)

    def num_rounds(self, n: int) -> int:
        return self._n_rounds

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        probe = self.probes[round_index]
        return int(probe @ proc.input) & 1

    def output(self, proc: ProcessorContext) -> int:
        for r in range(self._n_rounds):
            messages = [e.message for e in proc.transcript.messages_in_round(r)]
            if messages and (all(m == 0 for m in messages) or
                             all(m == 1 for m in messages)):
                return 1
        return 0


def random_function_protocol(
    n_rounds: int, seed: int, message_size: int = 1
):
    """A seeded random deterministic protocol (for generic-protocol sweeps).

    Every next message is the leading bits of a cryptographic hash of
    ``(seed, proc_id, input_row, transcript)`` — a fixed function chosen
    once, exactly the object the lower bounds quantify over.

    Returns a :class:`~repro.core.protocol.FunctionProtocol`; for exact
    enumeration wrap the same callable in a
    :class:`~repro.distinguish.exact.ProtocolSpec` via
    :meth:`ProtocolSpec.from_scalar`.
    """
    from ..core.protocol import FunctionProtocol

    def fn(proc_id: int, row: np.ndarray, transcript_bits: tuple[int, ...]) -> int:
        digest = hashlib.blake2b(
            seed.to_bytes(8, "little", signed=False)
            + proc_id.to_bytes(4, "little")
            + bytes(np.asarray(row, dtype=np.uint8))
            + bytes(transcript_bits),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little") % (1 << message_size)

    return FunctionProtocol(n_rounds, fn, message_size=message_size)
