"""Advantage semantics (footnote 5 of the paper).

An algorithm distinguishing ``D1`` from ``D2`` with advantage ``ε`` guesses
the source of a random sample (drawn from each with probability 1/2)
correctly with probability ``1/2 + ε``.  The optimal achievable advantage
is half the total-variation distance between the induced output (or
transcript) distributions — so every theorem stated as a transcript-distance
bound converts directly into an advantage bound.
"""

from __future__ import annotations

__all__ = [
    "optimal_advantage_from_tv",
    "tv_needed_for_advantage",
    "guessing_probability",
]


def optimal_advantage_from_tv(tv_distance: float) -> float:
    """Best achievable advantage given transcript TV distance ``d`` is ``d/2``.

    The optimal distinguisher accepts exactly on the outcomes where ``D1``
    outweighs ``D2``; its accept-rate gap is ``d``, hence advantage ``d/2``.
    """
    if not 0.0 <= tv_distance <= 1.0:
        raise ValueError(f"TV distance must lie in [0, 1], got {tv_distance}")
    return tv_distance / 2.0


def tv_needed_for_advantage(advantage: float) -> float:
    """Minimum transcript distance needed to achieve a given advantage."""
    if not 0.0 <= advantage <= 0.5:
        raise ValueError(f"advantage must lie in [0, 1/2], got {advantage}")
    return 2.0 * advantage


def guessing_probability(advantage: float) -> float:
    """Success probability ``1/2 + ε`` of an advantage-``ε`` distinguisher."""
    if not 0.0 <= advantage <= 0.5:
        raise ValueError(f"advantage must lie in [0, 1/2], got {advantage}")
    return 0.5 + advantage
