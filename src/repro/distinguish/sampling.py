"""Monte-Carlo estimation of transcript distances and advantages.

Where exact enumeration (:mod:`repro.distinguish.exact`) is infeasible, we
sample: run the protocol on inputs drawn from each distribution, collect
transcript keys or accept decisions, and estimate total-variation distance
or distinguishing advantage with distribution-free confidence intervals.

All estimators execute their trials through the unified engine
(:mod:`repro.core.engine`): pass ``executor=ParallelExecutor()`` to fan
the N trials out over a process pool, or ``vectorized=True`` (on the
decision-based estimators) to evaluate the whole trial batch with one
batched GF(2) kernel call when the protocol supports it — results are
bit-identical to the serial default for the same ``rng`` state, just
faster.  Transcript-key estimators ride the same fast path for protocols
that declare ``supports_batch_keys``: the engine synthesizes every
trial's transcript key with one ``protocol.batch_keys`` pass, so
``sample_transcript_keys`` / ``estimate_transcript_distance`` accept
``vectorized=True`` too (protocols without key support fall back to
scalar with a :class:`~repro.core.errors.BatchFallbackWarning`).

Batches can also run asynchronously: :func:`submit_distinguisher` returns
a future over the decision vector, and
``estimate_protocol_advantage(..., overlap=True)`` runs both sides'
batches concurrently — same seeds, bit-identical estimates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.engine import Engine, Executor, RunSpec, derive_seed
from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..distributions.base import InputDistribution
from ..infotheory.estimation import (
    AdvantageEstimate,
    ConfidenceInterval,
    estimate_advantage,
    estimate_tv_distance,
)

__all__ = [
    "sample_transcript_keys",
    "estimate_transcript_distance",
    "run_distinguisher",
    "submit_distinguisher",
    "estimate_protocol_advantage",
]


def sample_transcript_keys(
    protocol: Protocol,
    dist: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> list[tuple[int, ...]]:
    """Run ``protocol`` on ``n_samples`` fresh inputs; return transcript keys.

    With ``vectorized=True`` and a protocol declaring
    ``supports_batch_keys`` (the parity/equality family, the seed-length
    attack, the hierarchy rank protocol), the whole batch's keys are
    synthesized in single numpy passes — bit-identical to the scalar
    path for the same ``rng`` state.
    """
    spec = RunSpec(
        protocol=protocol,
        distribution=dist,
        scheduler=scheduler,
        seed=derive_seed(rng),
        vectorized=vectorized,
    )
    batch = Engine(executor).run_batch(spec, n_samples)
    return batch.transcript_keys


def estimate_transcript_distance(
    protocol: Protocol,
    dist_a: InputDistribution,
    dist_b: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    confidence: float = 0.95,
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> ConfidenceInterval:
    """Plug-in TV distance between ``P(Π, D_a)`` and ``P(Π, D_b)``.

    Honest but conservative: the plug-in estimator is biased upward when
    the transcript support is large relative to ``n_samples``; use exact
    enumeration when possible.  ``vectorized=True`` batches both sides'
    key synthesis through ``protocol.batch_keys`` when supported —
    bit-identical estimates, no per-trial simulation.
    """
    keys_a = sample_transcript_keys(
        protocol, dist_a, n_samples, rng, scheduler, executor, vectorized
    )
    keys_b = sample_transcript_keys(
        protocol, dist_b, n_samples, rng, scheduler, executor, vectorized
    )
    return estimate_tv_distance(keys_a, keys_b, confidence=confidence)


def run_distinguisher(
    protocol: Protocol,
    dist: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    decision_fn: Callable | None = None,
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> np.ndarray:
    """Accept decisions of a distinguisher protocol over fresh samples.

    The decision is processor 0's output (must be 0/1), or
    ``decision_fn(trial)`` when provided; ``trial`` is a
    :class:`~repro.core.engine.TrialResult` carrying ``outputs``,
    ``transcript`` and ``cost``.  With ``vectorized=True`` and a protocol
    that supports batching (e.g. the seed-length attack), the batch is
    decided by one batched-kernel call; a ``decision_fn`` forces the
    scalar path because it needs per-trial transcripts.
    """
    spec = _distinguisher_spec(
        protocol, dist, rng, scheduler, decision_fn, vectorized
    )
    batch = Engine(executor).run_batch(spec, n_samples)
    return _batch_decisions(batch, decision_fn)


def _distinguisher_spec(
    protocol, dist, rng, scheduler, decision_fn, vectorized
) -> RunSpec:
    return RunSpec(
        protocol=protocol,
        distribution=dist,
        scheduler=scheduler,
        seed=derive_seed(rng),
        record_transcripts=decision_fn is not None,
        vectorized=vectorized,
    )


def _batch_decisions(batch, decision_fn) -> np.ndarray:
    if decision_fn is None:
        return batch.decisions(proc_id=0)
    return np.fromiter(
        (int(bool(decision_fn(trial))) for trial in batch),
        dtype=np.uint8,
        count=len(batch),
    )


def submit_distinguisher(
    engine: Engine,
    protocol: Protocol,
    dist: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    decision_fn: Callable | None = None,
    vectorized: bool = False,
):
    """Asynchronous :func:`run_distinguisher`: submit now, decide later.

    Returns a :class:`~repro.exec.futures.BatchFuture` resolving to the
    same 0/1 decision vector :func:`run_distinguisher` would return for
    the same ``rng`` state — the batch seed is drawn from ``rng`` *here*,
    at submission, so interleaving many submissions stays deterministic.
    The engine's executor (e.g. a warm
    :class:`~repro.exec.pool.WorkerPool`) carries the trials.
    """
    spec = _distinguisher_spec(
        protocol, dist, rng, scheduler, decision_fn, vectorized
    )
    future = engine.submit_batch(spec, n_samples)
    return future.then(lambda batch: _batch_decisions(batch, decision_fn))


def estimate_protocol_advantage(
    protocol: Protocol,
    dist_a: InputDistribution,
    dist_b: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    decision_fn: Callable | None = None,
    confidence: float = 0.95,
    executor: Executor | str | None = None,
    vectorized: bool = False,
    overlap: bool = False,
) -> AdvantageEstimate:
    """Distinguishing advantage of a protocol between two distributions.

    Advantage follows footnote 5 of the paper: guessing probability is
    ``1/2 + advantage`` for an optimally-oriented acceptor, i.e.
    ``|accept_rate_a − accept_rate_b| / 2``.  ``vectorized=True`` batches
    both sides' trials through the protocol's batched kernels (exact same
    decisions as the scalar path).  ``overlap=True`` submits both sides'
    batches asynchronously so they run concurrently on the executor —
    both seeds are drawn from ``rng`` in the same order as the sequential
    path before anything runs, so the estimate is bit-identical.
    """
    if overlap:
        with Engine(executor) as engine:
            future_a = submit_distinguisher(
                engine, protocol, dist_a, n_samples, rng, scheduler,
                decision_fn, vectorized,
            )
            future_b = submit_distinguisher(
                engine, protocol, dist_b, n_samples, rng, scheduler,
                decision_fn, vectorized,
            )
            accepts_a, accepts_b = future_a.result(), future_b.result()
    else:
        accepts_a = run_distinguisher(
            protocol, dist_a, n_samples, rng, scheduler, decision_fn, executor,
            vectorized,
        )
        accepts_b = run_distinguisher(
            protocol, dist_b, n_samples, rng, scheduler, decision_fn, executor,
            vectorized,
        )
    return estimate_advantage(accepts_a, accepts_b, confidence=confidence)
