"""Monte-Carlo estimation of transcript distances and advantages.

Where exact enumeration (:mod:`repro.distinguish.exact`) is infeasible, we
sample: run the protocol on inputs drawn from each distribution, collect
transcript keys or accept decisions, and estimate total-variation distance
or distinguishing advantage with distribution-free confidence intervals.

All estimators execute their trials through the unified engine
(:mod:`repro.core.engine`): pass ``executor=ParallelExecutor()`` to fan
the N trials out over a process pool, or ``vectorized=True`` (on the
decision-based estimators) to evaluate the whole trial batch with one
batched GF(2) kernel call when the protocol supports it — results are
bit-identical to the serial default for the same ``rng`` state, just
faster.  Transcript-key estimators always take the scalar path, since the
fast path does not materialise transcripts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.engine import Engine, Executor, RunSpec, derive_seed
from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..distributions.base import InputDistribution
from ..infotheory.estimation import (
    AdvantageEstimate,
    ConfidenceInterval,
    estimate_advantage,
    estimate_tv_distance,
)

__all__ = [
    "sample_transcript_keys",
    "estimate_transcript_distance",
    "run_distinguisher",
    "estimate_protocol_advantage",
]


def sample_transcript_keys(
    protocol: Protocol,
    dist: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    executor: Executor | str | None = None,
) -> list[tuple[int, ...]]:
    """Run ``protocol`` on ``n_samples`` fresh inputs; return transcript keys."""
    spec = RunSpec(
        protocol=protocol,
        distribution=dist,
        scheduler=scheduler,
        seed=derive_seed(rng),
    )
    batch = Engine(executor).run_batch(spec, n_samples)
    return batch.transcript_keys


def estimate_transcript_distance(
    protocol: Protocol,
    dist_a: InputDistribution,
    dist_b: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    confidence: float = 0.95,
    executor: Executor | str | None = None,
) -> ConfidenceInterval:
    """Plug-in TV distance between ``P(Π, D_a)`` and ``P(Π, D_b)``.

    Honest but conservative: the plug-in estimator is biased upward when
    the transcript support is large relative to ``n_samples``; use exact
    enumeration when possible.
    """
    keys_a = sample_transcript_keys(
        protocol, dist_a, n_samples, rng, scheduler, executor
    )
    keys_b = sample_transcript_keys(
        protocol, dist_b, n_samples, rng, scheduler, executor
    )
    return estimate_tv_distance(keys_a, keys_b, confidence=confidence)


def run_distinguisher(
    protocol: Protocol,
    dist: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    decision_fn: Callable | None = None,
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> np.ndarray:
    """Accept decisions of a distinguisher protocol over fresh samples.

    The decision is processor 0's output (must be 0/1), or
    ``decision_fn(trial)`` when provided; ``trial`` is a
    :class:`~repro.core.engine.TrialResult` carrying ``outputs``,
    ``transcript`` and ``cost``.  With ``vectorized=True`` and a protocol
    that supports batching (e.g. the seed-length attack), the batch is
    decided by one batched-kernel call; a ``decision_fn`` forces the
    scalar path because it needs per-trial transcripts.
    """
    spec = RunSpec(
        protocol=protocol,
        distribution=dist,
        scheduler=scheduler,
        seed=derive_seed(rng),
        record_transcripts=decision_fn is not None,
        vectorized=vectorized,
    )
    batch = Engine(executor).run_batch(spec, n_samples)
    if decision_fn is None:
        return batch.decisions(proc_id=0)
    return np.fromiter(
        (int(bool(decision_fn(trial))) for trial in batch),
        dtype=np.uint8,
        count=len(batch),
    )


def estimate_protocol_advantage(
    protocol: Protocol,
    dist_a: InputDistribution,
    dist_b: InputDistribution,
    n_samples: int,
    rng: np.random.Generator,
    scheduler: Scheduler | str = "round",
    decision_fn: Callable | None = None,
    confidence: float = 0.95,
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> AdvantageEstimate:
    """Distinguishing advantage of a protocol between two distributions.

    Advantage follows footnote 5 of the paper: guessing probability is
    ``1/2 + advantage`` for an optimally-oriented acceptor, i.e.
    ``|accept_rate_a − accept_rate_b| / 2``.  ``vectorized=True`` batches
    both sides' trials through the protocol's batched kernels (exact same
    decisions as the scalar path).
    """
    accepts_a = run_distinguisher(
        protocol, dist_a, n_samples, rng, scheduler, decision_fn, executor,
        vectorized,
    )
    accepts_b = run_distinguisher(
        protocol, dist_b, n_samples, rng, scheduler, decision_fn, executor,
        vectorized,
    )
    return estimate_advantage(accepts_a, accepts_b, confidence=confidence)
