"""Adversaries and advantage estimation: exact transcript distributions for
small instances, Monte-Carlo estimation for larger ones, and the concrete
best-effort distinguisher protocols the experiments sweep."""

from .advantage import (
    guessing_probability,
    optimal_advantage_from_tv,
    tv_needed_for_advantage,
)
from .distinguishers import (
    DegreeThresholdDistinguisher,
    NeighborhoodVoteDistinguisher,
    RandomParityProbe,
    random_function_protocol,
)
from .exact import (
    ProtocolSpec,
    brute_force_transcript_pmf,
    simulate_deterministic,
    exact_transcript_pmf,
    expected_component_distance,
    mixture_transcript_pmf,
    transcript_distance,
)
from .optimal import (
    first_round_distance_ceiling,
    optimal_single_broadcast_distance,
    row_marginal_pmf,
)
from .sampling import (
    estimate_protocol_advantage,
    estimate_transcript_distance,
    run_distinguisher,
    sample_transcript_keys,
    submit_distinguisher,
)

__all__ = [
    "guessing_probability",
    "optimal_advantage_from_tv",
    "tv_needed_for_advantage",
    "DegreeThresholdDistinguisher",
    "NeighborhoodVoteDistinguisher",
    "RandomParityProbe",
    "random_function_protocol",
    "ProtocolSpec",
    "brute_force_transcript_pmf",
    "simulate_deterministic",
    "exact_transcript_pmf",
    "expected_component_distance",
    "mixture_transcript_pmf",
    "transcript_distance",
    "first_round_distance_ceiling",
    "optimal_single_broadcast_distance",
    "row_marginal_pmf",
    "estimate_protocol_advantage",
    "estimate_transcript_distance",
    "run_distinguisher",
    "sample_transcript_keys",
    "submit_distinguisher",
]
