"""Exact transcript distributions for deterministic protocols.

For a deterministic protocol and a **row-independent** input distribution,
the probability of a transcript factorises over processors: conditioning on
the transcript only restricts each processor's input through *its own*
previous broadcasts (this is the observation that powers every proof in the
paper).  This module exploits that structure to compute the exact
distribution ``P(Π, D)`` of transcripts by dynamic programming over the
transcript tree:

* each tree node is a transcript prefix, carrying for every processor the
  conditional weight of each row in its support (the set ``D_p`` of inputs
  consistent with the prefix, weighted by the marginal);
* expanding a node evaluates the speaking processor's next-message function
  on its whole support at once (vectorised) and splits the weights by the
  resulting message.

Mixture distributions are handled by averaging the component pmfs — the
exact counterpart of the paper's ``L_progress`` accounting.

Complexity: ``O(branches × support × turns)`` — practical for the small
instances the experiments enumerate (``n ≲ 14``, a few rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.protocol import FunctionProtocol
from ..distributions.base import (
    InputDistribution,
    MixtureDistribution,
    RowIndependentDistribution,
)
__all__ = [
    "ProtocolSpec",
    "exact_transcript_pmf",
    "mixture_transcript_pmf",
    "expected_component_distance",
    "transcript_distance",
    "brute_force_transcript_pmf",
    "simulate_deterministic",
]

#: Vectorised next-message function: (proc_id, rows, transcript_bits) -> messages
VectorFn = Callable[[int, np.ndarray, tuple[int, ...]], np.ndarray]


@dataclass
class ProtocolSpec:
    """A deterministic protocol in lower-bound normal form.

    Parameters
    ----------
    n:
        Number of processors.
    n_rounds:
        Number of rounds (each round = ``n`` turns in speaking order
        ``0, 1, …, n-1``).
    fn:
        Vectorised next-message function ``fn(proc_id, rows, p) → messages``
        where ``rows`` is an ``(S, m)`` uint8 array of candidate inputs and
        ``p`` the visible transcript bits; returns an ``(S,)`` integer array.
    message_size:
        Broadcast width in bits (1 for ``BCAST(1)``).
    sees_current_round:
        True for the paper's sequential-turn relaxation (speakers see
        earlier messages of the same round), False for synchronous rounds.
    """

    n: int
    n_rounds: int
    fn: VectorFn
    message_size: int = 1
    sees_current_round: bool = True

    @classmethod
    def from_scalar(
        cls,
        n: int,
        n_rounds: int,
        scalar_fn: Callable[[int, np.ndarray, tuple[int, ...]], int],
        message_size: int = 1,
        sees_current_round: bool = True,
    ) -> "ProtocolSpec":
        """Wrap a one-row-at-a-time next-message function."""

        def vector_fn(proc_id: int, rows: np.ndarray, p: tuple[int, ...]):
            return np.array(
                [scalar_fn(proc_id, row, p) for row in rows], dtype=np.int64
            )

        return cls(n, n_rounds, vector_fn, message_size, sees_current_round)

    def as_function_protocol(self) -> FunctionProtocol:
        """The same protocol as a simulator-runnable :class:`FunctionProtocol`.

        Run it under the ``"turn"`` scheduler iff ``sees_current_round``.
        """

        def scalar_fn(proc_id: int, row: np.ndarray, p: tuple[int, ...]) -> int:
            return int(self.fn(proc_id, row[None, :], p)[0])

        return FunctionProtocol(
            self.n_rounds, scalar_fn, message_size=self.message_size
        )

    @property
    def scheduler_name(self) -> str:
        return "turn" if self.sees_current_round else "round"


def exact_transcript_pmf(
    spec: ProtocolSpec, dist: RowIndependentDistribution
) -> dict[tuple[int, ...], float]:
    """Exact pmf over full transcripts of ``spec`` on inputs from ``dist``.

    Keys are transcript payload tuples (one integer per turn); values sum
    to 1.
    """
    if dist.n != spec.n:
        raise ValueError(
            f"distribution has {dist.n} rows but protocol expects {spec.n}"
        )
    supports = [dist.row_support(i) for i in range(spec.n)]
    # Branch state: (transcript_payloads, probability, per-processor weights).
    branches: list[tuple[tuple[int, ...], float, list[np.ndarray]]] = [
        ((), 1.0, [probs.astype(float).copy() for _, probs in supports])
    ]
    total_turns = spec.n_rounds * spec.n
    n_messages = 1 << spec.message_size

    for turn in range(total_turns):
        speaker = turn % spec.n
        round_start_turn = (turn // spec.n) * spec.n
        rows = supports[speaker][0]
        new_branches: list[tuple[tuple[int, ...], float, list[np.ndarray]]] = []
        for payloads, prob, weights in branches:
            visible = (
                payloads if spec.sees_current_round else payloads[:round_start_turn]
            )
            visible_bits = _payloads_to_bits(visible, spec.message_size)
            messages = np.asarray(spec.fn(speaker, rows, visible_bits))
            if messages.shape != (rows.shape[0],):
                raise ValueError(
                    f"next-message function returned shape {messages.shape}, "
                    f"expected ({rows.shape[0]},)"
                )
            w = weights[speaker]
            mass = w.sum()
            for value in range(n_messages):
                selected = w * (messages == value)
                value_mass = selected.sum()
                if value_mass <= 0.0:
                    continue
                child_weights = list(weights)
                child_weights[speaker] = selected
                new_branches.append(
                    (
                        payloads + (value,),
                        prob * (value_mass / mass),
                        child_weights,
                    )
                )
        branches = new_branches

    pmf = {payloads: prob for payloads, prob, _ in branches}
    _check_normalised(pmf)
    return pmf


def _payloads_to_bits(
    payloads: tuple[int, ...], width: int
) -> tuple[int, ...]:
    if width == 1:
        return payloads
    bits: list[int] = []
    for p in payloads:
        bits.extend((p >> i) & 1 for i in range(width))
    return tuple(bits)


def _check_normalised(pmf: dict, tol: float = 1e-8) -> None:
    total = sum(pmf.values())
    if abs(total - 1.0) > tol:
        raise AssertionError(f"transcript pmf sums to {total}, expected 1")


def mixture_transcript_pmf(
    spec: ProtocolSpec, dist: InputDistribution
) -> dict[tuple[int, ...], float]:
    """Exact transcript pmf for a mixture (or row-independent) distribution.

    For a mixture ``D = Σ_I w_I D_I`` the transcript distribution is the
    same mixture of the per-component transcript distributions.
    """
    if isinstance(dist, MixtureDistribution):
        pmf: dict[tuple[int, ...], float] = {}
        for weight, component in dist.components():
            for key, p in exact_transcript_pmf(spec, component).items():
                pmf[key] = pmf.get(key, 0.0) + weight * p
        _check_normalised(pmf)
        return pmf
    if isinstance(dist, RowIndependentDistribution):
        return exact_transcript_pmf(spec, dist)
    raise TypeError(f"unsupported distribution type {type(dist).__name__}")


def transcript_distance(
    pmf_a: dict[tuple[int, ...], float], pmf_b: dict[tuple[int, ...], float]
) -> float:
    """Total-variation distance between two transcript pmfs."""
    support = set(pmf_a) | set(pmf_b)
    return 0.5 * sum(abs(pmf_a.get(s, 0.0) - pmf_b.get(s, 0.0)) for s in support)


def simulate_deterministic(
    spec: ProtocolSpec, matrix: np.ndarray
) -> tuple[int, ...]:
    """Run a deterministic spec on one concrete input matrix.

    Returns the transcript payload tuple.  Used by the brute-force exact
    engine below and for cross-validation against the simulator.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.shape[0] != spec.n:
        raise ValueError(
            f"matrix has {matrix.shape[0]} rows but protocol expects {spec.n}"
        )
    payloads: tuple[int, ...] = ()
    total_turns = spec.n_rounds * spec.n
    for turn in range(total_turns):
        speaker = turn % spec.n
        round_start_turn = (turn // spec.n) * spec.n
        visible = payloads if spec.sees_current_round else payloads[:round_start_turn]
        visible_bits = _payloads_to_bits(visible, spec.message_size)
        message = int(spec.fn(speaker, matrix[speaker][None, :], visible_bits)[0])
        payloads = payloads + (message,)
    return payloads


def brute_force_transcript_pmf(
    spec: ProtocolSpec, support: "Sequence[tuple[np.ndarray, float]]"
) -> dict[tuple[int, ...], float]:
    """Exact transcript pmf for an **arbitrary** input distribution.

    Unlike :func:`exact_transcript_pmf`, this makes no independence
    assumption: it enumerates the full input support (pairs of matrix and
    probability, e.g. from
    :meth:`repro.distributions.undirected.UndirectedRandomGraph.enumerate_support`)
    and simulates the deterministic protocol on each matrix.  Cost is
    linear in the support size — for tiny instances only, but it is the
    only exact tool available once rows are *dependent* (the undirected
    open problem of Section 9).
    """
    pmf: dict[tuple[int, ...], float] = {}
    total = 0.0
    for matrix, prob in support:
        key = simulate_deterministic(spec, matrix)
        pmf[key] = pmf.get(key, 0.0) + prob
        total += prob
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"support probabilities sum to {total}, expected 1")
    return pmf


def expected_component_distance(
    spec: ProtocolSpec,
    mixture: MixtureDistribution,
    reference: RowIndependentDistribution,
    components: Sequence[RowIndependentDistribution] | None = None,
) -> float:
    """The paper's progress function ``L_progress`` — exactly.

    Computes ``E_{I} || P(Π, A_I) − P(Π, A_reference) ||`` over the mixture
    components (or an explicit subset, for spot-checking).  By the triangle
    inequality this upper-bounds the real distance
    ``|| P(Π, A_pseudo) − P(Π, A_reference) ||`` (Section 3).
    """
    reference_pmf = exact_transcript_pmf(spec, reference)
    if components is not None:
        comps = [(1.0 / len(components), c) for c in components]
    else:
        comps = list(mixture.components())
    total_weight = sum(w for w, _ in comps)
    acc = 0.0
    for weight, component in comps:
        pmf = exact_transcript_pmf(spec, component)
        acc += (weight / total_weight) * transcript_distance(pmf, reference_pmf)
    return acc
