"""Round and turn schedulers.

The paper proves its bounds in a *sequential-turn* relaxation of the model:
"Consider the model where we have n turns.  On the t-th turn, processor
(t-1) mod n + 1 gets to send a single bit.  This model is stronger than one
round of the BCAST(1) model, since it allows the later processors to
condition their outputs on earlier processors' messages" (Section 1.3).

Both schedulers are provided:

* :class:`RoundScheduler` — the standard synchronous model: within a round
  every processor's message is computed from the transcript of *previous*
  rounds only, then all messages are published simultaneously.
* :class:`TurnScheduler` — the stronger sequential model: processors speak
  in index order within the round and later speakers see earlier messages
  of the same round.

A scheduler yields the order of speakers and controls transcript visibility
at message-computation time; the simulator owns everything else.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Scheduler", "RoundScheduler", "TurnScheduler"]


class Scheduler:
    """Base scheduler: decides speaking order and intra-round visibility."""

    #: True if a speaker sees messages broadcast earlier in the same round.
    sees_current_round: bool = False

    def speaking_order(self, n: int, round_index: int) -> Iterator[int]:
        """Processor ids in the order they speak within ``round_index``."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class RoundScheduler(Scheduler):
    """Synchronous rounds: simultaneous broadcasts, no intra-round peeking."""

    sees_current_round = False

    def speaking_order(self, n: int, round_index: int) -> Iterator[int]:
        return iter(range(n))


class TurnScheduler(Scheduler):
    """Sequential turns: processor ``(t-1) mod n + 1`` (0-indexed: ``t mod n``)
    speaks at global turn ``t`` and sees everything broadcast before it."""

    sees_current_round = True

    def speaking_order(self, n: int, round_index: int) -> Iterator[int]:
        return iter(range(n))
