"""Transcripts: the complete broadcast history of a protocol execution.

The paper defines a transcript as "a list of all messages sent so far as
well as who sent which message and when" (Section 1.1).  A
:class:`Transcript` is an append-only sequence of :class:`BroadcastEvent`
records.  Transcripts are the objects whose *distributions* the paper's
theorems bound, so they support hashable encodings (:meth:`key`) suitable
for use as dictionary keys in distribution estimation.

Because the model is a broadcast clique, the sequence of senders is fixed by
the scheduler; the information content of a transcript is exactly the
message payloads in order, which is what :meth:`key` encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["BroadcastEvent", "Transcript"]


@dataclass(frozen=True)
class BroadcastEvent:
    """A single broadcast: processor ``sender`` sent ``message`` (an integer
    in ``[0, 2^width)``) at global ``turn`` within ``round_index``."""

    turn: int
    round_index: int
    sender: int
    message: int
    width: int

    def bits(self) -> tuple[int, ...]:
        """The message as a little-endian tuple of ``width`` bits."""
        return tuple((self.message >> i) & 1 for i in range(self.width))


class Transcript:
    """Append-only broadcast history."""

    __slots__ = ("_events",)

    def __init__(self, events: list[BroadcastEvent] | None = None):
        self._events: list[BroadcastEvent] = list(events) if events else []

    # ------------------------------------------------------------------
    # Mutation (simulator-only)
    # ------------------------------------------------------------------
    def append(self, event: BroadcastEvent) -> None:
        if self._events and event.turn != self._events[-1].turn + 1:
            raise ValueError(
                f"non-consecutive turn {event.turn} after {self._events[-1].turn}"
            )
        if not self._events and event.turn != 0:
            raise ValueError(f"first event must have turn 0, got {event.turn}")
        self._events.append(event)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BroadcastEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> BroadcastEvent:
        return self._events[index]

    @property
    def n_turns(self) -> int:
        """Number of broadcasts recorded so far."""
        return len(self._events)

    @property
    def total_bits(self) -> int:
        """Total number of bits broadcast (sum of message widths)."""
        return sum(e.width for e in self._events)

    def messages_from(self, sender: int) -> list[BroadcastEvent]:
        """All broadcasts made by a given processor, in order."""
        return [e for e in self._events if e.sender == sender]

    def messages_in_round(self, round_index: int) -> list[BroadcastEvent]:
        """All broadcasts of a given round, in turn order."""
        return [e for e in self._events if e.round_index == round_index]

    def last_round_messages(self) -> list[BroadcastEvent]:
        """Broadcasts of the most recent (possibly partial) round."""
        if not self._events:
            return []
        return self.messages_in_round(self._events[-1].round_index)

    # ------------------------------------------------------------------
    # Encodings
    # ------------------------------------------------------------------
    def key(self) -> tuple[int, ...]:
        """Hashable encoding: the tuple of message payloads in turn order.

        Sender/round structure is scheduler-determined, so payloads alone
        identify the transcript among executions of the same protocol.
        """
        return tuple(e.message for e in self._events)

    def bits(self) -> tuple[int, ...]:
        """Flattened little-endian bit string of all payloads in order."""
        out: list[int] = []
        for e in self._events:
            out.extend(e.bits())
        return tuple(out)

    def prefix(self, n_turns: int) -> "Transcript":
        """The transcript of the first ``n_turns`` broadcasts."""
        if n_turns > len(self._events):
            raise ValueError(
                f"prefix of {n_turns} turns requested, only {len(self._events)} exist"
            )
        return Transcript(self._events[:n_turns])

    def copy(self) -> "Transcript":
        return Transcript(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transcript):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(tuple(self._events))

    def __repr__(self) -> str:
        return f"Transcript(turns={self.n_turns}, bits={self.total_bits})"
