"""The Broadcast Congested Clique simulator.

:func:`run_protocol` executes a :class:`~repro.core.protocol.Protocol` on an
input matrix (row ``i`` is processor ``i``'s private input), under either
the synchronous round model or the paper's stronger sequential-turn model,
and returns the outputs, the full transcript, and a resource-usage report.

Model invariants enforced here:

* **broadcast constraint** — one message per processor per round, identical
  for all recipients (trivially true since we record a single payload);
* **congestion** — payloads must fit in ``message_size`` bits
  (:class:`~repro.core.errors.MessageSizeError` otherwise);
* **synchrony** — in the round model, messages are computed against the
  transcript of completed rounds only; in the turn model each speaker sees
  all strictly-earlier broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .errors import MessageSizeError, SchedulingError
from .network import CostReport
from .processor import ProcessorContext
from .protocol import Protocol
from .randomness import CoinSource, PrivateCoins
from .scheduler import RoundScheduler, Scheduler, TurnScheduler
from .transcript import BroadcastEvent, Transcript

__all__ = ["ExecutionResult", "run_protocol", "make_contexts"]


@dataclass
class ExecutionResult:
    """Everything produced by one protocol execution."""

    outputs: list[Any]
    transcript: Transcript
    cost: CostReport
    contexts: list[ProcessorContext]

    def output_of(self, proc_id: int) -> Any:
        return self.outputs[proc_id]


def make_contexts(
    inputs: np.ndarray,
    rng: np.random.Generator | None = None,
    private_bit_budget: int | None = None,
    public_coins: CoinSource | None = None,
) -> tuple[list[ProcessorContext], Transcript]:
    """Build per-processor contexts sharing one transcript.

    ``inputs`` is an ``n × m`` 0/1 array; row ``i`` becomes processor
    ``i``'s private input.  Each processor receives an independent private
    coin source derived from ``rng``.
    """
    inputs = np.asarray(inputs, dtype=np.uint8)
    if inputs.ndim != 2:
        raise ValueError(f"inputs must be a 2-D array, got shape {inputs.shape}")
    n = inputs.shape[0]
    if rng is None:
        rng = np.random.default_rng()
    transcript = Transcript()
    seeds = rng.integers(0, 2**63, size=n, dtype=np.int64)
    contexts = [
        ProcessorContext(
            proc_id=i,
            n=n,
            input_row=inputs[i],
            coins=PrivateCoins(
                np.random.default_rng(int(seeds[i])), budget=private_bit_budget
            ),
            public_coins=public_coins,
            transcript=transcript,
        )
        for i in range(n)
    ]
    return contexts, transcript


def run_protocol(
    protocol: Protocol,
    inputs: np.ndarray,
    scheduler: Scheduler | str = "round",
    rng: np.random.Generator | None = None,
    rounds: int | None = None,
    private_bit_budget: int | None = None,
    public_coins: CoinSource | None = None,
) -> ExecutionResult:
    """Execute ``protocol`` on ``inputs`` and return the results.

    Parameters
    ----------
    protocol:
        The protocol to run.
    inputs:
        ``n × m`` 0/1 array of private inputs (row ``i`` → processor ``i``).
    scheduler:
        ``"round"`` (synchronous), ``"turn"`` (sequential, the paper's
        relaxation) or a :class:`Scheduler` instance.
    rng:
        Source of all randomness for this execution (private coins are
        split off it).  Defaults to a fresh nondeterministic generator.
    rounds:
        Override the protocol's own ``num_rounds``.
    private_bit_budget:
        Per-processor cap on private random bits (used to verify the
        randomness-saving claims).
    public_coins:
        Optional shared randomness source.
    """
    if isinstance(scheduler, str):
        if scheduler == "round":
            scheduler = RoundScheduler()
        elif scheduler == "turn":
            scheduler = TurnScheduler()
        else:
            raise SchedulingError(f"unknown scheduler name {scheduler!r}")

    contexts, transcript = make_contexts(
        inputs, rng=rng, private_bit_budget=private_bit_budget,
        public_coins=public_coins,
    )
    n = len(contexts)
    n_rounds = protocol.num_rounds(n) if rounds is None else rounds
    width = protocol.message_size
    if width < 1:
        raise MessageSizeError(f"message size must be >= 1, got {width}")
    max_payload = 1 << width

    for proc in contexts:
        protocol.setup(proc)

    turn = 0
    rounds_run = 0
    for round_index in range(n_rounds):
        if rounds is None and protocol.finished(n, transcript, round_index):
            break
        if scheduler.sees_current_round:
            # Sequential turns: append each event immediately so later
            # speakers in the same round condition on it.
            for proc_id in scheduler.speaking_order(n, round_index):
                message = _checked_message(
                    protocol.broadcast(contexts[proc_id], round_index),
                    max_payload, proc_id, round_index,
                )
                transcript.append(
                    BroadcastEvent(turn, round_index, proc_id, message, width)
                )
                turn += 1
        else:
            # Synchronous round: compute all messages against the frozen
            # transcript of previous rounds, then publish together.
            pending: list[tuple[int, int]] = []
            for proc_id in scheduler.speaking_order(n, round_index):
                message = _checked_message(
                    protocol.broadcast(contexts[proc_id], round_index),
                    max_payload, proc_id, round_index,
                )
                pending.append((proc_id, message))
            for proc_id, message in pending:
                transcript.append(
                    BroadcastEvent(turn, round_index, proc_id, message, width)
                )
                turn += 1
        round_messages = {
            e.sender: e.message for e in transcript.messages_in_round(round_index)
        }
        for proc in contexts:
            protocol.receive(proc, round_index, round_messages)
        rounds_run = round_index + 1

    outputs = [protocol.output(proc) for proc in contexts]
    for proc, value in zip(contexts, outputs):
        proc.output = value

    cost = CostReport(
        n_processors=n,
        rounds=rounds_run,
        turns=turn,
        broadcast_bits=transcript.total_bits,
        message_size=width,
        private_bits_per_processor=[proc.coins.bits_used for proc in contexts],
        public_bits=public_coins.bits_used if public_coins is not None else 0,
    )
    return ExecutionResult(
        outputs=outputs, transcript=transcript, cost=cost, contexts=contexts
    )


def _checked_message(
    message: Any, max_payload: int, proc_id: int, round_index: int
) -> int:
    message = int(message)
    if not 0 <= message < max_payload:
        raise MessageSizeError(
            f"processor {proc_id} broadcast payload {message} in round "
            f"{round_index}, exceeding the BCAST width ({max_payload - 1} max)"
        )
    return message
