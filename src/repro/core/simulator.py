"""The Broadcast Congested Clique simulator.

:func:`run_protocol` executes a :class:`~repro.core.protocol.Protocol` on an
input matrix (row ``i`` is processor ``i``'s private input), under either
the synchronous round model or the paper's stronger sequential-turn model,
and returns the outputs, the full transcript, and a resource-usage report.
It is a thin single-shot wrapper over the unified execution engine in
:mod:`repro.core.engine`, which owns the actual simulation loop and adds
N-trial batching with pluggable serial/parallel executors.

Model invariants enforced here:

* **broadcast constraint** — one message per processor per round, identical
  for all recipients (trivially true since we record a single payload);
* **congestion** — payloads must fit in ``message_size`` bits
  (:class:`~repro.core.errors.MessageSizeError` otherwise);
* **synchrony** — in the round model, messages are computed against the
  transcript of completed rounds only; in the turn model each speaker sees
  all strictly-earlier broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .network import CostReport
from .processor import ProcessorContext
from .protocol import Protocol
from .randomness import CoinSource, PrivateCoins, expand_seed, fresh_generator
from .scheduler import Scheduler
from .transcript import Transcript

__all__ = ["ExecutionResult", "run_protocol", "make_contexts"]


@dataclass
class ExecutionResult:
    """Everything produced by one protocol execution."""

    outputs: list[Any]
    transcript: Transcript
    cost: CostReport
    contexts: list[ProcessorContext]

    def output_of(self, proc_id: int) -> Any:
        return self.outputs[proc_id]


def make_contexts(
    inputs: np.ndarray,
    rng: np.random.Generator | None = None,
    private_bit_budget: int | None = None,
    public_coins: CoinSource | None = None,
) -> tuple[list[ProcessorContext], Transcript]:
    """Build per-processor contexts sharing one transcript.

    ``inputs`` is an ``n × m`` 0/1 array; row ``i`` becomes processor
    ``i``'s private input.  Each processor receives an independent private
    coin source derived from ``rng``.
    """
    inputs = np.asarray(inputs, dtype=np.uint8)
    if inputs.ndim != 2:
        raise ValueError(f"inputs must be a 2-D array, got shape {inputs.shape}")
    n = inputs.shape[0]
    if rng is None:
        # Entry-point convenience: nondeterministic by request.  Batch
        # runs go through the engine, which always passes a seeded rng.
        rng = fresh_generator()
    transcript = Transcript()
    seeds = rng.integers(0, 2**63, size=n, dtype=np.int64)
    contexts = [
        ProcessorContext(
            proc_id=i,
            n=n,
            input_row=inputs[i],
            coins=PrivateCoins(
                expand_seed(int(seeds[i])), budget=private_bit_budget
            ),
            public_coins=public_coins,
            transcript=transcript,
        )
        for i in range(n)
    ]
    return contexts, transcript


def run_protocol(
    protocol: Protocol,
    inputs: np.ndarray,
    scheduler: Scheduler | str = "round",
    rng: np.random.Generator | None = None,
    rounds: int | None = None,
    private_bit_budget: int | None = None,
    public_coins: CoinSource | None = None,
) -> ExecutionResult:
    """Execute ``protocol`` on ``inputs`` and return the results.

    This is a thin wrapper over :class:`~repro.core.engine.Engine`: it
    builds a single-shot :class:`~repro.core.engine.RunSpec` and runs it
    in-process.  Use the engine directly for N-trial batches
    (:meth:`~repro.core.engine.Engine.run_batch`) and parallel backends.

    Parameters
    ----------
    protocol:
        The protocol to run.
    inputs:
        ``n × m`` 0/1 array of private inputs (row ``i`` → processor ``i``).
    scheduler:
        ``"round"`` (synchronous), ``"turn"`` (sequential, the paper's
        relaxation) or a :class:`Scheduler` instance.
    rng:
        Source of all randomness for this execution (private coins are
        split off it).  Defaults to a fresh nondeterministic generator.
    rounds:
        Override the protocol's own ``num_rounds``.
    private_bit_budget:
        Per-processor cap on private random bits (used to verify the
        randomness-saving claims).
    public_coins:
        Optional shared randomness source.
    """
    from .engine import Engine, RunSpec

    spec = RunSpec(
        protocol=protocol,
        inputs=inputs,
        scheduler=scheduler,
        rounds=rounds,
        private_bit_budget=private_bit_budget,
        public_coins=public_coins,
    )
    if rng is None:
        rng = fresh_generator()
    return Engine().run(spec, rng=rng)
