"""Exception types for the Broadcast Congested Clique simulator."""

from __future__ import annotations

__all__ = [
    "BroadcastCliqueError",
    "BatchFallbackWarning",
    "MessageSizeError",
    "SchedulingError",
    "ProtocolViolation",
    "RandomnessExhausted",
]


class BroadcastCliqueError(Exception):
    """Base class for all simulator errors."""


class MessageSizeError(BroadcastCliqueError):
    """A processor tried to broadcast a message wider than ``BCAST(b)`` allows."""


class SchedulingError(BroadcastCliqueError):
    """Scheduler misuse: wrong turn order, double broadcast, etc."""


class ProtocolViolation(BroadcastCliqueError):
    """A protocol broke a model invariant (e.g. read another processor's
    private input)."""


class RandomnessExhausted(BroadcastCliqueError):
    """A processor asked for more random bits than its budget allows."""


class BatchFallbackWarning(RuntimeWarning):
    """``RunSpec(vectorized=True)`` could not take the batched fast path.

    Emitted by ``Engine.run_batch`` exactly when a vectorized spec falls
    back to scalar per-trial simulation — because the protocol lacks
    ``supports_batch`` / ``supports_batch_keys``, or the spec needs
    features the fast path cannot honour (full transcripts, round
    overrides, coin budgets, public coins).  Results are still
    bit-identical to the scalar path; only the speedup is lost.  The
    message names the reason.  Note that Python's default warning filters
    *display* repeated warnings from the same call site only once;
    ``Engine.batch_fallbacks`` counts every fallback exactly, so monitors
    should read the counter, not count printed warnings.
    """
