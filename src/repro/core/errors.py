"""Exception types for the Broadcast Congested Clique simulator."""

from __future__ import annotations

__all__ = [
    "BroadcastCliqueError",
    "MessageSizeError",
    "SchedulingError",
    "ProtocolViolation",
    "RandomnessExhausted",
]


class BroadcastCliqueError(Exception):
    """Base class for all simulator errors."""


class MessageSizeError(BroadcastCliqueError):
    """A processor tried to broadcast a message wider than ``BCAST(b)`` allows."""


class SchedulingError(BroadcastCliqueError):
    """Scheduler misuse: wrong turn order, double broadcast, etc."""


class ProtocolViolation(BroadcastCliqueError):
    """A protocol broke a model invariant (e.g. read another processor's
    private input)."""


class RandomnessExhausted(BroadcastCliqueError):
    """A processor asked for more random bits than its budget allows."""
