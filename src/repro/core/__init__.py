"""The Broadcast Congested Clique simulator substrate.

``BCAST(b)``: ``n`` processors, unlimited local computation, synchronous
rounds; each round every processor broadcasts the *same* ``b``-bit message
to all others.  ``b = 1`` is the paper's primary model; ``b = O(log n)`` the
standard variant.
"""

from .compile import Bcast1Compiled, compiled_round_count
from .engine import (
    BatchResult,
    Engine,
    Executor,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    TrialResult,
    derive_seed,
    resolve_executor,
)
from .errors import (
    BatchFallbackWarning,
    BroadcastCliqueError,
    MessageSizeError,
    ProtocolViolation,
    RandomnessExhausted,
    SchedulingError,
)
from .network import CostReport
from .processor import ProcessorContext
from .protocol import ComposedProtocol, FunctionProtocol, Protocol
from .randomness import (
    CoinSource,
    PrivateCoins,
    PublicCoins,
    ReplayCoins,
    ZeroCoins,
    expand_seed,
    fresh_generator,
)
from .scheduler import RoundScheduler, Scheduler, TurnScheduler
from .simulator import ExecutionResult, make_contexts, run_protocol
from .tracing import TranscriptStats, format_transcript, transcript_stats
from .transcript import BroadcastEvent, Transcript

__all__ = [
    "Bcast1Compiled",
    "compiled_round_count",
    "BatchResult",
    "Engine",
    "Executor",
    "ParallelExecutor",
    "RunSpec",
    "SerialExecutor",
    "TrialResult",
    "derive_seed",
    "resolve_executor",
    "BatchFallbackWarning",
    "BroadcastCliqueError",
    "MessageSizeError",
    "ProtocolViolation",
    "RandomnessExhausted",
    "SchedulingError",
    "CostReport",
    "ProcessorContext",
    "ComposedProtocol",
    "FunctionProtocol",
    "Protocol",
    "CoinSource",
    "PrivateCoins",
    "PublicCoins",
    "ReplayCoins",
    "ZeroCoins",
    "expand_seed",
    "fresh_generator",
    "RoundScheduler",
    "Scheduler",
    "TurnScheduler",
    "ExecutionResult",
    "make_contexts",
    "run_protocol",
    "BroadcastEvent",
    "Transcript",
    "TranscriptStats",
    "format_transcript",
    "transcript_stats",
]
