"""Broadcast channel bookkeeping.

The clique's communication fabric is trivially simple — every message
reaches everyone — so the interesting part is *accounting*: rounds used,
turns used, bits on the wire, and per-processor randomness consumed.  The
paper's theorems are statements about exactly these quantities (round lower
bounds, ``O(k)``-round PRG construction cost, ``O(n/k · polylog n)`` rounds
for Appendix B), so :class:`CostReport` is attached to every execution
result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostReport"]


@dataclass
class CostReport:
    """Resource usage of one protocol execution."""

    n_processors: int = 0
    rounds: int = 0
    turns: int = 0
    broadcast_bits: int = 0
    message_size: int = 1
    private_bits_per_processor: list[int] = field(default_factory=list)
    public_bits: int = 0

    @property
    def total_private_bits(self) -> int:
        return sum(self.private_bits_per_processor)

    @property
    def max_private_bits(self) -> int:
        if not self.private_bits_per_processor:
            return 0
        return max(self.private_bits_per_processor)

    def bcast1_equivalent_rounds(self) -> int:
        """Round count after compiling to ``BCAST(1)``.

        A ``BCAST(b)`` round is simulated by ``b`` ``BCAST(1)`` rounds (the
        standard ``log n`` factor of footnote 1).
        """
        return self.rounds * self.message_size

    def summary(self) -> str:
        return (
            f"{self.rounds} rounds x BCAST({self.message_size}) over "
            f"{self.n_processors} processors, {self.broadcast_bits} bits on "
            f"the wire, max {self.max_private_bits} private random bits per "
            f"processor, {self.public_bits} public bits"
        )
