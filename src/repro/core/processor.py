"""Per-processor local views.

A :class:`ProcessorContext` is everything a single processor is allowed to
see: its identity, the total number of processors, its own private input
row, its private coins, the shared public coins (if the execution provides
them), and the broadcast transcript so far.  Protocol code receives exactly
this object — the simulator never hands a protocol another processor's
input, which enforces the information-locality invariant of the model.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .randomness import CoinSource
from .transcript import Transcript

__all__ = ["ProcessorContext"]


class ProcessorContext:
    """The local view of processor ``proc_id`` in an ``n``-processor clique.

    Attributes
    ----------
    proc_id:
        This processor's index in ``[0, n)``.
    n:
        Number of processors.
    input:
        The processor's private input row, a numpy ``uint8`` 0/1 array.
        For graph problems this is row ``proc_id`` of the adjacency matrix
        (its out-edge indicator vector).
    coins:
        Private randomness (metered).
    public_coins:
        Shared randomness (metered), or ``None``.
    transcript:
        The global broadcast history visible so far.  In the turn model
        this includes the current round's earlier broadcasts.
    memory:
        Free-form per-processor scratch state, preserved across rounds.
    """

    __slots__ = (
        "proc_id",
        "n",
        "input",
        "coins",
        "public_coins",
        "transcript",
        "memory",
        "output",
    )

    def __init__(
        self,
        proc_id: int,
        n: int,
        input_row: np.ndarray,
        coins: CoinSource,
        public_coins: CoinSource | None,
        transcript: Transcript,
    ):
        if not 0 <= proc_id < n:
            raise ValueError(f"processor id {proc_id} out of range for n={n}")
        self.proc_id = proc_id
        self.n = n
        self.input = np.asarray(input_row, dtype=np.uint8)
        self.coins = coins
        self.public_coins = public_coins
        self.transcript = transcript
        self.memory: dict[str, Any] = {}
        self.output: Any = None

    # ------------------------------------------------------------------
    # Convenience views over the transcript
    # ------------------------------------------------------------------
    def my_previous_messages(self) -> list[int]:
        """Payloads this processor broadcast in earlier turns."""
        return [e.message for e in self.transcript.messages_from(self.proc_id)]

    def round_messages(self, round_index: int) -> dict[int, int]:
        """Mapping ``sender → payload`` for a completed round."""
        return {
            e.sender: e.message
            for e in self.transcript.messages_in_round(round_index)
        }

    def input_bit(self, j: int) -> int:
        """Bit ``j`` of the private input row."""
        return int(self.input[j])

    def __repr__(self) -> str:
        return f"ProcessorContext(proc_id={self.proc_id}, n={self.n})"
