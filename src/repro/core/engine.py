"""The unified execution engine: ``RunSpec`` → ``Engine`` → ``BatchResult``.

Every experiment in this reproduction ultimately executes a
:class:`~repro.core.protocol.Protocol` many times — Monte-Carlo advantage
estimators, Newman-compilation error measurements, accuracy sweeps,
benchmarks.  Historically each of those re-implemented its own serial
``for _ in range(n_samples): run_protocol(...)`` loop.  This module makes
the *N-trial execution* a first-class object instead:

* :class:`RunSpec` — a frozen description of one execution: the protocol,
  the input source (a fixed matrix *or* an
  :class:`~repro.distributions.base.InputDistribution` sampled afresh each
  trial), the scheduler, budgets, an optional rounds override, and a
  master ``seed``.
* :class:`Engine` — executes specs.  :meth:`Engine.run` performs a single
  full-fidelity execution (returning the usual
  :class:`~repro.core.simulator.ExecutionResult`);
  :meth:`Engine.run_batch` executes ``trials`` statistically independent
  trials and aggregates them into a :class:`BatchResult`.
* :class:`Executor` backends — :class:`SerialExecutor` runs trials in the
  calling process; :class:`ParallelExecutor` fans them out over a
  ``concurrent.futures.ProcessPoolExecutor``.

**Determinism.**  Batch trials are seeded with
``np.random.SeedSequence(seed).spawn(trials)``: trial ``t`` always receives
the same spawned child regardless of which backend runs it or in what
order, so serial and parallel executions of the same spec are
*bit-identical*.  Each trial also gets a fresh deep copy of the protocol
object, making trials independent even for protocols that cache state on
``self``.

**Picklability.**  The process-pool backend needs the spec (protocol,
distribution, scheduler) to be picklable.  Library protocols are;
:class:`~repro.core.protocol.FunctionProtocol` built from a lambda is not —
:class:`ParallelExecutor` detects this up front and falls back to serial
execution with a warning rather than failing.

**Vectorized fast path.**  Protocols that declare
``supports_batch = True`` (their outputs are a deterministic function of
the input matrix alone) plus ``supports_batch_keys = True`` can skip
per-trial simulation entirely: a spec with ``vectorized=True`` samples
every trial's input with the same per-trial seeds as the scalar path — so
inputs are bit-identical — and evaluates all of them with one
``protocol.batch_decisions`` + ``protocol.batch_keys`` pass backed by the
batched GF(2) kernels of :mod:`repro.linalg.batch`, populating real
per-trial transcript keys so key-based estimators batch too.  Specs the
fast path cannot honour (transcript recording, coin budgets, protocols
without batch/key support) fall back to the scalar path with a
:class:`~repro.core.errors.BatchFallbackWarning`; ``Engine.batch_fallbacks``
counts the downgrades.

**Shared-memory inputs.**  When a batch has a fixed input matrix and runs
on a :class:`ParallelExecutor`, large inputs are published once through
``multiprocessing.shared_memory`` instead of being pickled into every
worker task; workers attach read-only views on first use.  The lifecycle
is owned by the executor (:meth:`Executor.publish_inputs` /
:meth:`Executor.release_inputs`): the per-batch pool unlinks the segment
when the batch ends, while :class:`repro.exec.WorkerPool` keeps segments
(and the workers attached to them) alive across successive batches.

**Asynchronous batches.**  :meth:`Engine.submit_batch` schedules a batch
on a background submission thread and returns a
:class:`repro.exec.BatchFuture` immediately, so callers can overlap many
in-flight batches (``repro.exec.as_completed`` consumes them as they
finish).  Results are bit-identical to :meth:`Engine.run_batch` on the
same spec — seeding never depends on scheduling.
"""

from __future__ import annotations

import copy
import dataclasses
import math
import os
import pickle
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from concurrent.futures import ThreadPoolExecutor as _ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory as _shared_memory
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .errors import SchedulingError
from .network import CostReport
from .protocol import Protocol
from .randomness import CoinSource
from .scheduler import RoundScheduler, Scheduler, TurnScheduler
from .transcript import Transcript

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..distributions.base import InputDistribution
    from ..exec.futures import BatchFuture
    from .simulator import ExecutionResult

__all__ = [
    "RunSpec",
    "TrialResult",
    "BatchResult",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "Engine",
    "FallbackCounts",
    "resolve_executor",
    "derive_seed",
]


def derive_seed(rng: np.random.Generator) -> int:
    """Derive a batch master seed from a caller-supplied generator.

    The bridge between the library's ``rng``-parameter convention and the
    engine's seed-based batches: the same generator state yields the same
    batch, and the generator advances so successive calls draw fresh
    batches.
    """
    return int(rng.integers(0, 2**63))


def _resolve_scheduler(scheduler: Scheduler | str) -> Scheduler:
    if isinstance(scheduler, Scheduler):
        return scheduler
    if scheduler == "round":
        return RoundScheduler()
    if scheduler == "turn":
        return TurnScheduler()
    raise SchedulingError(f"unknown scheduler name {scheduler!r}")


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class RunSpec:
    """A frozen description of one protocol execution.

    Parameters
    ----------
    protocol:
        The protocol to run, or a zero-argument factory returning one
        (use :func:`functools.partial` for picklable factories).  Batch
        trials never share protocol state: each trial runs on a fresh
        ``deepcopy`` of the instance (or a fresh factory call).
    inputs:
        Fixed ``n × m`` 0/1 input matrix, reused by every trial.
        Mutually exclusive with ``distribution``.
    distribution:
        An :class:`~repro.distributions.base.InputDistribution`; each
        trial samples a fresh input matrix from it.
    scheduler:
        ``"round"``, ``"turn"`` or a :class:`Scheduler` instance.
    seed:
        Master seed (int or :class:`numpy.random.SeedSequence`).  Batch
        trial ``t`` is driven by child ``t`` of
        ``SeedSequence(seed).spawn(trials)``; ``None`` means fresh OS
        entropy (non-reproducible).
    rounds:
        Optional override of the protocol's own ``num_rounds``.
    private_bit_budget:
        Per-processor cap on private random bits.
    public_coins:
        Either a :class:`CoinSource` instance (single runs only) or a
        factory ``rng → CoinSource`` called once per trial with the
        trial's generator — the :class:`~repro.core.randomness.PublicCoins`
        class itself is such a factory.
    record_inputs:
        Keep each trial's input matrix on its :class:`TrialResult`
        (needed by accuracy estimators that compare against a target
        function of the input).
    record_transcripts:
        Keep each trial's full :class:`Transcript` (not just its key).
    vectorized:
        Ask ``run_batch`` to evaluate the whole batch with one
        ``protocol.batch_decisions`` + ``protocol.batch_keys`` pass when
        the protocol declares ``supports_batch`` and
        ``supports_batch_keys`` (and the spec needs no transcripts, round
        overrides, coin budgets or public coins).  Inputs are sampled with
        the same per-trial seeds as the scalar path; outputs, costs *and*
        per-trial ``transcript_key`` tuples are bit-identical, so
        key-based estimators can batch too.  Specs the fast path cannot
        honour fall back to scalar execution, announced with a
        :class:`~repro.core.errors.BatchFallbackWarning` and counted on
        ``Engine.batch_fallbacks``.
    """

    protocol: Protocol | Callable[[], Protocol]
    inputs: np.ndarray | None = None
    distribution: "InputDistribution | None" = None
    scheduler: Scheduler | str = "round"
    seed: int | np.random.SeedSequence | None = None
    rounds: int | None = None
    private_bit_budget: int | None = None
    public_coins: CoinSource | Callable[[np.random.Generator], CoinSource] | None = None
    record_inputs: bool = False
    record_transcripts: bool = False
    vectorized: bool = False

    def __post_init__(self) -> None:
        if (self.inputs is None) == (self.distribution is None):
            raise ValueError(
                "RunSpec needs exactly one input source: pass `inputs` "
                "(a fixed matrix) or `distribution` (sampled per trial)"
            )
        if self.inputs is not None:
            array = np.asarray(self.inputs, dtype=np.uint8)
            if array.ndim != 2:
                raise ValueError(
                    f"inputs must be a 2-D array, got shape {array.shape}"
                )
            object.__setattr__(self, "inputs", array)
        if not (isinstance(self.protocol, Protocol) or callable(self.protocol)):
            raise TypeError(
                "protocol must be a Protocol instance or a factory callable, "
                f"got {type(self.protocol).__name__}"
            )
        # Fail fast on bad scheduler names instead of inside a worker.
        _resolve_scheduler(self.scheduler)

    def seed_sequence(self) -> np.random.SeedSequence:
        """The master :class:`~numpy.random.SeedSequence` of this spec."""
        if isinstance(self.seed, np.random.SeedSequence):
            return self.seed
        return np.random.SeedSequence(self.seed)

    def fresh_protocol(self) -> Protocol:
        """A protocol instance private to one trial."""
        if isinstance(self.protocol, Protocol):
            return copy.deepcopy(self.protocol)
        protocol = self.protocol()
        if not isinstance(protocol, Protocol):
            raise TypeError(
                "protocol factory must return a Protocol, got "
                f"{type(protocol).__name__}"
            )
        return protocol


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class TrialResult:
    """The lightweight outcome of one batch trial.

    Mirrors the parts of :class:`~repro.core.simulator.ExecutionResult`
    that batch consumers need (outputs, transcript key, cost report) while
    staying cheap to ship across process boundaries.  ``inputs`` /
    ``transcript`` are populated only when the spec asked for them.
    """

    trial_index: int
    outputs: list[Any]
    transcript_key: tuple[int, ...]
    cost: CostReport
    inputs: np.ndarray | None = None
    transcript: Transcript | None = None

    def output_of(self, proc_id: int) -> Any:
        return self.outputs[proc_id]


@dataclass
class BatchResult:
    """Aggregated outcome of ``Engine.run_batch``.

    Holds the per-trial :class:`TrialResult` records plus vectorized views
    over their :class:`~repro.core.network.CostReport` fields.
    """

    trials: list[TrialResult] = field(default_factory=list)
    #: Lazily-built cache of the vectorized cost views below.  Accessors
    #: like ``batch.rounds`` used to re-materialize a fresh array from a
    #: generator on every call; estimators that touch them in loops now get
    #: the same (read-only) array object back each time.
    _cost_cache: dict[str, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self) -> Iterator[TrialResult]:
        return iter(self.trials)

    def __getitem__(self, index: int) -> TrialResult:
        return self.trials[index]

    # -- per-trial views ------------------------------------------------
    @property
    def outputs(self) -> list[list[Any]]:
        """``outputs[t][i]`` is processor ``i``'s output in trial ``t``."""
        return [t.outputs for t in self.trials]

    @property
    def transcript_keys(self) -> list[tuple[int, ...]]:
        return [t.transcript_key for t in self.trials]

    @property
    def costs(self) -> list[CostReport]:
        return [t.cost for t in self.trials]

    def outputs_of(self, proc_id: int) -> list[Any]:
        """Processor ``proc_id``'s output in every trial."""
        return [t.outputs[proc_id] for t in self.trials]

    def decisions(self, proc_id: int = 0) -> np.ndarray:
        """Processor ``proc_id``'s outputs coerced to a 0/1 uint8 vector."""
        return np.fromiter(
            (int(bool(t.outputs[proc_id])) for t in self.trials),
            dtype=np.uint8,
            count=len(self.trials),
        )

    def key_counts(self) -> dict[tuple[int, ...], int]:
        """Histogram of transcript keys across trials."""
        counts: dict[tuple[int, ...], int] = {}
        for key in self.transcript_keys:
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- vectorized cost statistics -------------------------------------
    def _cost_array(self, attr: str) -> np.ndarray:
        cached = self._cost_cache.get(attr)
        if cached is None:
            cached = np.fromiter(
                (getattr(t.cost, attr) for t in self.trials),
                dtype=np.int64,
                count=len(self.trials),
            )
            # Handing the same object to every caller means a mutation
            # would poison all later reads — freeze it.
            cached.setflags(write=False)
            self._cost_cache[attr] = cached
        return cached

    @property
    def rounds(self) -> np.ndarray:
        return self._cost_array("rounds")

    @property
    def turns(self) -> np.ndarray:
        return self._cost_array("turns")

    @property
    def broadcast_bits(self) -> np.ndarray:
        return self._cost_array("broadcast_bits")

    @property
    def total_private_bits(self) -> np.ndarray:
        return self._cost_array("total_private_bits")

    @property
    def max_private_bits(self) -> np.ndarray:
        return self._cost_array("max_private_bits")

    @property
    def public_bits(self) -> np.ndarray:
        return self._cost_array("public_bits")

    def cost_totals(self) -> dict[str, int]:
        """Summed resource usage over the whole batch."""
        return {
            "rounds": int(self.rounds.sum()),
            "turns": int(self.turns.sum()),
            "broadcast_bits": int(self.broadcast_bits.sum()),
            "total_private_bits": int(self.total_private_bits.sum()),
            "public_bits": int(self.public_bits.sum()),
        }

    def cost_summary(self) -> str:
        if not self.trials:
            return "empty batch"
        totals = self.cost_totals()
        return (
            f"{len(self.trials)} trials, "
            f"{totals['broadcast_bits']} bits on the wire, "
            f"mean {self.rounds.mean():.2f} rounds/trial, "
            f"{totals['total_private_bits']} private + "
            f"{totals['public_bits']} public random bits"
        )


# ----------------------------------------------------------------------
# Shared-memory input handles
# ----------------------------------------------------------------------
#: Process-local cache of attached shared-memory blocks, keyed by segment
#: name.  Blocks stay attached for the life of the worker process (pool
#: workers are recycled per batch); the parent unlinks the segment once the
#: batch completes, which on POSIX is safe while mappings remain open.
_SHARED_ATTACHMENTS: dict[str, tuple[Any, np.ndarray]] = {}


class _SharedInput:
    """Pickle-light handle to a fixed input matrix living in shared memory."""

    __slots__ = ("name", "shape", "dtype_str")

    def __init__(self, name: str, shape: tuple[int, ...], dtype: np.dtype):
        self.name = name
        self.shape = shape
        self.dtype_str = np.dtype(dtype).str

    def attach(self) -> np.ndarray:
        """A read-only array view of the segment (cached per process)."""
        cached = _SHARED_ATTACHMENTS.get(self.name)
        if cached is None:
            # Attaching re-registers the segment with the resource tracker
            # (bpo-38119), but fork-started pool workers share the parent's
            # tracker, so the registration is an idempotent set-add and the
            # parent's unlink() after the batch removes the single entry.
            block = _shared_memory.SharedMemory(name=self.name)
            array = np.ndarray(self.shape, dtype=self.dtype_str, buffer=block.buf)
            array.flags.writeable = False
            cached = (block, array)
            _SHARED_ATTACHMENTS[self.name] = cached
        return cached[1]


#: Stand-in satisfying RunSpec validation while the real fixed inputs
#: travel through shared memory instead of the pickle stream.
_SHARED_INPUT_PLACEHOLDER = np.empty((0, 0), dtype=np.uint8)


def _content_digest(inputs: np.ndarray) -> str:
    """Content identity of a fixed input matrix: shape, dtype, and bytes.

    The key under which executors cache published inputs — two arrays
    with the same digest are interchangeable, so repeated batches over
    the same matrix (the common sweep shape) publish it exactly once per
    pool / per remote worker.
    """
    import hashlib

    return hashlib.sha256(
        repr((inputs.shape, np.dtype(inputs.dtype).str)).encode()
        + np.ascontiguousarray(inputs).tobytes()
    ).hexdigest()


class _DigestCache:
    """``id()``-keyed memo of content digests, bounded FIFO.

    Hashing a large matrix on every batch would erase much of the win of
    publishing it once; sweeps reuse the *same array object* across
    batches, so memoizing by ``id`` (with the array reference pinning the
    id against reuse) makes repeat publications O(1).  The bound keeps a
    long-lived executor sweeping over many *distinct* matrices from
    pinning every one of them forever — an evicted entry merely re-hashes
    on next use.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self._entries: dict[int, tuple[np.ndarray, str]] = {}
        # Callers publish from concurrent submission threads; the memo
        # (and especially its eviction loop) must not race itself.
        self._lock = threading.Lock()

    def digest(self, inputs: np.ndarray) -> str:
        with self._lock:
            known = self._entries.get(id(inputs))
            if known is not None and known[0] is inputs:
                return known[1]
        digest = _content_digest(inputs)  # hash outside the lock
        with self._lock:
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[id(inputs)] = (inputs, digest)
        return digest

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def _create_shared_segment(
    inputs: np.ndarray,
) -> tuple[_shared_memory.SharedMemory, _SharedInput]:
    """Copy ``inputs`` into a fresh shared-memory segment; return block + handle."""
    block = _shared_memory.SharedMemory(create=True, size=inputs.nbytes)
    view = np.ndarray(inputs.shape, dtype=inputs.dtype, buffer=block.buf)
    view[:] = inputs
    return block, _SharedInput(block.name, inputs.shape, inputs.dtype)


def _evict_shared_attachment(name: str) -> None:
    """Drop the calling process's cached attachment of segment ``name``.

    The parent may have attached its own view of a segment it published
    (serial fallback for unpicklable tasks); the mapping must be closed
    before the segment is unlinked so it does not outlive its batch/pool.
    """
    cached = _SHARED_ATTACHMENTS.pop(name, None)
    if cached is not None:
        cached[0].close()


# ----------------------------------------------------------------------
# Trial runner (module level so process pools can pickle it)
# ----------------------------------------------------------------------
def _normalize_batch_keys(
    raw: "np.ndarray | list[tuple[int, ...]]", count: int
) -> list[tuple[int, ...]]:
    """Normalize a ``batch_keys`` return value to per-trial key tuples.

    Accepts the rectangular ``(trials, turns)`` integer array of
    fixed-round protocols or the ragged list / object array of
    dynamically-terminating ones; always yields plain-int tuples matching
    ``Transcript.key()``.
    """
    if isinstance(raw, np.ndarray) and raw.dtype != object:
        if raw.ndim != 2 or raw.shape[0] != count:
            raise ValueError(
                f"batch_keys must return shape ({count}, turns), "
                f"got {raw.shape}"
            )
        return [tuple(row) for row in raw.tolist()]
    keys = list(raw)
    if len(keys) != count:
        raise ValueError(
            f"batch_keys must return one key per trial ({count}), "
            f"got {len(keys)}"
        )
    return [tuple(int(v) for v in key) for key in keys]


class _TrialRunner:
    """Callable shipping a spec to workers: ``(index, SeedSequence) → TrialResult``."""

    def __init__(self, spec: RunSpec, shared_input: _SharedInput | None = None):
        self.spec = spec
        self.shared_input = shared_input

    def __getstate__(self) -> dict[str, Any]:
        spec = self.spec
        if self.shared_input is not None and spec.inputs is not None:
            spec = dataclasses.replace(spec, inputs=_SHARED_INPUT_PLACEHOLDER)
        return {"spec": spec, "shared_input": self.shared_input}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.spec = state["spec"]
        self.shared_input = state["shared_input"]

    def _fixed_inputs(self) -> np.ndarray:
        if self.shared_input is not None:
            return self.shared_input.attach()
        return self.spec.inputs

    def __call__(self, task: tuple[int, np.random.SeedSequence]) -> TrialResult:
        index, seed_seq = task
        spec = self.spec
        rng = np.random.default_rng(seed_seq)
        protocol = spec.fresh_protocol()
        recorded = None
        if spec.distribution is not None:
            inputs = spec.distribution.sample(rng)
            recorded = inputs
        else:
            inputs = self._fixed_inputs()
            # Recorded inputs must survive the batch; a shared-memory view
            # dies when the parent unlinks the segment, so copy it out.
            recorded = np.array(inputs) if self.shared_input is not None else inputs
        public = spec.public_coins
        if public is not None and not isinstance(public, CoinSource):
            public = public(rng)
        result = _execute(
            protocol,
            inputs,
            _resolve_scheduler(spec.scheduler),
            rng,
            spec.rounds,
            spec.private_bit_budget,
            public,
        )
        return TrialResult(
            trial_index=index,
            outputs=result.outputs,
            transcript_key=result.transcript.key(),
            cost=result.cost,
            inputs=recorded if spec.record_inputs else None,
            transcript=result.transcript if spec.record_transcripts else None,
        )


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class Executor:
    """Maps a function over items, preserving order.

    The engine builds batches on top of :meth:`map`; other subsystems
    (parameter sweeps, the Newman compiler) reuse the same primitive for
    their own trial shapes.
    """

    name: str = "executor"

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        raise NotImplementedError

    # -- shared fallback machinery --------------------------------------
    # Every out-of-process backend needs the same three pieces; they live
    # here so the backends cannot drift apart.

    @staticmethod
    def _pickle_probe(fn: Callable[[Any], Any], items: list[Any]) -> Exception | None:
        """The exception that makes ``(fn, items[0])`` unshippable, if any."""
        try:
            pickle.dumps((fn, items[0]))
            return None
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            return exc

    def _unpicklable_fallback(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        exc: Exception,
        action: str = "running serially",
        reason: str = "not picklable",
    ) -> list[Any]:
        """Run in-process with a warning naming the backend and cause.

        ``reason`` names the shippability contract that failed — pickle
        for the process-pool backends, the schema'd wire vocabulary
        (``"not wire-encodable"``) for the distributed one.
        """
        warnings.warn(
            f"{type(self).__name__} task is {reason} "
            f"({type(exc).__name__}: {exc}); {action}",
            RuntimeWarning,
            stacklevel=3,
        )
        return [fn(item) for item in items]

    @staticmethod
    def _default_chunksize(n_items: int, lanes: int, stealing: bool = False) -> int:
        """~4 chunks per worker lane, amortizing IPC without starving anyone.

        Under a work-stealing scheduler the right trade-off shifts: ~8
        chunks per lane, so a straggler's queue still holds chunks worth
        stealing when the fast lanes finish their share — with only
        stragglers' chunks migrating, the finer granularity costs almost
        no extra per-frame overhead on the healthy lanes.
        """
        return max(1, math.ceil(n_items / ((8 if stealing else 4) * lanes)))

    # -- shared-memory input protocol -----------------------------------
    # Executors own the lifecycle of shared fixed-input segments because
    # only they know how long workers live: a per-batch pool must unlink
    # the segment when the batch ends, while a warm pool keeps workers
    # (and their attachments) alive across batches and releases segments
    # only when the pool closes.

    def wants_shared_inputs(self, inputs: np.ndarray) -> bool:
        """Whether a fixed input matrix should travel via shared memory."""
        return False

    def publish_inputs(self, inputs: np.ndarray) -> _SharedInput | None:
        """Publish ``inputs`` to workers; ``None`` means "pickle per task"."""
        return None

    def release_inputs(self, handle: _SharedInput) -> None:
        """Called by the engine once the batch using ``handle`` completed."""


class SerialExecutor(Executor):
    """Run every item in the calling process, in order."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """Fan items out over a process pool.

    Results are returned in submission order, so any deterministic ``fn``
    produces output identical to :class:`SerialExecutor`.  If ``fn`` (or
    its captured state) cannot be pickled the executor falls back to
    serial execution with a :class:`RuntimeWarning` instead of raising —
    lambdas and closures stay usable everywhere, they just don't
    parallelize.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Items per task shipped to a worker; defaults to
        ``ceil(len(items) / (4 * max_workers))`` to amortize IPC.
    share_inputs_min_bytes:
        Fixed input matrices at least this large are published to workers
        through ``multiprocessing.shared_memory`` (one copy machine-wide)
        instead of being pickled into every task.  Used by
        ``Engine.run_batch``; set very large to disable.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int | None = None,
        share_inputs_min_bytes: int = 1 << 16,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if share_inputs_min_bytes < 1:
            raise ValueError("share_inputs_min_bytes must be >= 1")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.chunksize = chunksize
        self.share_inputs_min_bytes = share_inputs_min_bytes
        # Segments published for in-flight batches, keyed by name; needed
        # to close+unlink in release_inputs.
        self._live_segments: dict[str, _shared_memory.SharedMemory] = {}

    def wants_shared_inputs(self, inputs: np.ndarray) -> bool:
        return (
            self.max_workers > 1
            and inputs.nbytes >= self.share_inputs_min_bytes
        )

    def publish_inputs(self, inputs: np.ndarray) -> _SharedInput | None:
        if not self.wants_shared_inputs(inputs):
            return None
        block, handle = _create_shared_segment(inputs)
        self._live_segments[handle.name] = block
        return handle

    def release_inputs(self, handle: _SharedInput) -> None:
        block = self._live_segments.pop(handle.name, None)
        if block is None:
            return
        _evict_shared_attachment(handle.name)
        block.close()
        block.unlink()

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        items = list(items)
        if len(items) <= 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        probe_exc = self._pickle_probe(fn, items)
        if probe_exc is not None:
            return self._unpicklable_fallback(fn, items, probe_exc)
        workers = min(self.max_workers, len(items))
        chunksize = self.chunksize or self._default_chunksize(len(items), workers)
        try:
            with _PoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items, chunksize=chunksize))
        except pickle.PicklingError as exc:
            # A later item slipped past the sample pre-check.  Trials are
            # pure, so rerunning from scratch in-process is safe.
            return self._unpicklable_fallback(fn, items, exc)


def resolve_executor(executor: Executor | str | None) -> Executor:
    """Coerce ``None`` / ``"serial"`` / ``"parallel"`` / instance to an Executor."""
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "parallel":
        return ParallelExecutor()
    raise ValueError(f"unknown executor {executor!r}")


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _validate_batch_args(spec: RunSpec, trials: int) -> None:
    """Batch preconditions, shared by ``run_batch`` and ``submit_batch``."""
    if trials < 0:
        raise ValueError("trial count must be non-negative")
    if isinstance(spec.public_coins, CoinSource):
        raise ValueError(
            "run_batch needs per-trial public coins: pass a factory "
            "(e.g. the PublicCoins class), not a CoinSource instance"
        )


class FallbackCounts(dict):
    """Per-reason fallback counts that still compare like the old int.

    ``Engine.batch_fallbacks`` was a bare int for several releases;
    existing callers compare it against integers and monitors alert on
    it.  This dict subclass keeps those reads working (``== 2``,
    ``int(...)``) while exposing *why* each fallback happened, keyed by
    the short reason code also carried in the paired
    :class:`~repro.core.errors.BatchFallbackWarning`.

    >>> counts = FallbackCounts({"no_batch_support": 1, "full_fidelity": 1})
    >>> counts == 2 and counts.total == 2 and int(counts) == 2
    True
    >>> counts["full_fidelity"]
    1
    """

    @property
    def total(self) -> int:
        return sum(self.values())

    def __int__(self) -> int:
        return self.total

    def __eq__(self, other: object) -> bool:
        if isinstance(other, bool):
            return NotImplemented
        if isinstance(other, int):
            return self.total == other
        return dict.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment]  # dicts are unhashable


#: Registry series behind :attr:`Engine.batch_fallbacks`.
FALLBACKS_METRIC = "engine_batch_fallbacks_total"


class Engine:
    """Executes :class:`RunSpec` objects on a pluggable backend.

    Parameters
    ----------
    executor:
        Backend trials run on (``None`` / ``"serial"`` / ``"parallel"`` /
        an :class:`Executor` instance, e.g. a warm
        :class:`repro.exec.WorkerPool`).
    max_inflight:
        Submission threads backing :meth:`submit_batch` — the number of
        batches that can be *dispatching* concurrently (each in-flight
        batch occupies one thread until its trials finish).  Defaults to
        ``max(4, cpu_count)``.  Queued batches beyond this start in
        submission order, which is what makes ``BatchFuture.cancel()``
        effective on not-yet-started work.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` the engine's
        counters live in (a private one by default).  Pass the same
        registry to the engine and its executor to export one unified
        metrics artifact for a run.
    tracer:
        :class:`~repro.obs.trace.Tracer` for span-based timing of
        :meth:`run_batch` / :meth:`submit_batch`.  Defaults to the
        zero-overhead :data:`~repro.obs.trace.NULL_TRACER`.
    """

    def __init__(
        self,
        executor: Executor | str | None = None,
        max_inflight: int | None = None,
        registry: MetricsRegistry | None = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.executor = resolve_executor(executor)
        self.max_inflight = max_inflight or max(4, os.cpu_count() or 1)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._submitter: _ThreadPoolExecutor | None = None
        self._submitter_lock = threading.Lock()

    @property
    def batch_fallbacks(self) -> FallbackCounts:
        """Vectorized→scalar downgrades, by reason code.

        Served from the unified registry
        (``engine_batch_fallbacks_total{reason}``); compares equal to
        the all-reasons total when read as an int, which is exactly the
        old bare-int behaviour.
        """
        return FallbackCounts(
            {
                series.labels["reason"]: series.snapshot_value()
                for series in self.registry.series(FALLBACKS_METRIC)
                if series.snapshot_value()
            }
        )

    # -- asynchronous batches -------------------------------------------
    def submit_batch(self, spec: RunSpec, trials: int) -> "BatchFuture":
        """Schedule ``run_batch(spec, trials)``; return a future immediately.

        The batch runs on one of the engine's submission threads (created
        lazily, up to ``max_inflight``); the returned
        :class:`repro.exec.BatchFuture` resolves to the same
        :class:`BatchResult` — bit-identical — that a blocking
        :meth:`run_batch` call would produce, because per-trial seeds are
        a pure function of the spec, never of scheduling.  Futures for
        batches that have not started yet can still be cancelled.
        """
        from ..exec.futures import BatchFuture

        # Validate eagerly so mistakes surface at the call site, not
        # later inside a submission thread.
        _validate_batch_args(spec, trials)
        with self.tracer.span("submit_batch", track="engine", trials=trials):
            with self._submitter_lock:
                if self._submitter is None:
                    self._submitter = _ThreadPoolExecutor(
                        max_workers=self.max_inflight,
                        thread_name_prefix="repro-engine-submit",
                    )
                inner = self._submitter.submit(self.run_batch, spec, trials)
        return BatchFuture(inner, spec=spec, trials=trials)

    def close(self, cancel_pending: bool = False) -> None:
        """Wait for in-flight batches and release the submission threads.

        ``cancel_pending=True`` additionally cancels batches that were
        submitted but have not started.  Idempotent; the engine can keep
        executing blocking :meth:`run` / :meth:`run_batch` calls after
        closing, and a later :meth:`submit_batch` re-opens the submitter.
        """
        with self._submitter_lock:
            submitter, self._submitter = self._submitter, None
        if submitter is not None:
            submitter.shutdown(wait=True, cancel_futures=cancel_pending)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(
        self, spec: RunSpec, rng: np.random.Generator | None = None
    ) -> "ExecutionResult":
        """One full-fidelity execution in the calling process.

        Unlike batch trials, the spec's protocol instance is used as-is
        (no copy) and a :class:`CoinSource` given as ``public_coins`` is
        honoured directly — this is what makes :func:`run_protocol` an
        exact wrapper.  ``rng`` overrides the spec's seed when given.
        """
        if rng is None:
            rng = np.random.default_rng(spec.seed_sequence())
        protocol = (
            spec.protocol
            if isinstance(spec.protocol, Protocol)
            else spec.fresh_protocol()
        )
        if spec.distribution is not None:
            inputs = spec.distribution.sample(rng)
        else:
            inputs = spec.inputs
        public = spec.public_coins
        if public is not None and not isinstance(public, CoinSource):
            public = public(rng)
        return _execute(
            protocol,
            inputs,
            _resolve_scheduler(spec.scheduler),
            rng,
            spec.rounds,
            spec.private_bit_budget,
            public,
        )

    def run_batch(self, spec: RunSpec, trials: int) -> BatchResult:
        """Execute ``trials`` independent trials of ``spec``.

        Trial ``t`` is driven entirely by child ``t`` of the spec's master
        :class:`~numpy.random.SeedSequence`, so the result is bit-identical
        across executor backends — and across the ``vectorized`` fast path,
        which evaluates all trials with one batched-kernel call when the
        protocol supports it.
        """
        _validate_batch_args(spec, trials)
        with self.tracer.span(
            "run_batch", track="engine", trials=trials, vectorized=spec.vectorized
        ):
            if spec.vectorized:
                batch = self._run_batch_vectorized(spec, trials)
                if batch is not None:
                    return batch
            seeds = spec.seed_sequence().spawn(trials)
            runner = _TrialRunner(spec)
            handle = None
            if self._should_share_inputs(spec, trials):
                handle = self.executor.publish_inputs(spec.inputs)
                runner.shared_input = handle
            try:
                results = self.executor.map(runner, list(enumerate(seeds)))
            finally:
                if handle is not None:
                    self.executor.release_inputs(handle)
            return BatchResult(trials=results)

    def _should_share_inputs(self, spec: RunSpec, trials: int) -> bool:
        return (
            trials > 1
            and spec.inputs is not None
            and self.executor.wants_shared_inputs(spec.inputs)
        )

    #: Trials evaluated per batched-kernel call on the vectorized fast
    #: path: bounds the (chunk, n, m) input stack (plus its packed copy
    #: inside ``batch_decisions``) without giving up the batching win.
    VECTORIZED_CHUNK_TRIALS = 4096

    def _note_batch_fallback(self, code: str, reason: str) -> None:
        """Record (per reason ``code``) and announce one downgrade."""
        from .errors import BatchFallbackWarning

        # Registry counters are individually locked, so concurrent
        # submit_batch threads never lose increments.
        self.registry.counter(FALLBACKS_METRIC, reason=code).inc()
        warnings.warn(
            f"RunSpec(vectorized=True) fell back to scalar simulation "
            f"[{code}]: {reason}",
            BatchFallbackWarning,
            stacklevel=4,
        )

    def _run_batch_vectorized(self, spec: RunSpec, trials: int) -> BatchResult | None:
        """The batched-kernel fast path; ``None`` means "use the scalar path".

        Inputs are sampled per trial from the same spawned seed children as
        the scalar path (bit-identical), stacked in bounded chunks, and
        handed to the protocol's ``batch_decisions`` and ``batch_keys``; a
        fixed input matrix is evaluated once and its trial replicated.
        Costs are synthesized from the protocol's metadata — exact for
        input-deterministic protocols, which run their full round count,
        broadcast every turn and draw no coins.  Transcript keys come from
        ``batch_keys``, so key-based estimators see the same tuples the
        scalar path records.  Every decline is announced with a
        :class:`~repro.core.errors.BatchFallbackWarning` and counted on
        :attr:`batch_fallbacks`.
        """
        protocol = spec.fresh_protocol()
        if not getattr(protocol, "supports_batch", False):
            self._note_batch_fallback(
                "no_batch_support",
                f"{type(protocol).__name__} does not declare supports_batch",
            )
            return None
        if not getattr(protocol, "supports_batch_keys", False):
            self._note_batch_fallback(
                "no_batch_keys",
                f"{type(protocol).__name__} declares supports_batch but not "
                "supports_batch_keys, so transcript keys cannot be "
                "synthesized on the fast path",
            )
            return None
        if (
            spec.record_transcripts
            or spec.rounds is not None
            or spec.private_bit_budget is not None
            or spec.public_coins is not None
        ):
            self._note_batch_fallback(
                "full_fidelity",
                "the spec needs full-fidelity simulation (transcript "
                "recording, a rounds override, coin budgets, or public "
                "coins)",
            )
            return None
        if trials == 0:
            return BatchResult()

        uses_coins = bool(getattr(protocol, "batch_uses_coins", False))
        coin_bits = int(getattr(protocol, "batch_coin_bits", 0)) if uses_coins else 0

        def coin_seeds_for(rng: np.random.Generator, n: int) -> np.ndarray:
            # Exactly the per-processor seed draw make_contexts performs on
            # the scalar path, so batched coin protocols replay the same
            # private randomness bit for bit.
            return rng.integers(0, 2**63, size=n, dtype=np.int64)

        def trial_results(
            start: int,
            inputs: np.ndarray,
            per_trial_inputs: Callable[[int], np.ndarray],
            coin_seeds: np.ndarray | None = None,
        ) -> list[TrialResult]:
            count, n = inputs.shape[0], inputs.shape[1]
            if uses_coins:
                decisions = np.asarray(
                    protocol.batch_decisions(inputs, coin_seeds=coin_seeds)
                )
                raw_keys = protocol.batch_keys(inputs, coin_seeds=coin_seeds)
            else:
                decisions = np.asarray(protocol.batch_decisions(inputs))
                raw_keys = protocol.batch_keys(inputs)
            if decisions.shape not in ((count,), (count, n)):
                raise ValueError(
                    f"batch_decisions must return shape ({count},) or "
                    f"({count}, {n}), got {decisions.shape}"
                )
            key_tuples = _normalize_batch_keys(raw_keys, count)
            width = protocol.message_size
            decision_rows = decisions.tolist()
            out = []
            for offset in range(count):
                key = key_tuples[offset]
                turns = len(key)
                if n:
                    if turns % n:
                        raise ValueError(
                            f"batch_keys row {start + offset} has {turns} "
                            f"turns, not a multiple of n={n}: every processor "
                            "speaks once per round"
                        )
                    rounds = turns // n
                else:
                    rounds = protocol.num_rounds(0)
                cost = CostReport(
                    n_processors=n,
                    rounds=rounds,
                    turns=turns,
                    broadcast_bits=turns * width,
                    message_size=width,
                    private_bits_per_processor=[coin_bits] * n,
                    public_bits=0,
                )
                value = decision_rows[offset]
                out.append(
                    TrialResult(
                        trial_index=start + offset,
                        outputs=list(value) if decisions.ndim == 2 else [value] * n,
                        transcript_key=key,
                        cost=cost,
                        inputs=per_trial_inputs(offset)
                        if spec.record_inputs
                        else None,
                    )
                )
            return out

        if spec.distribution is None and not uses_coins:
            # Input-deterministic protocol + fixed inputs: one evaluation
            # covers every trial.
            single = trial_results(0, spec.inputs[None], lambda _: spec.inputs)
            template = single[0]
            results = [
                dataclasses.replace(template, trial_index=index)
                for index in range(trials)
            ]
            return BatchResult(trials=results)

        seeds = spec.seed_sequence().spawn(trials)
        results = []
        for start in range(0, trials, self.VECTORIZED_CHUNK_TRIALS):
            chunk = seeds[start : start + self.VECTORIZED_CHUNK_TRIALS]
            chunk_coin_seeds = None
            if spec.distribution is None:
                # Coin protocol on fixed inputs: trials differ only in
                # their private coins; share one read-only input view.
                rows = [spec.inputs] * len(chunk)
                inputs = np.broadcast_to(
                    spec.inputs[None], (len(chunk),) + spec.inputs.shape
                )
            else:
                rows = []
                per_trial_coin_seeds = []
                for seed in chunk:
                    rng = np.random.default_rng(seed)
                    # Order matters and mirrors _TrialRunner: the input is
                    # sampled first, then make_contexts draws coin seeds
                    # from the same generator.
                    row = spec.distribution.sample(rng)
                    rows.append(row)
                    if uses_coins:
                        per_trial_coin_seeds.append(
                            coin_seeds_for(rng, row.shape[0])
                        )
                inputs = np.stack(rows)
                if uses_coins:
                    chunk_coin_seeds = np.stack(per_trial_coin_seeds)
            if uses_coins and chunk_coin_seeds is None:
                chunk_coin_seeds = np.stack(
                    [
                        coin_seeds_for(
                            np.random.default_rng(seed), spec.inputs.shape[0]
                        )
                        for seed in chunk
                    ]
                )
            results.extend(
                trial_results(
                    start,
                    inputs,
                    lambda offset: rows[offset],
                    coin_seeds=chunk_coin_seeds,
                )
            )
        return BatchResult(trials=results)


# ----------------------------------------------------------------------
# The execution core (moved verbatim from the original run_protocol)
# ----------------------------------------------------------------------
def _execute(
    protocol: Protocol,
    inputs: np.ndarray,
    scheduler: Scheduler,
    rng: np.random.Generator | None,
    rounds: int | None,
    private_bit_budget: int | None,
    public_coins: CoinSource | None,
) -> "ExecutionResult":
    """Run one protocol execution; the single place simulation happens."""
    from .errors import MessageSizeError
    from .simulator import ExecutionResult, make_contexts
    from .transcript import BroadcastEvent

    contexts, transcript = make_contexts(
        inputs, rng=rng, private_bit_budget=private_bit_budget,
        public_coins=public_coins,
    )
    n = len(contexts)
    n_rounds = protocol.num_rounds(n) if rounds is None else rounds
    width = protocol.message_size
    if width < 1:
        raise MessageSizeError(f"message size must be >= 1, got {width}")
    max_payload = 1 << width

    for proc in contexts:
        protocol.setup(proc)

    turn = 0
    rounds_run = 0
    for round_index in range(n_rounds):
        if rounds is None and protocol.finished(n, transcript, round_index):
            break
        if scheduler.sees_current_round:
            # Sequential turns: append each event immediately so later
            # speakers in the same round condition on it.
            for proc_id in scheduler.speaking_order(n, round_index):
                message = _checked_message(
                    protocol.broadcast(contexts[proc_id], round_index),
                    max_payload, proc_id, round_index,
                )
                transcript.append(
                    BroadcastEvent(turn, round_index, proc_id, message, width)
                )
                turn += 1
        else:
            # Synchronous round: compute all messages against the frozen
            # transcript of previous rounds, then publish together.
            pending: list[tuple[int, int]] = []
            for proc_id in scheduler.speaking_order(n, round_index):
                message = _checked_message(
                    protocol.broadcast(contexts[proc_id], round_index),
                    max_payload, proc_id, round_index,
                )
                pending.append((proc_id, message))
            for proc_id, message in pending:
                transcript.append(
                    BroadcastEvent(turn, round_index, proc_id, message, width)
                )
                turn += 1
        round_messages = {
            e.sender: e.message for e in transcript.messages_in_round(round_index)
        }
        for proc in contexts:
            protocol.receive(proc, round_index, round_messages)
        rounds_run = round_index + 1

    outputs = [protocol.output(proc) for proc in contexts]
    for proc, value in zip(contexts, outputs):
        proc.output = value

    cost = CostReport(
        n_processors=n,
        rounds=rounds_run,
        turns=turn,
        broadcast_bits=transcript.total_bits,
        message_size=width,
        private_bits_per_processor=[proc.coins.bits_used for proc in contexts],
        public_bits=public_coins.bits_used if public_coins is not None else 0,
    )
    return ExecutionResult(
        outputs=outputs, transcript=transcript, cost=cost, contexts=contexts
    )


def _checked_message(
    message: Any, max_payload: int, proc_id: int, round_index: int
) -> int:
    message = int(message)
    if not 0 <= message < max_payload:
        from .errors import MessageSizeError

        raise MessageSizeError(
            f"processor {proc_id} broadcast payload {message} in round "
            f"{round_index}, exceeding the BCAST width ({max_payload - 1} max)"
        )
    return message
