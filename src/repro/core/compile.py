"""Model compilation: ``BCAST(b)`` → ``BCAST(1)``.

Footnote 1 of the paper: "every lower bound for BCAST(1) can be extended
to a lower bound for BCAST(log n) with only a log n factor loss in the
number of rounds" — because a ``b``-bit broadcast round can be simulated
by ``b`` one-bit rounds.  :class:`Bcast1Compiled` performs exactly that
simulation: round ``r`` of the source protocol becomes rounds
``r·b … r·b + b - 1`` of the compiled protocol, with bit ``t`` of each
payload broadcast in sub-round ``t``.

The compiled protocol presents the source protocol with a faithful
*virtual* view: a reconstructed ``BCAST(b)`` transcript, so source
protocols that inspect ``proc.transcript`` behave identically.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from .processor import ProcessorContext
from .protocol import Protocol
from .transcript import BroadcastEvent, Transcript

__all__ = ["Bcast1Compiled", "compiled_round_count"]


def compiled_round_count(source_rounds: int, message_size: int) -> int:
    """Rounds after compilation: the footnote's ``b ×`` factor."""
    return source_rounds * message_size


class Bcast1Compiled(Protocol):
    """Simulate a ``BCAST(b)`` protocol in the ``BCAST(1)`` model.

    Parameters
    ----------
    source:
        Any protocol with ``message_size >= 1``.

    The compiled protocol has ``message_size = 1`` and runs
    ``source.num_rounds(n) * b`` rounds.  Costs reported by the simulator
    are the *compiled* costs — total broadcast bits are unchanged, rounds
    multiply by ``b``.
    """

    message_size = 1

    def __init__(self, source: Protocol):
        if source.message_size < 1:
            raise ValueError("source protocol must have message_size >= 1")
        self.source = source
        self.width = source.message_size

    def num_rounds(self, n: int) -> int:
        return compiled_round_count(self.source.num_rounds(n), self.width)

    def setup(self, proc: ProcessorContext) -> None:
        self.source.setup(proc)

    # ------------------------------------------------------------------
    # Virtual-view plumbing
    # ------------------------------------------------------------------
    def _virtual_transcript(self, proc: ProcessorContext) -> Transcript:
        """Reassemble the completed source rounds into a ``BCAST(b)``
        transcript (little-endian bit order within each payload)."""
        virtual = Transcript()
        events = list(proc.transcript)
        per_round = proc.n * self.width
        completed_source_rounds = len(events) // per_round
        turn = 0
        for src_round in range(completed_source_rounds):
            base = src_round * per_round
            for sender in range(proc.n):
                payload = 0
                for t in range(self.width):
                    event = events[base + t * proc.n + sender]
                    payload |= event.message << t
                virtual.append(
                    BroadcastEvent(turn, src_round, sender, payload, self.width)
                )
                turn += 1
        return virtual

    def _with_virtual_view(
        self, proc: ProcessorContext
    ) -> contextlib.AbstractContextManager[None]:
        @contextlib.contextmanager
        def swap() -> Iterator[None]:
            original = proc.transcript
            proc.transcript = self._virtual_transcript(proc)
            try:
                yield
            finally:
                proc.transcript = original

        return swap()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        src_round, sub_round = divmod(round_index, self.width)
        cache_key = ("bcast1_payload", src_round)
        if sub_round == 0:
            with self._with_virtual_view(proc):
                payload = int(self.source.broadcast(proc, src_round))
            if not 0 <= payload < (1 << self.width):
                raise ValueError(
                    f"source payload {payload} exceeds BCAST({self.width})"
                )
            proc.memory[cache_key] = payload
            proc.memory.pop(("bcast1_payload", src_round - 1), None)
        return (proc.memory[cache_key] >> sub_round) & 1

    def receive(
        self, proc: ProcessorContext, round_index: int, messages: dict[int, int]
    ) -> None:
        src_round, sub_round = divmod(round_index, self.width)
        if sub_round == self.width - 1:
            with self._with_virtual_view(proc):
                virtual_messages = {
                    e.sender: e.message
                    for e in proc.transcript.messages_in_round(src_round)
                }
                self.source.receive(proc, src_round, virtual_messages)

    def output(self, proc: ProcessorContext) -> Any:
        with self._with_virtual_view(proc):
            return self.source.output(proc)
