"""The protocol abstraction for the Broadcast Congested Clique.

A :class:`Protocol` describes what every processor does: in each round (or
turn) each processor computes one message of at most ``message_size`` bits
from its *local view* (private input, private/public coins, transcript so
far) and broadcasts it to everybody.  ``message_size = 1`` gives the
``BCAST(1)`` model of the paper; ``message_size = ceil(log2 n)`` gives
``BCAST(log n)``.

Two concrete conveniences are provided:

* :class:`FunctionProtocol` — a deterministic protocol given by per-turn
  next-message functions ``f_i(input_row, transcript_bits) → bit``, the
  exact object the paper's lower-bound proofs quantify over ("processor i
  can then be defined by a function f_i(z, p)", Section 1.3).
* :class:`ComposedProtocol` — runs one protocol after another, letting the
  derandomization transform of Corollary 7.1 prepend the PRG's seed
  exchange to an arbitrary payload protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .errors import ProtocolViolation
from .processor import ProcessorContext

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from ..costs.model import CostModel

__all__ = ["Protocol", "FunctionProtocol", "ComposedProtocol", "require_bits"]

#: Next-message function type: (proc_id, input_row, transcript_bits) -> message
NextMessageFn = Callable[[int, Any, tuple[int, ...]], int]


def require_bits(values: "np.ndarray | Sequence[int]", what: str) -> None:
    """Reject payload arrays the scalar ``BCAST(1)`` width check would refuse.

    Batched ``batch_decisions`` / ``batch_keys`` implementations that
    broadcast input entries raw must validate them as 0/1 bits: the scalar
    simulator raises on any other payload, and a batched path that
    silently coerced instead would break its bit-identical guarantee.
    """
    values = np.asarray(values)
    if values.size and (values.min() < 0 or values.max() > 1):
        raise ValueError(f"{what} must be 0/1 bits")


class Protocol:
    """Base class for Broadcast Congested Clique protocols.

    Subclasses override the lifecycle hooks below.  All hooks receive a
    :class:`ProcessorContext`; protocols must derive everything they
    broadcast from that local view only.

    Attributes
    ----------
    message_size:
        Width ``b`` of each broadcast in bits (the ``BCAST(b)`` parameter).
    supports_batch:
        True for protocols whose per-processor outputs are a deterministic
        function of the input matrix alone (no private or public coins,
        every processor reaching the same decision).  Such protocols
        implement :meth:`batch_decisions` and the execution engine's
        ``vectorized=True`` fast path evaluates whole trial batches with
        single batched-kernel calls instead of simulating each trial.
    supports_batch_keys:
        True for protocols that additionally implement :meth:`batch_keys`,
        synthesizing every trial's *transcript key* in the same batched
        pass.  The engine's fast path requires both flags: decisions alone
        cannot serve key-based estimators (transcript total-variation
        distance, Newman simulation error), so a protocol advertising only
        ``supports_batch`` falls back to scalar simulation under
        ``vectorized=True`` (with a
        :class:`~repro.core.errors.BatchFallbackWarning`).
    batch_uses_coins:
        True for batchable protocols whose behaviour depends on *private*
        coins.  The engine then reproduces the scalar path's per-processor
        coin seeding (the ``(n,)`` seed vector ``make_contexts`` draws from
        the trial generator) and passes it to :meth:`batch_decisions` /
        :meth:`batch_keys` as the ``coin_seeds`` keyword, so batched coin
        protocols stay bit-identical to scalar simulation.
    batch_coin_bits:
        Exact number of private-coin bits *each processor* consumes per
        trial when ``batch_uses_coins`` is set (must be input-independent);
        the fast path synthesizes ``private_bits_per_processor`` from it.
    """

    message_size: int = 1
    supports_batch: bool = False
    supports_batch_keys: bool = False
    batch_uses_coins: bool = False
    batch_coin_bits: int = 0

    def num_rounds(self, n: int) -> int:
        """Number of rounds the protocol runs for ``n`` processors.

        Protocols with a data-dependent round count should return an upper
        bound here and override :meth:`finished`.
        """
        raise NotImplementedError

    def finished(self, n: int, transcript: Any, completed_rounds: int) -> bool:
        """Early-termination predicate, checked after every round.

        Must be a function of *public* information (the transcript) so all
        processors agree on when the protocol ends.  The default runs for
        exactly ``num_rounds(n)`` rounds.
        """
        return completed_rounds >= self.num_rounds(n)

    def setup(self, proc: ProcessorContext) -> None:
        """Called once per processor before the first round."""

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        """Return the message (integer in ``[0, 2^message_size)``) that
        ``proc`` broadcasts in ``round_index``."""
        raise NotImplementedError

    def receive(
        self, proc: ProcessorContext, round_index: int, messages: dict[int, int]
    ) -> None:
        """Called after a round completes with the full ``sender → message``
        map of that round (the transcript also already contains it)."""

    def output(self, proc: ProcessorContext) -> Any:
        """Called once per processor after the final round; the return value
        is the processor's output."""
        return None

    def batch_decisions(
        self, inputs: np.ndarray, coin_seeds: np.ndarray | None = None
    ) -> np.ndarray:
        """Outputs for a whole ``(trials, n, m)`` input batch at once.

        Only meaningful when :attr:`supports_batch` is set; must return
        either an array of shape ``(trials,)`` holding the output every
        processor would produce in each trial, or — for protocols whose
        processors output distinct values — shape ``(trials, n)`` with one
        entry per processor.  Non-numeric outputs (tuples, frozensets)
        must be packed in an ``object``-dtype array built explicitly with
        ``np.empty(..., dtype=object)``.  Either way the values must be
        bit-identical to running :meth:`output` through the simulator on
        the same inputs.

        ``coin_seeds`` is only passed (as a ``(trials, n)`` int64 array of
        per-processor seeds, one row per trial, matching the scalar
        simulator's ``make_contexts`` draw) when :attr:`batch_uses_coins`
        is set.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batched evaluation"
        )

    def batch_keys(
        self, inputs: np.ndarray, coin_seeds: np.ndarray | None = None
    ) -> np.ndarray | list[tuple[int, ...]]:
        """Transcript keys for a whole ``(trials, n, m)`` input batch at once.

        Only meaningful when :attr:`supports_batch_keys` is set; must
        return the per-trial *transcript keys* — each row/entry ``t``
        equal to ``Transcript.key()`` of running the protocol through the
        simulator on ``inputs[t]``: the message payloads in turn order
        (round-major, processor ``0 … n-1`` within each round, the
        speaking order shared by both library schedulers).  Fixed-round
        protocols return an integer array of shape ``(trials, turns)``;
        dynamically-terminating protocols (``finished`` overridden) may
        instead return a ragged ``list``/object array of per-trial tuples
        whose lengths are each trial's realized turn count — the engine
        synthesizes per-trial :class:`~repro.core.network.CostReport`
        rounds/turns/bits from those lengths.  Implementations must reject
        inputs the scalar path would reject (e.g. non-bit payloads that
        the ``BCAST(b)`` width check refuses) rather than silently diverge
        from it.  ``coin_seeds`` is passed exactly as for
        :meth:`batch_decisions`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batched key synthesis"
        )

    def cost_model(self) -> "CostModel":
        """The symbolic :class:`~repro.costs.model.CostModel` of this instance.

        Per-phase exact formulas for every accounted cost kind (rounds,
        turns, broadcast/private/public bits) in the problem parameters,
        with this instance's parameter values as defaults.  Deterministic
        fixed-round protocols return *exact* models; randomized or
        dynamically-terminating ones declare realized round symbols with
        exact bounds.  ``tests/conformance/test_cost_model.py`` asserts the
        model against measured ``cost_totals()`` bit for bit, and the
        BAT02 lint rule requires every batch-capable protocol to provide
        one.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare a symbolic cost model"
        )


class FunctionProtocol(Protocol):
    """A deterministic protocol defined by next-message functions.

    This is the lower-bound-proof view of a protocol: processor ``i``'s
    behaviour is completely described by a function ``f_i(z, p)`` giving the
    bit broadcast on input ``z`` after seeing transcript ``p``.

    Parameters
    ----------
    n_rounds:
        Number of rounds to run.
    fn:
        Either a single function applied by every processor or a sequence
        of ``n`` per-processor functions.  Each function receives
        ``(proc_id, input_row, transcript_bits)`` where ``transcript_bits``
        is the flattened bit tuple of the transcript visible at broadcast
        time, and must return a message integer.
    message_size:
        Broadcast width (default 1).
    output_fn:
        Optional final-output function with the same signature.
    """

    def __init__(
        self,
        n_rounds: int,
        fn: NextMessageFn | Sequence[NextMessageFn],
        message_size: int = 1,
        output_fn: NextMessageFn | None = None,
    ):
        if n_rounds < 0:
            raise ValueError("round count must be non-negative")
        self._n_rounds = n_rounds
        self._fn = fn
        self.message_size = message_size
        self._output_fn = output_fn

    def num_rounds(self, n: int) -> int:
        return self._n_rounds

    def _fn_for(self, proc_id: int) -> NextMessageFn:
        if callable(self._fn):
            return self._fn
        return self._fn[proc_id]

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        fn = self._fn_for(proc.proc_id)
        message = fn(proc.proc_id, proc.input, proc.transcript.bits())
        return int(message)

    def output(self, proc: ProcessorContext) -> Any:
        if self._output_fn is None:
            return None
        return self._output_fn(proc.proc_id, proc.input, proc.transcript.bits())


class ComposedProtocol(Protocol):
    """Sequential composition: run ``first`` to completion, then ``second``.

    The second protocol sees the full transcript of the first (its
    ``round_index`` restarts from 0; use ``proc.transcript`` for history).
    Both protocols must agree on ``message_size``.
    """

    def __init__(self, first: Protocol, second: Protocol):
        if first.message_size != second.message_size:
            raise ProtocolViolation(
                "composed protocols must share a message size, got "
                f"{first.message_size} and {second.message_size}"
            )
        self.first = first
        self.second = second
        self.message_size = first.message_size

    @property
    def _setup2_key(self) -> str:
        # Keyed by composition identity: a nested ComposedProtocol must not
        # see the outer composition's marker, or its own second phase's
        # setup would be silently skipped.
        return f"composed_setup2:{id(self)}"

    def num_rounds(self, n: int) -> int:
        return self.first.num_rounds(n) + self.second.num_rounds(n)

    def setup(self, proc: ProcessorContext) -> None:
        self.first.setup(proc)

    def _phase(self, proc: ProcessorContext, round_index: int) -> tuple[Protocol, int]:
        first_rounds = self.first.num_rounds(proc.n)
        if round_index < first_rounds:
            return self.first, round_index
        return self.second, round_index - first_rounds

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        first_rounds = self.first.num_rounds(proc.n)
        if round_index == first_rounds and self._setup2_key not in proc.memory:
            proc.memory[self._setup2_key] = True
            self.second.setup(proc)
        phase, local_round = self._phase(proc, round_index)
        return phase.broadcast(proc, local_round)

    def receive(
        self, proc: ProcessorContext, round_index: int, messages: dict[int, int]
    ) -> None:
        phase, local_round = self._phase(proc, round_index)
        phase.receive(proc, local_round, messages)

    def output(self, proc: ProcessorContext) -> Any:
        if self.second.num_rounds(proc.n) == 0 and self._setup2_key not in proc.memory:
            proc.memory[self._setup2_key] = True
            self.second.setup(proc)
        return self.second.output(proc)
