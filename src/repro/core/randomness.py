"""Randomness sources with exact bit accounting.

The randomness-saving results of the paper (Corollary 7.1 and the Newman
analogue of Theorem A.1) are claims about *how many random bits* a protocol
consumes.  To verify them the simulator meters every coin flip: each
processor owns a :class:`PrivateCoins` source and the system may expose a
:class:`PublicCoins` source; both count the bits handed out and can enforce
a hard budget.
"""

from __future__ import annotations

import numpy as np

from ..linalg.bitvec import BitVector
from .errors import RandomnessExhausted

__all__ = [
    "CoinSource",
    "PrivateCoins",
    "PublicCoins",
    "ZeroCoins",
    "ReplayCoins",
    "expand_seed",
    "fresh_generator",
]


def expand_seed(seed: "int | np.random.SeedSequence") -> np.random.Generator:
    """Deterministically expand a drawn seed into a ``Generator``.

    The sanctioned way (lint rule ``DET01``) for protocol and
    distribution code to turn a seed obtained from engine plumbing — a
    ``draw_int`` from a coin source, a ``SeedSequence`` the engine
    spawned — into a full generator for derived randomness (probe
    vectors, sampled triples, PRG families).  Centralising the expansion
    here keeps generator construction out of trial code paths, so the
    linter can verify by inspection that every trial draw descends from
    the spec's seed.

    Bit-compatibility contract: ``expand_seed(s)`` produces the exact
    stream of ``np.random.default_rng(s)`` — the expansion in use since
    the first release — so golden transcripts never shift.
    """
    return np.random.default_rng(seed)


def fresh_generator() -> np.random.Generator:
    """A generator seeded from OS entropy — for *entry points only*.

    Interactive, single-shot conveniences (``run_protocol`` with no
    ``rng=``) legitimately want a nondeterministic default; everything
    downstream of a :class:`~repro.core.engine.RunSpec` must not.
    Routing the OS-entropy draw through this helper makes the
    nondeterministic boundary searchable — and keeps unseeded
    ``np.random.default_rng()`` calls (lint rule ``DET01``) out of the
    library.
    """
    return np.random.default_rng()


class CoinSource:
    """A metered stream of uniform random bits.

    Parameters
    ----------
    rng:
        Backing numpy generator.
    budget:
        Optional hard cap on the number of bits that may be drawn; drawing
        past it raises :class:`RandomnessExhausted`.
    """

    def __init__(self, rng: np.random.Generator, budget: int | None = None):
        self._rng = rng
        self.budget = budget
        self.bits_used = 0

    def _charge(self, n_bits: int) -> None:
        if n_bits < 0:
            raise ValueError("cannot draw a negative number of bits")
        if self.budget is not None and self.bits_used + n_bits > self.budget:
            raise RandomnessExhausted(
                f"requested {n_bits} bits with {self.bits_used} of "
                f"{self.budget} already used"
            )
        self.bits_used += n_bits

    def draw_bit(self) -> int:
        """One uniform bit."""
        self._charge(1)
        return int(self._rng.integers(0, 2))

    def draw_bits(self, n_bits: int) -> BitVector:
        """``n_bits`` uniform bits as a :class:`BitVector`."""
        self._charge(n_bits)
        return BitVector.random(n_bits, self._rng)

    def draw_int(self, n_bits: int) -> int:
        """A uniform integer in ``[0, 2^n_bits)`` (charged ``n_bits``)."""
        self._charge(n_bits)
        value = 0
        for chunk_start in range(0, n_bits, 32):
            chunk = min(32, n_bits - chunk_start)
            value |= int(self._rng.integers(0, 1 << chunk)) << chunk_start
        return value

    def remaining(self) -> int | None:
        """Bits left in the budget, or ``None`` if unmetered."""
        if self.budget is None:
            return None
        return self.budget - self.bits_used


class PrivateCoins(CoinSource):
    """Per-processor private randomness."""


class PublicCoins(CoinSource):
    """Shared randomness visible to all processors simultaneously.

    Note that in the broadcast model public coins are essentially free to
    create from private ones (one broadcast per bit), which is why the
    paper's PRG focuses on saving *private* coins; we still model them
    separately so Newman-style protocols (Theorem A.1) can be expressed
    naturally.
    """


class ZeroCoins(CoinSource):
    """A source that refuses to produce any randomness.

    Wrapping a protocol with a :class:`ZeroCoins` source is how tests assert
    that a supposedly deterministic protocol truly flips no coins.
    """

    def __init__(self) -> None:
        super().__init__(np.random.default_rng(0), budget=0)


class ReplayCoins(CoinSource):
    """A coin source that replays a fixed bit string.

    The derandomization transform of Corollary 7.1 substitutes each
    processor's true randomness with its PRG output; :class:`ReplayCoins`
    is the mechanism: the payload protocol keeps calling ``draw_bit`` /
    ``draw_bits`` and transparently receives the pseudo-random stream.
    Exhausting the stream raises :class:`RandomnessExhausted`.
    """

    def __init__(self, bits: BitVector):
        super().__init__(np.random.default_rng(0), budget=bits.n)
        self._bits = bits

    def draw_bit(self) -> int:
        position = self.bits_used
        self._charge(1)
        return self._bits[position]

    def draw_bits(self, n_bits: int) -> BitVector:
        position = self.bits_used
        self._charge(n_bits)
        chunk = BitVector(n_bits)
        for offset in range(n_bits):
            chunk[offset] = self._bits[position + offset]
        return chunk

    def draw_int(self, n_bits: int) -> int:
        position = self.bits_used
        self._charge(n_bits)
        value = 0
        for offset in range(n_bits):
            value |= self._bits[position + offset] << offset
        return value
