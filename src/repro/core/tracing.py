"""Human-readable transcript rendering and summary statistics.

Debugging a distributed protocol means reading its transcript; these
helpers render the broadcast history as an aligned rounds × processors
grid and compute summary statistics (per-processor bit balance, round
entropy) used in tests and exploratory analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..infotheory.entropy import entropy
from .transcript import Transcript

__all__ = ["format_transcript", "TranscriptStats", "transcript_stats"]


def format_transcript(transcript: Transcript, n: int | None = None) -> str:
    """Render a transcript as a rounds × processors grid.

    ``n`` (processor count) is inferred from the largest sender id when
    not given.  Multi-bit payloads are shown as integers.
    """
    if transcript.n_turns == 0:
        return "(empty transcript)"
    if n is None:
        n = max(e.sender for e in transcript) + 1
    n_rounds = transcript[-1].round_index + 1
    header = "round | " + " ".join(f"p{j:<3}" for j in range(n))
    lines = [header, "-" * len(header)]
    for r in range(n_rounds):
        cells = {e.sender: e.message for e in transcript.messages_in_round(r)}
        row = " ".join(f"{cells.get(j, '.')!s:<4}" for j in range(n))
        lines.append(f"{r:>5} | {row}")
    return "\n".join(lines)


@dataclass(frozen=True)
class TranscriptStats:
    """Summary statistics of one transcript."""

    n_turns: int
    n_rounds: int
    total_bits: int
    ones_fraction: float
    per_sender_ones: dict[int, float]
    payload_entropy: float

    def is_balanced(self, tolerance: float = 0.2) -> bool:
        """True iff the overall ones-fraction is within ``tolerance`` of
        1/2 — a quick sanity check for protocols that should look random."""
        return abs(self.ones_fraction - 0.5) <= tolerance


def transcript_stats(transcript: Transcript) -> TranscriptStats:
    """Compute :class:`TranscriptStats` for a transcript."""
    if transcript.n_turns == 0:
        return TranscriptStats(0, 0, 0, 0.0, {}, 0.0)
    bits = transcript.bits()
    ones = sum(bits)
    sender_totals: Counter = Counter()
    sender_ones: Counter = Counter()
    for event in transcript:
        sender_totals[event.sender] += event.width
        sender_ones[event.sender] += sum(event.bits())
    per_sender = {
        s: sender_ones[s] / sender_totals[s] for s in sorted(sender_totals)
    }
    payload_counts = Counter(e.message for e in transcript)
    total = sum(payload_counts.values())
    import numpy as np

    pmf = np.array([c / total for c in payload_counts.values()])
    return TranscriptStats(
        n_turns=transcript.n_turns,
        n_rounds=transcript[-1].round_index + 1,
        total_bits=transcript.total_bits,
        ones_fraction=ones / len(bits) if bits else 0.0,
        per_sender_ones=per_sender,
        payload_entropy=entropy(pmf),
    )
