"""``python -m repro.obs.report`` — summarize a metrics/trace dump.

Loads artifacts produced by the observability layer and prints human
summary tables:

* a ``repro-metrics-v1`` JSON (``MetricsRegistry.to_json``) → every
  counter/gauge plus a per-worker × per-category failure table from the
  ``exec_errors_total`` series (matching what ``ErrorTelemetry.counts()``
  reported live);
* optionally a Chrome trace JSON (``--trace``) → span counts and total
  busy time per track;
* optionally a flight-recorder dump (``--flightrec``) → the last events
  before the run ended, per kind.

Usage::

    python -m repro.obs.report chaos-artifacts/cell.metrics.json \
        --trace sweep.trace.json --flightrec cell.flightrec.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable, Sequence

from .metrics import MetricsRegistry

__all__ = ["main", "render_metrics", "render_trace", "render_flightrec"]

#: The registry series name ErrorTelemetry records under; the failure
#: table below is keyed off its (worker, category) labels.
ERRORS_METRIC = "exec_errors_total"


def _table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> list[str]:
    """Plain fixed-width table lines (no third-party tabulate)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return lines


def render_metrics(registry: MetricsRegistry) -> list[str]:
    """Summary lines for a metrics registry."""
    snapshot = registry.snapshot()
    lines: list[str] = []

    rows: list[tuple[str, str, Any]] = []
    for kind in ("counter", "gauge"):
        for name, entries in sorted(snapshot.get(kind, {}).items()):
            for entry in entries:
                label_text = ",".join(
                    f"{k}={v}" for k, v in sorted(entry["labels"].items())
                )
                rows.append((name, label_text or "-", entry["value"]))
    if rows:
        lines.append("== metrics ==")
        lines.extend(_table(("metric", "labels", "value"), rows))
    for name, entries in sorted(snapshot.get("histogram", {}).items()):
        lines.append("")
        lines.append(f"== histogram {name} ==")
        hist_rows = []
        for entry in entries:
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(entry["labels"].items())
            )
            value = entry["value"]
            mean = value["sum"] / value["count"] if value["count"] else 0.0
            hist_rows.append(
                (label_text or "-", value["count"], f"{value['sum']:.6g}", f"{mean:.6g}")
            )
        lines.extend(_table(("labels", "count", "sum", "mean"), hist_rows))

    failures = _failure_matrix(registry)
    if failures:
        workers = sorted(failures)
        categories = sorted({c for by_cat in failures.values() for c in by_cat})
        lines.append("")
        lines.append("== failures by worker x category ==")
        matrix_rows = []
        for worker in workers:
            by_cat = failures[worker]
            row = [worker] + [by_cat.get(c, 0) for c in categories]
            row.append(sum(by_cat.values()))
            matrix_rows.append(row)
        totals = ["TOTAL"] + [
            sum(failures[w].get(c, 0) for w in workers) for c in categories
        ]
        totals.append(sum(sum(b.values()) for b in failures.values()))
        matrix_rows.append(totals)
        lines.extend(
            _table(["worker"] + categories + ["total"], matrix_rows)
        )
    return lines


def _failure_matrix(registry: MetricsRegistry) -> dict[str, dict[str, int]]:
    """``worker → category → count`` from the error-telemetry series."""
    matrix: dict[str, dict[str, int]] = {}
    for series in registry.series(ERRORS_METRIC):
        labels = series.labels
        worker = labels.get("worker", "?")
        category = labels.get("category", "?")
        matrix.setdefault(worker, {})[category] = int(series.snapshot_value())
    return matrix


def render_trace(payload: dict[str, Any]) -> list[str]:
    """Summary lines for a Chrome trace-event dump."""
    events = payload.get("traceEvents", [])
    track_names: dict[tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            key = (event.get("pid", 0), event.get("tid", 0))
            track_names[key] = event.get("args", {}).get("name", str(key))
    stats: dict[str, dict[str, float]] = {}
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        key = (event.get("pid", 0), event.get("tid", 0))
        track = track_names.get(key, f"track-{key[1]}")
        entry = stats.setdefault(
            track, {"spans": 0, "instants": 0, "busy_us": 0.0}
        )
        if ph == "X":
            entry["spans"] += 1
            entry["busy_us"] += float(event.get("dur", 0.0))
        else:
            entry["instants"] += 1
    lines = ["== trace ==" ]
    rows = [
        (
            track,
            int(entry["spans"]),
            int(entry["instants"]),
            f"{entry['busy_us'] / 1000.0:.3f}",
        )
        for track, entry in sorted(stats.items())
    ]
    lines.extend(_table(("track", "spans", "instants", "busy_ms"), rows))
    return lines


def render_flightrec(payload: dict[str, Any]) -> list[str]:
    """Summary lines for a flight-recorder dump."""
    events = payload.get("events", [])
    by_kind: dict[str, int] = {}
    for event in events:
        by_kind[event.get("kind", "?")] = by_kind.get(event.get("kind", "?"), 0) + 1
    lines = [
        "== flight recorder ==",
        f"retained {len(events)} of {payload.get('total_recorded', len(events))} "
        f"events (capacity {payload.get('capacity', '?')})",
    ]
    if by_kind:
        lines.extend(
            _table(("kind", "events"), sorted(by_kind.items()))
        )
    tail = events[-5:]
    if tail:
        lines.append("last events:")
        for event in tail:
            detail = {
                k: v
                for k, v in event.items()
                if k not in ("seq", "ts", "kind")
            }
            lines.append(f"  #{event.get('seq')} {event.get('kind')}: {detail}")
    return lines


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize repro.obs metrics/trace/flight-recorder dumps.",
    )
    parser.add_argument(
        "metrics", nargs="?", help="path to a repro-metrics-v1 JSON dump"
    )
    parser.add_argument("--trace", help="path to a Chrome trace-event JSON")
    parser.add_argument(
        "--flightrec", help="path to a flight-recorder JSON dump"
    )
    args = parser.parse_args(argv)
    if not (args.metrics or args.trace or args.flightrec):
        parser.error("give a metrics dump, --trace, and/or --flightrec")

    sections: list[str] = []
    if args.metrics:
        registry = MetricsRegistry.from_json(
            Path(args.metrics).read_text(encoding="utf-8")
        )
        sections.extend(render_metrics(registry))
    if args.trace:
        payload = json.loads(Path(args.trace).read_text(encoding="utf-8"))
        if sections:
            sections.append("")
        sections.extend(render_trace(payload))
    if args.flightrec:
        payload = json.loads(Path(args.flightrec).read_text(encoding="utf-8"))
        if sections:
            sections.append("")
        sections.extend(render_flightrec(payload))
    print("\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
