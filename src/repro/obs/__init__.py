"""repro.obs — the observability layer for the execution stack.

Three pieces, all optional and all off-by-default on the hot path:

* :class:`MetricsRegistry` — thread-safe labelled
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` series with JSON
  round-trip; the unified home of every counter the exec stack exposes
  (``ErrorTelemetry``, ``Engine.batch_fallbacks``, steal/requeue stats,
  pool breakages, sweep retries) behind their original attribute paths.
* :class:`Tracer` / :data:`NULL_TRACER` — span-based tracing with an
  injectable monotonic clock and Chrome/Perfetto trace-event export;
  the null tracer is a zero-alloc no-op so instrumentation costs
  nothing when disabled.
* :class:`FlightRecorder` — a bounded ring of structured events
  (health transitions, fault injections, lane deaths, fallbacks)
  dumped to ``REPRO_CHAOS_DIR`` on conformance failure.

``python -m repro.obs.report`` renders any of the dump formats as
summary tables; see ``docs/observability.md``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import FlightRecorder, dump_on_chaos
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "dump_on_chaos",
    "validate_chrome_trace",
]
