"""The flight recorder: a bounded ring of structured last-moments events.

When a conformance cell fails under chaos, the fault plan (PR 7) says
what was *injected* — the flight recorder says what the stack *did
about it*: health transitions, lane deaths, fault injections as they
fired, fallback warnings.  It is a fixed-capacity in-memory ring
(``collections.deque(maxlen=...)``) so it can run always-on at
negligible cost; old events fall off the back, which is the point — on
failure you want the last N events, not a full log.

Dumps land in ``REPRO_CHAOS_DIR`` alongside the replayable fault plans
(:func:`dump_on_chaos`), where CI uploads them as artifacts.

Timestamps use wall-clock ``time.time()`` — presentation only, never
feeding any seed, so the DET01 determinism rule is untouched.

>>> recorder = FlightRecorder(capacity=2)
>>> recorder.record("lane_death", lane=0, worker="w0")
>>> recorder.record("health", worker="w1", old="healthy", new="suspect")
>>> recorder.record("health", worker="w1", old="suspect", new="dead")
>>> [e["kind"] for e in recorder.events()]  # capacity 2: first fell off
['health', 'health']
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

__all__ = ["FlightRecorder", "dump_on_chaos"]


class FlightRecorder:
    """Thread-safe bounded ring of structured events.

    Every event is ``{"seq": int, "ts": float, "kind": str, **payload}``
    — ``seq`` is a monotonically increasing sequence number that
    survives ring eviction, so a dump shows both the retained window and
    how much history fell off before it.
    """

    SCHEMA = "repro-flightrec-v1"

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, **payload: Any) -> None:
        """Append one structured event; payload must be JSON-friendly."""
        event = {"seq": 0, "ts": time.time(), "kind": kind, **payload}
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._ring.append(event)

    def events(self) -> list[dict[str, Any]]:
        """The retained window, oldest first (copies; safe to mutate)."""
        with self._lock:
            return [dict(event) for event in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def total_recorded(self) -> int:
        """How many events were ever recorded (including evicted ones)."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- export ---------------------------------------------------------
    def to_json(self, indent: "int | None" = 2) -> str:
        with self._lock:
            events = [dict(event) for event in self._ring]
            total = self._seq
        return json.dumps(
            {
                "schema": self.SCHEMA,
                "capacity": self.capacity,
                "total_recorded": total,
                "events": events,
            },
            indent=indent,
            default=str,  # exotic payloads degrade to repr, never crash a dump
        )

    def dump(self, path: "str | os.PathLike[str]") -> Path:
        """Write the recorder state as JSON; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(), encoding="utf-8")
        return target


def dump_on_chaos(
    recorder: FlightRecorder,
    name: str,
    registry: "Any | None" = None,
) -> "Path | None":
    """Dump recorder (and optionally metrics) into ``$REPRO_CHAOS_DIR``.

    The conformance suite calls this on cell failure so the flight
    recorder lands next to the fault-plan artifact CI already uploads.
    No-op (returns None) when the env var is unset — local runs stay
    clean.
    """
    directory = os.environ.get("REPRO_CHAOS_DIR")
    if not directory:
        return None
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    path = recorder.dump(base / f"{name}.flightrec.json")
    if registry is not None:
        (base / f"{name}.metrics.json").write_text(
            registry.to_json(), encoding="utf-8"
        )
    return path
