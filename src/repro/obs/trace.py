"""Span-based tracing with Chrome/Perfetto trace-event export.

A :class:`Tracer` records **spans** (named intervals with a track and
free-form args) and **instants** (point events) from any thread, then
exports the run as Chrome trace-event JSON — the format
``chrome://tracing`` and https://ui.perfetto.dev open directly, so a
distributed sweep renders as a per-lane timeline with steal markers and
a heartbeat track.

Two properties drive the design:

* **Zero cost when off.**  The default everywhere is
  :data:`NULL_TRACER`, whose ``span()`` returns one shared, reusable
  no-op context manager — no allocation, no clock read, no lock.  The
  execution stack is instrumented unconditionally; only passing a real
  tracer turns any of it on, which is what keeps the bench medians flat.
* **Injectable monotonic clock.**  The clock is a ``() -> int``
  nanosecond counter, defaulting to :func:`time.perf_counter_ns`.
  Tests inject a fake clock for exact timestamps; nothing here ever
  feeds a seed (the determinism linter's DET01 concern), timestamps
  are presentation only.

Cross-process spans: workers in other processes can't share a tracer
object, so span *context ids* from :meth:`Tracer.new_context` ride the
existing wire frames as plain ints, and the worker-side serve loop
records its chunk-execution spans against that id.  The exporter keys
tracks by name, so client- and worker-side events line up per lane.

>>> clock = iter(range(0, 10_000, 1000)).__next__
>>> tracer = Tracer(clock=clock)
>>> with tracer.span("run_batch", track="engine", trials=4):
...     tracer.instant("steal", track="engine")
>>> [e["name"] for e in tracer.to_chrome()["traceEvents"] if e["ph"] != "M"]
['steal', 'run_batch']
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Mapping

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "validate_chrome_trace",
]

Clock = Callable[[], int]


class Span:
    """An open interval; closes (and records itself) on ``__exit__``.

    Usable as a context manager or closed explicitly via :meth:`close`
    (the worker serve loop does the latter — frame handling isn't a
    lexical scope).
    """

    __slots__ = ("_tracer", "name", "track", "args", "start_ns", "end_ns")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        track: str,
        args: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.args = args
        self.start_ns = tracer._clock()
        self.end_ns: "int | None" = None

    def close(self) -> None:
        if self.end_ns is not None:
            return
        self.end_ns = self._tracer._clock()
        self._tracer._record(
            {
                "type": "span",
                "name": self.name,
                "track": self.track,
                "start_ns": self.start_ns,
                "end_ns": self.end_ns,
                "args": self.args,
            }
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _NullSpan:
    """The shared no-op span — one instance serves every disabled call."""

    __slots__ = ()

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op.

    Instrumented code holds a ``Tracer | NullTracer`` and calls it
    unconditionally; with this implementation the per-call cost is one
    attribute lookup and returning a preallocated object.
    """

    __slots__ = ()

    #: Lets call sites skip building expensive span args entirely.
    enabled = False

    def span(self, name: str, track: str = "main", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, track: str = "main", **args: Any) -> None:
        pass

    def new_context(self) -> "int | None":
        return None

    def events(self) -> list[dict[str, Any]]:
        return []


#: The process-wide disabled tracer; the default for every component.
NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe span/instant collector with Chrome trace-event export.

    ``track`` names the horizontal row the event renders on (one per
    lane, plus e.g. ``"heartbeat"`` and ``"engine"``); ``args`` become
    the event's inspectable payload in the viewer.
    """

    enabled = True

    def __init__(self, clock: Clock = time.perf_counter_ns) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []
        self._next_context = 0

    # -- recording ------------------------------------------------------
    def span(self, name: str, track: str = "main", **args: Any) -> Span:
        """Open a span on ``track``; record it when the span closes."""
        return Span(self, name, track, args)

    def instant(self, name: str, track: str = "main", **args: Any) -> None:
        """Record a point event (a steal, a requeue, a lane death)."""
        self._record(
            {
                "type": "instant",
                "name": name,
                "track": track,
                "ts_ns": self._clock(),
                "args": args,
            }
        )

    def new_context(self) -> int:
        """A fresh context id to ship across the wire with a chunk."""
        with self._lock:
            self._next_context += 1
            return self._next_context

    def _record(self, event: dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def adopt(self, events: "list[dict[str, Any]]") -> None:
        """Merge events recorded elsewhere (e.g. worker-side) into this
        tracer, so one export covers both sides of the wire."""
        with self._lock:
            self._events.extend(events)

    # -- reads ----------------------------------------------------------
    def events(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._events)

    # -- export ---------------------------------------------------------
    def to_chrome(self, pid: int = 1) -> dict[str, Any]:
        """The run as a Chrome trace-event object.

        Spans become ``ph: "X"`` complete events, instants ``ph: "i"``;
        each distinct track gets a tid plus a ``ph: "M"`` thread-name
        metadata record so viewers label the rows.  Timestamps convert
        from the clock's nanoseconds to the format's microseconds.
        """
        events = self.events()
        tracks: dict[str, int] = {}
        out: list[dict[str, Any]] = []
        for event in events:
            track = event["track"]
            tid = tracks.setdefault(track, len(tracks) + 1)
            if event["type"] == "span":
                out.append(
                    {
                        "name": event["name"],
                        "ph": "X",
                        "ts": event["start_ns"] / 1000.0,
                        "dur": (event["end_ns"] - event["start_ns"]) / 1000.0,
                        "pid": pid,
                        "tid": tid,
                        "args": event["args"],
                    }
                )
            else:
                out.append(
                    {
                        "name": event["name"],
                        "ph": "i",
                        "ts": event["ts_ns"] / 1000.0,
                        "s": "t",
                        "pid": pid,
                        "tid": tid,
                        "args": event["args"],
                    }
                )
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in sorted(tracks.items(), key=lambda kv: kv[1])
        ]
        return {"traceEvents": metadata + out, "displayTimeUnit": "ms"}

    def to_chrome_json(self, pid: int = 1, indent: "int | None" = None) -> str:
        return json.dumps(self.to_chrome(pid=pid), indent=indent)

    def dump_chrome(self, path: str, pid: int = 1) -> None:
        """Write the Chrome trace JSON to ``path`` (open in Perfetto)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_chrome_json(pid=pid, indent=2))


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema-check a Chrome trace-event object; return problems found.

    An empty list means the payload is structurally valid.  Used by the
    bench smoke step and the conformance suite rather than a third-party
    JSON-schema dependency.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if ph in ("X", "i", "B", "E"):
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
    return problems
