"""The unified metrics registry: ``Counter`` / ``Gauge`` / ``Histogram``.

Before this module, the execution stack's operational evidence lived in
scattered ad-hoc counters — ``ErrorTelemetry`` dicts, bare ints like
``Engine.batch_fallbacks`` and ``WorkerPool.broken_pools``, per-lane
lists on ``ChunkScheduler`` — none of which could be correlated,
exported together, or compared across runs.  :class:`MetricsRegistry`
is the one substrate they all now sit on: a thread-safe collection of
named, labelled time series that snapshots to plain dicts and
round-trips through JSON, so a whole run's counters are a single
artifact.

Design points:

* **Labels.**  A series is identified by ``(name, sorted(labels))``.
  The same name with different label values is the common aggregation
  shape (``exec_errors_total{worker="10.0.0.5:9123",
  category="timeout"}``); the same ``(name, labels)`` pair from any
  call site is the *same* series — increments accumulate, which is
  what makes the registry a meeting point rather than a log.
* **Type stability.**  Registering a name as a counter and later as a
  gauge is a programming error and raises — a silent type change would
  corrupt every downstream reader.
* **Thread safety.**  One registry lock guards the series table;
  each series carries its own lock for updates, so hot-path increments
  on different series never contend on the registry.
* **Snapshots.**  :meth:`MetricsRegistry.snapshot` returns plain dicts
  (safe to mutate), :meth:`MetricsRegistry.to_json` /
  :meth:`MetricsRegistry.from_json` round-trip exactly — the format
  the flight-recorder dumps and ``python -m repro.obs.report`` consume.

>>> registry = MetricsRegistry()
>>> registry.counter("requests_total", route="/run").inc()
>>> registry.counter("requests_total", route="/run").inc(2)
>>> registry.counter("requests_total", route="/run").value
3
>>> restored = MetricsRegistry.from_json(registry.to_json())
>>> restored.counter("requests_total", route="/run").value
3
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Label values are coerced to strings at registration: labels are
#: identity, and identity must survive a JSON round-trip unchanged.
LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """Shared shape of one named, labelled time series."""

    kind: str = "series"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.label_items = labels
        self._lock = threading.Lock()

    @property
    def labels(self) -> dict[str, str]:
        return dict(self.label_items)

    def snapshot_value(self) -> Any:
        raise NotImplementedError

    def restore(self, value: Any) -> None:
        raise NotImplementedError


class Counter(_Series):
    """A monotonically increasing count (events, failures, frames)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot_value(self) -> int:
        return self.value

    def restore(self, value: Any) -> None:
        with self._lock:
            self._value = int(value)


class Gauge(_Series):
    """A value that goes up and down (in-flight batches, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot_value(self) -> float:
        return self.value

    def restore(self, value: Any) -> None:
        with self._lock:
            self._value = float(value)


#: Default histogram bucket upper bounds, in seconds — tuned for the
#: execution stack's latency shape (sub-ms chunk dispatch up to
#: multi-second straggler batches).  The overflow bucket is implicit.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Histogram(_Series):
    """Bucketed observations (latencies, chunk sizes): count/sum/buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: "Iterable[float] | None" = None,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot_value(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "bounds": list(self.bounds),
                "bucket_counts": list(self._counts),
            }

    def restore(self, value: Any) -> None:
        with self._lock:
            self.bounds = tuple(float(b) for b in value["bounds"])
            self._counts = [int(c) for c in value["bucket_counts"]]
            self._sum = float(value["sum"])
            self._count = int(value["count"])


_KINDS: dict[str, type[_Series]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Thread-safe collection of named, labelled metric series.

    Accessors are get-or-create: ``registry.counter(name, **labels)``
    returns the existing series for that ``(name, labels)`` identity or
    registers a fresh one — so any component holding the registry can
    contribute to a shared series without coordination.  Re-registering
    a name under a different metric *kind* raises ``TypeError``.

    >>> registry = MetricsRegistry()
    >>> registry.gauge("inflight").set(3)
    >>> registry.snapshot()["gauge"]["inflight"][0]["value"]
    3.0
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (name, label items) → series
        self._series: dict[tuple[str, LabelItems], _Series] = {}
        #: name → kind, enforcing type stability per name
        self._kinds: dict[str, str] = {}

    # -- registration ---------------------------------------------------
    def _get_or_create(
        self, kind: str, name: str, labels: Mapping[str, Any], **kwargs: Any
    ) -> _Series:
        if not name:
            raise ValueError("metric name must be non-empty")
        items = _label_items(labels)
        with self._lock:
            known_kind = self._kinds.get(name)
            if known_kind is not None and known_kind != kind:
                raise TypeError(
                    f"metric {name!r} is registered as a {known_kind}, "
                    f"not a {kind}"
                )
            series = self._series.get((name, items))
            if series is None:
                series = _KINDS[kind](name, items, **kwargs)
                self._series[(name, items)] = series
                self._kinds[name] = kind
            return series

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series for ``(name, labels)`` (created on first use)."""
        series = self._get_or_create("counter", name, labels)
        assert isinstance(series, Counter)
        return series

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series for ``(name, labels)`` (created on first use)."""
        series = self._get_or_create("gauge", name, labels)
        assert isinstance(series, Gauge)
        return series

    def histogram(
        self,
        name: str,
        buckets: "Iterable[float] | None" = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram series for ``(name, labels)`` (created on first use)."""
        series = self._get_or_create("histogram", name, labels, buckets=buckets)
        assert isinstance(series, Histogram)
        return series

    # -- reads ----------------------------------------------------------
    def series(self, name: str) -> list[_Series]:
        """Every series registered under ``name`` (any labels), sorted."""
        with self._lock:
            found = [
                series
                for (series_name, _), series in self._series.items()
                if series_name == name
            ]
        return sorted(found, key=lambda s: s.label_items)

    def total(self, name: str, **labels: Any) -> float:
        """Sum of a counter/gauge name over series matching ``labels``.

        Labels given act as a filter; omitted labels aggregate.  Unknown
        names total to 0 — a counter that never fired reads as zero,
        which is exactly what monitors want.
        """
        wanted = _label_items(labels)
        total = 0.0
        for series in self.series(name):
            if isinstance(series, Histogram):
                raise TypeError(f"metric {name!r} is a histogram; read .count/.sum")
            if set(wanted) <= set(series.label_items):
                total += series.snapshot_value()
        return total

    def snapshot(self) -> dict[str, dict[str, list[dict[str, Any]]]]:
        """Every series as plain data: ``kind → name → [{labels, value}]``."""
        with self._lock:
            series = list(self._series.values())
        out: dict[str, dict[str, list[dict[str, Any]]]] = {}
        for s in sorted(series, key=lambda s: (s.kind, s.name, s.label_items)):
            out.setdefault(s.kind, {}).setdefault(s.name, []).append(
                {"labels": s.labels, "value": s.snapshot_value()}
            )
        return out

    # -- JSON round-trip ------------------------------------------------
    SCHEMA = "repro-metrics-v1"

    def to_json(self, indent: "int | None" = 2) -> str:
        """The full registry as JSON (the metrics artifact format)."""
        return json.dumps(
            {"schema": self.SCHEMA, "metrics": self.snapshot()},
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_json` output (exact round-trip)."""
        payload = json.loads(text)
        if payload.get("schema") != cls.SCHEMA:
            raise ValueError(
                f"unsupported metrics schema {payload.get('schema')!r}"
            )
        registry = cls()
        for kind, by_name in payload["metrics"].items():
            if kind not in _KINDS:
                raise ValueError(f"unknown metric kind {kind!r}")
            for name, entries in by_name.items():
                for entry in entries:
                    series = registry._get_or_create(kind, name, entry["labels"])
                    series.restore(entry["value"])
        return registry
