"""A tiny exact symbolic-expression layer for communication-cost formulas.

The paper's theorems are *closed-form* statements about rounds, turns and
bits — ``k + 1`` rounds for the seed-length attack, ``⌈n/b⌉`` rounds for a
full adjacency exchange, ``O(log n)`` Borůvka phases.  This module gives
those formulas a first-class representation that can be

* **evaluated exactly** — all arithmetic is arbitrary-precision integer
  arithmetic (``⌈log₂ x⌉`` via ``int.bit_length``, never ``float`` log),
  so a prediction at ``n = 10⁹`` is the true value, not a float estimate;
* **inspected** — ``free_symbols()`` names the problem parameters a
  formula depends on, and ``repr`` renders the formula readably;
* **composed** — expressions support ``+``, ``-``, ``*`` with ints and
  each other, plus :func:`ceil_div`, :func:`ceil_log2`, :func:`max_` and
  :func:`min_` for the shapes protocol costs actually take.

It is deliberately *not* a computer-algebra system: no simplification, no
solving — just exact evaluation of cost formulas, which is all the
conformance layer (:mod:`repro.costs.model`) needs.
"""

from __future__ import annotations

from typing import Mapping, Union

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "as_expr",
    "ceil_div",
    "ceil_log2",
    "max_",
    "min_",
]

ExprLike = Union["Expr", int]


class Expr:
    """Base class of the expression tree.  Immutable; hashable by identity."""

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        """The exact integer value of this expression under ``bindings``."""
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        """Names of every :class:`Sym` appearing in this expression."""
        raise NotImplementedError

    # -- operator sugar --------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return _Add(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return _Add(as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return _Sub(self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return _Sub(as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return _Mul(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return _Mul(as_expr(other), self)


class Const(Expr):
    """An integer literal."""

    def __init__(self, value: int):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"Const needs an int, got {type(value).__name__}")
        self.value = value

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.value

    def free_symbols(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return str(self.value)


class Sym(Expr):
    """A named problem parameter (``n``, ``k``, a realized round count…)."""

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("symbol name must be a non-empty string")
        self.name = name

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        try:
            value = bindings[self.name]
        except KeyError:
            raise KeyError(
                f"symbol {self.name!r} is unbound (have "
                f"{sorted(bindings)})"
            ) from None
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(
                f"binding for {self.name!r} must be an int, got "
                f"{type(value).__name__}"
            )
        return value

    def free_symbols(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


def as_expr(value: ExprLike) -> Expr:
    """Coerce an int to a :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    return Const(value)


class _Binary(Expr):
    op = "?"

    def __init__(self, left: ExprLike, right: ExprLike):
        self.left = as_expr(left)
        self.right = as_expr(right)

    def free_symbols(self) -> frozenset[str]:
        return self.left.free_symbols() | self.right.free_symbols()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class _Add(_Binary):
    op = "+"

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.left.evaluate(bindings) + self.right.evaluate(bindings)


class _Sub(_Binary):
    op = "-"

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.left.evaluate(bindings) - self.right.evaluate(bindings)


class _Mul(_Binary):
    op = "*"

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.left.evaluate(bindings) * self.right.evaluate(bindings)


class _CeilDiv(_Binary):
    op = "ceildiv"

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        a = self.left.evaluate(bindings)
        b = self.right.evaluate(bindings)
        if b <= 0:
            raise ValueError(f"ceil_div divisor must be positive, got {b}")
        return -(-a // b)

    def __repr__(self) -> str:
        return f"ceil({self.left!r} / {self.right!r})"


class _Max(_Binary):
    op = "max"

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return max(self.left.evaluate(bindings), self.right.evaluate(bindings))

    def __repr__(self) -> str:
        return f"max({self.left!r}, {self.right!r})"


class _Min(_Binary):
    op = "min"

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return min(self.left.evaluate(bindings), self.right.evaluate(bindings))

    def __repr__(self) -> str:
        return f"min({self.left!r}, {self.right!r})"


class _CeilLog2(Expr):
    """``⌈log₂ x⌉``, exact for any positive int via ``bit_length``."""

    def __init__(self, arg: ExprLike):
        self.arg = as_expr(arg)

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        x = self.arg.evaluate(bindings)
        if x < 1:
            raise ValueError(f"ceil_log2 needs a positive argument, got {x}")
        return (x - 1).bit_length()

    def free_symbols(self) -> frozenset[str]:
        return self.arg.free_symbols()

    def __repr__(self) -> str:
        return f"ceil_log2({self.arg!r})"


def ceil_div(a: ExprLike, b: ExprLike) -> Expr:
    """``⌈a / b⌉`` (``b`` must evaluate positive)."""
    return _CeilDiv(a, b)


def ceil_log2(x: ExprLike) -> Expr:
    """``⌈log₂ x⌉`` — exact integer arithmetic, never float ``log2``.

    ``ceil_log2(1) == 0``; arguments below 1 raise at evaluation time.
    """
    return _CeilLog2(x)


def max_(a: ExprLike, b: ExprLike) -> Expr:
    """Binary maximum."""
    return _Max(a, b)


def min_(a: ExprLike, b: ExprLike) -> Expr:
    """Binary minimum."""
    return _Min(a, b)
