"""Symbolic communication-cost models (``repro.costs``).

The measurement side of the repo (``CostReport``,
``BatchResult.cost_totals()``) counts what a protocol *did*; this package
states what it *should* cost, in closed form.  Every ``Protocol`` exposes
``cost_model()`` returning a :class:`CostModel`: per-:class:`Phase`
formulas over the problem parameters for each accounted cost kind, exact
integer ``evaluate()``/``predict()`` for any parameter point (including
``n`` far beyond what simulation reaches), and — for randomized or
dynamically-terminating protocols — :class:`Realized` round symbols with
exact bounds.  ``tests/conformance/test_cost_model.py`` holds the two
sides together bit for bit.

Only the standard library and numpy are used; expressions
(:mod:`repro.costs.expr`) evaluate in arbitrary-precision Python ints.
"""

from .expr import Const, Expr, Sym, as_expr, ceil_div, ceil_log2, max_, min_
from .model import COST_KINDS, CostModel, Phase, Realized

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "as_expr",
    "ceil_div",
    "ceil_log2",
    "max_",
    "min_",
    "COST_KINDS",
    "CostModel",
    "Phase",
    "Realized",
]
