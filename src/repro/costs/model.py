"""Per-phase symbolic cost models and the conformance checker.

A :class:`CostModel` is the closed-form counterpart of a measured
:class:`~repro.core.network.CostReport`: a list of :class:`Phase` entries,
each tagging exact :class:`~repro.costs.expr.Expr` formulas with the cost
kinds the engine accounts (``rounds``, ``turns``, ``broadcast_bits``,
``total_private_bits``, ``public_bits``).  Formulas are written in the
problem parameters (``n``, seed length ``k``, weight bits ``w`` …); the
model carries instance defaults for them so ``evaluate()`` with no
arguments predicts the cost of the protocol instance that built it.

Randomized or dynamically-terminating protocols cannot commit to one
round count up front.  They declare *realized symbols*
(:class:`Realized`): a symbol (say ``R``) that gets bound from a field of
the measured ``CostReport`` at check time, together with exact lower and
upper bound formulas.  Conformance then means "``R`` is inside its
bounds, and every cost kind equals its formula *at the realized* ``R``" —
still a bit-exact assertion, just conditioned on the measured rounds.

:meth:`CostModel.check_trial` / :meth:`CostModel.check_batch` return a
list of human-readable mismatch strings (empty = conformant), so test
failures name the offending kind and formula instead of two bare ints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from .expr import Const, Expr, as_expr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.network import CostReport

__all__ = ["COST_KINDS", "Phase", "Realized", "CostModel"]

#: Cost kinds a model may predict — exactly the keys of
#: ``BatchResult.cost_totals()`` and the accounted fields of ``CostReport``.
COST_KINDS = (
    "rounds",
    "turns",
    "broadcast_bits",
    "total_private_bits",
    "public_bits",
)


class Phase:
    """One named phase of a protocol with its per-kind cost formulas.

    ``costs`` maps cost-kind names (a subset of :data:`COST_KINDS`) to
    expressions (or plain ints); kinds not listed cost nothing in this
    phase.
    """

    def __init__(self, name: str, **costs: Expr | int):
        if not name:
            raise ValueError("phase name must be non-empty")
        unknown = sorted(set(costs) - set(COST_KINDS))
        if unknown:
            raise ValueError(
                f"phase {name!r}: unknown cost kinds {unknown}; "
                f"valid kinds are {list(COST_KINDS)}"
            )
        self.name = name
        self.costs: dict[str, Expr] = {k: as_expr(v) for k, v in costs.items()}

    def cost(self, kind: str) -> Expr:
        """The formula for ``kind`` in this phase (``0`` if untagged)."""
        if kind not in COST_KINDS:
            raise KeyError(f"unknown cost kind {kind!r}")
        return self.costs.get(kind, Const(0))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.costs.items())
        return f"Phase({self.name!r}, {inner})"


class Realized:
    """A symbol bound from the *measured* cost at conformance-check time.

    ``source`` names the ``CostReport`` attribute supplying the value
    (usually ``"rounds"``); ``lo``/``hi`` are exact inclusive bounds the
    realized value must satisfy.  Cost formulas are assumed monotone
    non-decreasing in realized symbols, which lets
    :meth:`CostModel.predict_bounds` evaluate worst/best cases at the
    bound endpoints.
    """

    def __init__(
        self,
        name: str,
        *,
        source: str = "rounds",
        lo: Expr | int,
        hi: Expr | int,
    ):
        if not name:
            raise ValueError("realized symbol name must be non-empty")
        self.name = name
        self.source = source
        self.lo = as_expr(lo)
        self.hi = as_expr(hi)

    def __repr__(self) -> str:
        return (
            f"Realized({self.name!r}, source={self.source!r}, "
            f"lo={self.lo!r}, hi={self.hi!r})"
        )


class CostModel:
    """Symbolic per-phase cost formulas for one protocol instance.

    ``params`` maps parameter symbol names to this instance's default
    values (evaluation overrides win).  ``realized`` lists the symbols
    bound from measured costs; a model with none is *exact* and fully
    predictive from parameters alone.
    """

    def __init__(
        self,
        phases: Iterable[Phase],
        *,
        params: Mapping[str, int] | None = None,
        realized: Iterable[Realized] = (),
    ):
        self.phases = tuple(phases)
        if not self.phases:
            raise ValueError("a cost model needs at least one phase")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names in {names}")
        self.params = dict(params or {})
        self.realized = tuple(realized)
        realized_names = [r.name for r in self.realized]
        if len(set(realized_names)) != len(realized_names):
            raise ValueError(f"duplicate realized symbols in {realized_names}")
        clash = sorted(set(realized_names) & set(self.params))
        if clash:
            raise ValueError(f"symbols {clash} are both params and realized")

    # -- structure -------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True when the model predicts every kind from parameters alone."""
        return not self.realized

    def total(self, kind: str) -> Expr:
        """The summed formula for ``kind`` across all phases."""
        if kind not in COST_KINDS:
            raise KeyError(f"unknown cost kind {kind!r}")
        expr: Expr = Const(0)
        for phase in self.phases:
            if kind in phase.costs:
                expr = expr + phase.costs[kind] if not _is_zero(expr) else phase.costs[kind]
        return expr

    def free_symbols(self) -> frozenset[str]:
        """All symbols appearing in any phase formula or realized bound."""
        out: frozenset[str] = frozenset()
        for phase in self.phases:
            for e in phase.costs.values():
                out |= e.free_symbols()
        for r in self.realized:
            out |= r.lo.free_symbols() | r.hi.free_symbols()
        return out

    def _bindings(self, overrides: Mapping[str, int]) -> dict[str, int]:
        merged = dict(self.params)
        merged.update(overrides)
        return merged

    # -- prediction ------------------------------------------------------
    def evaluate(self, **bindings: int) -> dict[str, int]:
        """Exact per-trial totals for every cost kind.

        Realized symbols must be supplied explicitly (or use
        :meth:`predict_bounds`).  Returns ``{kind: exact int}``.
        """
        merged = self._bindings(bindings)
        return {kind: self.total(kind).evaluate(merged) for kind in COST_KINDS}

    def predict(self, trials: int = 1, **bindings: int) -> dict[str, int]:
        """Extrapolate exact totals for ``trials`` runs at any parameters.

        This is pure integer formula evaluation — no simulation — so it is
        equally happy at ``n = 10`` and ``n = 10**9``.
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        per_trial = self.evaluate(**bindings)
        return {kind: trials * value for kind, value in per_trial.items()}

    def predict_bounds(
        self, trials: int = 1, **bindings: int
    ) -> dict[str, tuple[int, int]]:
        """Inclusive ``(lo, hi)`` totals with realized symbols at their bounds.

        Exact models return degenerate intervals ``(v, v)``.  Formulas are
        assumed monotone non-decreasing in each realized symbol.
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        merged = self._bindings(bindings)
        lo_bind = dict(merged)
        hi_bind = dict(merged)
        for r in self.realized:
            lo_bind[r.name] = r.lo.evaluate(merged)
            hi_bind[r.name] = r.hi.evaluate(merged)
        out = {}
        for kind in COST_KINDS:
            expr = self.total(kind)
            out[kind] = (
                trials * expr.evaluate(lo_bind),
                trials * expr.evaluate(hi_bind),
            )
        return out

    # -- conformance -----------------------------------------------------
    def check_trial(self, cost: "CostReport", **bindings: int) -> list[str]:
        """Check one measured ``CostReport`` against the model.

        Realized symbols are bound from ``cost`` (after verifying their
        bounds); every cost kind must then match its formula exactly.
        Returns a list of mismatch descriptions — empty means conformant.
        """
        merged = self._bindings(bindings)
        problems: list[str] = []
        for r in self.realized:
            value = int(getattr(cost, r.source))
            lo = r.lo.evaluate(merged)
            hi = r.hi.evaluate(merged)
            if not lo <= value <= hi:
                problems.append(
                    f"realized {r.name} = measured {r.source} = {value} "
                    f"outside bounds [{lo}, {hi}] "
                    f"(lo={r.lo!r}, hi={r.hi!r})"
                )
            merged[r.name] = value
        if problems:
            return problems
        for kind in COST_KINDS:
            expr = self.total(kind)
            predicted = expr.evaluate(merged)
            measured = int(getattr(cost, kind))
            if predicted != measured:
                problems.append(
                    f"{kind}: predicted {predicted} != measured {measured} "
                    f"(formula {expr!r})"
                )
        return problems

    def check_batch(self, costs: Sequence["CostReport"] | Any, **bindings: int) -> list[str]:
        """Check every trial of a batch; accepts a ``BatchResult`` too.

        Returns the concatenated per-trial mismatches, each prefixed with
        its trial index.
        """
        if hasattr(costs, "trials"):  # a BatchResult
            costs = [t.cost for t in costs.trials]
        problems: list[str] = []
        for index, cost in enumerate(costs):
            for problem in self.check_trial(cost, **bindings):
                problems.append(f"trial {index}: {problem}")
        return problems

    def __repr__(self) -> str:
        kind = "exact" if self.is_exact else "bounded"
        names = ", ".join(p.name for p in self.phases)
        return f"CostModel([{names}], {kind}, params={self.params})"


def _is_zero(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.value == 0
