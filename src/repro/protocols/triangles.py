"""Triangle counting — a Section 9 future-work problem, implemented.

The paper closes by proposing "counting triangles (or K4s) in random
graphs" as a target for the distributional lower-bound technique.  We
provide the two natural upper bounds so future experiments have a measured
baseline:

* :class:`FullExchangeTriangleProtocol` — the trivial exact protocol:
  every processor broadcasts its full adjacency row (``⌈n/b⌉`` rounds of
  ``BCAST(b)``), then counts triangles locally.  This is the ``O(n/log n)``
  rounds exact baseline in ``BCAST(log n)``.
* :class:`SampledTriangleProtocol` — a randomized estimator: public coins
  pick ``t`` random vertex triples; for each triple its three member
  processors broadcast their two incident edge bits (1 round of
  ``BCAST(2)`` per probe, only the members speak meaningfully), and the
  empirical triangle frequency rescales to a count estimate with standard
  Monte-Carlo error ``O(n³/√t)``.

Both operate on **undirected** graphs (symmetric adjacency rows).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol, require_bits
from ..core.randomness import expand_seed
from ..costs import Const, CostModel, Phase, ceil_div, ceil_log2, max_
from ..costs import Sym as _S

__all__ = [
    "count_triangles",
    "count_k4",
    "FullExchangeTriangleProtocol",
    "SampledTriangleProtocol",
]


def _validated_symmetric(adjacency: np.ndarray) -> np.ndarray:
    a = np.asarray(adjacency, dtype=np.int64)
    if a.shape[0] != a.shape[1]:
        raise ValueError("adjacency must be square")
    if not np.array_equal(a, a.T):
        raise ValueError("adjacency must be symmetric (undirected graph)")
    return a


def count_triangles(adjacency: np.ndarray) -> int:
    """Exact triangle count of an undirected 0/1 adjacency matrix."""
    a = _validated_symmetric(adjacency)
    return int(np.trace(a @ a @ a) // 6)


def count_k4(adjacency: np.ndarray) -> int:
    """Exact count of 4-cliques ("or K4s", Section 9).

    For every edge ``(u, v)``, count the edges inside the common
    neighbourhood ``N(u) ∩ N(v)``; each K4 is counted once per its six
    edges.
    """
    a = _validated_symmetric(adjacency)
    n = a.shape[0]
    total = 0
    for u in range(n):
        for v in range(u + 1, n):
            if not a[u, v]:
                continue
            common = np.nonzero(a[u] & a[v])[0]
            if common.size < 2:
                continue
            block = a[np.ix_(common, common)]
            total += int(block.sum()) // 2
    return total // 6


class FullExchangeTriangleProtocol(Protocol):
    """Exact triangle count by full adjacency exchange.

    Processor ``i`` broadcasts its row in ``⌈n/b⌉`` rounds of ``b``-bit
    messages (bits packed little-endian per message); everyone then knows
    the full graph and counts locally.
    """

    supports_batch = True
    supports_batch_keys = True

    def __init__(self, n: int, message_size: int | None = None):
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        self._auto_width = message_size is None
        self.message_size = (
            max(1, math.ceil(math.log2(max(2, n))))
            if message_size is None
            else message_size
        )

    def num_rounds(self, n: int) -> int:
        return math.ceil(self.n / self.message_size)

    def cost_model(self) -> CostModel:
        """Exact: ``⌈n/b⌉`` rounds of ``n`` ``b``-bit broadcasts, no coins."""
        n = _S("n")
        b = ceil_log2(max_(2, n)) if self._auto_width else Const(self.message_size)
        rounds = ceil_div(n, b)
        return CostModel(
            [
                Phase(
                    "exchange",
                    rounds=rounds,
                    turns=n * rounds,
                    broadcast_bits=n * rounds * b,
                )
            ],
            params={"n": self.n},
        )

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        payload = 0
        base = round_index * self.message_size
        for t in range(self.message_size):
            j = base + t
            if j < self.n:
                payload |= int(proc.input[j]) << t
        return payload

    def reconstructed_graph(self, proc: ProcessorContext) -> np.ndarray:
        adjacency = np.zeros((proc.n, self.n), dtype=np.uint8)
        for event in proc.transcript:
            base = event.round_index * self.message_size
            for t in range(self.message_size):
                j = base + t
                if j < self.n:
                    adjacency[event.sender, j] = (event.message >> t) & 1
        return adjacency

    def output(self, proc: ProcessorContext) -> int:
        return count_triangles(self.reconstructed_graph(proc))

    # ------------------------------------------------------------------
    # Vectorized fast path
    # ------------------------------------------------------------------
    def _validated_adjacency(self, inputs: np.ndarray) -> np.ndarray:
        """The ``(trials, n, n)`` adjacency stack, checked as the scalar
        path would check it: ``n`` rows of at least ``n`` bit entries,
        symmetric (``count_triangles`` refuses directed graphs).  Shared by
        :meth:`batch_decisions` and :meth:`batch_keys`."""
        inputs = np.asarray(inputs, dtype=np.uint8)
        if inputs.ndim != 3 or inputs.shape[1] != self.n or inputs.shape[2] < self.n:
            raise ValueError(
                f"inputs must be a (trials, {self.n}, >={self.n}) stack, "
                f"got shape {inputs.shape}"
            )
        adjacency = inputs[:, :, : self.n]
        require_bits(adjacency, "adjacency inputs")
        if not np.array_equal(adjacency, adjacency.transpose(0, 2, 1)):
            raise ValueError("adjacency must be symmetric (undirected graph)")
        return adjacency

    def batch_decisions(self, inputs: np.ndarray) -> np.ndarray:
        """Triangle counts for a ``(trials, n, m)`` batch in one einsum:
        ``trace(A³)/6`` per trial over the stacked adjacency tensor."""
        adjacency = self._validated_adjacency(inputs).astype(np.int64)
        traces = np.einsum("tij,tjk,tki->t", adjacency, adjacency, adjacency)
        return traces // 6

    def batch_keys(self, inputs: np.ndarray) -> np.ndarray:
        """Transcript keys for a ``(trials, n, m)`` batch: each processor's
        row packed little-endian into ``⌈n/b⌉`` ``b``-bit payloads, then
        transposed to round-major turn order — one pad/reshape/dot pass."""
        adjacency = self._validated_adjacency(inputs)
        trials, n = adjacency.shape[0], adjacency.shape[1]
        b = self.message_size
        rounds = self.num_rounds(n)
        padded = np.zeros((trials, n, rounds * b), dtype=np.uint8)
        padded[:, :, : self.n] = adjacency
        chunks = padded.reshape(trials, n, rounds, b)
        if b <= 62:
            weights = (np.int64(1) << np.arange(b, dtype=np.int64))
            payloads = (chunks.astype(np.int64) * weights).sum(axis=3)
        else:
            # Payloads wider than an int64: assemble Python ints instead.
            payloads = np.zeros((trials, n, rounds), dtype=object)
            for t in range(b):
                payloads += chunks[:, :, :, t].astype(object) * (1 << t)
        return payloads.transpose(0, 2, 1).reshape(trials, rounds * n)


class SampledTriangleProtocol(Protocol):
    """Monte-Carlo triangle count estimation.

    Each probe round, a public-coin triple ``(u, v, w)`` is drawn; ``u``
    broadcasts edge ``uv``, ``v`` broadcasts edge ``vw``, ``w`` broadcasts
    edge ``wu`` (everyone else stays silent with 0).  The estimate is
    ``C(n,3) ×`` the fraction of probed triples found complete.
    """

    message_size = 1

    def __init__(self, n: int, t_probes: int):
        if n < 3:
            raise ValueError("need at least three vertices")
        if t_probes < 1:
            raise ValueError("need at least one probe")
        self.n = n
        self.t_probes = t_probes
        self._triples: list[tuple[int, int, int]] | None = None

    def num_rounds(self, n: int) -> int:
        return self.t_probes

    def setup(self, proc: ProcessorContext) -> None:
        if self._triples is None:
            if proc.public_coins is None:
                raise ValueError(
                    "SampledTriangleProtocol needs a public_coins source"
                )
            seed = proc.public_coins.draw_int(32)
            expand = expand_seed(seed)
            triples = []
            while len(triples) < self.t_probes:
                u, v, w = (int(x) for x in expand.choice(self.n, 3, replace=False))
                triples.append((u, v, w))
            self._triples = triples

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        u, v, w = self._triples[round_index]
        if proc.proc_id == u:
            return int(proc.input[v])
        if proc.proc_id == v:
            return int(proc.input[w])
        if proc.proc_id == w:
            return int(proc.input[u])
        return 0

    def output(self, proc: ProcessorContext) -> float:
        hits = 0
        for r, (u, v, w) in enumerate(self._triples):
            messages = {
                e.sender: e.message
                for e in proc.transcript.messages_in_round(r)
            }
            if messages[u] and messages[v] and messages[w]:
                hits += 1
        total_triples = math.comb(self.n, 3)
        return total_triples * hits / self.t_probes
