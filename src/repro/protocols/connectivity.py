"""Graph connectivity by label propagation in ``BCAST(log n)``.

One of the Section 9 candidate problems ("graph connectivity … on random
graphs") as a concrete upper-bound protocol: every processor (vertex)
maintains the minimum vertex id it knows to be in its component, and each
round broadcasts it in a single ``⌈log₂ n⌉``-bit message.  Labels converge
in ``O(diameter)`` rounds; the protocol terminates dynamically as soon as
a round changes nothing (termination is transcript-determined, so all
processors agree).

On `A_rand`-style random graphs the diameter is ``O(1)`` with high
probability, so connectivity costs ``O(1)`` rounds of ``BCAST(log n)`` —
the regime where the model is powerful and lower bounds are delicate,
which is exactly why the paper's distributional techniques matter.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..core.transcript import Transcript

__all__ = ["ConnectivityProtocol", "components_from_labels"]


def components_from_labels(labels: list[int]) -> int:
    """Number of distinct component labels."""
    return len(set(labels))


class ConnectivityProtocol(Protocol):
    """Min-label propagation over an undirected adjacency input.

    Input: row ``i`` of a **symmetric** adjacency matrix.  Output per
    processor: ``(component_label, n_components)`` where the label is the
    smallest vertex id in the processor's component.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        self.message_size = max(1, math.ceil(math.log2(max(2, n))))

    def num_rounds(self, n: int) -> int:
        return n  # worst-case cap (path graph); terminates early

    # ------------------------------------------------------------------
    # Dynamic termination: stop when a full round changed no label.
    # ------------------------------------------------------------------
    def finished(self, n: int, transcript: Transcript, completed_rounds: int) -> bool:
        if completed_rounds < 2:
            return False
        last = [e.message for e in transcript.messages_in_round(completed_rounds - 1)]
        prev = [e.message for e in transcript.messages_in_round(completed_rounds - 2)]
        return last == prev

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _current_label(self, proc: ProcessorContext) -> int:
        return proc.memory.get("label", proc.proc_id)

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        return self._current_label(proc)

    def receive(
        self, proc: ProcessorContext, round_index: int, messages: dict[int, int]
    ) -> None:
        label = self._current_label(proc)
        neighbours = np.nonzero(proc.input)[0]
        for j in neighbours:
            label = min(label, messages[int(j)])
        label = min(label, messages[proc.proc_id])
        proc.memory["label"] = label

    def output(self, proc: ProcessorContext) -> tuple[int, int]:
        final_round = proc.transcript[-1].round_index
        labels = [
            e.message for e in proc.transcript.messages_in_round(final_round)
        ]
        return self._current_label(proc), components_from_labels(labels)
