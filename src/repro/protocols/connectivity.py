"""Graph connectivity by label propagation in ``BCAST(log n)``.

One of the Section 9 candidate problems ("graph connectivity … on random
graphs") as a concrete upper-bound protocol: every processor (vertex)
maintains the minimum vertex id it knows to be in its component, and each
round broadcasts it in a single ``⌈log₂ n⌉``-bit message.  Labels converge
in ``O(diameter)`` rounds; the protocol terminates dynamically as soon as
a round changes nothing (termination is transcript-determined, so all
processors agree).

On `A_rand`-style random graphs the diameter is ``O(1)`` with high
probability, so connectivity costs ``O(1)`` rounds of ``BCAST(log n)`` —
the regime where the model is powerful and lower bounds are delicate,
which is exactly why the paper's distributional techniques matter.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..core.transcript import Transcript
from ..costs import CostModel, Phase, Realized, Sym, ceil_log2, max_, min_

__all__ = ["ConnectivityProtocol", "components_from_labels"]


def components_from_labels(labels: list[int]) -> int:
    """Number of distinct component labels."""
    return len(set(labels))


class ConnectivityProtocol(Protocol):
    """Min-label propagation over an undirected adjacency input.

    Input: row ``i`` of a **symmetric** adjacency matrix.  Output per
    processor: ``(component_label, n_components)`` where the label is the
    smallest vertex id in the processor's component.
    """

    supports_batch = True
    supports_batch_keys = True

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        self.message_size = max(1, math.ceil(math.log2(max(2, n))))

    def num_rounds(self, n: int) -> int:
        return n  # worst-case cap (path graph); terminates early

    def cost_model(self) -> CostModel:
        """Bounded: the realized round count ``R`` (two consecutive equal
        label rounds, or the cap ``n``) is measured, then every kind is
        exact at that ``R``: ``n`` turns of ``⌈log₂ n⌉``-bit labels per
        round, no coins."""
        n, rounds = Sym("n"), Sym("R")
        width = ceil_log2(max_(2, n))
        return CostModel(
            [
                Phase(
                    "propagate",
                    rounds=rounds,
                    turns=n * rounds,
                    broadcast_bits=n * rounds * width,
                )
            ],
            params={"n": self.n},
            realized=[Realized("R", source="rounds", lo=min_(n, 2), hi=n)],
        )

    # ------------------------------------------------------------------
    # Dynamic termination: stop when a full round changed no label.
    # ------------------------------------------------------------------
    def finished(self, n: int, transcript: Transcript, completed_rounds: int) -> bool:
        if completed_rounds < 2:
            return False
        last = [e.message for e in transcript.messages_in_round(completed_rounds - 1)]
        prev = [e.message for e in transcript.messages_in_round(completed_rounds - 2)]
        return last == prev

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _current_label(self, proc: ProcessorContext) -> int:
        return proc.memory.get("label", proc.proc_id)

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        return self._current_label(proc)

    def receive(
        self, proc: ProcessorContext, round_index: int, messages: dict[int, int]
    ) -> None:
        label = self._current_label(proc)
        neighbours = np.nonzero(proc.input)[0]
        for j in neighbours:
            label = min(label, messages[int(j)])
        label = min(label, messages[proc.proc_id])
        proc.memory["label"] = label

    def output(self, proc: ProcessorContext) -> tuple[int, int]:
        final_round = proc.transcript[-1].round_index
        labels = [
            e.message for e in proc.transcript.messages_in_round(final_round)
        ]
        return self._current_label(proc), components_from_labels(labels)

    # ------------------------------------------------------------------
    # Vectorized fast path
    # ------------------------------------------------------------------
    def _batch_trace(
        self, inputs: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[int, ...]]]:
        """Batched label propagation shared by :meth:`batch_decisions` and
        :meth:`batch_keys` (memoized on the input stack's identity so the
        engine's back-to-back calls run one propagation).

        Every round is one masked min-reduction over the whole
        ``(trials, n, n)`` stack; per-trial realized round counts replay
        the scalar ``finished`` rule (stop after two identical label
        rounds, cap ``n``).  Labels only decrease, so a stable trial stays
        stable — recording extra rounds for already-stopped trials is
        harmless and they are sliced off per trial below.
        """
        cached = getattr(self, "_trace_cache", None)
        if cached is not None and cached[0] is inputs:
            return cached[1], cached[2]
        stack = np.asarray(inputs, dtype=np.uint8)
        if stack.ndim != 3:
            raise ValueError(
                f"inputs must be a (trials, n, m) stack, got shape {stack.shape}"
            )
        trials, n, m = stack.shape
        if m > n and stack[:, :, n:].any():
            raise ValueError(
                "adjacency entries beyond column n-1 reference processors "
                "that never speak (the scalar path raises looking up their "
                "messages)"
            )
        width = min(m, n)
        adjacency = np.zeros((trials, n, n), dtype=bool)
        adjacency[:, :, :width] = stack[:, :, :width] != 0
        cap = self.num_rounds(n)
        labels = np.tile(np.arange(n, dtype=np.int64), (trials, 1))
        # states[r] for r < executed are round r's messages (labels at round
        # start); the final entry is the post-receive label vector.
        states: list[np.ndarray] = []
        for r in range(cap):
            states.append(labels.copy())
            neighbour_min = np.where(adjacency, labels[:, None, :], n).min(axis=2)
            labels = np.minimum(labels, neighbour_min)
            if r >= 1 and np.array_equal(states[r], states[r - 1]):
                break  # every trial is stable; later rounds change nothing
        states.append(labels.copy())
        executed = len(states) - 1
        rounds_run = np.full(trials, cap, dtype=np.int64)
        done = np.zeros(trials, dtype=bool)
        for r in range(1, executed):
            newly = (~done) & (states[r] == states[r - 1]).all(axis=1)
            rounds_run[newly] = r + 1
            done |= newly
        outputs = np.empty((trials, n), dtype=object)
        keys: list[tuple[int, ...]] = []
        for t in range(trials):
            r_t = int(rounds_run[t])
            final_msgs = states[r_t - 1][t]
            count = components_from_labels(final_msgs.tolist())
            final_labels = states[r_t][t]
            for i in range(n):
                outputs[t, i] = (int(final_labels[i]), count)
            key = np.concatenate([states[r][t] for r in range(r_t)])
            keys.append(tuple(int(v) for v in key))
        self._trace_cache = (inputs, outputs, keys)
        return outputs, keys

    def batch_decisions(self, inputs: np.ndarray) -> np.ndarray:
        """Per-processor ``(label, n_components)`` outputs for a whole
        ``(trials, n, m)`` batch — one masked min-reduction per round."""
        outputs, _ = self._batch_trace(inputs)
        return outputs

    def batch_keys(self, inputs: np.ndarray) -> list[tuple[int, ...]]:
        """Ragged per-trial transcript keys (label vectors in round order,
        truncated at each trial's realized termination round)."""
        _, keys = self._batch_trace(inputs)
        return keys
