"""Global parity — the simplest non-trivial BCAST(1) workload.

Every processor broadcasts the parity of its private row; the XOR of all
broadcasts is the parity of the entire input matrix.  One round, zero
randomness, and every processor ends with the answer — used throughout the
test-suite as a deterministic payload and as a baseline for cost
accounting.
"""

from __future__ import annotations

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol

__all__ = ["GlobalParityProtocol"]


class GlobalParityProtocol(Protocol):
    """Compute the parity of all input bits in one ``BCAST(1)`` round."""

    def num_rounds(self, n: int) -> int:
        return 1

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        return int(proc.input.sum()) % 2

    def output(self, proc: ProcessorContext) -> int:
        return sum(e.message for e in proc.transcript) % 2
