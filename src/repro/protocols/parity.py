"""Global parity — the simplest non-trivial BCAST(1) workload.

Every processor broadcasts the parity of its private row; the XOR of all
broadcasts is the parity of the entire input matrix.  One round, zero
randomness, and every processor ends with the answer — used throughout the
test-suite as a deterministic payload and as a baseline for cost
accounting.
"""

from __future__ import annotations

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..costs import CostModel, Phase, Sym
from ..linalg.batch import BitVectorBatch

__all__ = ["GlobalParityProtocol"]


class GlobalParityProtocol(Protocol):
    """Compute the parity of all input bits in one ``BCAST(1)`` round.

    The output is a deterministic function of the input matrix alone, so
    the protocol rides the engine's ``vectorized=True`` fast path: a
    whole trial batch is decided by one XOR reduction, and the batch's
    transcript keys (one row-parity broadcast per processor) come from a
    single packed popcount pass.
    """

    supports_batch = True
    supports_batch_keys = True

    def num_rounds(self, n: int) -> int:
        return 1

    def cost_model(self) -> CostModel:
        """Exact: one round of ``n`` single-bit broadcasts, no coins."""
        n = Sym("n")
        return CostModel(
            [Phase("broadcast", rounds=1, turns=n, broadcast_bits=n)]
        )

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        return int(proc.input.sum()) % 2

    def output(self, proc: ProcessorContext) -> int:
        return sum(e.message for e in proc.transcript) % 2

    @staticmethod
    def _validated_stack(inputs: np.ndarray) -> np.ndarray:
        """The ``(trials, n, m)`` stack, shape-checked — shared by
        :meth:`batch_decisions` and :meth:`batch_keys` so validation
        cannot drift.  (No bit check: the scalar path reduces arbitrary
        integers mod 2, and so do the batched kernels via ``& 1``.)"""
        inputs = np.asarray(inputs, dtype=np.uint8)
        if inputs.ndim != 3:
            raise ValueError(
                f"inputs must be a (trials, n, m) stack, got shape {inputs.shape}"
            )
        return inputs

    def batch_decisions(self, inputs: np.ndarray) -> np.ndarray:
        """Whole-matrix parity for a ``(trials, n, m)`` batch at once."""
        inputs = self._validated_stack(inputs)
        # Explicit sizes, not -1: reshape(0, -1) rejects empty batches.
        trials, n, m = inputs.shape
        flat = inputs.reshape(trials, n * m)
        return np.bitwise_xor.reduce(flat & 1, axis=1).astype(np.uint8)

    def batch_keys(self, inputs: np.ndarray) -> np.ndarray:
        """Transcript keys for a ``(trials, n, m)`` batch: the one-round
        key is processor ``p``'s row parity, all rows popcounted at once."""
        inputs = self._validated_stack(inputs)
        trials, n, m = inputs.shape
        rows = BitVectorBatch.from_arrays((inputs & 1).reshape(trials * n, m))
        return (rows.weights() & 1).astype(np.uint8).reshape(trials, n)
