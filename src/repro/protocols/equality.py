"""Equality: the randomized–deterministic separation workload.

The paper notes (Section 1.2, "Efficiently saving random bits") that the
broadcast congested clique has a randomized–deterministic separation "by
reductions from two-player communication complexity for equality".  This
module exhibits both sides on the ALL-EQUAL problem (do all ``n``
processors hold the same ``m``-bit string?):

* :class:`DeterministicEqualityProtocol` — reveal everything: ``m`` rounds
  of ``BCAST(1)`` (processor ``i`` broadcasts bit ``r`` of its string in
  round ``r``), exact.
* :class:`FingerprintEqualityProtocol` — randomized fingerprinting:
  ``t`` rounds, each broadcasting the inner product of one's string with a
  shared random probe vector.  All-equal inputs always accept; any unequal
  pair is caught per probe with probability 1/2, so the one-sided error is
  ``2^{-t}`` — an exponential round saving, exactly the separation the
  paper invokes.

Combined with :class:`~repro.prg.derandomize.DerandomizedProtocol` this is
also the canonical Corollary 7.1 payload: a protocol that genuinely needs
its random bits.
"""

from __future__ import annotations

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol, require_bits
from ..core.randomness import expand_seed
from ..costs import CostModel, Phase, Sym

__all__ = [
    "DeterministicEqualityProtocol",
    "FingerprintEqualityProtocol",
    "fingerprint_error_bound",
]


def fingerprint_error_bound(t_probes: int) -> float:
    """One-sided error of the fingerprint protocol: ``2^{-t}``."""
    if t_probes < 0:
        raise ValueError("probe count must be non-negative")
    return 2.0**-t_probes


class DeterministicEqualityProtocol(Protocol):
    """ALL-EQUAL by full revelation: ``m`` rounds, zero error, no coins.

    Deterministic in the input matrix, so it supports the engine's
    ``vectorized=True`` fast path: a batch of trials is decided by one
    all-rows-equal comparison and its transcript keys (bit ``r`` of every
    string, revealed round by round) by one transpose (the randomized
    fingerprint protocol, by contrast, draws public coins and must be
    simulated).
    """

    supports_batch = True
    supports_batch_keys = True

    def __init__(self, m: int):
        if m <= 0:
            raise ValueError("string length m must be positive")
        self.m = m

    def num_rounds(self, n: int) -> int:
        return self.m

    def cost_model(self) -> CostModel:
        """Exact: ``m`` reveal rounds of ``n`` single-bit broadcasts."""
        n, m = Sym("n"), Sym("m")
        return CostModel(
            [Phase("reveal", rounds=m, turns=n * m, broadcast_bits=n * m)],
            params={"m": self.m},
        )

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        return int(proc.input[round_index])

    def output(self, proc: ProcessorContext) -> int:
        for r in range(self.m):
            bits = {e.message for e in proc.transcript.messages_in_round(r)}
            if len(bits) > 1:
                return 0
        return 1

    def _validated_revealed(self, inputs: np.ndarray) -> np.ndarray:
        """The ``(trials, n, m)`` revealed block, shape- and bit-checked.

        Shared by :meth:`batch_decisions` and :meth:`batch_keys` so the
        scalar-parity validation cannot drift between them.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim != 3 or inputs.shape[2] < self.m:
            raise ValueError(
                f"inputs must be a (trials, n, >={self.m}) stack, got "
                f"shape {inputs.shape}"
            )
        revealed = inputs[:, :, : self.m]
        require_bits(revealed, "equality inputs")
        return revealed

    def batch_decisions(self, inputs: np.ndarray) -> np.ndarray:
        """ALL-EQUAL over a ``(trials, n, m)`` batch in one comparison."""
        revealed = self._validated_revealed(inputs)
        equal = (revealed == revealed[:, :1, :]).all(axis=(1, 2))
        return equal.astype(np.uint8)

    def batch_keys(self, inputs: np.ndarray) -> np.ndarray:
        """Transcript keys for a ``(trials, n, >=m)`` batch: round ``r``
        broadcasts bit ``r`` of every string, so the key is the revealed
        block transposed to round-major order — one numpy pass."""
        revealed = self._validated_revealed(inputs)
        trials, n = revealed.shape[0], revealed.shape[1]
        return (
            revealed.transpose(0, 2, 1)
            .reshape(trials, self.m * n)
            .astype(np.uint8)
        )


class FingerprintEqualityProtocol(Protocol):
    """ALL-EQUAL by random fingerprints: ``t`` rounds, error ``2^{-t}``.

    Probe vectors are drawn from the shared public-coin source (the model
    makes public coins cheap: one broadcast per bit); the simulator must
    be given a ``public_coins`` source.  Each processor draws the *same*
    probes because the source is shared — the first processor to need a
    probe materialises it into its memory via the deterministic
    reconstruction below.

    To keep all processors' views identical without extra rounds, the
    probe for round ``r`` is expanded deterministically from one public
    seed drawn at setup by processor 0's source (all processors share the
    object, so a single draw is visible to everyone).
    """

    def __init__(self, m: int, t_probes: int):
        if m <= 0:
            raise ValueError("string length m must be positive")
        if t_probes <= 0:
            raise ValueError("need at least one probe")
        self.m = m
        self.t_probes = t_probes
        self._probes: np.ndarray | None = None

    def num_rounds(self, n: int) -> int:
        return self.t_probes

    def setup(self, proc: ProcessorContext) -> None:
        if self._probes is None:
            if proc.public_coins is None:
                raise ValueError(
                    "FingerprintEqualityProtocol needs a public_coins source"
                )
            seed = proc.public_coins.draw_int(32)
            expand = expand_seed(seed)
            self._probes = expand.integers(
                0, 2, size=(self.t_probes, self.m), dtype=np.uint8
            )

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        probe = self._probes[round_index]
        return int(probe @ proc.input) & 1

    def output(self, proc: ProcessorContext) -> int:
        for r in range(self.t_probes):
            bits = {e.message for e in proc.transcript.messages_in_round(r)}
            if len(bits) > 1:
                return 0
        return 1
