"""Minimum spanning tree on random weights — a Section 9 candidate.

The paper proposes "constructing an MST on a complete graph with random
weights to the edges" as a target for its distributional lower-bound
technique.  This module supplies the upper-bound side: Borůvka's algorithm
in the broadcast clique.

Model mapping: every processor (vertex) ``i`` privately holds row ``i`` of
the symmetric weight matrix, encoded as ``n`` little-endian
``weight_bits``-bit fields in its 0/1 input row.  One Borůvka phase takes
a single ``BCAST(log n + log n + w)`` round: every vertex broadcasts its
current component label together with its lightest outgoing edge
(target + weight); since broadcasts are global, **every** processor can
replay the same merge bookkeeping locally, so components stay consistent
with no extra communication.  The classical analysis gives ``O(log n)``
phases.

Tie-breaking: edges are ordered by ``(weight, min endpoint, max
endpoint)`` so the MST is unique even with duplicate weights — and every
processor breaks ties identically.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..core.transcript import Transcript
from ..costs import CostModel, Phase, Realized, Sym, ceil_log2, max_
from ..distributions.base import InputDistribution

__all__ = [
    "encode_weight_matrix",
    "decode_weight_row",
    "RandomWeightMatrix",
    "BoruvkaMSTProtocol",
    "mst_reference_weight",
]


def encode_weight_matrix(weights: np.ndarray, weight_bits: int) -> np.ndarray:
    """Encode a symmetric integer weight matrix as per-processor bit rows.

    Entry ``(i, j)`` occupies bits ``[j·w, (j+1)·w)`` of row ``i``
    (little-endian).  Weights must fit in ``weight_bits`` bits.
    """
    weights = np.asarray(weights)
    n = weights.shape[0]
    if weights.shape != (n, n):
        raise ValueError("weight matrix must be square")
    if not np.array_equal(weights, weights.T):
        raise ValueError("weight matrix must be symmetric")
    if weights.min() < 0 or weights.max() >= (1 << weight_bits):
        raise ValueError(f"weights must fit in {weight_bits} bits")
    if weight_bits <= 62:
        shifts = np.arange(weight_bits, dtype=np.int64)
        return (
            ((weights.astype(np.int64)[:, :, None] >> shifts) & 1)
            .reshape(n, n * weight_bits)
            .astype(np.uint8)
        )
    # Weights wider than an int64: bit-extract with Python ints.
    rows = np.zeros((n, n * weight_bits), dtype=np.uint8)
    for i in range(n):
        for j in range(n):
            value = int(weights[i, j])
            for t in range(weight_bits):
                rows[i, j * weight_bits + t] = (value >> t) & 1
    return rows


def decode_weight_row(row: np.ndarray, weight_bits: int) -> np.ndarray:
    """Decode one processor's input row back into its ``n`` edge weights."""
    row = np.asarray(row)
    if row.shape[0] % weight_bits:
        raise ValueError("row length must be a multiple of weight_bits")
    n = row.shape[0] // weight_bits
    weights = np.zeros(n, dtype=np.int64)
    for j in range(n):
        for t in range(weight_bits):
            weights[j] |= int(row[j * weight_bits + t]) << t
    return weights


class RandomWeightMatrix(InputDistribution):
    """Random symmetric integer weights, pre-encoded as protocol bit rows.

    The Section 9 "complete graph with random weights" input source for
    :class:`BoruvkaMSTProtocol`: each unordered pair gets a uniform weight
    in ``[0, 2^weight_bits)`` (zero diagonal), encoded little-endian via
    :func:`encode_weight_matrix`.  A library-level class (not a test
    lambda) so specs built on it stay picklable across process-pool and
    distributed backends.
    """

    def __init__(self, n: int, weight_bits: int):
        if n < 2:
            raise ValueError("need at least two vertices")
        if weight_bits < 1:
            raise ValueError("need at least one weight bit")
        super().__init__(n, n * weight_bits)
        self.weight_bits = weight_bits

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        upper = np.triu(
            rng.integers(0, 1 << self.weight_bits, size=(self.n, self.n)), 1
        )
        return encode_weight_matrix(upper + upper.T, self.weight_bits)


def mst_reference_weight(weights: np.ndarray) -> int:
    """Reference MST weight via Prim's algorithm (complete graph)."""
    weights = np.asarray(weights, dtype=np.int64)
    n = weights.shape[0]
    in_tree = np.zeros(n, dtype=bool)
    best = np.full(n, np.iinfo(np.int64).max)
    in_tree[0] = True
    best[1:] = weights[0, 1:]
    total = 0
    for _ in range(n - 1):
        candidates = np.where(~in_tree, best, np.iinfo(np.int64).max)
        nxt = int(np.argmin(candidates))
        total += int(best[nxt])
        in_tree[nxt] = True
        better = weights[nxt] < best
        best = np.where(better & ~in_tree, weights[nxt], best)
    return total


class BoruvkaMSTProtocol(Protocol):
    """Borůvka's MST in ``O(log n)`` rounds of wide broadcasts.

    Input: encoded weight rows (see :func:`encode_weight_matrix`).
    Output per processor: ``(mst_edges, total_weight)`` where ``mst_edges``
    is a frozenset of ``(u, v)`` pairs with ``u < v``.

    Each round's payload packs ``(component_label, best_target,
    best_weight)`` into ``2·⌈log₂n⌉ + weight_bits`` bits.  Termination is
    dynamic: the protocol stops one round after all labels coincide.
    """

    supports_batch = True
    supports_batch_keys = True

    def __init__(self, n: int, weight_bits: int):
        if n < 2:
            raise ValueError("need at least two vertices")
        if weight_bits < 1:
            raise ValueError("need at least one weight bit")
        self.n = n
        self.weight_bits = weight_bits
        self.label_bits = max(1, math.ceil(math.log2(n)))
        self.message_size = 2 * self.label_bits + weight_bits

    def num_rounds(self, n: int) -> int:
        return max(2, math.ceil(math.log2(self.n)) + 2)

    def cost_model(self) -> CostModel:
        """Bounded: the realized Borůvka phase count ``R`` (components at
        least halve per phase, so ``R ≤ ⌈log₂ n⌉ + 2``) is measured, then
        every kind is exact at that ``R``: ``n`` turns per round of
        ``2⌈log₂ n⌉ + w`` packed bits, no coins."""
        n, w, rounds = Sym("n"), Sym("w"), Sym("R")
        width = 2 * max_(1, ceil_log2(n)) + w
        return CostModel(
            [
                Phase(
                    "boruvka",
                    rounds=rounds,
                    turns=n * rounds,
                    broadcast_bits=n * rounds * width,
                )
            ],
            params={"n": self.n, "w": self.weight_bits},
            realized=[
                Realized(
                    "R", source="rounds", lo=1, hi=max_(2, ceil_log2(n) + 2)
                )
            ],
        )

    # ------------------------------------------------------------------
    # Message packing
    # ------------------------------------------------------------------
    def _pack(self, label: int, target: int, weight: int) -> int:
        return (
            label
            | (target << self.label_bits)
            | (weight << (2 * self.label_bits))
        )

    def _unpack(self, payload: int) -> tuple[int, int, int]:
        mask = (1 << self.label_bits) - 1
        label = payload & mask
        target = (payload >> self.label_bits) & mask
        weight = payload >> (2 * self.label_bits)
        return label, target, weight

    # ------------------------------------------------------------------
    # Shared bookkeeping (identical at every processor)
    # ------------------------------------------------------------------
    def _labels_after(self, transcript: Transcript, rounds: int) -> list[int]:
        """Replay the merge bookkeeping from the broadcast history."""
        labels = list(range(self.n))
        for r in range(rounds):
            proposals: dict[int, tuple[tuple[int, int, int], int, int]] = {}
            for event in transcript.messages_in_round(r):
                label, target, weight = self._unpack(event.message)
                u = event.sender
                if labels[target] == labels[u]:
                    continue  # stale or internal edge; ignore
                edge_key = (weight, min(u, target), max(u, target))
                current = proposals.get(labels[u])
                if current is None or edge_key < current[0]:
                    proposals[labels[u]] = (edge_key, u, target)
            # Merge along the proposed edges (union by relabelling).
            for _, u, target in proposals.values():
                old, new = labels[u], labels[target]
                if old == new:
                    continue
                keep, drop = min(old, new), max(old, new)
                labels = [keep if x == drop else x for x in labels]
            if len(set(labels)) == 1:
                break
        return labels

    def _chosen_edges(
        self, transcript: Transcript, rounds: int
    ) -> frozenset[tuple[int, int]]:
        labels = list(range(self.n))
        edges: set[tuple[int, int]] = set()
        for r in range(rounds):
            proposals: dict[int, tuple[tuple[int, int, int], int, int]] = {}
            for event in transcript.messages_in_round(r):
                label, target, weight = self._unpack(event.message)
                u = event.sender
                if labels[target] == labels[u]:
                    continue
                edge_key = (weight, min(u, target), max(u, target))
                current = proposals.get(labels[u])
                if current is None or edge_key < current[0]:
                    proposals[labels[u]] = (edge_key, u, target)
            for _, u, target in proposals.values():
                if labels[u] == labels[target]:
                    continue
                edges.add((min(u, target), max(u, target)))
                keep = min(labels[u], labels[target])
                drop = max(labels[u], labels[target])
                labels = [keep if x == drop else x for x in labels]
            if len(set(labels)) == 1:
                break
        return frozenset(edges)

    def finished(self, n: int, transcript: Transcript, completed_rounds: int) -> bool:
        if completed_rounds < 1:
            return False
        labels = self._labels_after(transcript, completed_rounds)
        return len(set(labels)) == 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _my_weights(self, proc: ProcessorContext) -> np.ndarray:
        if "mst_weights" not in proc.memory:
            proc.memory["mst_weights"] = decode_weight_row(
                proc.input, self.weight_bits
            )
        return proc.memory["mst_weights"]

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        labels = self._labels_after(proc.transcript, round_index)
        weights = self._my_weights(proc)
        my_label = labels[proc.proc_id]
        best_target, best_key = proc.proc_id, None
        for j in range(self.n):
            if labels[j] == my_label:
                continue
            key = (
                int(weights[j]),
                min(proc.proc_id, j),
                max(proc.proc_id, j),
            )
            if best_key is None or key < best_key:
                best_key, best_target = key, j
        if best_key is None:
            return self._pack(my_label, proc.proc_id, 0)
        return self._pack(my_label, best_target, best_key[0])

    def output(self, proc: ProcessorContext) -> tuple[frozenset, int]:
        rounds = proc.transcript[-1].round_index + 1 if proc.transcript.n_turns else 0
        edges = self._chosen_edges(proc.transcript, rounds)
        weights = self._my_weights(proc)
        # Total weight needs global knowledge of edge weights: every edge
        # (u, v) was broadcast with its weight when proposed, so replay.
        total = 0
        seen: set[tuple[int, int]] = set()
        for r in range(rounds):
            for event in proc.transcript.messages_in_round(r):
                _, target, weight = self._unpack(event.message)
                edge = (min(event.sender, target), max(event.sender, target))
                if edge in edges and edge not in seen:
                    seen.add(edge)
                    total += weight
        return edges, total

    # ------------------------------------------------------------------
    # Vectorized fast path
    # ------------------------------------------------------------------
    def _batch_trace(
        self, inputs: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[int, ...]]]:
        """Batched Borůvka replay shared by :meth:`batch_decisions` and
        :meth:`batch_keys` (memoized on the input stack's identity).

        The weight decode is one reshape/shift pass over the whole stack;
        within each trial the per-round lightest-outgoing-edge selection is
        a masked argmin over the encoded ``(weight, min, max)`` order,
        while the merge bookkeeping replays the scalar proposal dict
        verbatim (it is inherently sequential and ``O(n)`` per round).
        """
        cached = getattr(self, "_trace_cache", None)
        if cached is not None and cached[0] is inputs:
            return cached[1], cached[2]
        stack = np.asarray(inputs, dtype=np.uint8)
        if stack.ndim != 3:
            raise ValueError(
                f"inputs must be a (trials, n, m) stack, got shape {stack.shape}"
            )
        trials, n, m = stack.shape
        if n != self.n:
            raise ValueError(
                f"protocol is configured for n={self.n} processors, "
                f"got input rows for n={n}"
            )
        w = self.weight_bits
        if w > 62:
            raise ValueError(
                "batched decoding supports weight_bits <= 62; run scalar"
            )
        if m % w:
            raise ValueError("row length must be a multiple of weight_bits")
        fields = m // w
        if fields < n:
            raise ValueError(
                f"rows must encode at least {n} weights of {w} bits each"
            )
        chunks = stack.reshape(trials, n, fields, w).astype(np.int64)
        weights = np.zeros((trials, n, fields), dtype=np.int64)
        for t in range(w):
            weights |= chunks[:, :, :, t] << t
        weights = weights[:, :, :n]
        # Total order on candidate edges matching (weight, min, max) tuples.
        ids = np.arange(n, dtype=np.int64)
        pair_min = np.minimum(ids[:, None], ids[None, :])
        pair_max = np.maximum(ids[:, None], ids[None, :])
        wide = w + 2 * self.label_bits + 2 > 62
        if wide:
            pair_enc = pair_min.astype(object) * n + pair_max
            sentinel: int | np.int64 = 1 << (w + 4 * self.label_bits + 8)
        else:
            pair_enc = pair_min * n + pair_max
            sentinel = np.iinfo(np.int64).max
        cap = self.num_rounds(n)
        outputs = np.empty(trials, dtype=object)
        keys: list[tuple[int, ...]] = []
        for t in range(trials):
            wmat = weights[t]
            enc = (wmat.astype(object) if wide else wmat) * (n * n) + pair_enc
            labels = np.arange(n, dtype=np.int64)
            edges: set[tuple[int, int]] = set()
            first_weight: dict[tuple[int, int], int] = {}
            key: list[int] = []
            for r in range(cap):
                same = labels[:, None] == labels[None, :]
                best_j = np.where(same, sentinel, enc).argmin(axis=1)
                has_out = ~same.all(axis=1)
                msgs = []
                for u in range(n):
                    if has_out[u]:
                        j = int(best_j[u])
                        msgs.append(
                            self._pack(int(labels[u]), j, int(wmat[u, j]))
                        )
                    else:
                        msgs.append(self._pack(int(labels[u]), u, 0))
                key.extend(msgs)
                # Mirror of _chosen_edges: proposals keyed by the sender's
                # component at round start, merges replayed in dict order.
                proposals: dict[int, tuple[tuple[int, int, int], int, int]] = {}
                for u in range(n):
                    _, target, weight = self._unpack(msgs[u])
                    edge = (min(u, target), max(u, target))
                    if edge not in first_weight:
                        first_weight[edge] = weight
                    lu = int(labels[u])
                    if int(labels[target]) == lu:
                        continue
                    edge_key = (weight, edge[0], edge[1])
                    current = proposals.get(lu)
                    if current is None or edge_key < current[0]:
                        proposals[lu] = (edge_key, u, target)
                for _, u, target in proposals.values():
                    if labels[u] == labels[target]:
                        continue
                    edges.add((min(u, target), max(u, target)))
                    keep = int(min(labels[u], labels[target]))
                    drop = int(max(labels[u], labels[target]))
                    labels[labels == drop] = keep
                if len(set(labels.tolist())) == 1:
                    break
            chosen = frozenset(edges)
            outputs[t] = (chosen, sum(first_weight[e] for e in chosen))
            keys.append(tuple(key))
        self._trace_cache = (inputs, outputs, keys)
        return outputs, keys

    def batch_decisions(self, inputs: np.ndarray) -> np.ndarray:
        """``(mst_edges, total_weight)`` per trial for a whole
        ``(trials, n, n·w)`` encoded batch."""
        outputs, _ = self._batch_trace(inputs)
        return outputs

    def batch_keys(self, inputs: np.ndarray) -> list[tuple[int, ...]]:
        """Ragged per-trial transcript keys (packed Borůvka payloads in
        round order, truncated at each trial's convergence round)."""
        _, keys = self._batch_trace(inputs)
        return keys
