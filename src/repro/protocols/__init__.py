"""Workload protocol library.

Concrete ``BCAST(b)`` protocols used as payloads for the derandomization
transform, as cost-accounting baselines, and as implementations of the
Section 9 candidate problems (connectivity, triangle counting) the paper
proposes for future lower bounds.
"""

from .parity import GlobalParityProtocol
from .equality import (
    DeterministicEqualityProtocol,
    FingerprintEqualityProtocol,
    fingerprint_error_bound,
)
from .connectivity import ConnectivityProtocol, components_from_labels
from .triangles import (
    FullExchangeTriangleProtocol,
    SampledTriangleProtocol,
    count_k4,
    count_triangles,
)
from .mst import (
    BoruvkaMSTProtocol,
    decode_weight_row,
    encode_weight_matrix,
    mst_reference_weight,
)

__all__ = [
    "GlobalParityProtocol",
    "DeterministicEqualityProtocol",
    "FingerprintEqualityProtocol",
    "fingerprint_error_bound",
    "ConnectivityProtocol",
    "components_from_labels",
    "FullExchangeTriangleProtocol",
    "SampledTriangleProtocol",
    "count_k4",
    "count_triangles",
    "BoruvkaMSTProtocol",
    "decode_weight_row",
    "encode_weight_matrix",
    "mst_reference_weight",
]
